#!/usr/bin/env python3
"""Policy grid search: which power manager gets the most out of a day?

Holds one scenario fixed and sweeps the decision-making policy over a
grid — the paper's energy-aware manager, a fixed duty cycle, an
EWMA-forecast variant and a clairvoyant oracle — then ranks them by
energy-neutrality and detections delivered.  The same search is
available from the command line::

    python -m repro search cloudy_week_multi_day
    python -m repro search night_shift \
        --grid '{"static_duty_cycle": {"rate_per_min": [2, 8, 24]}}' --json

Run with::

    python examples/policy_search.py
"""

from repro.policies import PolicyGrid, PowerObservation
from repro.scenarios import ScenarioRunner, build_policy, get_scenario
from repro.scenarios.spec import PolicySpec

GRIDS = [
    PolicyGrid("energy_aware"),
    PolicyGrid("static_duty_cycle", axes={"rate_per_min": (2.0, 8.0, 24.0)}),
    PolicyGrid("ewma_forecast", axes={"alpha": (0.1, 0.5)}),
    PolicyGrid("oracle_lookahead", axes={"lookahead_s": (2 * 3600.0,
                                                         12 * 3600.0)}),
]


def main() -> None:
    # 1. A single decision, by hand: what would the paper's policy do
    #    with 100 uW of harvest and a half-full battery?
    policy = build_policy(PolicySpec())  # default energy_aware
    decision = policy.decide(PowerObservation(
        time_s=0.0, step_s=300.0, harvest_power_w=100e-6,
        state_of_charge=0.5))
    print(f"energy_aware at 100 uW, SoC 50%: "
          f"{decision.detection_rate_per_min:.1f} detections/min "
          f"({decision.mode})")

    # 2. The full grid over two very different days.
    runner = ScenarioRunner(workers=4, backend="thread")
    for scenario_name in ("cloudy_week_multi_day", "dead_battery_cold_start"):
        scenario = get_scenario(scenario_name)
        result = runner.run_grid(scenario, GRIDS)
        print(f"\n{scenario.name} — {scenario.description}")
        print(result.format_table())
        best = result.best
        print(f"winner: {best.label} "
              f"({best.outcome.detections_per_day:.0f} det/day, "
              f"final SoC {100 * best.outcome.final_soc:.1f} %)")


if __name__ == "__main__":
    main()
