#!/usr/bin/env python3
"""Fleet study: how does a *population* of wearers fare over a week?

One deterministic day-in-the-life says little about deployment risk;
what matters is the unlucky tail of a fleet of wearers with varied,
stochastic environments.  This example samples a seeded cohort of
office commuters, reduces it to population statistics (SoC
percentiles, downtime, detections/day), reruns the *same* population
under two power policies (a paired comparison), and registers a
custom timeline sampler to show the plug-in contract.  The same
studies are available from the command line::

    python -m repro fleet run office_cohort_week
    python -m repro fleet compare office_cohort_week \
        --policy energy_aware --policy ewma_forecast

Run with::

    python examples/fleet_study.py
"""

from repro.fleet import (
    FleetRunner,
    FleetSpec,
    SamplerSpec,
    register_sampler,
    run_fleet,
    wearer_scenario,
)
from repro.scenarios.spec import PolicySpec, SegmentSpec


def main() -> None:
    # 1. A small seeded cohort: 12 office commuters, five days of
    #    day-to-day jitter.  Same spec -> bitwise-identical result, on
    #    any backend, forever.
    fleet = FleetSpec(
        name="example_cohort",
        base_scenario="sunny_office_worker",
        n_wearers=12,
        horizon_days=5,
        seed=2020,
        sampler=SamplerSpec("daily_jitter", {"lux_sigma": 0.5}),
        description="12 commuters, five jittered days",
    )
    result = run_fleet(fleet, workers=4, backend="thread")
    print(result.format_summary())

    # 2. Every wearer is inspectable: regenerate wearer 7's scenario
    #    alone (seed + index) and look at its sampled morning.
    wearer = wearer_scenario(fleet, 7)
    first = wearer.timeline.segments[1]
    print(f"\nwearer 7, day 1, segment 2: {first.duration_s / 3600:.2f} h "
          f"at {first.lux:,.0f} lx ({first.label or 'unlabelled'})")

    # 3. Paired policy comparison: the same 12 sampled environments,
    #    decided by different managers, ranked by the p5 tail.
    comparison = FleetRunner(workers=4).compare(fleet, [
        PolicySpec("energy_aware"),
        PolicySpec("ewma_forecast", {"alpha": 0.2}),
        PolicySpec("static_duty_cycle", {"rate_per_min": 24.0}),
    ])
    print()
    print(comparison.format_table())
    best = comparison.best
    print(f"best for the unlucky tail: {best.label} "
          f"(p5 final SoC {100 * best.result.final_soc.p5:.1f}%)")

    # 4. Third-party samplers plug in like any other component.  A
    #    "basement week": the wearer never sees daylight.
    @register_sampler("basement_week")
    def build_basement_week(params):
        class BasementWeek:
            def sample_day(self, day, base, rng):
                return tuple(SegmentSpec(
                    duration_s=seg.duration_s, lux=0.0,
                    ambient_c=seg.ambient_c, skin_c=seg.skin_c,
                    wind_ms=seg.wind_ms, label="basement",
                ) for seg in base)
        return BasementWeek()

    dark = run_fleet(fleet.replace(name="example_basement",
                                   sampler=SamplerSpec("basement_week")),
                     backend="thread")
    print(f"\nbasement fleet: {100 * dark.fraction_energy_neutral:.0f}% "
          f"energy-neutral, p5 final SoC "
          f"{100 * dark.final_soc.p5:.1f}% (TEG-only survival)")


if __name__ == "__main__":
    main()
