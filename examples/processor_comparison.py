#!/usr/bin/env python3
"""Processor comparison: regenerate Tables III and IV.

Prints runtime (cycles) and energy per classification for Networks A
and B on the four measured configurations, plus the in-text speed-ups
and the fixed-vs-float comparison on the Cortex-M4F.

Run with::

    python examples/processor_comparison.py
"""

from repro.fann import build_network_a, build_network_b
from repro.timing import (
    ALL_PROCESSORS,
    NORDIC_ARM_M4F,
    NumericMode,
    cycles_for_network,
    energy_per_inference,
)


def main() -> None:
    networks = {"Network A": build_network_a(), "Network B": build_network_b()}

    print("Table III: runtime in cycles")
    header = f"{'':12s}" + "".join(f"{p.display_name:>34s}" for p in ALL_PROCESSORS)
    print(header)
    for name, net in networks.items():
        cells = "".join(
            f"{cycles_for_network(net, p).total_cycles:>34,d}"
            for p in ALL_PROCESSORS)
        print(f"{name:12s}{cells}")

    print("\nTable IV: energy per classification [uJ]")
    print(header)
    for name, net in networks.items():
        cells = "".join(
            f"{energy_per_inference(net, p).energy_uj_rounded:>34.1f}"
            for p in ALL_PROCESSORS)
        print(f"{name:12s}{cells}")

    print("\nSpeed-ups vs the ARM Cortex-M4 (paper: 1.3x/1.7x single, "
          "4.9x/8.3x eight-core)")
    for name, net in networks.items():
        arm = cycles_for_network(net, NORDIC_ARM_M4F).total_cycles
        single = cycles_for_network(net, ALL_PROCESSORS[2]).total_cycles
        multi = cycles_for_network(net, ALL_PROCESSORS[3]).total_cycles
        print(f"  {name}: single RI5CY {arm / single:.2f}x, "
              f"8x RI5CY {arm / multi:.2f}x")

    fixed = cycles_for_network(networks["Network A"], NORDIC_ARM_M4F).total_cycles
    floating = cycles_for_network(networks["Network A"], NORDIC_ARM_M4F,
                                  NumericMode.FLOAT).total_cycles
    print(f"\nCortex-M4F, Network A: FPU {floating} cycles vs fixed point "
          f"{fixed} cycles -> {floating / fixed:.2f}x (paper: 1.3x)")


if __name__ == "__main__":
    main()
