#!/usr/bin/env python3
"""Day-in-the-life simulation driven by the declarative scenario API.

Picks a named scenario from the built-in library, builds the full
system from its spec (calibrated harvesting chains, 120 mAh battery,
energy-aware power manager, per-detection energy) and prints an hourly
trace plus the day's energy balance.  The same spec round-trips
through JSON, which is how sweeps serialize scenarios.

Run with::

    python examples/day_in_the_life.py
"""

import json

from repro.core.sustainability import analyze_self_sustainability
from repro.scenarios import (
    ScenarioSpec,
    build_simulation,
    get_scenario,
    run_scenario,
)


def main() -> None:
    spec = get_scenario("sunny_office_worker")
    print(f"scenario: {spec.name} — {spec.description}")

    # The spec is plain data: serialize it, rebuild it, run the rebuilt
    # copy — the declarative path every example and bench now shares.
    rebuilt = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    simulation = build_simulation(rebuilt)
    result = simulation.run()

    print("\nhour  harvest     rate      SoC")
    for step in result.steps[::12]:  # one row per hour (12 x 300 s)
        hour = step.time_s / 3600.0
        print(f"{hour:4.0f}  {step.harvest_w * 1e3:7.3f} mW "
              f"{step.detection_rate_per_min:6.1f}/min   "
              f"{100 * step.state_of_charge:5.1f} %")

    print(f"\nharvested : {result.total_harvest_j:7.2f} J")
    print(f"consumed  : {result.total_consumed_j:7.2f} J")
    print(f"detections: {result.total_detections:7.0f}")
    print(f"SoC       : {100 * result.initial_soc:.1f} % -> "
          f"{100 * result.final_soc:.1f} % "
          f"({'energy-neutral or better' if result.energy_neutral else 'draining'})")

    # The one-call path used by sweeps returns the same numbers.
    outcome = run_scenario(spec)
    assert outcome.total_detections == result.total_detections
    print(f"\nrun_scenario: {outcome.detections_per_day:.0f} detections/day, "
          f"energy_neutral={outcome.energy_neutral}")

    static = analyze_self_sustainability()
    print(f"\nstatic paper scenario for reference: "
          f"{static.daily_intake_j:.2f} J/day supports up to "
          f"{static.detections_per_minute_floor} detections/minute")


if __name__ == "__main__":
    main()
