#!/usr/bin/env python3
"""Day-in-the-life simulation: harvest, battery and detections over 24 h.

Steps the full system (calibrated harvesting chains, 120 mAh battery,
energy-aware power manager, per-detection energy) through an office day
and prints an hourly trace plus the day's energy balance.

Run with::

    python examples/day_in_the_life.py
"""

from repro.core import DaySimulation
from repro.core.sustainability import analyze_self_sustainability
from repro.harvest.environment import (
    DARKNESS,
    EnvironmentSample,
    EnvironmentTimeline,
    INDOOR_OFFICE_700LX,
    OUTDOOR_SUN_30KLX,
    TEG_ROOM_15C_WIND_42KMH,
    TEG_ROOM_22C_NO_WIND,
)
from repro.power.battery import LiPoBattery


def office_day_with_commute() -> EnvironmentTimeline:
    """Sleep, a windy sunny cycle commute, office light, commute, evening."""
    return EnvironmentTimeline([
        EnvironmentSample(7 * 3600.0, DARKNESS, TEG_ROOM_22C_NO_WIND),
        EnvironmentSample(0.5 * 3600.0, OUTDOOR_SUN_30KLX, TEG_ROOM_15C_WIND_42KMH),
        EnvironmentSample(8.5 * 3600.0, INDOOR_OFFICE_700LX, TEG_ROOM_22C_NO_WIND),
        EnvironmentSample(0.5 * 3600.0, OUTDOOR_SUN_30KLX, TEG_ROOM_15C_WIND_42KMH),
        EnvironmentSample(7.5 * 3600.0, DARKNESS, TEG_ROOM_22C_NO_WIND),
    ])


def main() -> None:
    battery = LiPoBattery(initial_soc=0.5)
    simulation = DaySimulation(office_day_with_commute(), battery=battery,
                               step_s=300.0)
    result = simulation.run()

    print("hour  harvest     rate      SoC")
    for step in result.steps[::12]:  # one row per hour (12 x 300 s)
        hour = step.time_s / 3600.0
        print(f"{hour:4.0f}  {step.harvest_w * 1e3:7.3f} mW "
              f"{step.detection_rate_per_min:6.1f}/min   "
              f"{100 * step.state_of_charge:5.1f} %")

    print(f"\nharvested : {result.total_harvest_j:7.2f} J")
    print(f"consumed  : {result.total_consumed_j:7.2f} J")
    print(f"detections: {result.total_detections:7.0f}")
    print(f"SoC       : {100 * result.initial_soc:.1f} % -> "
          f"{100 * result.final_soc:.1f} % "
          f"({'energy-neutral or better' if result.energy_neutral else 'draining'})")

    static = analyze_self_sustainability()
    print(f"\nstatic paper scenario for reference: "
          f"{static.daily_intake_j:.2f} J/day supports up to "
          f"{static.detections_per_minute_floor} detections/minute")


if __name__ == "__main__":
    main()
