#!/usr/bin/env python3
"""Harvesting characterisation: regenerate Tables I and II and sweeps.

Measures the calibrated transducer models through the emulated lab
instruments (light source, climate chamber, wind source, SMU), the way
the authors characterised the hardware, then sweeps illuminance and
wind speed to show the curves between the published points.

Run with::

    python examples/harvesting_characterization.py
"""

from repro.harvest import calibrated_solar_harvester, calibrated_teg_harvester
from repro.lab import HarvestTestBench
from repro.units import kmh_to_ms


def main() -> None:
    bench = HarvestTestBench()
    solar = calibrated_solar_harvester()
    teg = calibrated_teg_harvester()

    print("Table I: solar power generation (battery intake)")
    for lux, paper_mw in ((30_000.0, 24.711), (700.0, 0.9)):
        measured = bench.measure_solar_intake_w(solar.panel, solar.converter,
                                                lux) * 1e3
        print(f"  {lux:8,.0f} lx : {measured:7.3f} mW  (paper {paper_mw} mW)")

    print("\nIlluminance sweep")
    for lux in (100, 300, 700, 2_000, 5_000, 10_000, 30_000):
        measured = bench.measure_solar_intake_w(solar.panel, solar.converter,
                                                float(lux)) * 1e3
        bar = "#" * max(1, int(40 * measured / 25.0))
        print(f"  {lux:8,d} lx : {measured:7.3f} mW {bar}")

    print("\nTable II: wrist TEG power (battery intake)")
    cases = [
        (22.0, 32.0, 0.0, 24.0),
        (15.0, 30.0, 0.0, 55.5),
        (15.0, 30.0, kmh_to_ms(42.0), 155.4),
    ]
    for ambient, skin, wind, paper_uw in cases:
        measured = bench.measure_teg_intake_w(teg.device, teg.converter,
                                              ambient, skin, wind) * 1e6
        print(f"  room {ambient:4.1f} C / skin {skin:4.1f} C / "
              f"wind {wind * 3.6:4.1f} km/h : {measured:7.1f} uW "
              f"(paper {paper_uw} uW)")

    print("\nWind sweep at room 15 C / skin 30 C")
    for wind_kmh in (0, 5, 10, 20, 30, 42):
        measured = bench.measure_teg_intake_w(teg.device, teg.converter,
                                              15.0, 30.0,
                                              kmh_to_ms(wind_kmh)) * 1e6
        bar = "#" * max(1, int(40 * measured / 160.0))
        print(f"  {wind_kmh:4d} km/h : {measured:7.1f} uW {bar}")

    print("\nSolar panel I-V curve at 30 klx (SMU sweep)")
    sweep = bench.sweep_panel(solar.panel, 30_000.0, points=9)
    for point in zip(sweep.voltages_v, sweep.currents_a):
        print(f"  {point[0]:6.3f} V : {point[1] * 1e3:7.2f} mA")
    v, i, p = sweep.maximum_power_point()
    print(f"  MPP: {p * 1e3:.2f} mW at {v:.2f} V / {i * 1e3:.2f} mA")


if __name__ == "__main__":
    main()
