#!/usr/bin/env python3
"""End-to-end stress detection: data -> features -> training -> deployment.

Reproduces the paper's Section III pipeline on the synthetic drivedb
substitute: generate labelled recordings, extract the five features
(RMSSD, SDSD, NN50, GSRL, GSRH) over overlapping windows, train the
Fig. 3 network with RPROP, quantise it to fixed point, and report
accuracy plus the deployed footprint.

Run with::

    python examples/stress_detection_pipeline.py
"""

import numpy as np

from repro.fann import RpropTrainer, build_network_a, convert_to_fixed
from repro.features import FEATURE_NAMES, FeatureExtractor, build_feature_matrix
from repro.sensors import StressDatasetGenerator

TRAIN_SUBJECTS = 6
TEST_SUBJECTS = 2


def one_hot_pm(labels: np.ndarray, num_classes: int = 3) -> np.ndarray:
    """Symmetric (+1/-1) targets for tanh output units, FANN-style."""
    targets = -np.ones((labels.size, num_classes))
    targets[np.arange(labels.size), labels] = 1.0
    return targets


def main() -> None:
    # 1. Synthetic drivedb-like recordings (rest / city / highway).
    generator = StressDatasetGenerator(segment_duration_s=150.0, seed=42)
    extractor = FeatureExtractor(window_duration_s=30.0, step_duration_s=15.0)

    train_vectors, test_vectors = [], []
    for subject in range(TRAIN_SUBJECTS + TEST_SUBJECTS):
        recording = generator.generate_recording(subject)
        vectors = extractor.extract_from_recording(recording)
        (train_vectors if subject < TRAIN_SUBJECTS else test_vectors).extend(vectors)
    print(f"extracted {len(train_vectors)} training / {len(test_vectors)} "
          f"held-out windows of features {FEATURE_NAMES}")

    x_train, y_train = build_feature_matrix(train_vectors)
    x_test, y_test = build_feature_matrix(test_vectors)

    # 2. Normalise (tanh nets want unit-scale inputs) and train.
    mean, std = x_train.mean(axis=0), x_train.std(axis=0) + 1e-9
    x_train = (x_train - mean) / std
    x_test = (x_test - mean) / std

    network = build_network_a(seed=7)
    report = RpropTrainer().train(network, x_train, one_hot_pm(y_train),
                                  max_epochs=300, desired_mse=0.05)
    print(f"trained {report.epochs_run} epochs, final MSE "
          f"{report.final_mse:.4f} (converged: {report.converged})")

    # 3. Accuracy, float vs deployed fixed point.
    fixed = convert_to_fixed(network)
    for label, x, y in (("train", x_train, y_train), ("held-out", x_test, y_test)):
        float_acc = float(np.mean(network.classify(x) == y))
        fixed_acc = float(np.mean(fixed.classify(x) == y))
        print(f"  {label:9s}: float {100 * float_acc:5.1f} %   "
              f"fixed-point {100 * fixed_acc:5.1f} %")

    # 4. Deployment facts the paper quotes.
    print(f"\nNetwork A: {network.total_neurons} neurons, "
          f"{network.total_weights} weights, "
          f"{network.memory_footprint_bytes() / 1024:.1f} kiB "
          f"(paper: 108 neurons, 3003 weights, ~14 kB)")
    print(f"fixed-point decimal point: {fixed.decimal_point} bits")


if __name__ == "__main__":
    main()
