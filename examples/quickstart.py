#!/usr/bin/env python3
"""Quickstart: build the watch, price a detection, check sustainability.

Run with::

    python examples/quickstart.py
"""

from repro.core import (
    InfiniWolfDevice,
    StressDetectionApp,
    analyze_self_sustainability,
)
from repro.scenarios import get_scenario, run_scenario
from repro.timing import ALL_PROCESSORS, energy_per_inference
from repro.fann import build_network_a


def main() -> None:
    # 1. The board (Fig. 1): components, buses, calibrated harvesters.
    device = InfiniWolfDevice()
    print(device.describe())

    # 2. One stress detection (Section IV): acquire 3 s, extract
    #    features, classify with Network A on the 8-core cluster.
    app = StressDetectionApp()
    budget = app.energy_budget()
    print("\nEnergy per detection")
    print(f"  acquisition        : {budget.acquisition_j * 1e6:8.1f} uJ")
    print(f"  feature extraction : {budget.feature_extraction_j * 1e6:8.2f} uJ")
    print(f"  classification     : {budget.classification_j * 1e6:8.2f} uJ")
    print(f"  total              : {budget.total_uj:8.1f} uJ "
          f"(paper books 602.2 uJ)")

    # 3. Where would the classifier run best?  (Table IV)
    network = build_network_a()
    print("\nNetwork A energy per inference")
    for processor in ALL_PROCESSORS:
        report = energy_per_inference(network, processor)
        print(f"  {processor.display_name:32s}: "
              f"{report.energy_uj:6.2f} uJ in {report.latency_s * 1e6:7.1f} us")

    # 4. Does the harvest cover it?  (Section IV-A)
    report = analyze_self_sustainability()
    print("\nSelf-sustainability (paper's indoor worst case)")
    print(f"  solar intake : {report.solar_energy_j:6.2f} J/day")
    print(f"  TEG intake   : {report.teg_energy_j:6.2f} J/day")
    print(f"  detections   : {report.detections_per_day:6.0f}/day "
          f"= up to {report.detections_per_minute_floor}/minute "
          f"(paper: 24/minute)")
    print(f"  self-sustaining: {report.is_self_sustaining}")

    # 5. The same question, dynamically: run the paper's day as a named
    #    scenario from the declarative library (see `python -m repro
    #    scenarios list` for the rest).
    outcome = run_scenario(get_scenario("paper_indoor_worst_case"))
    print("\nScenario run (paper_indoor_worst_case)")
    print(f"  harvested  : {outcome.total_harvest_j:6.2f} J")
    print(f"  detections : {outcome.detections_per_day:6.0f}/day")
    print(f"  energy-neutral: {outcome.energy_neutral}")


if __name__ == "__main__":
    main()
