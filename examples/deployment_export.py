#!/usr/bin/env python3
"""Deployment export: train, quantise and emit firmware artefacts.

Plays the FannCortexM role from the paper's toolchain: takes the
trained stress classifier, converts it to fixed point, and writes the
C header a firmware build would compile, plus the ``.net``-style float
checkpoint, then prints the integrator's summary (footprints and the
Table IV cost on every processor configuration).

Run with::

    python examples/deployment_export.py [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro.fann import (
    RpropTrainer,
    build_network_a,
    convert_to_fixed,
    deployment_summary,
    export_c_header,
    save_network,
)
from repro.features import FeatureExtractor, build_feature_matrix
from repro.sensors import StressDatasetGenerator


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("build")
    out_dir.mkdir(parents=True, exist_ok=True)

    # Train the Fig. 3 classifier on the synthetic dataset.
    generator = StressDatasetGenerator(segment_duration_s=150.0, seed=42)
    extractor = FeatureExtractor(window_duration_s=30.0, step_duration_s=15.0)
    vectors = []
    for subject in range(6):
        vectors.extend(extractor.extract_from_recording(
            generator.generate_recording(subject)))
    x, y = build_feature_matrix(vectors)
    x = (x - x.mean(axis=0)) / (x.std(axis=0) + 1e-9)
    targets = -np.ones((y.size, 3))
    targets[np.arange(y.size), y] = 1.0

    network = build_network_a(seed=7)
    report = RpropTrainer().train(network, x, targets, max_epochs=300,
                                  desired_mse=0.05)
    accuracy = float(np.mean(network.classify(x) == y))
    print(f"trained: MSE {report.final_mse:.4f}, accuracy {100 * accuracy:.1f} %")

    # Float checkpoint (reproducible training artefact).
    net_path = out_dir / "stress_net.net"
    save_network(network, net_path)
    print(f"wrote {net_path}")

    # Fixed-point firmware header.
    fixed = convert_to_fixed(network)
    header_path = out_dir / "stress_net.h"
    header_path.write_text(export_c_header(fixed, "stress_net"))
    print(f"wrote {header_path} (decimal point {fixed.decimal_point})")

    # Integrator summary.
    summary = deployment_summary(network)
    print("\ndeployment summary")
    print(f"  weights in flash : {summary.weights_bytes:7d} B")
    print(f"  tanh table       : {summary.table_bytes:7d} B")
    print(f"  RAM buffers      : {summary.buffer_bytes:7d} B")
    print(f"  fits nRF52 RAM   : {summary.fits_nrf52_ram}")
    print(f"  fits Mr. Wolf L1 : {summary.fits_mrwolf_l1}")
    print("  energy per inference (Table IV):")
    for key, energy in summary.energy_uj_by_processor.items():
        print(f"    {key:14s}: {energy:5.1f} uJ")


if __name__ == "__main__":
    main()
