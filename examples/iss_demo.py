#!/usr/bin/env python3
"""Instruction-set simulator demo: the same MLP on three ISAs.

Quantises a small tanh network, generates assembly for the plain
RV32IM core (IBEX timings), the XpulpV2 RI5CY core and the ARMv7E-M
core, runs each on its simulator, and shows that all produce the exact
same fixed-point outputs while the cycle counts tell the Table III
story — including the 8-core cluster with TCDM bank-conflict and
barrier accounting.

Run with::

    python examples/iss_demo.py
"""

import numpy as np

from repro.fann import Activation, LayerSpec, MultiLayerPerceptron, convert_to_fixed
from repro.isa.kernels import compile_mlp, run_mlp, with_power_of_two_tables


def main() -> None:
    rng = np.random.default_rng(0)
    network = MultiLayerPerceptron(
        8, [LayerSpec(16, Activation.TANH), LayerSpec(4, Activation.TANH)],
        seed=1)
    network.set_weights([rng.uniform(-1.2, 1.2, size=w.shape)
                         for w in network.weights])
    fixed = convert_to_fixed(network, decimal_point=10)
    x = rng.uniform(-1, 1, size=8)

    reference = with_power_of_two_tables(fixed)
    raw_in = np.asarray(reference.fmt.to_fixed(x), dtype=np.int64)[np.newaxis, :]
    expected = reference.forward_raw(raw_in)[0]
    print(f"reference fixed-point outputs: {expected}")

    total_macs = sum(w.size for w in fixed.weights)
    print(f"\n{'target':10s} {'cycles':>8s} {'instr':>8s} {'cyc/MAC':>8s}  match")
    for target in ("rv32im", "armv7m", "xpulp"):
        compiled = compile_mlp(fixed, target=target)
        out, result = run_mlp(compiled, x)
        match = "yes" if np.array_equal(out, expected) else "NO"
        print(f"{target:10s} {result.cycles:8d} {result.instructions:8d} "
              f"{result.cycles / total_macs:8.2f}  {match}")

    print("\ncluster scaling (xpulp SPMD kernel):")
    print(f"{'cores':>5s} {'cycles':>8s} {'speedup':>8s} "
          f"{'bank stalls':>12s} {'barrier waits':>14s}")
    single_cycles = None
    for cores in (1, 2, 4, 8):
        if cores == 1:
            compiled = compile_mlp(fixed, target="xpulp")
        else:
            compiled = compile_mlp(fixed, target="xpulp", num_cores=cores)
        out, result = run_mlp(compiled, x)
        assert np.array_equal(out, expected)
        if cores == 1:
            single_cycles = result.cycles
            print(f"{cores:5d} {result.cycles:8d} {'1.00x':>8s} "
                  f"{'-':>12s} {'-':>14s}")
        else:
            print(f"{cores:5d} {result.cycles:8d} "
                  f"{single_cycles / result.cycles:7.2f}x "
                  f"{result.bank_conflict_stalls:12d} "
                  f"{result.barrier_waits:14d}")

    compiled = compile_mlp(fixed, target="xpulp")
    print("\nfirst 18 lines of the generated XpulpV2 kernel:")
    for line in compiled.source.splitlines()[:18]:
        print(f"    {line}")


if __name__ == "__main__":
    main()
