"""Calibration of the layer-wise cycle model against Table III.

The analytical model decomposes an MLP inference into

    cycles = c_setup + sum over connection layers of
             [ c_layer + rows * c_neuron + rows * (n_in + 1) * c_weight ]

where ``rows = ceil(n_out / n_cores)`` is the number of neurons each
core evaluates on the critical path, and ``rows * (n_in + 1)`` is the
per-core multiply-accumulate count (bias weight included).

The per-processor constants cannot be measured without the silicon, so
they are **fit to the paper's Table III anchors** with
microarchitecturally-motivated priors.  The published numbers force two
memory-hierarchy effects which the fit resolves explicitly:

* On the nRF52832, Network B (~346 kB) cannot live in the 64 kB RAM,
  so its weights stream from flash.  Network B's measured cycles/weight
  (11.1) exceed Network A's (10.1) even though B's larger layers
  amortise per-neuron overhead better — the difference is ~1.96
  cycles/weight of effective flash wait states, consistent with the
  nRF52's cached flash.
* On the 8-core cluster, Network B cannot live in the 64 kB L1 TCDM,
  so eight cores stream weights through the shared L2 port and stall on
  contention: the fitted per-weight cost rises from 5.55 (L1) to 8.19
  (L2).  A single core's demand stays below the port bandwidth, which
  is why the single-core fit shows no such penalty (5.50 in L1 vs 5.51
  from L2).

Priors (``c_neuron``, ``c_layer``, ``c_setup``) are fixed at plausible
per-ISA values — activation-LUT evaluation plus neuron bookkeeping for
``c_neuron``, loop/pointer setup for ``c_layer``, call/cluster-wakeup
overhead for ``c_setup`` — and the remaining per-weight constants are
solved exactly from the anchors.  The fit is performed at import time
by :func:`calibrate`; tests verify that the model round-trips every
Table III number exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fann.zoo import build_network_a, build_network_b

__all__ = [
    "TABLE3_ANCHORS",
    "ARM_FLOAT_NETWORK_A_CYCLES",
    "CycleConstants",
    "calibrate",
    "CALIBRATED",
]

# Published Table III runtimes in cycles: {processor key: (Net A, Net B)}.
TABLE3_ANCHORS: dict[str, tuple[int, int]] = {
    "arm_m4f": (30210, 902763),
    "ibex": (40661, 955588),
    "ri5cy_single": (22772, 519354),
    "ri5cy_multi": (6126, 108316),
}

# In-text anchor: Network A on the Cortex-M4F using the FPU.
ARM_FLOAT_NETWORK_A_CYCLES = 38478

CLUSTER_CORES = 8


@dataclass(frozen=True)
class CycleConstants:
    """Calibrated constants of the layer-wise cycle model.

    Attributes:
        c_weight_fast: cycles per multiply-accumulate with weights in
            the fast region (RAM / L1 / the IBEX's L2).
        c_weight_slow: cycles per MAC with weights in the slow region
            (flash for the ARM, contended L2 for the cluster).  Equal to
            ``c_weight_fast`` where the distinction does not exist.
        c_neuron: per-neuron overhead (activation table, scaling, store).
        c_layer: per-connection-layer overhead (pointer/loop setup; for
            the cluster this includes the dispatch + barrier cost).
        c_setup: per-inference overhead (call frame; cluster wake-up).
        c_weight_float: per-MAC cost of the float path (None when the
            configuration has no FPU).
        c_neuron_float: per-neuron cost of the float path.
    """

    c_weight_fast: float
    c_weight_slow: float
    c_neuron: float
    c_layer: float
    c_setup: float
    c_weight_float: float | None = None
    c_neuron_float: float | None = None


def _layer_geometry(layer_sizes: list[int], n_cores: int) -> tuple[int, int]:
    """Total (rows, padded MACs) on the critical path across all layers.

    ``rows`` counts neurons evaluated by the busiest core; ``padded
    MACs`` counts its multiply-accumulates, i.e. load imbalance from
    ``ceil`` rounding is charged as if the work were real.
    """
    total_rows = 0
    total_macs = 0
    for n_in, n_out in zip(layer_sizes[:-1], layer_sizes[1:]):
        rows = -(-n_out // n_cores)  # ceil division
        total_rows += rows
        total_macs += rows * (n_in + 1)
    return total_rows, total_macs


def _network_geometry() -> dict[str, dict[str, tuple[int, int]]]:
    """Rows/MACs for Networks A and B, single-core and 8-core."""
    sizes_a = build_network_a().layer_sizes
    sizes_b = build_network_b().layer_sizes
    return {
        "single": {"a": _layer_geometry(sizes_a, 1), "b": _layer_geometry(sizes_b, 1)},
        "multi": {
            "a": _layer_geometry(sizes_a, CLUSTER_CORES),
            "b": _layer_geometry(sizes_b, CLUSTER_CORES),
        },
    }


def _solve_weight_constant(anchor: int, rows: int, macs: int, layers: int,
                           c_neuron: float, c_layer: float, c_setup: float) -> float:
    """Per-weight constant that makes the model hit ``anchor`` exactly."""
    remainder = anchor - (c_setup + layers * c_layer + rows * c_neuron)
    return remainder / macs


def calibrate() -> dict[str, CycleConstants]:
    """Fit the cycle-model constants to the Table III anchors.

    Returns a mapping from processor key to its calibrated constants.
    The priors below are per-ISA estimates:

    * ARM: ``c_neuron = 40`` (CMSIS-style LUT activation + Q-scaling),
      ``c_layer = 60``, ``c_setup = 200``; float path ``c_neuron = 100``
      (float tanh approximation).
    * IBEX: fit ``c_weight`` and ``c_neuron`` jointly from both
      networks (no residency split exists: the SoC domain always reads
      L2), priors ``c_layer = 70``, ``c_setup = 300``.
    * RI5CY: ``c_neuron = 52``, single-core ``c_layer = 80``,
      ``c_setup = 400``; cluster ``c_layer = 650`` (DMA programming +
      dispatch + barrier per layer), ``c_setup = 900`` (cluster power-on
      and offload from the fabric controller).
    """
    geometry = _network_geometry()
    layers_a = len(build_network_a().layers)
    layers_b = len(build_network_b().layers)
    anchors = TABLE3_ANCHORS
    constants: dict[str, CycleConstants] = {}

    # --- ARM Cortex-M4F: residency split between RAM (A) and flash (B).
    c_neuron, c_layer, c_setup = 40.0, 60.0, 200.0
    rows_a, macs_a = geometry["single"]["a"]
    rows_b, macs_b = geometry["single"]["b"]
    c_w_ram = _solve_weight_constant(anchors["arm_m4f"][0], rows_a, macs_a,
                                     layers_a, c_neuron, c_layer, c_setup)
    c_w_flash = _solve_weight_constant(anchors["arm_m4f"][1], rows_b, macs_b,
                                       layers_b, c_neuron, c_layer, c_setup)
    c_neuron_float = 100.0
    c_w_float = _solve_weight_constant(ARM_FLOAT_NETWORK_A_CYCLES, rows_a, macs_a,
                                       layers_a, c_neuron_float, c_layer, c_setup)
    constants["arm_m4f"] = CycleConstants(
        c_weight_fast=c_w_ram,
        c_weight_slow=c_w_flash,
        c_neuron=c_neuron,
        c_layer=c_layer,
        c_setup=c_setup,
        c_weight_float=c_w_float,
        c_neuron_float=c_neuron_float,
    )

    # --- IBEX: one residency (L2); fit c_weight and c_neuron jointly.
    c_layer, c_setup = 70.0, 300.0
    lhs = np.array([[macs_a, rows_a], [macs_b, rows_b]], dtype=np.float64)
    rhs = np.array(
        [
            anchors["ibex"][0] - c_setup - layers_a * c_layer,
            anchors["ibex"][1] - c_setup - layers_b * c_layer,
        ],
        dtype=np.float64,
    )
    c_w_ibex, c_n_ibex = np.linalg.solve(lhs, rhs)
    constants["ibex"] = CycleConstants(
        c_weight_fast=float(c_w_ibex),
        c_weight_slow=float(c_w_ibex),
        c_neuron=float(c_n_ibex),
        c_layer=c_layer,
        c_setup=c_setup,
    )

    # --- Single RI5CY core: L1 for A, streamed L2 for B (no contention).
    c_neuron, c_layer, c_setup = 52.0, 80.0, 400.0
    c_w_l1 = _solve_weight_constant(anchors["ri5cy_single"][0], rows_a, macs_a,
                                    layers_a, c_neuron, c_layer, c_setup)
    c_w_l2_single = _solve_weight_constant(anchors["ri5cy_single"][1], rows_b, macs_b,
                                           layers_b, c_neuron, c_layer, c_setup)
    constants["ri5cy_single"] = CycleConstants(
        c_weight_fast=c_w_l1,
        c_weight_slow=c_w_l2_single,
        c_neuron=c_neuron,
        c_layer=c_layer,
        c_setup=c_setup,
    )

    # --- 8x RI5CY cluster: L1 for A, contended L2 for B.
    c_neuron, c_layer, c_setup = 52.0, 650.0, 900.0
    rows_a8, macs_a8 = geometry["multi"]["a"]
    rows_b8, macs_b8 = geometry["multi"]["b"]
    c_w_l1_multi = _solve_weight_constant(anchors["ri5cy_multi"][0], rows_a8, macs_a8,
                                          layers_a, c_neuron, c_layer, c_setup)
    c_w_l2_multi = _solve_weight_constant(anchors["ri5cy_multi"][1], rows_b8, macs_b8,
                                          layers_b, c_neuron, c_layer, c_setup)
    constants["ri5cy_multi"] = CycleConstants(
        c_weight_fast=c_w_l1_multi,
        c_weight_slow=c_w_l2_multi,
        c_neuron=c_neuron,
        c_layer=c_layer,
        c_setup=c_setup,
    )
    return constants


# Fit once at import; the result is deterministic.
CALIBRATED: dict[str, CycleConstants] = calibrate()
