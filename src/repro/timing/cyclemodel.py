"""Layer-wise analytical cycle model for MLP inference (Table III).

See :mod:`repro.timing.calibration` for the model equation, the fit
against the published anchors, and the memory-residency story.  This
module applies the calibrated constants to arbitrary networks and core
counts, which is what the parallel-scaling and residency ablations use.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigurationError
from repro.fann.network import MultiLayerPerceptron
from repro.timing.calibration import CALIBRATED, CLUSTER_CORES, CycleConstants
from repro.timing.processors import ProcessorConfig

__all__ = [
    "NumericMode",
    "WeightResidency",
    "LayerCycles",
    "CycleBreakdown",
    "weight_residency",
    "cycles_for_network",
]


class NumericMode(Enum):
    """Arithmetic used by the inference kernels."""

    FIXED_POINT = "fixed"
    FLOAT = "float"


class WeightResidency(Enum):
    """Which memory the network's weights execute from."""

    FAST = "fast"   # RAM on the nRF52832, L1 TCDM on the cluster, L2 for IBEX
    SLOW = "slow"   # flash on the nRF52832, (contended) L2 on the cluster


@dataclass(frozen=True)
class LayerCycles:
    """Cycle cost of one connection layer.

    Attributes:
        n_in: source layer width (bias excluded).
        n_out: destination layer width.
        rows_per_core: neurons evaluated by the busiest core.
        macs_per_core: multiply-accumulates on the critical path.
        cycles: total cycles charged to this layer.
    """

    n_in: int
    n_out: int
    rows_per_core: int
    macs_per_core: int
    cycles: float


@dataclass(frozen=True)
class CycleBreakdown:
    """Full decomposition of an inference's cycle count.

    Attributes:
        processor_key: calibrated-constant set used.
        numeric_mode: fixed-point or float kernels.
        residency: memory region the weights ran from.
        layers: per-layer costs.
        setup_cycles: per-inference overhead.
        total_cycles: rounded total (what Table III reports).
    """

    processor_key: str
    numeric_mode: NumericMode
    residency: WeightResidency
    layers: tuple[LayerCycles, ...]
    setup_cycles: float

    @property
    def total_cycles(self) -> int:
        """Total inference cycles, rounded to the nearest integer."""
        return int(round(self.setup_cycles + sum(l.cycles for l in self.layers)))

    def latency_seconds(self, frequency_hz: float) -> float:
        """Wall-clock latency at a given clock frequency."""
        return self.total_cycles / frequency_hz


def weight_residency(network: MultiLayerPerceptron,
                     processor: ProcessorConfig) -> WeightResidency:
    """Decide where the network's weights live on a processor.

    The paper's memory-footprint model (16 B/neuron + 4 B/weight +
    8 B/layer) is compared against the processor's fast-memory
    capacity: Network A (~13.8 kB) fits everywhere, Network B
    (~346 kB) fits neither the nRF52832's 64 kB RAM nor the cluster's
    64 kB L1, so it runs from flash / L2 respectively.
    """
    if network.memory_footprint_bytes() <= processor.fast_memory_bytes:
        return WeightResidency.FAST
    return WeightResidency.SLOW


def _per_weight_cost(constants: CycleConstants, residency: WeightResidency,
                     mode: NumericMode) -> float:
    """Per-MAC cycle cost for a residency/mode combination."""
    if mode is NumericMode.FLOAT:
        if constants.c_weight_float is None:
            raise ConfigurationError(
                "float inference requested on a configuration without an FPU"
            )
        base = constants.c_weight_float
        # Float weights are the same 4 bytes, so the slow-region fetch
        # penalty applies unchanged on top of the float MAC cost.
        if residency is WeightResidency.SLOW:
            base += constants.c_weight_slow - constants.c_weight_fast
        return base
    if residency is WeightResidency.SLOW:
        return constants.c_weight_slow
    return constants.c_weight_fast


def _per_neuron_cost(constants: CycleConstants, mode: NumericMode) -> float:
    """Per-neuron cycle cost for a numeric mode."""
    if mode is NumericMode.FLOAT:
        if constants.c_neuron_float is None:
            raise ConfigurationError(
                "float inference requested on a configuration without an FPU"
            )
        return constants.c_neuron_float
    return constants.c_neuron


def cycles_for_network(network: MultiLayerPerceptron,
                       processor: ProcessorConfig,
                       mode: NumericMode = NumericMode.FIXED_POINT) -> CycleBreakdown:
    """Predict the inference cycle count of ``network`` on ``processor``.

    Reproduces Table III for Networks A/B on the four measured
    configurations, and extrapolates to any FANN-style MLP and any
    cluster core count (see :func:`repro.timing.processors.mrwolf_cluster`).
    """
    if processor.key not in CALIBRATED:
        raise ConfigurationError(f"no calibrated constants for {processor.key!r}")
    if processor.n_cores > 1 and processor.key != "ri5cy_multi":
        raise ConfigurationError(
            f"{processor.display_name} is a single-core configuration"
        )
    constants = CALIBRATED[processor.key]
    residency = weight_residency(network, processor)
    c_weight = _per_weight_cost(constants, residency, mode)
    c_neuron = _per_neuron_cost(constants, mode)

    layers: list[LayerCycles] = []
    sizes = network.layer_sizes
    for n_in, n_out in zip(sizes[:-1], sizes[1:]):
        rows = -(-n_out // processor.n_cores)  # ceil division
        macs = rows * (n_in + 1)
        cycles = constants.c_layer + rows * c_neuron + macs * c_weight
        layers.append(LayerCycles(n_in=n_in, n_out=n_out, rows_per_core=rows,
                                  macs_per_core=macs, cycles=cycles))
    return CycleBreakdown(
        processor_key=processor.key,
        numeric_mode=mode,
        residency=residency,
        layers=tuple(layers),
        setup_cycles=constants.c_setup,
    )


def parallel_speedup(network: MultiLayerPerceptron,
                     n_cores: int,
                     mode: NumericMode = NumericMode.FIXED_POINT) -> float:
    """Cluster speed-up of ``n_cores`` over a single RI5CY core.

    Used by the parallel-scaling ablation (A1 in DESIGN.md).
    """
    from repro.timing.processors import MRWOLF_RI5CY_SINGLE, mrwolf_cluster

    if n_cores < 1 or n_cores > CLUSTER_CORES:
        raise ConfigurationError(f"n_cores must lie in 1..{CLUSTER_CORES}")
    base = cycles_for_network(network, MRWOLF_RI5CY_SINGLE, mode).total_cycles
    multi = cycles_for_network(network, mrwolf_cluster(n_cores), mode).total_cycles
    return base / multi
