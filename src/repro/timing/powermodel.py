"""Energy model for MLP inference (Table IV).

Energy is the product of the configuration's calibrated active power
and the predicted latency:

    E = P_active * cycles / f_clk

with cycles from :mod:`repro.timing.cyclemodel` and ``P_active``
calibrated so Table IV is reproduced to its published 0.1 uJ rounding
(see :mod:`repro.timing.processors` for the power provenance).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fann.network import MultiLayerPerceptron
from repro.timing.cyclemodel import CycleBreakdown, NumericMode, cycles_for_network
from repro.timing.processors import ProcessorConfig
from repro.units import j_to_uj

__all__ = ["EnergyReport", "energy_per_inference", "latency_seconds"]


@dataclass(frozen=True)
class EnergyReport:
    """Energy and latency of one inference on one configuration.

    Attributes:
        processor: configuration the inference ran on.
        breakdown: the cycle decomposition behind the estimate.
        latency_s: wall-clock inference time in seconds.
        energy_j: inference energy in joules.
    """

    processor: ProcessorConfig
    breakdown: CycleBreakdown
    latency_s: float
    energy_j: float

    @property
    def energy_uj(self) -> float:
        """Energy in microjoules (the unit Table IV uses)."""
        return j_to_uj(self.energy_j)

    @property
    def energy_uj_rounded(self) -> float:
        """Energy rounded to Table IV's 0.1 uJ resolution."""
        return round(self.energy_uj, 1)


def energy_per_inference(network: MultiLayerPerceptron,
                         processor: ProcessorConfig,
                         mode: NumericMode = NumericMode.FIXED_POINT) -> EnergyReport:
    """Predict energy and latency of one inference.

    Reproduces Table IV for Networks A/B across the four measured
    configurations.
    """
    breakdown = cycles_for_network(network, processor, mode)
    latency = breakdown.latency_seconds(processor.frequency_hz)
    energy = processor.active_power_w * latency
    return EnergyReport(
        processor=processor,
        breakdown=breakdown,
        latency_s=latency,
        energy_j=energy,
    )


def latency_seconds(network: MultiLayerPerceptron,
                    processor: ProcessorConfig,
                    mode: NumericMode = NumericMode.FIXED_POINT) -> float:
    """Wall-clock latency of one inference in seconds."""
    return energy_per_inference(network, processor, mode).latency_s
