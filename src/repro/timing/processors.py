"""Processor configuration descriptors for the InfiniWolf compute fabric.

Two chips, four measured configurations:

* **nRF52832** — ARM Cortex-M4F at 64 MHz, 64 kB RAM, 512 kB flash.
  Networks that do not fit in RAM execute with their weights in flash
  and pay wait-state stalls on weight fetches.
* **Mr. Wolf** — PULP SoC at 100 MHz (its most energy-efficient
  operating point per the paper).  The SoC domain contains the IBEX
  fabric controller (RV32IM) and 512 kB of L2; the cluster domain
  contains 8 RI5CY cores with DSP extensions sharing a 64 kB L1 TCDM.
  Networks that do not fit in L1 stream weights from L2, which costs
  port contention when many cores pull at once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import mhz_to_hz

__all__ = [
    "ProcessorConfig",
    "NORDIC_ARM_M4F",
    "MRWOLF_IBEX",
    "MRWOLF_RI5CY_SINGLE",
    "MRWOLF_RI5CY_CLUSTER8",
    "ALL_PROCESSORS",
    "mrwolf_cluster",
    "NRF52832_RAM_BYTES",
    "NRF52832_FLASH_BYTES",
    "MRWOLF_L1_BYTES",
    "MRWOLF_L2_BYTES",
]

NRF52832_RAM_BYTES = 64 * 1024
NRF52832_FLASH_BYTES = 512 * 1024
MRWOLF_L1_BYTES = 64 * 1024
MRWOLF_L2_BYTES = 512 * 1024
MRWOLF_CLUSTER_CORES = 8


@dataclass(frozen=True)
class ProcessorConfig:
    """One measured processor configuration.

    Attributes:
        key: identifier used to look up calibrated cycle constants.
        display_name: human-readable name used in reports.
        frequency_hz: operating clock frequency.
        active_power_w: whole-chip active power while running the MLP,
            calibrated against Table IV (quiescent/idle power is modelled
            separately in :mod:`repro.power.loads`).
        n_cores: number of cores executing the kernel.
        fast_memory_bytes: capacity of the memory the weights must fit
            in to avoid the slow-region per-weight penalty (RAM for the
            nRF52832, L1 TCDM for the RI5CY cluster; the IBEX always
            reads L2, so its fast region *is* L2).
        has_fpu: whether a float inference mode exists on this
            configuration (only the Cortex-M4F in this system).
    """

    key: str
    display_name: str
    frequency_hz: float
    active_power_w: float
    n_cores: int
    fast_memory_bytes: int
    has_fpu: bool = False

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        if self.active_power_w <= 0:
            raise ConfigurationError("active power must be positive")
        if self.n_cores < 1:
            raise ConfigurationError("need at least one core")

    @property
    def is_cluster(self) -> bool:
        """True when the configuration runs in Mr. Wolf's cluster domain."""
        return self.key.startswith("ri5cy")


# Active powers are calibrated so that Table IV is reproduced exactly
# (energy = power x cycles / frequency, cycles from Table III):
#   ARM:    5.1 uJ / (30210 cy / 64 MHz)  ~ 10.90 mW
#   IBEX:   1.3 uJ / (40661 cy / 100 MHz) ~  3.30 mW
#   1xRI5CY: 2.9 uJ / (22772 cy / 100 MHz) ~ 12.63 mW
#   8xRI5CY: 1.2 uJ / (6126 cy / 100 MHz)  ~ 19.95 mW  (paper: "20 mW
#            in parallel execution")
NORDIC_ARM_M4F = ProcessorConfig(
    key="arm_m4f",
    display_name="nRF52832 ARM Cortex-M4F",
    frequency_hz=mhz_to_hz(64),
    active_power_w=10.90e-3,
    n_cores=1,
    fast_memory_bytes=NRF52832_RAM_BYTES,
    has_fpu=True,
)

MRWOLF_IBEX = ProcessorConfig(
    key="ibex",
    display_name="Mr. Wolf SoC (IBEX, RV32IM)",
    frequency_hz=mhz_to_hz(100),
    active_power_w=3.30e-3,
    n_cores=1,
    fast_memory_bytes=MRWOLF_L2_BYTES,
)

MRWOLF_RI5CY_SINGLE = ProcessorConfig(
    key="ri5cy_single",
    display_name="Mr. Wolf cluster (1x RI5CY)",
    frequency_hz=mhz_to_hz(100),
    active_power_w=12.63e-3,
    n_cores=1,
    fast_memory_bytes=MRWOLF_L1_BYTES,
)

MRWOLF_RI5CY_CLUSTER8 = ProcessorConfig(
    key="ri5cy_multi",
    display_name="Mr. Wolf cluster (8x RI5CY)",
    frequency_hz=mhz_to_hz(100),
    active_power_w=19.95e-3,
    n_cores=MRWOLF_CLUSTER_CORES,
    fast_memory_bytes=MRWOLF_L1_BYTES,
)

ALL_PROCESSORS = (
    NORDIC_ARM_M4F,
    MRWOLF_IBEX,
    MRWOLF_RI5CY_SINGLE,
    MRWOLF_RI5CY_CLUSTER8,
)


def mrwolf_cluster(n_cores: int) -> ProcessorConfig:
    """Cluster configuration with an arbitrary active core count.

    Used by the parallel-scaling ablation.  Power interpolates linearly
    between the calibrated 1-core and 8-core cluster powers (the cluster
    shares caches and the DMA, so the per-core increment is well below
    the single-core total).
    """
    if not 1 <= n_cores <= MRWOLF_CLUSTER_CORES:
        raise ConfigurationError(
            f"Mr. Wolf's cluster has 1..{MRWOLF_CLUSTER_CORES} cores, got {n_cores}"
        )
    if n_cores == 1:
        return MRWOLF_RI5CY_SINGLE
    if n_cores == MRWOLF_CLUSTER_CORES:
        return MRWOLF_RI5CY_CLUSTER8
    p_lo = MRWOLF_RI5CY_SINGLE.active_power_w
    p_hi = MRWOLF_RI5CY_CLUSTER8.active_power_w
    frac = (n_cores - 1) / (MRWOLF_CLUSTER_CORES - 1)
    return ProcessorConfig(
        key="ri5cy_multi",
        display_name=f"Mr. Wolf cluster ({n_cores}x RI5CY)",
        frequency_hz=MRWOLF_RI5CY_CLUSTER8.frequency_hz,
        active_power_w=p_lo + frac * (p_hi - p_lo),
        n_cores=n_cores,
        fast_memory_bytes=MRWOLF_L1_BYTES,
    )
