"""Processor timing and energy models (Tables III and IV).

The paper measures MLP inference on four processor configurations:

* the nRF52832's ARM Cortex-M4F at 64 MHz,
* Mr. Wolf's IBEX fabric controller (RV32IM) at 100 MHz,
* a single RI5CY cluster core at 100 MHz,
* the full 8-core RI5CY cluster at 100 MHz.

:mod:`repro.timing.cyclemodel` provides a layer-wise analytical cycle
model whose per-processor constants are calibrated against the
published Table III anchors (see :mod:`repro.timing.calibration` for
the fit and its provenance), and :mod:`repro.timing.powermodel` turns
cycles into energy using per-configuration active powers calibrated
against Table IV.
"""

from repro.timing.processors import (
    ProcessorConfig,
    NORDIC_ARM_M4F,
    MRWOLF_IBEX,
    MRWOLF_RI5CY_SINGLE,
    MRWOLF_RI5CY_CLUSTER8,
    ALL_PROCESSORS,
    mrwolf_cluster,
)
from repro.timing.cyclemodel import (
    CycleBreakdown,
    NumericMode,
    WeightResidency,
    cycles_for_network,
    weight_residency,
)
from repro.timing.powermodel import (
    EnergyReport,
    energy_per_inference,
    latency_seconds,
)

__all__ = [
    "ProcessorConfig",
    "NORDIC_ARM_M4F",
    "MRWOLF_IBEX",
    "MRWOLF_RI5CY_SINGLE",
    "MRWOLF_RI5CY_CLUSTER8",
    "ALL_PROCESSORS",
    "mrwolf_cluster",
    "CycleBreakdown",
    "NumericMode",
    "WeightResidency",
    "cycles_for_network",
    "weight_residency",
    "EnergyReport",
    "energy_per_inference",
    "latency_seconds",
]
