"""The stress-detection application and its per-detection energy budget.

Section IV of the paper itemises one detection as:

* **acquisition** — 3 s of simultaneous ECG (171 uW) and GSR (30 uW)
  front-end activity (the paper books this as "600 uJ"; the exact
  product is 603 uJ — both values are reported, see EXPERIMENTS.md);
* **feature extraction** — 50 us on the parallel cluster at ~20 mW
  ("1 uJ");
* **classification** — one Network-A inference on the chosen
  processor configuration (1.2 uJ on the 8-core cluster, Table IV).

The paper's headline "best overall energy cost" is 602.2 uJ with its
rounded acquisition figure.  :class:`StressDetectionApp` computes the
budget from the component models (exact) and also exposes the paper's
bookkeeping for the reproduction benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigurationError
from repro.fann.network import MultiLayerPerceptron
from repro.fann.zoo import build_network_a
from repro.power.loads import ECG_AFE_ACTIVE_W, GSR_AFE_ACTIVE_W
from repro.timing.powermodel import energy_per_inference
from repro.timing.processors import MRWOLF_RI5CY_CLUSTER8, ProcessorConfig
from repro.units import j_to_uj

__all__ = [
    "PAPER_ACQUISITION_WINDOW_S",
    "PAPER_FEATURE_EXTRACTION_S",
    "PAPER_ACQUISITION_ENERGY_UJ",
    "PAPER_TOTAL_DETECTION_ENERGY_UJ",
    "DetectionPhase",
    "DetectionEnergyBudget",
    "StressDetectionApp",
]

PAPER_ACQUISITION_WINDOW_S = 3.0
PAPER_FEATURE_EXTRACTION_S = 50.0e-6
# The paper's own (rounded) bookkeeping for Section IV-A.
PAPER_ACQUISITION_ENERGY_UJ = 600.0
PAPER_FEATURE_ENERGY_UJ = 1.0
PAPER_TOTAL_DETECTION_ENERGY_UJ = 602.2


class DetectionPhase(Enum):
    """The three phases of one stress detection."""

    ACQUISITION = "acquisition"
    FEATURE_EXTRACTION = "feature_extraction"
    CLASSIFICATION = "classification"


@dataclass(frozen=True)
class DetectionEnergyBudget:
    """Energy decomposition of one detection.

    Attributes:
        acquisition_j: sensor front-end energy over the window.
        feature_extraction_j: cluster energy for feature extraction.
        classification_j: inference energy on the chosen processor.
        latency_s: end-to-end duration (acquisition dominates).
    """

    acquisition_j: float
    feature_extraction_j: float
    classification_j: float
    latency_s: float

    @property
    def total_j(self) -> float:
        """Total energy per detection in joules."""
        return self.acquisition_j + self.feature_extraction_j + self.classification_j

    @property
    def total_uj(self) -> float:
        """Total energy per detection in microjoules."""
        return j_to_uj(self.total_j)

    def phase_energy_j(self, phase: DetectionPhase) -> float:
        """Energy of one named phase."""
        if phase is DetectionPhase.ACQUISITION:
            return self.acquisition_j
        if phase is DetectionPhase.FEATURE_EXTRACTION:
            return self.feature_extraction_j
        return self.classification_j


class StressDetectionApp:
    """The deployed stress-detection application.

    Args:
        network: the classifier (defaults to Network A).
        processor: configuration running feature extraction and
            inference (defaults to the 8-core cluster, the paper's
            best case).
        acquisition_window_s: sensor window per detection.
        feature_extraction_s: feature-extraction runtime; the paper
            measured 50 us on the parallel cluster.
    """

    def __init__(self, network: MultiLayerPerceptron | None = None,
                 processor: ProcessorConfig = MRWOLF_RI5CY_CLUSTER8,
                 acquisition_window_s: float = PAPER_ACQUISITION_WINDOW_S,
                 feature_extraction_s: float = PAPER_FEATURE_EXTRACTION_S) -> None:
        if acquisition_window_s <= 0:
            raise ConfigurationError("acquisition window must be positive")
        if feature_extraction_s < 0:
            raise ConfigurationError("feature extraction time cannot be negative")
        self.network = network if network is not None else build_network_a()
        self.processor = processor
        self.acquisition_window_s = acquisition_window_s
        self.feature_extraction_s = feature_extraction_s

    def energy_budget(self) -> DetectionEnergyBudget:
        """Exact per-detection budget from the component models."""
        acquisition_w = ECG_AFE_ACTIVE_W + GSR_AFE_ACTIVE_W
        acquisition_j = acquisition_w * self.acquisition_window_s
        # Feature extraction runs on the same processor configuration
        # as the classifier at its calibrated active power.
        feature_j = self.processor.active_power_w * self.feature_extraction_s
        inference = energy_per_inference(self.network, self.processor)
        return DetectionEnergyBudget(
            acquisition_j=acquisition_j,
            feature_extraction_j=feature_j,
            classification_j=inference.energy_j,
            latency_s=(self.acquisition_window_s + self.feature_extraction_s
                       + inference.latency_s),
        )

    def paper_energy_budget(self) -> DetectionEnergyBudget:
        """The paper's own rounded bookkeeping (600 + 1 + 1.2 uJ).

        Kept separate so the benches can report both the exact model
        and the numbers as printed in Section IV-A.
        """
        inference = energy_per_inference(self.network, self.processor)
        return DetectionEnergyBudget(
            acquisition_j=PAPER_ACQUISITION_ENERGY_UJ * 1e-6,
            feature_extraction_j=PAPER_FEATURE_ENERGY_UJ * 1e-6,
            classification_j=inference.energy_uj_rounded * 1e-6,
            latency_s=(self.acquisition_window_s + self.feature_extraction_s
                       + inference.latency_s),
        )
