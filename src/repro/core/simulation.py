"""Time-stepped day-in-the-life simulation of the whole watch.

Steps the system over an environment timeline: each step harvests into
the battery through the harvesting chain, asks the power policy for a
detection rate (a :class:`repro.policies.base.PowerObservation` in, a
:class:`~repro.policies.base.PolicyDecision` out), charges the battery
for every detection executed, and records a trace (state of charge,
intake, rate, detections) for the ablation benches and examples.

:class:`DaySimulation` is a thin engine over injected components — it
steps whatever harvester/battery/app/policy it is handed and contains
no construction logic of its own.  Defaults for omitted components are
resolved through the component registries by
:mod:`repro.scenarios.builder`, which is also the home of the
spec-driven construction path (``build_simulation(spec)``).

The stepping loop is segment-walking: it keeps a cursor into the
timeline's precomputed segment boundaries and re-evaluates the
harvesting chain only when the cursor crosses into a new segment, so
the per-step cost is independent of both the segment count and the
cost of the transducer models.  :class:`TraceMode` controls how much
per-step trace is kept (``full`` / ``decimated:n`` / ``none``); the
summary totals on :class:`SimulationResult` are exact in every mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.core.manager import EnergyAwareManager
from repro.errors import SimulationError
from repro.harvest.environment import (
    EnvironmentTimeline,
    LightingCondition,
    ThermalCondition,
)
from repro.power.loads import SYSTEM_SLEEP_W

__all__ = ["HarvestChain", "TraceMode", "SimulationStep", "SimulationResult",
           "DaySimulation", "step_grid"]


def step_grid(horizon_s: float, step_s: float,
              ) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """The exact ``(times, dts)`` sequence :meth:`DaySimulation.run` steps.

    Reproduces the engine's own accumulation — ``dt = min(step_s,
    horizon - t)`` then ``t += dt`` — with the same float operations in
    the same order, so the returned start times and step durations are
    bitwise what the scalar loop sees.  The vectorized fleet engine
    (:mod:`repro.fleet.vector`) steps every wearer over this shared
    grid; anything else that needs to line arrays up with engine steps
    (per-step fault masks, per-step intake tables) should build them
    from this function rather than re-deriving the arithmetic.

    >>> step_grid(150.0, 60.0)
    ((0.0, 60.0, 120.0), (60.0, 60.0, 30.0))
    """
    if step_s <= 0:
        raise SimulationError("step size must be positive")
    if horizon_s <= 0:
        raise SimulationError("simulation horizon must be positive")
    times: list[float] = []
    dts: list[float] = []
    t = 0.0
    while t < horizon_s - 1e-9:
        dt = min(step_s, horizon_s - t)
        times.append(t)
        dts.append(dt)
        t += dt
    return tuple(times), tuple(dts)


class HarvestChain(Protocol):
    """Anything that answers "how much power reaches the battery"."""

    def battery_intake_w(self, lighting: LightingCondition,
                         thermal: ThermalCondition) -> float: ...


@dataclass(frozen=True)
class TraceMode:
    """How much per-step trace a run keeps.

    Attributes:
        kind: ``"full"`` records every step, ``"decimated"`` every
            ``every``-th step plus the final one, ``"none"`` records no
            steps at all.  Summary totals are exact in every mode.
        every: decimation factor (only meaningful for ``decimated``).

    The spec layer stores the string form (``"full"``, ``"none"``,
    ``"decimated:12"``); :meth:`parse` accepts either representation.
    """

    kind: str = "full"
    every: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("full", "decimated", "none"):
            raise SimulationError(
                f"unknown trace mode {self.kind!r}; "
                "use 'full', 'none' or 'decimated:<n>'")
        if self.every < 1 or self.every != int(self.every):
            raise SimulationError(
                f"trace decimation factor must be a positive integer, "
                f"got {self.every!r}")

    @classmethod
    def parse(cls, value: "TraceMode | str") -> "TraceMode":
        """A :class:`TraceMode` from itself or its string form."""
        if isinstance(value, TraceMode):
            return value
        if not isinstance(value, str):
            raise SimulationError(
                f"trace mode must be a string or TraceMode, "
                f"got {type(value).__name__}")
        if value in ("full", "none"):
            return cls(kind=value)
        if value.startswith("decimated:"):
            try:
                every = int(value.split(":", 1)[1])
            except ValueError:
                raise SimulationError(
                    f"bad trace decimation factor in {value!r}") from None
            return cls(kind="decimated", every=every)
        raise SimulationError(
            f"unknown trace mode {value!r}; "
            "use 'full', 'none' or 'decimated:<n>'")

    def __str__(self) -> str:
        if self.kind == "decimated":
            return f"decimated:{self.every}"
        return self.kind


@dataclass(frozen=True)
class SimulationStep:
    """Trace record of one simulation step.

    Attributes:
        time_s: step start time.
        harvest_w: net harvest intake during the step.
        detection_rate_per_min: manager-chosen rate during the step.
        detections: detections executed in the step.
        state_of_charge: battery SoC at the end of the step.
    """

    time_s: float
    harvest_w: float
    detection_rate_per_min: float
    detections: float
    state_of_charge: float


@dataclass
class SimulationResult:
    """Full outcome of a run.

    Attributes:
        steps: per-step trace.
        total_detections: detections executed over the horizon.
        initial_soc: battery state of charge at the start.
        final_soc: battery state of charge at the end.
        total_harvest_j: energy harvested over the horizon.
        total_consumed_j: energy drawn by detections and sleep.
        duration_s: simulated horizon.
        downtime_s: total time spent in steps where the battery could
            not deliver the full demand (detections were dropped or
            the watch browned out) — the "watch was degraded" clock
            that fleet studies aggregate into downtime hours.
        fault_demand_j: energy demanded by injected load-spike faults
            over the horizon (``0.0`` on fault-free runs).  The
            invariant judge uses it to decompose consumption into
            detections + sleep + faults.
    """

    steps: list[SimulationStep] = field(default_factory=list)
    total_detections: float = 0.0
    initial_soc: float = 0.0
    final_soc: float = 0.0
    total_harvest_j: float = 0.0
    total_consumed_j: float = 0.0
    duration_s: float = 0.0
    downtime_s: float = 0.0
    fault_demand_j: float = 0.0

    @property
    def energy_neutral(self) -> bool:
        """True when the battery ended no lower than it started."""
        return self.final_soc >= self.initial_soc - 1e-9


class DaySimulation:
    """Simulates the watch over an environment timeline.

    Args:
        timeline: the environment over the horizon.
        app: detection application (defaults to Network A on the
            8-core cluster, built from the component registries).
        harvester: harvesting chain (defaults to the calibrated dual
            chain from the registries).
        battery: storage (defaults to the 120 mAh cell at 50 %).
        policy: the decision-maker.  Either a
            :class:`repro.policies.base.Policy` protocol object
            (anything with ``max_rate_per_min`` and ``decide(obs)``),
            or — for backward compatibility — a bare
            :class:`~repro.core.manager.ManagerPolicy` threshold set,
            which is wrapped in the energy-aware adapter.  Defaults to
            the paper-shaped energy-aware policy.
        step_s: simulation step size.
        sleep_power_w: baseline watch draw on top of detections.  The
            Table I/II intake numbers already include the sleeping
            watch's quiescent current, so the default only charges the
            *additional* always-on overhead beyond deep sleep; pass a
            larger value to model heavier standby activity.
        manager: the rate-choosing manager; built from ``app`` and
            ``policy`` when omitted.  Mutually exclusive with
            ``policy`` (an injected manager brings its own), and when
            given with no ``app``, no default app is built —
            ``self.app`` stays ``None``.
        detection_energy_j: energy of one detection; derived from
            ``app``/``manager`` when omitted.  Passing it avoids
            re-pricing the app when the caller already has the number.
        duration_s: default horizon for :meth:`run` (``None`` runs the
            whole timeline); a ``run``-time argument still wins.
        trace: per-step trace retention — a :class:`TraceMode` or its
            string form (``"full"``, ``"none"``, ``"decimated:<n>"``).
            Summary totals stay exact in every mode; only the
            ``steps`` list is affected.
        faults: a compiled :class:`repro.core.faults.FaultTimeline` of
            injected fault windows (sensor dropout, harvester derate,
            load spikes), or ``None`` for a healthy system.  The
            fault-free path is bitwise identical to passing nothing.
    """

    def __init__(self, timeline: EnvironmentTimeline,
                 app=None,
                 harvester: HarvestChain | None = None,
                 battery=None,
                 policy=None,
                 step_s: float = 60.0,
                 sleep_power_w: float = SYSTEM_SLEEP_W,
                 manager: EnergyAwareManager | None = None,
                 detection_energy_j: float | None = None,
                 duration_s: float | None = None,
                 trace: TraceMode | str = "full",
                 faults=None) -> None:
        if step_s <= 0:
            raise SimulationError("step size must be positive")
        if sleep_power_w < 0:
            raise SimulationError("sleep power cannot be negative")
        if duration_s is not None and duration_s <= 0:
            raise SimulationError("default duration must be positive")
        if detection_energy_j is not None and detection_energy_j <= 0:
            raise SimulationError("detection energy must be positive")
        if manager is not None and policy is not None:
            raise SimulationError(
                "pass either manager or policy, not both: an injected "
                "manager brings its own policy")
        # An injected Policy-protocol object may wrap a pre-built
        # manager (EnergyAwarePolicy does); that manager both stays
        # reachable as self.manager for pre-protocol callers and
        # supplies the detection energy, exactly as manager= injection
        # does — the two spellings must price detections identically.
        # The isinstance check keeps the probe off third-party
        # policies whose unrelated ``manager`` attribute would be
        # mispriced (or lack detection_energy_j entirely).
        wrapped_manager = (getattr(policy, "manager", None)
                          if policy is not None and hasattr(policy, "decide")
                          else None)
        if not isinstance(wrapped_manager, EnergyAwareManager):
            wrapped_manager = None
        if detection_energy_j is None and wrapped_manager is not None:
            detection_energy_j = wrapped_manager.detection_energy_j
        needs_default_app = (app is None and manager is None
                             and detection_energy_j is None)
        if harvester is None or battery is None or needs_default_app:
            # Deferred so the engine has no import-time dependency on
            # the construction layer (which imports this module).  An
            # injected manager needs no app, so none is built for it.
            from repro.scenarios import builder
            if needs_default_app:
                app = builder.build_app()
            if harvester is None:
                harvester = builder.build_harvester(cached=True)
            if battery is None:
                battery = builder.build_battery()
        self.timeline = timeline
        self.app = app
        self.harvester = harvester
        self.battery = battery
        if manager is not None:
            # Injected pre-built manager: wrap it behind the protocol.
            from repro.policies.library import EnergyAwarePolicy
            self.manager = manager
            self.policy = EnergyAwarePolicy(manager)
            self.detection_energy_j = manager.detection_energy_j
        else:
            if detection_energy_j is None:
                detection_energy_j = app.energy_budget().total_j
            self.detection_energy_j = detection_energy_j
            if policy is not None and hasattr(policy, "decide"):
                self.policy = policy
                self.manager = wrapped_manager
            else:
                # None or a bare ManagerPolicy threshold set: build the
                # classic energy-aware manager and adapt it.
                from repro.policies.library import EnergyAwarePolicy
                self.manager = EnergyAwareManager(detection_energy_j, policy)
                self.policy = EnergyAwarePolicy(self.manager)
        self.step_s = step_s
        self.sleep_power_w = sleep_power_w
        self.duration_s = duration_s
        self.trace = TraceMode.parse(trace)
        if faults is not None and not hasattr(faults, "intervals"):
            raise SimulationError(
                f"faults must be a FaultTimeline (or None), "
                f"got {type(faults).__name__}")
        self.faults = faults

    def run(self, duration_s: float | None = None) -> SimulationResult:
        """Run over ``duration_s`` (default: the constructor's
        ``duration_s``, else the whole timeline).

        The loop walks the timeline's segments with a cursor instead of
        scanning from ``t=0`` on every step, and re-evaluates the
        harvesting chain only on segment entry (the environment is
        piecewise-constant, so the intake cannot change mid-segment).
        Both are pure-speed changes: the sequence of battery, policy
        and carry operations — and therefore every number on the result
        — is identical to stepping ``timeline.at(t)`` naively.
        """
        if duration_s is None:
            duration_s = self.duration_s
        horizon = (self.timeline.total_duration_s
                   if duration_s is None else duration_s)
        if horizon <= 0:
            raise SimulationError("simulation horizon must be positive")
        # Deferred import (see __init__): the policies package builds
        # on the construction layer, which imports this module.
        from repro.policies.base import PowerObservation

        battery = self.battery
        policy = self.policy
        reset = getattr(policy, "reset", None)
        if reset is not None:
            # Stateful policies (forecasts, counters) restart cleanly,
            # so rerunning the same simulation object is deterministic.
            reset()
        decide = policy.decide
        max_rate = policy.max_rate_per_min
        detection_j = self.detection_energy_j
        sleep_power_w = self.sleep_power_w
        step_s = self.step_s
        segments = self.timeline.segments
        boundaries = self.timeline.boundaries_s
        last_idx = len(segments) - 1
        mode = self.trace
        trace_full = mode.kind == "full"
        trace_every = mode.every if mode.kind == "decimated" else 0

        result = SimulationResult(initial_soc=battery.state_of_charge,
                                  duration_s=horizon)
        steps = result.steps
        total_harvest_j = 0.0
        total_consumed_j = 0.0
        total_detections = 0.0
        downtime_s = 0.0
        # Fault bookkeeping mirrors the segment cursor: precompiled
        # intervals, advanced monotonically.  Every fault branch is
        # guarded by ``faults is None`` so a healthy run performs the
        # exact pre-chaos float operations (pinned by the bench's
        # legacy-equivalence gate).
        faults = self.faults
        fault_intervals = faults.intervals if faults is not None else ()
        fault_last = len(fault_intervals) - 1
        fault_idx = 0
        fault_demand_j = 0.0

        seg_idx = 0
        segment = segments[0]
        harvest_w = self.harvester.battery_intake_w(segment.lighting,
                                                    segment.thermal)
        t = 0.0
        step_index = 0
        last_recorded = -1
        carry_detections = 0.0
        while t < horizon - 1e-9:
            dt = min(step_s, horizon - t)
            if seg_idx < last_idx and t >= boundaries[seg_idx]:
                while seg_idx < last_idx and t >= boundaries[seg_idx]:
                    seg_idx += 1
                segment = segments[seg_idx]
                harvest_w = self.harvester.battery_intake_w(segment.lighting,
                                                            segment.thermal)
            if faults is None:
                intake_w = harvest_w
                overhead_w = sleep_power_w
                sensor_ok = True
            else:
                while (fault_idx < fault_last
                       and t >= fault_intervals[fault_idx].end_s):
                    fault_idx += 1
                fault_state = fault_intervals[fault_idx]
                intake_w = harvest_w * fault_state.harvest_scale
                overhead_w = sleep_power_w + fault_state.extra_load_w
                sensor_ok = fault_state.sensor_ok
                fault_demand_j += fault_state.extra_load_w * dt
            stored_j = battery.charge(intake_w, dt)
            total_harvest_j += stored_j

            # The policy observes the *effective* intake: an occluded
            # harvester looks like a dark segment, not a healthy one.
            rate = decide(PowerObservation(
                time_s=t,
                step_s=dt,
                harvest_power_w=intake_w,
                state_of_charge=battery.state_of_charge,
            )).detection_rate_per_min
            if not rate >= 0.0:  # rejects negatives and NaN alike
                raise SimulationError(
                    f"policy {type(policy).__name__} returned an invalid "
                    f"detection rate {rate!r} at t={t:.0f}s")
            if rate > max_rate:
                # max_rate_per_min is a hard contract: the step cap
                # below assumes no decision ever exceeds it, else the
                # detection backlog could grow without bound.
                rate = max_rate
            # No step may execute (or bank) more than one step's worth
            # of detections at the policy ceiling, so a brown-out
            # backlog can never replay as a burst above the rate cap
            # (the floor of 1 keeps sub-detection-per-step rates
            # accumulating across steps).
            step_cap = max(1.0, max_rate * dt / 60.0)
            if sensor_ok:
                carry_detections += rate * dt / 60.0
                detections_now = float(int(min(carry_detections, step_cap)))
                carry_detections -= detections_now
            else:
                # Sensor dropout: the detection pipeline is dead — no
                # samples arrive, so nothing executes and nothing
                # accumulates on the carry either (a dropout is lost
                # data, not a backlog).
                detections_now = 0.0

            demand_j = detections_now * detection_j + overhead_w * dt
            delivered_j = battery.discharge(demand_j / dt, dt)
            if delivered_j + 1e-12 < demand_j:
                # Battery could not cover the step: only whole
                # detections execute; the unexecuted remainder goes
                # back on the carry (bounded — the watch does not owe
                # detections from a long outage).
                covered = max(0.0, delivered_j - overhead_w * dt)
                executed = (float(int(covered / detection_j))
                            if detection_j > 0 else 0.0)
                carry_detections = min(
                    carry_detections + detections_now - executed, step_cap)
                detections_now = executed
                downtime_s += dt
            total_consumed_j += delivered_j
            total_detections += detections_now

            if trace_full or (trace_every and step_index % trace_every == 0):
                steps.append(SimulationStep(
                    time_s=t,
                    harvest_w=intake_w,
                    detection_rate_per_min=rate,
                    detections=detections_now,
                    state_of_charge=battery.state_of_charge,
                ))
                last_recorded = step_index
            step_start = t
            last_rate = rate
            last_detections = detections_now
            t += dt
            step_index += 1

        # A decimated trace always ends on the final step, so readers
        # see the closing state of charge without consulting the totals.
        if trace_every and step_index and last_recorded != step_index - 1:
            steps.append(SimulationStep(
                time_s=step_start,
                harvest_w=intake_w,
                detection_rate_per_min=last_rate,
                detections=last_detections,
                state_of_charge=battery.state_of_charge,
            ))

        result.total_harvest_j = total_harvest_j
        result.total_consumed_j = total_consumed_j
        result.total_detections = total_detections
        result.downtime_s = downtime_s
        result.fault_demand_j = fault_demand_j
        result.final_soc = battery.state_of_charge
        return result
