"""Time-stepped day-in-the-life simulation of the whole watch.

Steps the system over an environment timeline: each step harvests into
the battery through the calibrated dual-source chain, runs the
energy-aware manager to choose the detection rate, charges the battery
for every detection executed, and records a trace (state of charge,
intake, rate, detections) for the ablation benches and examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.application import StressDetectionApp
from repro.core.manager import EnergyAwareManager, ManagerPolicy
from repro.errors import SimulationError
from repro.harvest.calibrated import calibrated_dual_harvester
from repro.harvest.dual import DualSourceHarvester
from repro.harvest.environment import EnvironmentTimeline
from repro.power.battery import LiPoBattery
from repro.power.loads import SYSTEM_SLEEP_W

__all__ = ["SimulationStep", "SimulationResult", "DaySimulation"]


@dataclass(frozen=True)
class SimulationStep:
    """Trace record of one simulation step.

    Attributes:
        time_s: step start time.
        harvest_w: net harvest intake during the step.
        detection_rate_per_min: manager-chosen rate during the step.
        detections: detections executed in the step.
        state_of_charge: battery SoC at the end of the step.
    """

    time_s: float
    harvest_w: float
    detection_rate_per_min: float
    detections: float
    state_of_charge: float


@dataclass
class SimulationResult:
    """Full outcome of a run.

    Attributes:
        steps: per-step trace.
        total_detections: detections executed over the horizon.
        initial_soc: battery state of charge at the start.
        final_soc: battery state of charge at the end.
        total_harvest_j: energy harvested over the horizon.
        total_consumed_j: energy drawn by detections and sleep.
    """

    steps: list[SimulationStep] = field(default_factory=list)
    total_detections: float = 0.0
    initial_soc: float = 0.0
    final_soc: float = 0.0
    total_harvest_j: float = 0.0
    total_consumed_j: float = 0.0

    @property
    def energy_neutral(self) -> bool:
        """True when the battery ended no lower than it started."""
        return self.final_soc >= self.initial_soc - 1e-9


class DaySimulation:
    """Simulates the watch over an environment timeline.

    Args:
        timeline: the environment over the horizon.
        app: detection application (defaults to Network A on the
            8-core cluster).
        harvester: harvesting chain (defaults to calibrated).
        battery: storage (defaults to the 120 mAh cell at 50 %).
        policy: manager policy (defaults to the paper-shaped one).
        step_s: simulation step size.
        sleep_power_w: baseline watch draw on top of detections.  The
            Table I/II intake numbers already include the sleeping
            watch's quiescent current, so the default only charges the
            *additional* always-on overhead beyond deep sleep; pass a
            larger value to model heavier standby activity.
    """

    def __init__(self, timeline: EnvironmentTimeline,
                 app: StressDetectionApp | None = None,
                 harvester: DualSourceHarvester | None = None,
                 battery: LiPoBattery | None = None,
                 policy: ManagerPolicy | None = None,
                 step_s: float = 60.0,
                 sleep_power_w: float = SYSTEM_SLEEP_W) -> None:
        if step_s <= 0:
            raise SimulationError("step size must be positive")
        if sleep_power_w < 0:
            raise SimulationError("sleep power cannot be negative")
        self.timeline = timeline
        self.app = app if app is not None else StressDetectionApp()
        self.harvester = (harvester if harvester is not None
                          else calibrated_dual_harvester())
        self.battery = battery if battery is not None else LiPoBattery()
        self.manager = EnergyAwareManager(
            self.app.energy_budget().total_j,
            policy,
        )
        self.step_s = step_s
        self.sleep_power_w = sleep_power_w

    def run(self, duration_s: float | None = None) -> SimulationResult:
        """Run the simulation over ``duration_s`` (default: whole timeline)."""
        horizon = (self.timeline.total_duration_s
                   if duration_s is None else duration_s)
        if horizon <= 0:
            raise SimulationError("simulation horizon must be positive")

        result = SimulationResult(initial_soc=self.battery.state_of_charge)
        detection_j = self.app.energy_budget().total_j
        t = 0.0
        carry_detections = 0.0
        while t < horizon - 1e-9:
            dt = min(self.step_s, horizon - t)
            segment = self.timeline.at(t)
            harvest_w = self.harvester.battery_intake_w(segment.lighting,
                                                        segment.thermal)
            stored_j = self.battery.charge(harvest_w, dt)
            result.total_harvest_j += stored_j

            rate = self.manager.detection_rate_per_min(
                harvest_w, self.battery.state_of_charge)
            carry_detections += rate * dt / 60.0
            detections_now = float(int(carry_detections))
            carry_detections -= detections_now

            demand_j = detections_now * detection_j + self.sleep_power_w * dt
            delivered_j = self.battery.discharge(demand_j / dt, dt)
            if delivered_j + 1e-12 < demand_j:
                # Battery could not cover the step: scale back the
                # detections that actually completed.
                covered = max(0.0, delivered_j - self.sleep_power_w * dt)
                detections_now = (covered / detection_j
                                  if detection_j > 0 else 0.0)
            result.total_consumed_j += delivered_j
            result.total_detections += detections_now

            result.steps.append(SimulationStep(
                time_s=t,
                harvest_w=harvest_w,
                detection_rate_per_min=rate,
                detections=detections_now,
                state_of_charge=self.battery.state_of_charge,
            ))
            t += dt

        result.final_soc = self.battery.state_of_charge
        return result
