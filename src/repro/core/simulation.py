"""Time-stepped day-in-the-life simulation of the whole watch.

Steps the system over an environment timeline: each step harvests into
the battery through the harvesting chain, runs the energy-aware manager
to choose the detection rate, charges the battery for every detection
executed, and records a trace (state of charge, intake, rate,
detections) for the ablation benches and examples.

:class:`DaySimulation` is a thin engine over injected components — it
steps whatever harvester/battery/app/policy it is handed and contains
no construction logic of its own.  Defaults for omitted components are
resolved through the component registries by
:mod:`repro.scenarios.builder`, which is also the home of the
spec-driven construction path (``build_simulation(spec)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.core.manager import EnergyAwareManager, ManagerPolicy
from repro.errors import SimulationError
from repro.harvest.environment import (
    EnvironmentTimeline,
    LightingCondition,
    ThermalCondition,
)
from repro.power.loads import SYSTEM_SLEEP_W

__all__ = ["HarvestChain", "SimulationStep", "SimulationResult", "DaySimulation"]


class HarvestChain(Protocol):
    """Anything that answers "how much power reaches the battery"."""

    def battery_intake_w(self, lighting: LightingCondition,
                         thermal: ThermalCondition) -> float: ...


@dataclass(frozen=True)
class SimulationStep:
    """Trace record of one simulation step.

    Attributes:
        time_s: step start time.
        harvest_w: net harvest intake during the step.
        detection_rate_per_min: manager-chosen rate during the step.
        detections: detections executed in the step.
        state_of_charge: battery SoC at the end of the step.
    """

    time_s: float
    harvest_w: float
    detection_rate_per_min: float
    detections: float
    state_of_charge: float


@dataclass
class SimulationResult:
    """Full outcome of a run.

    Attributes:
        steps: per-step trace.
        total_detections: detections executed over the horizon.
        initial_soc: battery state of charge at the start.
        final_soc: battery state of charge at the end.
        total_harvest_j: energy harvested over the horizon.
        total_consumed_j: energy drawn by detections and sleep.
        duration_s: simulated horizon.
    """

    steps: list[SimulationStep] = field(default_factory=list)
    total_detections: float = 0.0
    initial_soc: float = 0.0
    final_soc: float = 0.0
    total_harvest_j: float = 0.0
    total_consumed_j: float = 0.0
    duration_s: float = 0.0

    @property
    def energy_neutral(self) -> bool:
        """True when the battery ended no lower than it started."""
        return self.final_soc >= self.initial_soc - 1e-9


class DaySimulation:
    """Simulates the watch over an environment timeline.

    Args:
        timeline: the environment over the horizon.
        app: detection application (defaults to Network A on the
            8-core cluster, built from the component registries).
        harvester: harvesting chain (defaults to the calibrated dual
            chain from the registries).
        battery: storage (defaults to the 120 mAh cell at 50 %).
        policy: manager policy (defaults to the paper-shaped one).
        step_s: simulation step size.
        sleep_power_w: baseline watch draw on top of detections.  The
            Table I/II intake numbers already include the sleeping
            watch's quiescent current, so the default only charges the
            *additional* always-on overhead beyond deep sleep; pass a
            larger value to model heavier standby activity.
        manager: the rate-choosing manager; built from ``app`` and
            ``policy`` when omitted.  Mutually exclusive with
            ``policy`` (an injected manager brings its own), and when
            given with no ``app``, no default app is built —
            ``self.app`` stays ``None``.
        duration_s: default horizon for :meth:`run` (``None`` runs the
            whole timeline); a ``run``-time argument still wins.
    """

    def __init__(self, timeline: EnvironmentTimeline,
                 app=None,
                 harvester: HarvestChain | None = None,
                 battery=None,
                 policy: ManagerPolicy | None = None,
                 step_s: float = 60.0,
                 sleep_power_w: float = SYSTEM_SLEEP_W,
                 manager: EnergyAwareManager | None = None,
                 duration_s: float | None = None) -> None:
        if step_s <= 0:
            raise SimulationError("step size must be positive")
        if sleep_power_w < 0:
            raise SimulationError("sleep power cannot be negative")
        if duration_s is not None and duration_s <= 0:
            raise SimulationError("default duration must be positive")
        if manager is not None and policy is not None:
            raise SimulationError(
                "pass either manager or policy, not both: an injected "
                "manager brings its own policy")
        if (harvester is None or battery is None
                or (app is None and manager is None)):
            # Deferred so the engine has no import-time dependency on
            # the construction layer (which imports this module).  An
            # injected manager needs no app, so none is built for it.
            from repro.scenarios import builder
            if app is None and manager is None:
                app = builder.build_app()
            if harvester is None:
                harvester = builder.build_harvester()
            if battery is None:
                battery = builder.build_battery()
        self.timeline = timeline
        self.app = app
        self.harvester = harvester
        self.battery = battery
        self.manager = manager if manager is not None else EnergyAwareManager(
            app.energy_budget().total_j,
            policy,
        )
        self.step_s = step_s
        self.sleep_power_w = sleep_power_w
        self.duration_s = duration_s

    def run(self, duration_s: float | None = None) -> SimulationResult:
        """Run over ``duration_s`` (default: the constructor's
        ``duration_s``, else the whole timeline)."""
        if duration_s is None:
            duration_s = self.duration_s
        horizon = (self.timeline.total_duration_s
                   if duration_s is None else duration_s)
        if horizon <= 0:
            raise SimulationError("simulation horizon must be positive")

        result = SimulationResult(initial_soc=self.battery.state_of_charge,
                                  duration_s=horizon)
        detection_j = self.manager.detection_energy_j
        t = 0.0
        carry_detections = 0.0
        while t < horizon - 1e-9:
            dt = min(self.step_s, horizon - t)
            segment = self.timeline.at(t)
            harvest_w = self.harvester.battery_intake_w(segment.lighting,
                                                        segment.thermal)
            stored_j = self.battery.charge(harvest_w, dt)
            result.total_harvest_j += stored_j

            rate = self.manager.detection_rate_per_min(
                harvest_w, self.battery.state_of_charge)
            # No step may execute (or bank) more than one step's worth
            # of detections at the policy ceiling, so a brown-out
            # backlog can never replay as a burst above the rate cap
            # (the floor of 1 keeps sub-detection-per-step rates
            # accumulating across steps).
            step_cap = max(
                1.0, self.manager.policy.max_rate_per_min * dt / 60.0)
            carry_detections += rate * dt / 60.0
            detections_now = float(int(min(carry_detections, step_cap)))
            carry_detections -= detections_now

            demand_j = detections_now * detection_j + self.sleep_power_w * dt
            delivered_j = self.battery.discharge(demand_j / dt, dt)
            if delivered_j + 1e-12 < demand_j:
                # Battery could not cover the step: only whole
                # detections execute; the unexecuted remainder goes
                # back on the carry (bounded — the watch does not owe
                # detections from a long outage).
                covered = max(0.0, delivered_j - self.sleep_power_w * dt)
                executed = (float(int(covered / detection_j))
                            if detection_j > 0 else 0.0)
                carry_detections = min(
                    carry_detections + detections_now - executed, step_cap)
                detections_now = executed
            result.total_consumed_j += delivered_j
            result.total_detections += detections_now

            result.steps.append(SimulationStep(
                time_s=t,
                harvest_w=harvest_w,
                detection_rate_per_min=rate,
                detections=detections_now,
                state_of_charge=self.battery.state_of_charge,
            ))
            t += dt

        result.final_soc = self.battery.state_of_charge
        return result
