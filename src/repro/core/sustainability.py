"""Self-sustainability analysis (paper, Section IV-A).

The paper's scenario: the watch spends 6 hours in "challenging indoor
conditions" (700 lx on the panel) and harvests from the TEG around the
clock in its worst measured condition (24 uW).  It books the resulting
daily intake as 21.44 J; the exact products of its own Table I/II
numbers give 21.51 J (0.9 mW * 6 h = 19.44 J plus 24 uW * 24 h =
2.07 J).  Dividing by the energy per detection yields the
self-sustained detection rate — "up to 24 detections per minute".

:func:`analyze_self_sustainability` computes the whole chain from the
calibrated models for any scenario, and reports both the exact value
and the paper's rounded bookkeeping for the reproduction bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.application import StressDetectionApp
from repro.errors import ConfigurationError
from repro.harvest.calibrated import calibrated_dual_harvester
from repro.harvest.dual import DualSourceHarvester
from repro.harvest.environment import (
    DARKNESS,
    INDOOR_OFFICE_700LX,
    LightingCondition,
    TEG_ROOM_22C_NO_WIND,
    ThermalCondition,
)
from repro.units import SECONDS_PER_DAY, SECONDS_PER_HOUR, SECONDS_PER_MINUTE

__all__ = [
    "SustainabilityScenario",
    "SustainabilityReport",
    "PAPER_INDOOR_WORST_CASE",
    "PAPER_DAILY_INTAKE_J",
    "PAPER_DETECTIONS_PER_MINUTE",
    "analyze_self_sustainability",
]

# Section IV-A's own numbers.
PAPER_DAILY_INTAKE_J = 21.44
PAPER_DETECTIONS_PER_MINUTE = 24


@dataclass(frozen=True)
class SustainabilityScenario:
    """A daily harvesting scenario.

    Attributes:
        name: label used in reports.
        lit_hours_per_day: hours per day the panel sees ``lighting``.
        lighting: illumination during the lit hours (darkness outside
            them).
        thermal: thermal condition assumed around the clock (the watch
            is worn continuously).
    """

    name: str
    lit_hours_per_day: float
    lighting: LightingCondition
    thermal: ThermalCondition

    def __post_init__(self) -> None:
        if not 0.0 <= self.lit_hours_per_day <= 24.0:
            raise ConfigurationError("lit hours must lie in [0, 24]")


# The paper's pessimistic scenario: 6 h indoors at 700 lx, TEG at its
# worst measured point (22 C room) all day.
PAPER_INDOOR_WORST_CASE = SustainabilityScenario(
    name="paper indoor worst case",
    lit_hours_per_day=6.0,
    lighting=INDOOR_OFFICE_700LX,
    thermal=TEG_ROOM_22C_NO_WIND,
)


@dataclass(frozen=True)
class SustainabilityReport:
    """Outcome of the self-sustainability analysis.

    Attributes:
        scenario: the analysed scenario.
        solar_energy_j: daily solar intake.
        teg_energy_j: daily TEG intake.
        detection_energy_j: energy of one detection (exact model).
        detections_per_day: self-sustained daily detection count.
    """

    scenario: SustainabilityScenario
    solar_energy_j: float
    teg_energy_j: float
    detection_energy_j: float
    detections_per_day: float

    @property
    def daily_intake_j(self) -> float:
        """Total daily harvested energy."""
        return self.solar_energy_j + self.teg_energy_j

    @property
    def detections_per_minute(self) -> float:
        """Self-sustained detection rate per minute (fractional)."""
        return self.detections_per_day / (SECONDS_PER_DAY / SECONDS_PER_MINUTE)

    @property
    def detections_per_minute_floor(self) -> int:
        """The "up to N detections per minute" figure the paper quotes."""
        return int(self.detections_per_minute)

    @property
    def is_self_sustaining(self) -> bool:
        """True when at least one detection per day is covered."""
        return self.detections_per_day >= 1.0


def analyze_self_sustainability(
        scenario: SustainabilityScenario = PAPER_INDOOR_WORST_CASE,
        app: StressDetectionApp | None = None,
        harvester: DualSourceHarvester | None = None) -> SustainabilityReport:
    """Daily harvest vs detection energy for a scenario.

    Args:
        scenario: the harvesting scenario (defaults to the paper's).
        app: the detection application (defaults to Network A on the
            8-core cluster — the paper's best configuration).
        harvester: harvesting chain (defaults to the calibrated one).

    Returns:
        The full report, including the implied sustained detection rate.
    """
    if harvester is None:
        harvester = calibrated_dual_harvester()
    if app is None:
        app = StressDetectionApp()

    lit_s = scenario.lit_hours_per_day * SECONDS_PER_HOUR
    dark_s = SECONDS_PER_DAY - lit_s
    solar_j = (harvester.solar.battery_intake_w(scenario.lighting) * lit_s
               + harvester.solar.battery_intake_w(DARKNESS) * dark_s)
    teg_j = harvester.teg.battery_intake_w(scenario.thermal) * SECONDS_PER_DAY

    detection_j = app.energy_budget().total_j
    return SustainabilityReport(
        scenario=scenario,
        solar_energy_j=solar_j,
        teg_energy_j=teg_j,
        detection_energy_j=detection_j,
        detections_per_day=(solar_j + teg_j) / detection_j,
    )
