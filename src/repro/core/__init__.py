"""The InfiniWolf system model (the paper's primary contribution).

Ties every substrate together:

* :mod:`repro.core.device` — the board as a component/bus graph
  (Fig. 1) wrapping the load catalog, harvesters and battery.
* :mod:`repro.core.application` — the stress-detection duty cycle:
  3 s multi-sensor acquisition, 50 us feature extraction on the
  cluster, one Network-A classification; energy and latency budgets
  per detection on any processor configuration.
* :mod:`repro.core.sustainability` — the Section IV-A analysis: daily
  harvest under a scenario vs energy per detection -> the
  self-sustained detection rate.
* :mod:`repro.core.manager` — the energy-aware power-manager policy
  (periodic, opportunistic duty cycling against battery state).
* :mod:`repro.core.simulation` — a time-stepped day-in-the-life
  simulation of harvest, battery and workload.
"""

from repro.core.device import InfiniWolfDevice, build_device_graph, BUS_CONNECTIONS
from repro.core.application import (
    DetectionPhase,
    DetectionEnergyBudget,
    StressDetectionApp,
    PAPER_ACQUISITION_WINDOW_S,
    PAPER_FEATURE_EXTRACTION_S,
)
from repro.core.sustainability import (
    SustainabilityScenario,
    SustainabilityReport,
    PAPER_INDOOR_WORST_CASE,
    analyze_self_sustainability,
)
from repro.core.manager import EnergyAwareManager, ManagerPolicy
from repro.core.modes import (
    OperatingMode,
    apply_mode,
    battery_lifetime_s,
    mode_power_w,
)
from repro.core.simulation import (
    DaySimulation,
    SimulationResult,
    SimulationStep,
    TraceMode,
)

__all__ = [
    "InfiniWolfDevice",
    "build_device_graph",
    "BUS_CONNECTIONS",
    "DetectionPhase",
    "DetectionEnergyBudget",
    "StressDetectionApp",
    "PAPER_ACQUISITION_WINDOW_S",
    "PAPER_FEATURE_EXTRACTION_S",
    "SustainabilityScenario",
    "SustainabilityReport",
    "PAPER_INDOOR_WORST_CASE",
    "analyze_self_sustainability",
    "EnergyAwareManager",
    "ManagerPolicy",
    "OperatingMode",
    "apply_mode",
    "battery_lifetime_s",
    "mode_power_w",
    "DaySimulation",
    "SimulationResult",
    "SimulationStep",
    "TraceMode",
]
