"""Fault windows compiled into a piecewise-constant fault timeline.

The chaos layer describes faults as independent, possibly-overlapping
windows (:class:`repro.scenarios.spec.FaultSpec`): sensor dropout,
harvester derating and parasitic load spikes.  The engine wants the
opposite shape — "what is broken *right now*" as it walks forward in
time.  :class:`FaultTimeline` does the compile once, up front: it
merges every window's breakpoints into a sorted sequence of
:class:`FaultInterval` states covering ``[0, ∞)``, so the stepping
loop advances a cursor exactly like it does over environment segments
and never scans the window list per step.

Combination rules when windows overlap:

* harvester derates **multiply** (two 50 % occlusions leave 25 %);
* load spikes **add** (two 10 mW spikes draw 20 mW extra);
* sensor dropout is a latch — the sensor is down while *any* dropout
  window covers ``t``.

This module is duck-typed over the window objects (anything with
``kind`` / ``start_s`` / ``duration_s`` / ``magnitude``) so the engine
keeps no import-time dependency on the spec layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SimulationError

__all__ = ["FaultInterval", "FaultTimeline", "build_fault_timeline"]


@dataclass(frozen=True)
class FaultInterval:
    """The combined fault state over one half-open span ``[start_s, end_s)``.

    Attributes:
        start_s: span start.
        end_s: span end (``inf`` on the final interval).
        harvest_scale: factor on harvest intake (product of active
            derates; ``1.0`` when none).
        extra_load_w: parasitic draw on top of sleep power (sum of
            active spikes; ``0.0`` when none).
        sensor_ok: ``False`` while any dropout window is active.
    """

    start_s: float
    end_s: float
    harvest_scale: float
    extra_load_w: float
    sensor_ok: bool

    @property
    def healthy(self) -> bool:
        """True when nothing is broken in this span."""
        return (self.sensor_ok and self.extra_load_w == 0.0
                and self.harvest_scale == 1.0)


class FaultTimeline:
    """Sorted, gap-free fault intervals covering the whole run.

    Args:
        windows: fault windows (``FaultSpec``-shaped objects).  The
            sequence may be empty, but callers normally use
            :func:`build_fault_timeline`, which maps "no windows" to
            ``None`` so the engine's fault-free fast path stays free.
    """

    def __init__(self, windows: Iterable) -> None:
        self.windows = tuple(windows)
        for window in self.windows:
            if window.kind not in ("sensor_dropout", "harvester_derate",
                                   "load_spike"):
                raise SimulationError(
                    f"unknown fault kind {window.kind!r}")
            if window.start_s < 0 or window.duration_s <= 0:
                raise SimulationError(
                    f"fault window must start at t>=0 with positive "
                    f"duration, got start={window.start_s!r} "
                    f"duration={window.duration_s!r}")
        breakpoints = {0.0}
        for window in self.windows:
            breakpoints.add(float(window.start_s))
            breakpoints.add(float(window.start_s + window.duration_s))
        edges = sorted(breakpoints)
        intervals: list[FaultInterval] = []
        for i, start in enumerate(edges):
            end = edges[i + 1] if i + 1 < len(edges) else math.inf
            scale = 1.0
            extra = 0.0
            sensor_ok = True
            for window in self.windows:
                if not (window.start_s <= start
                        < window.start_s + window.duration_s):
                    continue
                if window.kind == "harvester_derate":
                    scale *= float(window.magnitude)
                elif window.kind == "load_spike":
                    extra += float(window.magnitude)
                else:
                    sensor_ok = False
            intervals.append(FaultInterval(
                start_s=start, end_s=end, harvest_scale=scale,
                extra_load_w=extra, sensor_ok=sensor_ok))
        self.intervals: Sequence[FaultInterval] = tuple(intervals)

    @property
    def end_times(self) -> tuple[float, ...]:
        """End boundaries of every interval (``inf`` closes the last)."""
        return tuple(interval.end_s for interval in self.intervals)

    def indices_at(self, times_s) -> list[int]:
        """Interval indices active at a non-decreasing sequence of times.

        Walked with the same monotone cursor the engine keeps (advance
        while the time has reached the current interval's ``end_s``),
        so the returned indices are exactly the fault states the
        stepping loop applies at those times.  The vectorized fleet
        engine uses this to precompute per-step fault masks.
        """
        indices: list[int] = []
        idx = 0
        last = len(self.intervals) - 1
        previous = None
        for time_s in times_s:
            if time_s < 0:
                raise SimulationError("fault lookup time cannot be negative")
            if previous is not None and time_s < previous:
                raise SimulationError(
                    "indices_at needs non-decreasing times (the cursor "
                    "only moves forward); use at() for random access")
            previous = time_s
            while idx < last and time_s >= self.intervals[idx].end_s:
                idx += 1
            indices.append(idx)
        return indices

    def at(self, time_s: float) -> FaultInterval:
        """The fault state covering ``time_s`` (linear scan; the engine
        keeps its own cursor instead of calling this per step)."""
        if time_s < 0:
            raise SimulationError("fault lookup time cannot be negative")
        for interval in self.intervals:
            if interval.start_s <= time_s < interval.end_s:
                return interval
        raise SimulationError(  # pragma: no cover - intervals cover [0, inf)
            f"no fault interval covers t={time_s!r}")

    def __len__(self) -> int:
        return len(self.intervals)


def build_fault_timeline(windows: Iterable) -> FaultTimeline | None:
    """A :class:`FaultTimeline`, or ``None`` for an empty window set.

    The ``None`` contract matters: the engine's stepping loop only
    pays for fault bookkeeping when a timeline is present, keeping the
    fault-free path bitwise identical to the pre-chaos engine.
    """
    windows = tuple(windows)
    if not windows:
        return None
    return FaultTimeline(windows)
