"""The InfiniWolf board model (Fig. 1 block diagram).

The device is a graph: vertices are the Fig. 1 blocks (processors,
sensors, power parts), edges are the buses and power paths that connect
them (SPI, I2C, I2S, harvest inputs, battery rails).  The graph is the
reproducible artefact of Fig. 1 — the architecture bench checks it —
and :class:`InfiniWolfDevice` wraps it together with the live models:
the load catalog, the dual-source harvester, the battery and its fuel
gauge.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import ConfigurationError
from repro.harvest.calibrated import calibrated_dual_harvester
from repro.harvest.dual import DualSourceHarvester
from repro.power.battery import LiPoBattery
from repro.power.fuelgauge import BQ27441FuelGauge
from repro.power.loads import ComponentCatalog, default_catalog
from repro.power.regulators import LowDropoutRegulator

__all__ = ["BUS_CONNECTIONS", "build_device_graph", "InfiniWolfDevice"]

# (source, destination, bus/link label) — the edges of Fig. 1.
BUS_CONNECTIONS = (
    # Compute fabric.
    ("nrf52832", "mrwolf", "spi"),
    # Sensor buses into Mr. Wolf (local end-to-end processing).
    ("max30001_ecg", "mrwolf", "spi"),
    ("gsr_afe", "mrwolf", "adc"),
    ("icm20948_imu", "nrf52832", "i2c"),
    ("bmp280_pressure", "nrf52832", "i2c"),
    ("ics43434_mic", "mrwolf", "i2s"),
    # Power tree.
    ("solar_panels", "bq25570", "harvest_in"),
    ("teg_module", "bq25505", "harvest_in"),
    ("bq25570", "battery", "charge"),
    ("bq25505", "battery", "charge"),
    ("battery", "ldo_1v8", "rail"),
    ("battery", "bq27441_gauge", "sense"),
    ("bq27441_gauge", "nrf52832", "i2c"),
    ("ldo_1v8", "nrf52832", "rail"),
    ("ldo_1v8", "mrwolf", "rail"),
    ("ldo_1v8", "max30001_ecg", "rail"),
    ("ldo_1v8", "gsr_afe", "rail"),
    ("ldo_1v8", "icm20948_imu", "rail"),
    ("ldo_1v8", "bmp280_pressure", "rail"),
    ("ldo_1v8", "ics43434_mic", "rail"),
)

_NODE_KINDS = {
    "nrf52832": "processor",
    "mrwolf": "processor",
    "max30001_ecg": "sensor",
    "gsr_afe": "sensor",
    "icm20948_imu": "sensor",
    "bmp280_pressure": "sensor",
    "ics43434_mic": "sensor",
    "solar_panels": "transducer",
    "teg_module": "transducer",
    "bq25570": "power",
    "bq25505": "power",
    "battery": "power",
    "ldo_1v8": "power",
    "bq27441_gauge": "power",
}


def build_device_graph() -> nx.DiGraph:
    """Construct the Fig. 1 block diagram as a directed graph.

    Nodes carry a ``kind`` attribute (processor / sensor / transducer /
    power); edges carry a ``bus`` attribute.
    """
    graph = nx.DiGraph()
    for node, kind in _NODE_KINDS.items():
        graph.add_node(node, kind=kind)
    for src, dst, bus in BUS_CONNECTIONS:
        if src not in _NODE_KINDS or dst not in _NODE_KINDS:
            raise ConfigurationError(f"unknown block in connection {src}->{dst}")
        graph.add_edge(src, dst, bus=bus)
    return graph


class InfiniWolfDevice:
    """The full watch: structure graph plus live component models.

    Args:
        battery: the storage cell (defaults to the 120 mAh LiPo).
        harvester: the dual-source harvesting chain (defaults to the
            Table I/II-calibrated models).
        catalog: the per-component load models.
    """

    def __init__(self, battery: LiPoBattery | None = None,
                 harvester: DualSourceHarvester | None = None,
                 catalog: ComponentCatalog | None = None) -> None:
        self.graph = build_device_graph()
        self.battery = battery if battery is not None else LiPoBattery()
        self.harvester = (harvester if harvester is not None
                          else calibrated_dual_harvester())
        self.catalog = catalog if catalog is not None else default_catalog()
        self.fuel_gauge = BQ27441FuelGauge(self.battery)
        self.ldo = LowDropoutRegulator()

    # -- structural queries -----------------------------------------------------

    def components_of_kind(self, kind: str) -> list[str]:
        """Names of all blocks with a given ``kind`` attribute."""
        return sorted(n for n, d in self.graph.nodes(data=True) if d["kind"] == kind)

    def buses_between(self, src: str, dst: str) -> list[str]:
        """Bus labels on the direct edges from ``src`` to ``dst``."""
        if not self.graph.has_edge(src, dst):
            return []
        return [self.graph.edges[src, dst]["bus"]]

    def power_path_exists(self, transducer: str) -> bool:
        """Whether a transducer has a charge path to the battery."""
        return nx.has_path(self.graph, transducer, "battery")

    # -- live state ---------------------------------------------------------------

    def sleep_all(self) -> None:
        """Put every component into its lowest available state."""
        for component in self.catalog:
            for preferred in ("off", "sleep", "standby"):
                if preferred in component.states:
                    component.set_state(preferred)
                    break

    def active_load_w(self) -> float:
        """Current total component draw."""
        return self.catalog.total_power_w()

    def describe(self) -> str:
        """A short multi-line architecture summary (used by examples)."""
        lines = ["InfiniWolf block diagram:"]
        for kind in ("processor", "sensor", "transducer", "power"):
            names = ", ".join(self.components_of_kind(kind))
            lines.append(f"  {kind:10s}: {names}")
        lines.append(f"  buses     : {len(BUS_CONNECTIONS)} connections")
        return "\n".join(lines)
