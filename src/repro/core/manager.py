"""Energy-aware power-manager policy.

The paper motivates "power management [that] can opportunistically take
advantage of periods of overabundant energy and survive intervals when
the system is starving for energy".  :class:`EnergyAwareManager`
implements that policy on top of the fuel gauge: it sets the detection
rate from the recent harvest rate and the battery state of charge, with
hysteresis bands so the rate does not chatter.

The policy is deliberately simple enough to run on the nRF52832 (a few
integer comparisons on gauge readings) — that is the class of policy
the real smart power unit implements.

Since the policy redesign this manager is one strategy among several:
the simulation engine steps anything satisfying the
:class:`repro.policies.base.Policy` protocol, and this class rides
behind the ``energy_aware`` adapter
(:class:`repro.policies.library.EnergyAwarePolicy`) — the default, and
pinned bitwise to its pre-protocol behaviour by the throughput bench.
Alternative built-ins (``static_duty_cycle``, ``ewma_forecast``,
``oracle_lookahead``) live in :mod:`repro.policies.library`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["ManagerPolicy", "EnergyAwareManager"]


@dataclass(frozen=True)
class ManagerPolicy:
    """Tunable thresholds of the energy-aware policy.

    Attributes:
        min_rate_per_min: floor detection rate kept even when starving
            (the watch must stay functional).
        max_rate_per_min: ceiling rate in energy abundance; the paper's
            self-sustained figure is 24/min, and running faster than
            the harvest sustains only drains the buffer.
        low_soc: below this state of charge the manager drops to the
            floor rate.
        high_soc: above this state of charge surplus harvest is spent
            at the ceiling rate.
        neutrality_margin: fraction of the harvest rate held back as
            safety margin when computing the energy-neutral rate.
    """

    min_rate_per_min: float = 1.0
    max_rate_per_min: float = 24.0
    low_soc: float = 0.15
    high_soc: float = 0.85
    neutrality_margin: float = 0.05

    def __post_init__(self) -> None:
        if self.min_rate_per_min < 0 or self.max_rate_per_min <= 0:
            raise ConfigurationError("rates must be non-negative / positive")
        if self.min_rate_per_min > self.max_rate_per_min:
            raise ConfigurationError("min rate cannot exceed max rate")
        if not 0.0 <= self.low_soc < self.high_soc <= 1.0:
            raise ConfigurationError("need 0 <= low_soc < high_soc <= 1")
        if not 0.0 <= self.neutrality_margin < 1.0:
            raise ConfigurationError("neutrality_margin must lie in [0, 1)")


class EnergyAwareManager:
    """Chooses the detection rate from harvest rate and battery state.

    Args:
        detection_energy_j: energy of one detection (from
            :meth:`repro.core.application.StressDetectionApp.energy_budget`).
        policy: threshold configuration.
    """

    def __init__(self, detection_energy_j: float,
                 policy: ManagerPolicy | None = None) -> None:
        if detection_energy_j <= 0:
            raise ConfigurationError("detection energy must be positive")
        self.detection_energy_j = detection_energy_j
        self.policy = policy if policy is not None else ManagerPolicy()

    def energy_neutral_rate_per_min(self, harvest_power_w: float) -> float:
        """Detection rate that exactly spends the harvest power.

        Applies the policy's safety margin; unclamped (the caller's
        bands are applied by :meth:`detection_rate_per_min`).
        """
        if harvest_power_w <= 0:
            return 0.0
        usable = harvest_power_w * (1.0 - self.policy.neutrality_margin)
        return usable * 60.0 / self.detection_energy_j

    def detection_rate_per_min(self, harvest_power_w: float,
                               state_of_charge: float) -> float:
        """The policy's chosen rate for the current conditions.

        Three regimes:

        * **starving** (SoC below ``low_soc``): floor rate, regardless
          of instantaneous harvest;
        * **abundant** (SoC above ``high_soc``): ceiling rate — the
          buffer is full, spend the surplus on detections;
        * **neutral band**: the energy-neutral rate, clamped to the
          policy's floor and ceiling.
        """
        if not 0.0 <= state_of_charge <= 1.0:
            raise ConfigurationError("state of charge must lie in [0, 1]")
        p = self.policy
        if state_of_charge < p.low_soc:
            return p.min_rate_per_min
        if state_of_charge > p.high_soc:
            return p.max_rate_per_min
        neutral = self.energy_neutral_rate_per_min(harvest_power_w)
        return min(p.max_rate_per_min, max(p.min_rate_per_min, neutral))

    def detection_period_s(self, harvest_power_w: float,
                           state_of_charge: float) -> float:
        """Seconds between detection starts under the chosen rate."""
        rate = self.detection_rate_per_min(harvest_power_w, state_of_charge)
        if rate <= 0:
            return float("inf")
        return 60.0 / rate
