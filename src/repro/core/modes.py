"""Operating modes of the watch (paper, Section II).

The nRF52832 "performs power management [for] various modes of
operation (sleep, raw data streaming, data acquisition, and
processing)".  Each mode is a named assignment of component states
plus, for the streaming mode, a BLE payload rate.  The mode table
answers the system questions the paper's architecture section raises:
what does each mode draw, and for how long can the battery hold it
without harvesting.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import ConfigurationError
from repro.power.battery import LiPoBattery
from repro.power.loads import BleRadioModel, ComponentCatalog, default_catalog

__all__ = ["OperatingMode", "mode_component_states", "mode_power_w",
           "battery_lifetime_s"]

# Raw streaming pushes both biosignal front ends' samples out over BLE.
STREAMING_BYTES_PER_S = 256 * 3 + 32 * 2  # ECG 256 sps x 3 B + GSR 32 sps x 2 B


class OperatingMode(Enum):
    """The four modes the paper names."""

    SLEEP = "sleep"
    RAW_STREAMING = "raw_streaming"
    ACQUISITION = "acquisition"
    PROCESSING = "processing"


# Component state per mode; anything unlisted drops to its lowest state.
_MODE_STATES: dict[OperatingMode, dict[str, str]] = {
    # Sleep keeps the Nordic in system-on sleep (RAM retention, RTC)
    # and the gauge in its low-power state; everything else is off.
    OperatingMode.SLEEP: {"nrf52832": "sleep", "bq27441_gauge": "sleep"},
    OperatingMode.RAW_STREAMING: {
        "nrf52832": "active",
        "max30001_ecg": "active",
        "gsr_afe": "active",
    },
    OperatingMode.ACQUISITION: {
        "nrf52832": "sleep",
        "max30001_ecg": "active",
        "gsr_afe": "active",
    },
    OperatingMode.PROCESSING: {
        "nrf52832": "sleep",
        "mrwolf_cluster": "active_parallel",
    },
}


def mode_component_states(mode: OperatingMode) -> dict[str, str]:
    """The non-default component states a mode asserts."""
    if mode not in _MODE_STATES:
        raise ConfigurationError(f"unknown mode {mode!r}")
    return dict(_MODE_STATES[mode])


def apply_mode(catalog: ComponentCatalog, mode: OperatingMode) -> None:
    """Drive a component catalog into a mode's states."""
    for component in catalog:
        for preferred in ("off", "sleep", "standby"):
            if preferred in component.states:
                component.set_state(preferred)
                break
    for name, state in mode_component_states(mode).items():
        catalog[name].set_state(state)


def mode_power_w(mode: OperatingMode,
                 catalog: ComponentCatalog | None = None,
                 radio: BleRadioModel | None = None) -> float:
    """Steady-state system draw in a mode.

    Streaming adds the BLE radio's average power for the biosignal
    byte rate on top of the component states.
    """
    if catalog is None:
        catalog = default_catalog()
    apply_mode(catalog, mode)
    power = catalog.total_power_w()
    if mode is OperatingMode.RAW_STREAMING:
        if radio is None:
            radio = BleRadioModel()
        power += radio.streaming_power_w(STREAMING_BYTES_PER_S)
    return power


def battery_lifetime_s(mode: OperatingMode,
                       battery: LiPoBattery | None = None,
                       catalog: ComponentCatalog | None = None) -> float:
    """How long a full battery holds a mode with zero harvest.

    A first-order estimate at the nominal cell voltage; the paper's
    always-on ambition is visible in the contrast between the sleep
    mode (years) and raw streaming (days).
    """
    if battery is None:
        battery = LiPoBattery(initial_soc=1.0)
    power = mode_power_w(mode, catalog)
    if power <= 0:
        return float("inf")
    stored_j = battery.charge_c * battery.open_circuit_voltage()
    return stored_j / power
