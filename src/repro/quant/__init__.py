"""Fixed-point arithmetic substrate.

FANN's fixed-point mode stores weights and activations as 32-bit
integers with a network-wide binary point ("decimal point" in FANN
terminology).  This package provides that representation as a reusable
:class:`QFormat` value type plus vectorised numpy helpers, and the
activation lookup tables used by the fixed-point inference kernels.
"""

from repro.quant.qformat import (
    QFormat,
    Q15,
    Q7,
    saturate,
    to_fixed,
    from_fixed,
)
from repro.quant.lut import ActivationTable, tanh_table, sigmoid_table

__all__ = [
    "QFormat",
    "Q15",
    "Q7",
    "saturate",
    "to_fixed",
    "from_fixed",
    "ActivationTable",
    "tanh_table",
    "sigmoid_table",
]
