"""Q-format fixed-point representation with saturating arithmetic.

A :class:`QFormat` describes signed fixed-point numbers stored in
``total_bits`` two's-complement bits with ``frac_bits`` bits to the
right of the binary point.  FANN's fixed-point networks use a single
format for weights and activations (32-bit storage with a network-wide
binary point); the XpulpV2 SIMD extensions operate on packed Q1.15 and
Q1.7 lanes.  Both users share this module.

All conversion helpers accept scalars or numpy arrays and preserve the
input shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError

__all__ = ["QFormat", "Q15", "Q7", "saturate", "to_fixed", "from_fixed"]


def saturate(values, total_bits: int):
    """Clamp integer ``values`` into the signed range of ``total_bits``.

    Works on python ints and numpy arrays alike; returns the same kind
    of object it was given.
    """
    lo = -(1 << (total_bits - 1))
    hi = (1 << (total_bits - 1)) - 1
    if isinstance(values, np.ndarray):
        return np.clip(values, lo, hi)
    return max(lo, min(hi, values))


@dataclass(frozen=True)
class QFormat:
    """A signed fixed-point format: ``total_bits`` wide, ``frac_bits`` fractional.

    Attributes:
        total_bits: storage width in bits, including the sign bit.
        frac_bits: number of fractional bits (position of the binary point).
    """

    total_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise QuantizationError(
                f"QFormat needs at least 2 bits, got {self.total_bits}"
            )
        if not 0 <= self.frac_bits < self.total_bits:
            raise QuantizationError(
                f"frac_bits must lie in [0, {self.total_bits}), got {self.frac_bits}"
            )

    # -- derived properties -------------------------------------------------

    @property
    def scale(self) -> int:
        """Integer scale factor ``2**frac_bits``."""
        return 1 << self.frac_bits

    @property
    def min_int(self) -> int:
        """Most negative representable raw integer."""
        return -(1 << (self.total_bits - 1))

    @property
    def max_int(self) -> int:
        """Most positive representable raw integer."""
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_value(self) -> float:
        """Most negative representable real value."""
        return self.min_int / self.scale

    @property
    def max_value(self) -> float:
        """Most positive representable real value."""
        return self.max_int / self.scale

    @property
    def resolution(self) -> float:
        """Distance between adjacent representable values."""
        return 1.0 / self.scale

    def __str__(self) -> str:
        return f"Q{self.total_bits - self.frac_bits - 1}.{self.frac_bits}"

    # -- conversions --------------------------------------------------------

    def to_fixed(self, values, saturating: bool = True):
        """Quantise real ``values`` to raw integers in this format.

        Rounds to nearest (ties away from zero, matching C's ``lround``
        that FANN uses).  With ``saturating=False`` an out-of-range
        value raises :class:`QuantizationError` instead of clamping.
        """
        arr = np.asarray(values, dtype=np.float64)
        raw = np.where(arr >= 0, np.floor(arr * self.scale + 0.5),
                       np.ceil(arr * self.scale - 0.5)).astype(np.int64)
        if saturating:
            raw = np.clip(raw, self.min_int, self.max_int)
        elif np.any(raw < self.min_int) or np.any(raw > self.max_int):
            raise QuantizationError(
                f"value out of range for {self}: "
                f"[{arr.min()}, {arr.max()}] vs [{self.min_value}, {self.max_value}]"
            )
        if np.isscalar(values) or np.ndim(values) == 0:
            return int(raw)
        return raw

    def from_fixed(self, raw):
        """Convert raw integers in this format back to real values."""
        arr = np.asarray(raw, dtype=np.float64)
        out = arr / self.scale
        if np.isscalar(raw) or np.ndim(raw) == 0:
            return float(out)
        return out

    def quantize(self, values):
        """Round-trip ``values`` through this format (quantisation error applied)."""
        return self.from_fixed(self.to_fixed(values))

    # -- arithmetic on raw integers ------------------------------------------

    def mult(self, a, b):
        """Fixed-point multiply of two raw values: ``(a*b) >> frac_bits``.

        Uses arithmetic (floor) shift like the C kernels do, then
        saturates to the storage width.
        """
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            prod = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
            return saturate(prod >> self.frac_bits, self.total_bits)
        return saturate((int(a) * int(b)) >> self.frac_bits, self.total_bits)

    def add(self, a, b):
        """Saturating fixed-point addition of two raw values."""
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            total = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
            return saturate(total, self.total_bits)
        return saturate(int(a) + int(b), self.total_bits)

    def dot(self, weights, activations) -> int:
        """Accumulating dot product as the C kernels compute it.

        Products are accumulated at full ``2*total_bits`` precision and
        the accumulator is shifted back down once at the end, exactly
        like FANN's fixed-point neuron loop.  Returns the raw result,
        saturated to the storage width.
        """
        w = np.asarray(weights, dtype=np.int64)
        x = np.asarray(activations, dtype=np.int64)
        if w.shape != x.shape:
            raise QuantizationError(
                f"dot shape mismatch: {w.shape} vs {x.shape}"
            )
        acc = int(np.sum(w * x))
        return saturate(acc >> self.frac_bits, self.total_bits)


# Common lane formats used by the SIMD extensions.
Q15 = QFormat(16, 15)
Q7 = QFormat(8, 7)


def to_fixed(values, fmt: QFormat):
    """Module-level convenience wrapper for :meth:`QFormat.to_fixed`."""
    return fmt.to_fixed(values)


def from_fixed(raw, fmt: QFormat):
    """Module-level convenience wrapper for :meth:`QFormat.from_fixed`."""
    return fmt.from_fixed(raw)
