"""Activation-function lookup tables for fixed-point inference.

FANN's fixed-point runtime replaces transcendental activation functions
with piecewise-linear lookup tables computed when the network is saved.
:class:`ActivationTable` reproduces that scheme: the input range that
matters (the non-saturated region of the sigmoid/tanh) is divided into
uniform segments, each entry stores the function value at a breakpoint,
and evaluation interpolates linearly between neighbouring entries.
Inputs beyond the table saturate at the asymptotes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import QuantizationError
from repro.quant.qformat import QFormat

__all__ = ["ActivationTable", "tanh_table", "sigmoid_table"]


@dataclass(frozen=True)
class ActivationTable:
    """Piecewise-linear fixed-point approximation of an activation function.

    Attributes:
        fmt: fixed-point format of inputs, outputs and table entries.
        input_low: real-valued lower edge of the tabulated input range.
        input_high: real-valued upper edge of the tabulated input range.
        entries: raw fixed-point function values at uniformly spaced
            breakpoints across ``[input_low, input_high]``.
        low_value: raw output for inputs below ``input_low``.
        high_value: raw output for inputs above ``input_high``.
    """

    fmt: QFormat
    input_low: float
    input_high: float
    entries: np.ndarray = field(repr=False)
    low_value: int
    high_value: int

    @classmethod
    def build(
        cls,
        func: Callable[[np.ndarray], np.ndarray],
        fmt: QFormat,
        input_low: float,
        input_high: float,
        num_entries: int = 256,
    ) -> "ActivationTable":
        """Tabulate ``func`` over ``[input_low, input_high]``.

        Args:
            func: vectorised real activation (e.g. ``np.tanh``).
            fmt: fixed-point format for inputs and outputs.
            input_low: lower edge of the non-saturated region.
            input_high: upper edge of the non-saturated region.
            num_entries: number of breakpoints (>= 2).
        """
        if num_entries < 2:
            raise QuantizationError("an activation table needs >= 2 entries")
        if not input_low < input_high:
            raise QuantizationError("input_low must be strictly below input_high")
        xs = np.linspace(input_low, input_high, num_entries)
        ys = np.asarray(func(xs), dtype=np.float64)
        entries = fmt.to_fixed(ys)
        return cls(
            fmt=fmt,
            input_low=input_low,
            input_high=input_high,
            entries=np.asarray(entries, dtype=np.int64),
            low_value=int(entries[0]),
            high_value=int(entries[-1]),
        )

    @property
    def num_entries(self) -> int:
        """Number of breakpoints in the table."""
        return int(self.entries.shape[0])

    def lookup(self, raw):
        """Evaluate the activation for raw fixed-point inputs.

        Accepts scalars or arrays of raw integers in :attr:`fmt`;
        returns raw integers in the same format.  Linear interpolation
        between breakpoints is done in integer arithmetic, mirroring the
        embedded C implementation.
        """
        scalar = np.isscalar(raw) or np.ndim(raw) == 0
        x = np.asarray(raw, dtype=np.int64)

        lo_raw = self.fmt.to_fixed(self.input_low)
        hi_raw = self.fmt.to_fixed(self.input_high)
        span = hi_raw - lo_raw
        segments = self.num_entries - 1

        # Position within the table, in units of 1/segments of the span.
        offset = np.clip(x, lo_raw, hi_raw) - lo_raw
        # Integer index of the segment and the remainder inside it.
        idx = (offset * segments) // span
        idx = np.clip(idx, 0, segments - 1)
        seg_start = lo_raw + (idx * span) // segments
        seg_len = np.maximum((span + segments - 1) // segments, 1)
        frac = np.clip(offset - (seg_start - lo_raw), 0, seg_len)

        y0 = self.entries[idx]
        y1 = self.entries[idx + 1]
        interp = y0 + ((y1 - y0) * frac) // seg_len

        out = np.where(x <= lo_raw, self.low_value, interp)
        out = np.where(x >= hi_raw, self.high_value, out)
        if scalar:
            return int(out)
        return out

    def max_abs_error(self, func: Callable[[np.ndarray], np.ndarray],
                      num_probe: int = 4096) -> float:
        """Worst-case real-valued error of the table against ``func``.

        Probes uniformly across the tabulated range plus the saturated
        tails; useful for tests that bound the quantisation error.
        """
        pad = 0.5 * (self.input_high - self.input_low)
        xs = np.linspace(self.input_low - pad, self.input_high + pad, num_probe)
        raw_in = self.fmt.to_fixed(xs)
        raw_out = self.lookup(raw_in)
        approx = self.fmt.from_fixed(raw_out)
        exact = np.asarray(func(self.fmt.from_fixed(raw_in)), dtype=np.float64)
        return float(np.max(np.abs(approx - exact)))


def tanh_table(fmt: QFormat, num_entries: int = 256) -> ActivationTable:
    """Standard tanh table over the non-saturated region [-4, 4]."""
    return ActivationTable.build(np.tanh, fmt, -4.0, 4.0, num_entries)


def sigmoid_table(fmt: QFormat, num_entries: int = 256) -> ActivationTable:
    """Standard logistic-sigmoid table over [-8, 8]."""

    def _sigmoid(x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-x))

    return ActivationTable.build(_sigmoid, fmt, -8.0, 8.0, num_entries)
