"""Source/measure-unit emulation (the Keysight B2900A's role).

An SMU characterises a two-terminal DUT by forcing a voltage and
measuring the current.  The emulation accepts any DUT exposing a
``current(voltage)`` callable, sweeps it, and post-processes the sweep
into the quantities the paper's measurements rest on: open-circuit
voltage, short-circuit current, and the maximum power point.

Measurement noise and quantisation are modelled (the B2900A's strengths
are its femtoamp floor — effectively ideal here — but the structure
keeps the bench honest: everything downstream consumes *measured*
samples, not model internals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import MeasurementError

__all__ = ["IVSweepResult", "SourceMeasureUnit"]


@dataclass(frozen=True)
class IVSweepResult:
    """A completed I-V sweep.

    Attributes:
        voltages_v: forced voltage grid.
        currents_a: measured current at each point.
    """

    voltages_v: np.ndarray
    currents_a: np.ndarray

    @property
    def powers_w(self) -> np.ndarray:
        """Delivered power at each sweep point."""
        return self.voltages_v * self.currents_a

    def open_circuit_voltage(self) -> float:
        """Interpolated voltage of the zero-current crossing."""
        sign_change = np.where(np.diff(np.sign(self.currents_a)) != 0)[0]
        if sign_change.size == 0:
            raise MeasurementError("sweep does not cross zero current")
        i = int(sign_change[0])
        v0, v1 = self.voltages_v[i], self.voltages_v[i + 1]
        c0, c1 = self.currents_a[i], self.currents_a[i + 1]
        return float(v0 - c0 * (v1 - v0) / (c1 - c0))

    def short_circuit_current(self) -> float:
        """Measured current at (or nearest to) zero volts."""
        idx = int(np.argmin(np.abs(self.voltages_v)))
        return float(self.currents_a[idx])

    def maximum_power_point(self) -> tuple[float, float, float]:
        """(voltage, current, power) of the best sweep point."""
        idx = int(np.argmax(self.powers_w))
        return (float(self.voltages_v[idx]), float(self.currents_a[idx]),
                float(self.powers_w[idx]))

    def power_at_voltage(self, voltage_v: float) -> float:
        """Interpolated power at an arbitrary voltage inside the sweep."""
        if not (self.voltages_v[0] <= voltage_v <= self.voltages_v[-1]):
            raise MeasurementError(
                f"{voltage_v} V outside the swept range "
                f"[{self.voltages_v[0]}, {self.voltages_v[-1]}]"
            )
        current = float(np.interp(voltage_v, self.voltages_v, self.currents_a))
        return voltage_v * current


class SourceMeasureUnit:
    """Voltage-forcing SMU with configurable measurement imperfections.

    Args:
        current_noise_a: RMS additive current noise per reading.
        current_resolution_a: quantisation step of the ammeter
            (0 disables quantisation).
        seed: RNG seed for the noise.
    """

    def __init__(self, current_noise_a: float = 0.0,
                 current_resolution_a: float = 0.0,
                 seed: int = 0) -> None:
        if current_noise_a < 0 or current_resolution_a < 0:
            raise MeasurementError("noise and resolution cannot be negative")
        self.current_noise_a = current_noise_a
        self.current_resolution_a = current_resolution_a
        self._rng = np.random.default_rng(seed)

    def measure_current(self, dut_current: Callable[[float], float],
                        voltage_v: float) -> float:
        """One forced-voltage current reading."""
        reading = float(dut_current(voltage_v))
        if self.current_noise_a > 0:
            reading += float(self._rng.normal(0.0, self.current_noise_a))
        if self.current_resolution_a > 0:
            reading = round(reading / self.current_resolution_a) * self.current_resolution_a
        return reading

    def sweep(self, dut_current: Callable[[float], float],
              start_v: float, stop_v: float, points: int = 201) -> IVSweepResult:
        """Linear voltage sweep of a DUT.

        Args:
            dut_current: callable mapping forced volts to DUT amps.
            start_v: first forced voltage.
            stop_v: last forced voltage (must exceed ``start_v``).
            points: number of sweep points (>= 2).
        """
        if points < 2:
            raise MeasurementError("a sweep needs >= 2 points")
        if stop_v <= start_v:
            raise MeasurementError("stop voltage must exceed start voltage")
        volts = np.linspace(start_v, stop_v, points)
        amps = np.array([self.measure_current(dut_current, float(v)) for v in volts])
        return IVSweepResult(voltages_v=volts, currents_a=amps)
