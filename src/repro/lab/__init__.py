"""Emulated laboratory instruments.

The paper characterised its transducers with a Keysight B2900A
source/measure unit, a controlled light source and a wind source
("active cooling").  These emulations reproduce that methodology on
top of the physics models, so the Table I/II benches *measure* the
models the way the authors measured the hardware instead of calling
model internals directly.
"""

from repro.lab.smu import SourceMeasureUnit, IVSweepResult
from repro.lab.chamber import (
    ClimateChamber,
    LightSource,
    WindSource,
    HarvestTestBench,
)

__all__ = [
    "SourceMeasureUnit",
    "IVSweepResult",
    "ClimateChamber",
    "LightSource",
    "WindSource",
    "HarvestTestBench",
]
