"""Environment-control instruments and the harvest test bench.

:class:`LightSource`, :class:`ClimateChamber` and :class:`WindSource`
set the conditions a transducer sees — the roles played in the paper's
lab by the light source, the room/skin temperatures and the "active
cooling" fan.  :class:`HarvestTestBench` wires a transducer model, the
SMU and a converter model into the measurement flow behind Tables I
and II: establish conditions, sweep the transducer, let the converter's
MPPT pick its operating point on the *measured* curve, and report the
battery intake.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MeasurementError
from repro.harvest.converters import HarvesterConverter
from repro.harvest.environment import LightingCondition, ThermalCondition
from repro.harvest.photovoltaic import PVPanel
from repro.harvest.teg import TEGDevice
from repro.lab.smu import IVSweepResult, SourceMeasureUnit

__all__ = ["LightSource", "ClimateChamber", "WindSource", "HarvestTestBench"]


@dataclass
class LightSource:
    """A calibrated adjustable light source.

    Attributes:
        lux: current illuminance at the DUT plane.
    """

    lux: float = 0.0

    def set_illuminance(self, lux: float) -> None:
        """Set the illuminance at the DUT plane."""
        if lux < 0:
            raise MeasurementError("illuminance cannot be negative")
        self.lux = lux

    def condition(self) -> LightingCondition:
        """The lighting condition currently established."""
        return LightingCondition(lux=self.lux, description=f"lab source {self.lux} lx")


@dataclass
class ClimateChamber:
    """Controlled ambient and skin-simulator temperatures.

    Attributes:
        ambient_c: chamber air temperature.
        skin_c: skin-simulator plate temperature.
    """

    ambient_c: float = 22.0
    skin_c: float = 32.0

    def set_temperatures(self, ambient_c: float, skin_c: float) -> None:
        """Set chamber and skin-plate temperatures."""
        self.ambient_c = ambient_c
        self.skin_c = skin_c


@dataclass
class WindSource:
    """A fan providing controlled airflow over the DUT.

    Attributes:
        speed_ms: current air speed.
    """

    speed_ms: float = 0.0

    def set_speed(self, speed_ms: float) -> None:
        """Set the air speed."""
        if speed_ms < 0:
            raise MeasurementError("air speed cannot be negative")
        self.speed_ms = speed_ms


class HarvestTestBench:
    """The Table I/II measurement flow around emulated instruments.

    Args:
        smu: the source/measure unit used for all sweeps.
    """

    def __init__(self, smu: SourceMeasureUnit | None = None) -> None:
        self.smu = smu if smu is not None else SourceMeasureUnit()
        self.light = LightSource()
        self.chamber = ClimateChamber()
        self.wind = WindSource()

    # -- solar ------------------------------------------------------------------

    def sweep_panel(self, panel: PVPanel, lux: float,
                    points: int = 201) -> IVSweepResult:
        """Establish illuminance and sweep the panel with the SMU."""
        self.light.set_illuminance(lux)
        voc_estimate = panel.open_circuit_voltage(lux)
        if voc_estimate <= 0:
            raise MeasurementError("panel produces nothing at this illuminance")
        return self.smu.sweep(lambda v: panel.current(v, lux),
                              0.0, voc_estimate * 1.02, points)

    def measure_solar_intake_w(self, panel: PVPanel,
                               converter: HarvesterConverter,
                               lux: float) -> float:
        """Battery intake through the converter from a *measured* sweep.

        Mirrors the paper's methodology: the converter's fractional-Voc
        MPPT operating point is evaluated on the SMU's measured curve,
        then the converter model turns transducer power into battery
        power.
        """
        sweep = self.sweep_panel(panel, lux)
        voc = sweep.open_circuit_voltage()
        transducer_w = sweep.power_at_voltage(converter.mppt_fraction * voc)
        return converter.battery_intake_w(max(0.0, transducer_w))

    # -- TEG --------------------------------------------------------------------

    def establish_thermal(self, ambient_c: float, skin_c: float,
                          wind_ms: float) -> ThermalCondition:
        """Set chamber, skin plate and fan; return the condition."""
        self.chamber.set_temperatures(ambient_c, skin_c)
        self.wind.set_speed(wind_ms)
        return ThermalCondition(
            ambient_c=ambient_c, skin_c=skin_c, wind_ms=wind_ms,
            description=f"chamber {ambient_c} C / skin {skin_c} C / "
                        f"wind {wind_ms} m/s",
        )

    def sweep_teg(self, teg: TEGDevice, condition: ThermalCondition,
                  points: int = 101) -> IVSweepResult:
        """Sweep the TEG's electrical port under established conditions."""
        voc = teg.open_circuit_voltage(condition)
        if voc <= 0:
            raise MeasurementError("TEG produces nothing under these conditions")
        r = teg.params.internal_resistance_ohm
        return self.smu.sweep(lambda v: (voc - v) / r, 0.0, voc * 1.02, points)

    def measure_teg_intake_w(self, teg: TEGDevice,
                             converter: HarvesterConverter,
                             ambient_c: float, skin_c: float,
                             wind_ms: float) -> float:
        """Battery intake from a measured TEG sweep under set conditions."""
        condition = self.establish_thermal(ambient_c, skin_c, wind_ms)
        sweep = self.sweep_teg(teg, condition)
        voc = sweep.open_circuit_voltage()
        transducer_w = sweep.power_at_voltage(converter.mppt_fraction * voc)
        return converter.battery_intake_w(max(0.0, transducer_w))
