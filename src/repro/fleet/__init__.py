"""Fleet-scale stochastic wearer studies.

The population layer on top of the scenario API: instead of one
deterministic day-in-the-life, simulate *n* wearers with varied,
seeded-stochastic environments over week-to-month horizons and reduce
them to population statistics.

* :mod:`repro.fleet.spec` — frozen, JSON-round-trippable
  :class:`FleetSpec`/:class:`SamplerSpec`;
* :mod:`repro.fleet.samplers` — the :class:`TimelineSampler` registry
  (``@register_sampler``) and built-ins (``identity``,
  ``daily_jitter``, ``cloudy_streaks``);
* :mod:`repro.fleet.population` — deterministic per-wearer scenario
  generation (``random.Random(seed + index)``, sampled before any
  fan-out);
* :mod:`repro.fleet.runner` — :class:`FleetRunner` over the
  serial/thread/process/vector backends, the paired policy comparison
  :meth:`FleetRunner.compare`, the fleet-level policy grid search
  :meth:`FleetRunner.run_grid`, and sharded execution
  (``run(fleet, shard=(i, N))``);
* :mod:`repro.fleet.vector` — the ``backend="vector"`` array engine:
  all wearers stepped simultaneously as numpy vectors,
  bitwise-identical to the scalar oracle (scalar fallback for
  unbatchable policies);
* :mod:`repro.fleet.result` — :class:`FleetResult` population
  statistics (SoC percentiles, fraction energy-neutral, downtime
  hours, detections/day distribution), plus the sharding types
  :class:`WearerRecord`/:class:`PartialFleetResult` and the
  merge-exact reducer :meth:`FleetResult.merge`;
* :mod:`repro.fleet.library` — named built-in fleets
  (``office_cohort_week``, ...);
* :mod:`repro.fleet.orchestrate` — manifest-driven shard
  orchestration with per-shard timeout, bounded retry with backoff,
  and crash-safe resume (:func:`orchestrate`).

CLI: ``repro fleet list | run [--shard I/N] | compare | search |
merge | orchestrate`` — see ``docs/cli.md``.
"""

from repro.fleet.spec import FleetSpec, SamplerSpec, load_fleet_file
from repro.fleet.samplers import (
    SAMPLERS,
    TimelineSampler,
    build_sampler,
    register_sampler,
)
from repro.fleet.population import (
    shard_indices,
    template_segments,
    wearer_name,
    wearer_scenario,
    wearer_scenarios,
)
from repro.fleet.result import (
    DistributionSummary,
    FleetResult,
    PartialFleetResult,
    WearerRecord,
    load_partial_file,
    percentile,
)
from repro.fleet.runner import (
    BACKENDS,
    ComparisonEntry,
    FleetComparison,
    FleetGridResult,
    FleetRunner,
    run_fleet,
)
from repro.fleet.vector import (
    batchable,
    run_batch_vector,
    simulate_specs_vector,
)
from repro.fleet.library import (
    all_fleets,
    fleet_names,
    get_fleet,
    register_fleet,
)
from repro.fleet.orchestrate import (
    load_manifest,
    orchestrate,
    plan_manifest,
    write_manifest,
)

__all__ = [
    "FleetSpec",
    "SamplerSpec",
    "load_fleet_file",
    "SAMPLERS",
    "TimelineSampler",
    "build_sampler",
    "register_sampler",
    "shard_indices",
    "template_segments",
    "wearer_name",
    "wearer_scenario",
    "wearer_scenarios",
    "DistributionSummary",
    "FleetResult",
    "PartialFleetResult",
    "WearerRecord",
    "load_partial_file",
    "percentile",
    "BACKENDS",
    "ComparisonEntry",
    "FleetComparison",
    "FleetGridResult",
    "FleetRunner",
    "run_fleet",
    "batchable",
    "run_batch_vector",
    "simulate_specs_vector",
    "all_fleets",
    "fleet_names",
    "get_fleet",
    "register_fleet",
    "load_manifest",
    "orchestrate",
    "plan_manifest",
    "write_manifest",
]
