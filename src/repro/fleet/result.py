"""Population statistics reduced from per-wearer outcomes.

A fleet run never retains per-step traces — each wearer reduces to a
:class:`~repro.scenarios.runner.ScenarioOutcome`, and the fleet
reduces those to a :class:`FleetResult`: distribution summaries
(p5/p50/p95/mean) of final state of charge, detections per day and
downtime hours, plus the fraction of wearers that finished
energy-neutral.

:meth:`FleetResult.to_dict` is the *canonical payload*: it contains
only values that are a pure function of the :class:`FleetSpec`, so its
JSON is bitwise-identical across backends and runs for a fixed seed
(the acceptance property the determinism tests assert).  Provenance
that legitimately varies — which backend ran, how long it took — lives
on the result object (``backend``, ``wall_time_s``) but stays out of
the canonical dict.

Sharded execution splits a fleet across machines: each shard runs a
strided subset of the wearers and yields a :class:`PartialFleetResult`
holding the raw per-wearer :class:`WearerRecord` values instead of a
premature reduction (percentiles do not compose, so partials must
carry the sample).  :meth:`FleetResult.merge` re-assembles any
complete partition — records are re-ordered by wearer index and fed
through the *same* reduction as the unsharded path, and JSON floats
round-trip exactly, so the merged canonical payload is
bitwise-identical to :meth:`FleetRunner.run` without sharding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Any, Mapping, Sequence

from repro.errors import SpecError
from repro.fleet.spec import FleetSpec
from repro.scenarios.runner import ScenarioOutcome
from repro.scenarios.spec import canonical_json, check_mapping_keys

__all__ = ["percentile", "DistributionSummary", "WearerRecord",
           "PartialFleetResult", "FleetResult", "load_partial_file"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile with linear interpolation.

    Matches the classic "linear" definition (numpy's default): the
    percentile of a sorted sample ``x_0 .. x_{n-1}`` at rank
    ``q/100 * (n-1)``, interpolating between neighbours.

    >>> percentile([4.0, 1.0, 3.0, 2.0], 50)
    2.5
    >>> percentile([4.0, 1.0, 3.0, 2.0], 0)
    1.0
    >>> percentile([10.0], 95)
    10.0
    """
    if not values:
        raise SpecError("cannot take a percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise SpecError(f"percentile must lie in [0, 100], got {q!r}")
    ordered = sorted(values)
    rank = q / 100.0 * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-ish summary of one per-wearer quantity.

    Attributes:
        p5 / p50 / p95: percentiles of the population (p5 is the
            "planning" tail fleet rankings use — how the unlucky
            wearers fare).
        mean: population mean.
    """

    p5: float
    p50: float
    p95: float
    mean: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "DistributionSummary":
        """Summarise a non-empty sample.

        >>> DistributionSummary.from_values([1.0, 2.0, 3.0]).p50
        2.0
        """
        return cls(
            p5=percentile(values, 5),
            p50=percentile(values, 50),
            p95=percentile(values, 95),
            mean=sum(values) / len(values),
        )

    def to_dict(self) -> dict[str, float]:
        return {"p5": self.p5, "p50": self.p50, "p95": self.p95,
                "mean": self.mean}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DistributionSummary":
        known = {f.name for f in fields(cls)}
        check_mapping_keys("DistributionSummary", data, known, required=known)
        return cls(**data)


@dataclass(frozen=True)
class WearerRecord:
    """The raw per-wearer numbers a fleet reduction consumes.

    The smallest value that makes sharding merge-exact: percentiles
    and means do not compose across shards, so partial results carry
    one record per wearer and the reduction happens once, over the
    re-assembled population.

    Attributes:
        index: the wearer's 0-based index in the fleet.
        energy_neutral: battery ended no lower than it started.
        final_soc: final state of charge, in [0, 1].
        detections_per_day: detection rate normalised to a 24 h day.
        downtime_s: seconds the battery could not cover the demand.
    """

    index: int
    energy_neutral: bool
    final_soc: float
    detections_per_day: float
    downtime_s: float

    def __post_init__(self) -> None:
        if isinstance(self.index, bool) or not isinstance(self.index, int):
            raise SpecError(
                f"wearer index must be an integer, got {self.index!r}")
        if self.index < 0:
            raise SpecError(f"wearer index cannot be negative: {self.index}")
        # Shard files are hand-editable JSON: reject corrupt values here
        # so a bad file fails as a SpecError naming the path (via
        # load_partial_file), not as a TypeError deep in a percentile.
        if not isinstance(self.energy_neutral, bool):
            raise SpecError(
                f"wearer {self.index} energy_neutral must be a boolean, "
                f"got {self.energy_neutral!r}")
        for attr in ("final_soc", "detections_per_day", "downtime_s"):
            value = getattr(self, attr)
            if (isinstance(value, bool)
                    or not isinstance(value, (int, float))
                    or not math.isfinite(value)):
                # isfinite matters: json.loads accepts NaN/Infinity
                # literals, and a NaN would silently scramble the
                # merged percentiles instead of failing loudly.
                raise SpecError(
                    f"wearer {self.index} {attr} must be a finite number, "
                    f"got {value!r}")

    @classmethod
    def from_outcome(cls, index: int,
                     outcome: ScenarioOutcome) -> "WearerRecord":
        """The record of wearer ``index`` from its scenario outcome."""
        return cls(
            index=index,
            energy_neutral=outcome.energy_neutral,
            final_soc=outcome.final_soc,
            detections_per_day=outcome.detections_per_day,
            downtime_s=outcome.downtime_s,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "energy_neutral": self.energy_neutral,
            "final_soc": self.final_soc,
            "detections_per_day": self.detections_per_day,
            "downtime_s": self.downtime_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WearerRecord":
        known = {f.name for f in fields(cls)}
        check_mapping_keys("WearerRecord", data, known, required=known)
        return cls(**data)


@dataclass(frozen=True)
class PartialFleetResult:
    """One shard's contribution to a fleet run.

    Produced by ``FleetRunner.run(fleet, shard=(index, count))``: the
    shard materialized and simulated only the wearers with
    ``wearer_index % count == index`` (a strided partition, so every
    shard carries a balanced slice of the seed sequence).  Partials
    hold raw :class:`WearerRecord` values — no premature statistics —
    and :meth:`FleetResult.merge` reduces a complete partition to the
    exact unsharded :class:`FleetResult`.

    Attributes:
        spec: the full fleet spec (every shard carries it, so merge
            can verify the parts describe the same experiment).
        shard_index / shard_count: this shard's position in the
            partition, ``0 <= shard_index < shard_count``.
        records: one record per wearer of this shard, in index order.
        backend: sweep backend that ran the shard (provenance).
        wall_time_s: wall-clock seconds of the shard run (provenance).
    """

    spec: FleetSpec
    shard_index: int
    shard_count: int
    records: tuple[WearerRecord, ...]
    backend: str = ""
    wall_time_s: float = 0.0

    def __post_init__(self) -> None:
        for attr in ("shard_index", "shard_count"):
            value = getattr(self, attr)
            if isinstance(value, bool) or not isinstance(value, int):
                raise SpecError(f"{attr} must be an integer, got {value!r}")
        if self.shard_count < 1:
            raise SpecError(
                f"shard count must be at least 1, got {self.shard_count}")
        if not 0 <= self.shard_index < self.shard_count:
            raise SpecError(
                f"shard index {self.shard_index} outside partition of "
                f"{self.shard_count}")
        object.__setattr__(self, "records", tuple(self.records))
        for record in self.records:
            if record.index >= self.spec.n_wearers:
                raise SpecError(
                    f"wearer index {record.index} outside fleet "
                    f"{self.spec.name!r} of {self.spec.n_wearers}")
            if record.index % self.shard_count != self.shard_index:
                raise SpecError(
                    f"wearer {record.index} does not belong to shard "
                    f"{self.shard_index}/{self.shard_count}")
        indices = [record.index for record in self.records]
        if len(set(indices)) != len(indices):
            raise SpecError(
                f"duplicate wearer records in shard "
                f"{self.shard_index}/{self.shard_count}")

    def to_dict(self) -> dict[str, Any]:
        """The shard payload (``repro fleet run --shard`` writes it).

        ``backend``/``wall_time_s`` travel with the file as provenance
        — merge sums the shard wall times into the merged result's
        provenance — but stay out of the *canonical* payload, which is
        only ever the merged :meth:`FleetResult.to_dict`.
        """
        return {
            "spec": self.spec.to_dict(),
            "shard": [self.shard_index, self.shard_count],
            "wearers": [record.to_dict() for record in self.records],
            "backend": self.backend,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PartialFleetResult":
        """Rebuild a partial from :meth:`to_dict` output (exact)."""
        required = {"spec", "shard", "wearers"}
        check_mapping_keys("PartialFleetResult", data,
                           required | {"backend", "wall_time_s"},
                           required=required)
        shard = data["shard"]
        if (not isinstance(shard, (list, tuple)) or len(shard) != 2):
            raise SpecError(
                f"shard must be a [index, count] pair, got {shard!r}")
        wearers = data["wearers"]
        if not isinstance(wearers, (list, tuple)):
            raise SpecError(
                f"wearers must be a list of records, got "
                f"{type(wearers).__name__}")
        return cls(
            spec=FleetSpec.from_dict(data["spec"]),
            shard_index=shard[0],
            shard_count=shard[1],
            records=tuple(WearerRecord.from_dict(r) for r in wearers),
            backend=data.get("backend", ""),
            wall_time_s=data.get("wall_time_s", 0.0),
        )


def load_partial_file(path: Any) -> PartialFleetResult:
    """The :class:`PartialFleetResult` stored in one JSON file.

    A shard file is exactly one :meth:`PartialFleetResult.to_dict`
    payload (what ``repro fleet run --shard I/N --out FILE`` writes).
    Failures surface as :class:`~repro.errors.SpecError` naming the
    path.
    """
    # Deferred: repro.scenarios.files owns the on-disk error reporting.
    from repro.scenarios.files import load_json_payload

    payload = load_json_payload(path, what="fleet shard")
    try:
        return PartialFleetResult.from_dict(payload)
    except SpecError as exc:
        raise SpecError(f"fleet shard file {path}: {exc}") from None


@dataclass(frozen=True)
class FleetResult:
    """Population outcome of one fleet run.

    Attributes:
        fleet: the fleet spec's name.
        base_scenario / n_wearers / horizon_days / seed / sampler:
            provenance copied from the spec (``sampler`` is its
            compact label) so a saved result is self-describing.
        fraction_energy_neutral: share of wearers whose battery ended
            no lower than it started.
        final_soc: distribution of final state of charge, in [0, 1].
        detections_per_day: distribution of per-wearer detection rate.
        downtime_hours: distribution of per-wearer hours in which the
            battery could not cover the demanded load.
        backend: the sweep backend that actually ran (provenance; not
            part of the canonical dict).
        wall_time_s: wall-clock seconds of the sweep (ditto).
    """

    fleet: str
    base_scenario: str
    n_wearers: int
    horizon_days: int
    seed: int
    sampler: str
    fraction_energy_neutral: float
    final_soc: DistributionSummary
    detections_per_day: DistributionSummary
    downtime_hours: DistributionSummary
    backend: str = ""
    wall_time_s: float = 0.0

    @classmethod
    def from_outcomes(cls, fleet_spec,
                      outcomes: Sequence[ScenarioOutcome],
                      backend: str = "",
                      wall_time_s: float = 0.0) -> "FleetResult":
        """Reduce per-wearer outcomes under a
        :class:`~repro.fleet.spec.FleetSpec`."""
        records = [WearerRecord.from_outcome(index, outcome)
                   for index, outcome in enumerate(outcomes)]
        return cls.from_records(fleet_spec, records,
                                backend=backend, wall_time_s=wall_time_s)

    @classmethod
    def from_records(cls, fleet_spec,
                     records: Sequence[WearerRecord],
                     backend: str = "",
                     wall_time_s: float = 0.0) -> "FleetResult":
        """Reduce a complete population of :class:`WearerRecord`.

        The single reduction both the unsharded and the merged path go
        through: records are re-ordered by wearer index first, so the
        arithmetic (and therefore every float in the canonical
        payload) is independent of how the population was partitioned.
        """
        records = sorted(records, key=lambda record: record.index)
        if len(records) != fleet_spec.n_wearers:
            raise SpecError(
                f"fleet {fleet_spec.name!r} expected "
                f"{fleet_spec.n_wearers} outcomes, got {len(records)}")
        expected = range(fleet_spec.n_wearers)
        if [record.index for record in records] != list(expected):
            missing = sorted(set(expected)
                             - {record.index for record in records})
            raise SpecError(
                f"fleet {fleet_spec.name!r} population is incomplete: "
                f"missing or duplicated wearer indices (missing {missing})")
        neutral = sum(1 for record in records if record.energy_neutral)
        return cls(
            fleet=fleet_spec.name,
            base_scenario=fleet_spec.base_scenario,
            n_wearers=fleet_spec.n_wearers,
            horizon_days=fleet_spec.horizon_days,
            seed=fleet_spec.seed,
            sampler=fleet_spec.sampler.label,
            fraction_energy_neutral=neutral / len(records),
            final_soc=DistributionSummary.from_values(
                [record.final_soc for record in records]),
            detections_per_day=DistributionSummary.from_values(
                [record.detections_per_day for record in records]),
            downtime_hours=DistributionSummary.from_values(
                [record.downtime_s / 3600.0 for record in records]),
            backend=backend,
            wall_time_s=wall_time_s,
        )

    @classmethod
    def merge(cls, parts: Sequence[PartialFleetResult]) -> "FleetResult":
        """Reduce a complete shard partition to the unsharded result.

        Any partition works — ``(i, N)`` shards for one ``N``, each
        present exactly once, together covering every wearer.  Because
        partials carry raw per-wearer records and the reduction
        re-orders them by index, the merged canonical payload is
        bitwise-identical to ``FleetRunner.run`` without sharding (the
        contract ``tests/fleet/test_sharding.py`` pins for
        N ∈ {1, 2, 3, 7} against JSON round-tripped parts).
        """
        parts = list(parts)
        if not parts:
            raise SpecError("cannot merge zero fleet shards")
        spec = parts[0].spec
        counts = {part.shard_count for part in parts}
        if len(counts) != 1:
            raise SpecError(
                f"fleet shards disagree on the partition size: "
                f"{sorted(counts)}")
        for part in parts:
            if part.spec != spec:
                raise SpecError(
                    f"fleet shards describe different fleets: "
                    f"{spec.name!r} vs {part.spec.name!r} (every shard "
                    "must carry the identical FleetSpec)")
        seen_shards = [part.shard_index for part in parts]
        if len(set(seen_shards)) != len(seen_shards):
            duplicated = sorted({index for index in seen_shards
                                 if seen_shards.count(index) > 1})
            raise SpecError(f"duplicate fleet shards: {duplicated} "
                            f"of {parts[0].shard_count}")
        records = [record for part in parts for record in part.records]
        wall_time_s = sum(part.wall_time_s for part in parts)
        return cls.from_records(spec, records, backend="merged",
                                wall_time_s=wall_time_s)

    def canonical_json(self) -> str:
        """The canonical payload through the one shared encoder.

        ``canonical_json(a) == canonical_json(b)`` is *the* fleet
        determinism contract — what the cross-backend and merge-exact
        tests compare, what the result store caches, and what the CLI
        prints under ``--json`` — all through
        :func:`repro.scenarios.spec.canonical_json_bytes`, so no two
        call sites can drift on encoder settings.
        """
        return canonical_json(self.to_dict())

    def to_dict(self) -> dict[str, Any]:
        """The canonical, backend-independent payload (see module doc)."""
        return {
            "fleet": self.fleet,
            "base_scenario": self.base_scenario,
            "n_wearers": self.n_wearers,
            "horizon_days": self.horizon_days,
            "seed": self.seed,
            "sampler": self.sampler,
            "fraction_energy_neutral": self.fraction_energy_neutral,
            "final_soc": self.final_soc.to_dict(),
            "detections_per_day": self.detections_per_day.to_dict(),
            "downtime_hours": self.downtime_hours.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetResult":
        """Rebuild a result from :meth:`to_dict` output (exact)."""
        known = {"fleet", "base_scenario", "n_wearers", "horizon_days",
                 "seed", "sampler", "fraction_energy_neutral", "final_soc",
                 "detections_per_day", "downtime_hours"}
        check_mapping_keys("FleetResult", data, known, required=known)
        payload = dict(data)
        for key in ("final_soc", "detections_per_day", "downtime_hours"):
            payload[key] = DistributionSummary.from_dict(payload[key])
        return cls(**payload)

    def format_summary(self) -> str:
        """A fixed-width population report."""
        lines = [
            f"Fleet: {self.fleet} — {self.n_wearers} wearer(s) x "
            f"{self.horizon_days} day(s), base {self.base_scenario}, "
            f"sampler {self.sampler}, seed {self.seed}",
            f"  energy-neutral : {100 * self.fraction_energy_neutral:5.1f} % "
            f"of wearers",
        ]
        rows = (("final SoC [%]", self.final_soc, 100.0, 1),
                ("detections/day", self.detections_per_day, 1.0, 0),
                ("downtime [h]", self.downtime_hours, 1.0, 1))
        for label, dist, scale, digits in rows:
            lines.append(
                f"  {label:15s}: p5 {scale * dist.p5:8.{digits}f}   "
                f"p50 {scale * dist.p50:8.{digits}f}   "
                f"p95 {scale * dist.p95:8.{digits}f}   "
                f"mean {scale * dist.mean:8.{digits}f}")
        return "\n".join(lines)
