"""Population statistics reduced from per-wearer outcomes.

A fleet run never retains per-step traces — each wearer reduces to a
:class:`~repro.scenarios.runner.ScenarioOutcome`, and the fleet
reduces those to a :class:`FleetResult`: distribution summaries
(p5/p50/p95/mean) of final state of charge, detections per day and
downtime hours, plus the fraction of wearers that finished
energy-neutral.

:meth:`FleetResult.to_dict` is the *canonical payload*: it contains
only values that are a pure function of the :class:`FleetSpec`, so its
JSON is bitwise-identical across backends and runs for a fixed seed
(the acceptance property the determinism tests assert).  Provenance
that legitimately varies — which backend ran, how long it took — lives
on the result object (``backend``, ``wall_time_s``) but stays out of
the canonical dict.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping, Sequence

from repro.errors import SpecError
from repro.scenarios.runner import ScenarioOutcome
from repro.scenarios.spec import check_mapping_keys

__all__ = ["percentile", "DistributionSummary", "FleetResult"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile with linear interpolation.

    Matches the classic "linear" definition (numpy's default): the
    percentile of a sorted sample ``x_0 .. x_{n-1}`` at rank
    ``q/100 * (n-1)``, interpolating between neighbours.

    >>> percentile([4.0, 1.0, 3.0, 2.0], 50)
    2.5
    >>> percentile([4.0, 1.0, 3.0, 2.0], 0)
    1.0
    >>> percentile([10.0], 95)
    10.0
    """
    if not values:
        raise SpecError("cannot take a percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise SpecError(f"percentile must lie in [0, 100], got {q!r}")
    ordered = sorted(values)
    rank = q / 100.0 * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-ish summary of one per-wearer quantity.

    Attributes:
        p5 / p50 / p95: percentiles of the population (p5 is the
            "planning" tail fleet rankings use — how the unlucky
            wearers fare).
        mean: population mean.
    """

    p5: float
    p50: float
    p95: float
    mean: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "DistributionSummary":
        """Summarise a non-empty sample.

        >>> DistributionSummary.from_values([1.0, 2.0, 3.0]).p50
        2.0
        """
        return cls(
            p5=percentile(values, 5),
            p50=percentile(values, 50),
            p95=percentile(values, 95),
            mean=sum(values) / len(values),
        )

    def to_dict(self) -> dict[str, float]:
        return {"p5": self.p5, "p50": self.p50, "p95": self.p95,
                "mean": self.mean}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DistributionSummary":
        known = {f.name for f in fields(cls)}
        check_mapping_keys("DistributionSummary", data, known, required=known)
        return cls(**data)


@dataclass(frozen=True)
class FleetResult:
    """Population outcome of one fleet run.

    Attributes:
        fleet: the fleet spec's name.
        base_scenario / n_wearers / horizon_days / seed / sampler:
            provenance copied from the spec (``sampler`` is its
            compact label) so a saved result is self-describing.
        fraction_energy_neutral: share of wearers whose battery ended
            no lower than it started.
        final_soc: distribution of final state of charge, in [0, 1].
        detections_per_day: distribution of per-wearer detection rate.
        downtime_hours: distribution of per-wearer hours in which the
            battery could not cover the demanded load.
        backend: the sweep backend that actually ran (provenance; not
            part of the canonical dict).
        wall_time_s: wall-clock seconds of the sweep (ditto).
    """

    fleet: str
    base_scenario: str
    n_wearers: int
    horizon_days: int
    seed: int
    sampler: str
    fraction_energy_neutral: float
    final_soc: DistributionSummary
    detections_per_day: DistributionSummary
    downtime_hours: DistributionSummary
    backend: str = ""
    wall_time_s: float = 0.0

    @classmethod
    def from_outcomes(cls, fleet_spec,
                      outcomes: Sequence[ScenarioOutcome],
                      backend: str = "",
                      wall_time_s: float = 0.0) -> "FleetResult":
        """Reduce per-wearer outcomes under a
        :class:`~repro.fleet.spec.FleetSpec`."""
        if len(outcomes) != fleet_spec.n_wearers:
            raise SpecError(
                f"fleet {fleet_spec.name!r} expected "
                f"{fleet_spec.n_wearers} outcomes, got {len(outcomes)}")
        neutral = sum(1 for o in outcomes if o.energy_neutral)
        return cls(
            fleet=fleet_spec.name,
            base_scenario=fleet_spec.base_scenario,
            n_wearers=fleet_spec.n_wearers,
            horizon_days=fleet_spec.horizon_days,
            seed=fleet_spec.seed,
            sampler=fleet_spec.sampler.label,
            fraction_energy_neutral=neutral / len(outcomes),
            final_soc=DistributionSummary.from_values(
                [o.final_soc for o in outcomes]),
            detections_per_day=DistributionSummary.from_values(
                [o.detections_per_day for o in outcomes]),
            downtime_hours=DistributionSummary.from_values(
                [o.downtime_s / 3600.0 for o in outcomes]),
            backend=backend,
            wall_time_s=wall_time_s,
        )

    def to_dict(self) -> dict[str, Any]:
        """The canonical, backend-independent payload (see module doc)."""
        return {
            "fleet": self.fleet,
            "base_scenario": self.base_scenario,
            "n_wearers": self.n_wearers,
            "horizon_days": self.horizon_days,
            "seed": self.seed,
            "sampler": self.sampler,
            "fraction_energy_neutral": self.fraction_energy_neutral,
            "final_soc": self.final_soc.to_dict(),
            "detections_per_day": self.detections_per_day.to_dict(),
            "downtime_hours": self.downtime_hours.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetResult":
        """Rebuild a result from :meth:`to_dict` output (exact)."""
        known = {"fleet", "base_scenario", "n_wearers", "horizon_days",
                 "seed", "sampler", "fraction_energy_neutral", "final_soc",
                 "detections_per_day", "downtime_hours"}
        check_mapping_keys("FleetResult", data, known, required=known)
        payload = dict(data)
        for key in ("final_soc", "detections_per_day", "downtime_hours"):
            payload[key] = DistributionSummary.from_dict(payload[key])
        return cls(**payload)

    def format_summary(self) -> str:
        """A fixed-width population report."""
        lines = [
            f"Fleet: {self.fleet} — {self.n_wearers} wearer(s) x "
            f"{self.horizon_days} day(s), base {self.base_scenario}, "
            f"sampler {self.sampler}, seed {self.seed}",
            f"  energy-neutral : {100 * self.fraction_energy_neutral:5.1f} % "
            f"of wearers",
        ]
        rows = (("final SoC [%]", self.final_soc, 100.0, 1),
                ("detections/day", self.detections_per_day, 1.0, 0),
                ("downtime [h]", self.downtime_hours, 1.0, 1))
        for label, dist, scale, digits in rows:
            lines.append(
                f"  {label:15s}: p5 {scale * dist.p5:8.{digits}f}   "
                f"p50 {scale * dist.p50:8.{digits}f}   "
                f"p95 {scale * dist.p95:8.{digits}f}   "
                f"mean {scale * dist.mean:8.{digits}f}")
        return "\n".join(lines)
