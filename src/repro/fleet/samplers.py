"""Seeded timeline samplers: per-wearer environment perturbation.

A :class:`TimelineSampler` turns the base scenario's template segments
into one wearer-day of segments, drawing every random number from the
``random.Random`` it is handed.  Samplers are registered by name in
:data:`SAMPLERS` (``@register_sampler("name")``) so a
:class:`~repro.fleet.spec.SamplerSpec` can reference them from JSON,
exactly like harvesters or policies.

Factory and state contract
--------------------------

* Factories take the spec's ``params`` mapping and return a sampler:
  ``(params: Mapping) -> TimelineSampler``.  Unknown or non-numeric
  params must raise :class:`~repro.errors.SpecError` naming the knobs.
* A **fresh sampler is built for every wearer**, and its
  :meth:`~TimelineSampler.sample_day` is called with ``day = 0, 1,
  ...`` in order, always with that wearer's own RNG — so samplers may
  keep per-wearer state across days (weather streaks do).
* Samplers must be pure functions of ``(params, rng draws)``: no wall
  clocks, no global randomness.  That is what makes a
  :class:`~repro.fleet.spec.FleetSpec` bitwise-reproducible across
  runs and across the serial/thread/process backends.
"""

from __future__ import annotations

import math
import random
from typing import Any, Mapping, Protocol, Sequence, runtime_checkable

from repro.errors import RegistryError, SpecError
from repro.fleet.spec import SamplerSpec
from repro.scenarios.registry import ComponentRegistry
from repro.scenarios.spec import SegmentSpec

__all__ = [
    "TimelineSampler",
    "SAMPLERS",
    "register_sampler",
    "build_sampler",
    "IdentitySampler",
    "DailyJitterSampler",
    "CloudyStreaksSampler",
]

#: Shortest segment a sampler may emit: duration jitter can squeeze a
#: segment, but never below one simulation-relevant minute.
MIN_SEGMENT_S = 60.0

SAMPLERS = ComponentRegistry("sampler")
register_sampler = SAMPLERS.register


@runtime_checkable
class TimelineSampler(Protocol):
    """Structural protocol every timeline sampler implements."""

    def sample_day(self, day: int, base: Sequence[SegmentSpec],
                   rng: random.Random) -> Sequence[SegmentSpec]:
        """One wearer-repetition of the template, perturbed.

        Args:
            day: 0-based repetition index (the day number when the
                template covers exactly one day).
            base: the template segments (never mutated).
            rng: the wearer's own seeded generator.

        Returns:
            At least one segment with positive total duration.
        """
        ...


def build_sampler(spec: SamplerSpec) -> TimelineSampler:
    """The sampler described by ``spec``, freshly built.

    An unknown name raises :class:`~repro.errors.SpecError` listing
    the registered samplers, so a typo in a fleet file fails with the
    menu in hand.
    """
    try:
        factory = SAMPLERS.get(spec.name)
    except RegistryError:
        raise SpecError(
            f"unknown sampler {spec.name!r}; registered samplers: "
            f"{SAMPLERS.names()}") from None
    return factory(spec.params)


def _merge_params(name: str, params: Mapping[str, Any],
                  defaults: Mapping[str, Any]) -> dict[str, Any]:
    """Defaults overlaid with ``params``; unknown keys are a SpecError.

    Every built-in sampler knob is numeric, so non-number values are
    rejected here with the knob name in the message.
    """
    unknown = set(params) - set(defaults)
    if unknown:
        raise SpecError(
            f"unknown {name!r} sampler params: {sorted(unknown)} "
            f"(known: {sorted(defaults)})")
    for key, value in params.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(
                f"{name} sampler param {key!r} must be a number, "
                f"got {value!r}")
    merged = dict(defaults)
    merged.update(params)
    return merged


def _check_sigma(name: str, merged: Mapping[str, Any]) -> None:
    # "sigma" anywhere in the knob name: catches ambient_sigma_c and
    # skin_sigma_c, not just the *_sigma spellings.
    for key, value in merged.items():
        if "sigma" in key and value < 0:
            raise SpecError(
                f"{name} sampler param {key!r} cannot be negative: {value!r}")


class IdentitySampler:
    """The null perturbation: every wearer relives the template day.

    The control arm of a fleet study — with it, a fleet degenerates to
    ``n_wearers`` identical runs of the base scenario tiled over the
    horizon, which is exactly what the determinism tests pin.
    """

    def sample_day(self, day: int, base: Sequence[SegmentSpec],
                   rng: random.Random) -> Sequence[SegmentSpec]:
        return tuple(base)


class DailyJitterSampler:
    """Independent log-normal/Gaussian jitter on every segment.

    Each segment of each day is perturbed independently:

    * ``duration_s`` and ``lux`` are scaled by ``exp(N(0, sigma))`` —
      multiplicative, so they stay positive and skew realistically;
    * ``ambient_c`` and ``skin_c`` get additive Gaussian offsets;
    * ``wind_ms`` is scaled log-normally (still air stays still).

    Durations are floored at :data:`MIN_SEGMENT_S` so a deep negative
    draw cannot produce a degenerate segment.

    Args:
        duration_sigma: log-scale spread of segment lengths.
        lux_sigma: log-scale spread of illuminance.
        ambient_sigma_c: Gaussian spread of air temperature, °C.
        skin_sigma_c: Gaussian spread of skin temperature, °C.
        wind_sigma: log-scale spread of air speed.
    """

    def __init__(self, duration_sigma: float = 0.10,
                 lux_sigma: float = 0.35,
                 ambient_sigma_c: float = 2.0,
                 skin_sigma_c: float = 0.3,
                 wind_sigma: float = 0.5) -> None:
        self.duration_sigma = duration_sigma
        self.lux_sigma = lux_sigma
        self.ambient_sigma_c = ambient_sigma_c
        self.skin_sigma_c = skin_sigma_c
        self.wind_sigma = wind_sigma

    def sample_day(self, day: int, base: Sequence[SegmentSpec],
                   rng: random.Random) -> Sequence[SegmentSpec]:
        sampled = []
        for seg in base:
            duration = max(
                MIN_SEGMENT_S,
                seg.duration_s * math.exp(rng.gauss(0.0, self.duration_sigma)))
            lux = seg.lux * math.exp(rng.gauss(0.0, self.lux_sigma))
            ambient = seg.ambient_c + rng.gauss(0.0, self.ambient_sigma_c)
            skin = seg.skin_c + rng.gauss(0.0, self.skin_sigma_c)
            wind = seg.wind_ms * math.exp(rng.gauss(0.0, self.wind_sigma))
            sampled.append(SegmentSpec(
                duration_s=duration, lux=lux, ambient_c=ambient,
                skin_c=skin, wind_ms=wind, label=seg.label))
        return tuple(sampled)


class CloudyStreaksSampler:
    """Two-state (sunny/cloudy) daily weather with persistence.

    A Markov chain over whole days: each day the wearer is either in
    the *sunny* state (template unchanged) or the *cloudy* state
    (every segment's illuminance scaled down and the air cooled).
    Cloudy spells persist — the chain enters the cloudy state with
    probability ``p_enter`` and leaves it with ``p_exit`` — which is
    the multi-day pattern that separates forecast policies from
    instantaneous ones.

    Stateful per wearer (the current weather state), which the sampler
    contract allows: a fresh instance is built per wearer.

    Args:
        p_enter: sunny -> cloudy transition probability per day.
        p_exit: cloudy -> sunny transition probability per day.
        cloudy_lux_factor: illuminance multiplier on cloudy days.
        cloudy_ambient_offset_c: air-temperature offset on cloudy days.
    """

    def __init__(self, p_enter: float = 0.3, p_exit: float = 0.4,
                 cloudy_lux_factor: float = 0.25,
                 cloudy_ambient_offset_c: float = -2.0) -> None:
        for knob, value in (("p_enter", p_enter), ("p_exit", p_exit)):
            if not 0.0 <= value <= 1.0:
                raise SpecError(
                    f"cloudy_streaks {knob} must lie in [0, 1], got {value!r}")
        if cloudy_lux_factor < 0:
            raise SpecError(
                f"cloudy_streaks cloudy_lux_factor cannot be negative: "
                f"{cloudy_lux_factor!r}")
        self.p_enter = p_enter
        self.p_exit = p_exit
        self.cloudy_lux_factor = cloudy_lux_factor
        self.cloudy_ambient_offset_c = cloudy_ambient_offset_c
        self._cloudy: bool | None = None

    def sample_day(self, day: int, base: Sequence[SegmentSpec],
                   rng: random.Random) -> Sequence[SegmentSpec]:
        if self._cloudy is None:
            # First day: draw from the chain's stationary distribution
            # so short horizons are not biased toward sunny starts.
            denominator = self.p_enter + self.p_exit
            stationary = self.p_enter / denominator if denominator else 0.0
            self._cloudy = rng.random() < stationary
        elif self._cloudy:
            self._cloudy = rng.random() >= self.p_exit
        else:
            self._cloudy = rng.random() < self.p_enter
        if not self._cloudy:
            return tuple(base)
        return tuple(SegmentSpec(
            duration_s=seg.duration_s,
            lux=seg.lux * self.cloudy_lux_factor,
            ambient_c=seg.ambient_c + self.cloudy_ambient_offset_c,
            skin_c=seg.skin_c,
            wind_ms=seg.wind_ms,
            label=seg.label,
        ) for seg in base)


# --- registered factories ----------------------------------------------------
#
# Signature contract: SAMPLERS: (params: Mapping) -> TimelineSampler.
# Registered at import time, so fleet specs referencing them work on
# every backend (the process backend never needs them: sampling runs
# in the parent before the sweep fans out).


@register_sampler("identity")
def _build_identity(params: Mapping[str, Any]) -> IdentitySampler:
    _merge_params("identity", params, {})
    return IdentitySampler()


@register_sampler("daily_jitter")
def _build_daily_jitter(params: Mapping[str, Any]) -> DailyJitterSampler:
    merged = _merge_params("daily_jitter", params, {
        "duration_sigma": 0.10,
        "lux_sigma": 0.35,
        "ambient_sigma_c": 2.0,
        "skin_sigma_c": 0.3,
        "wind_sigma": 0.5,
    })
    _check_sigma("daily_jitter", merged)
    return DailyJitterSampler(**merged)


@register_sampler("cloudy_streaks")
def _build_cloudy_streaks(params: Mapping[str, Any]) -> CloudyStreaksSampler:
    merged = _merge_params("cloudy_streaks", params, {
        "p_enter": 0.3,
        "p_exit": 0.4,
        "cloudy_lux_factor": 0.25,
        "cloudy_ambient_offset_c": -2.0,
    })
    return CloudyStreaksSampler(**merged)
