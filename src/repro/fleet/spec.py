"""Declarative specs for fleet-scale stochastic wearer studies.

A :class:`FleetSpec` describes a whole population experiment in one
frozen, JSON-round-trippable value: which library scenario every
wearer starts from (``base_scenario``), how many wearers
(``n_wearers``), how long they are simulated (``horizon_days``), the
master ``seed``, and the :class:`SamplerSpec` naming the registered
:class:`~repro.fleet.samplers.TimelineSampler` that perturbs each
wearer's environment.

Reproducibility contract: wearer ``i`` draws every random number from
``random.Random(seed + i)``, and all sampling happens *before* the
sweep fans out — the per-wearer scenarios ship to the serial, thread
and process backends as identical JSON payloads.  The same
:class:`FleetSpec` therefore yields a bitwise-identical
:class:`~repro.fleet.result.FleetResult` on every backend and across
runs.

>>> spec = FleetSpec(name="demo", base_scenario="sunny_office_worker")
>>> FleetSpec.from_dict(spec.to_dict()) == spec
True
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import SpecError
from repro.scenarios.spec import check_mapping_keys

__all__ = ["SamplerSpec", "FleetSpec", "load_fleet_file"]

_PARAM_SCALARS = (bool, int, float, str)


def _check_dict(data: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise SpecError(f"{what} must be a mapping, got {type(data).__name__}")
    return data


@dataclass(frozen=True)
class SamplerSpec:
    """Timeline-sampler choice: a registered name plus keyword params.

    Any sampler in the :data:`~repro.fleet.samplers.SAMPLERS` registry
    can be named (``identity``, ``daily_jitter``, ``cloudy_streaks``,
    or a third-party ``@register_sampler`` registration); ``params``
    are passed to its factory as keyword arguments.  Param values must
    be JSON scalars so the spec survives serialization unchanged.
    """

    name: str = "identity"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("sampler name cannot be empty")
        params = _check_dict(self.params, "SamplerSpec params")
        for key, value in params.items():
            if not isinstance(key, str) or not key:
                raise SpecError(
                    f"sampler param names must be non-empty strings, "
                    f"got {key!r}")
            if not isinstance(value, _PARAM_SCALARS):
                raise SpecError(
                    f"sampler param {key!r} must be a JSON scalar "
                    f"(number, string or bool), got {type(value).__name__}")
        object.__setattr__(self, "params", dict(params))

    @property
    def label(self) -> str:
        """A compact display label.

        >>> SamplerSpec("daily_jitter", {"lux_sigma": 0.5}).label
        'daily_jitter(lux_sigma=0.5)'
        """
        if not self.params:
            return self.name
        inner = ",".join(f"{key}={self.params[key]!r}"
                         if isinstance(self.params[key], str)
                         else f"{key}={self.params[key]:g}"
                         for key in sorted(self.params))
        return f"{self.name}({inner})"

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SamplerSpec":
        data = check_mapping_keys("SamplerSpec", data, {"name", "params"})
        return cls(name=data.get("name", "identity"),
                   params=data.get("params", {}))


@dataclass(frozen=True)
class FleetSpec:
    """A named, fully-described population study.

    Attributes:
        name: fleet identifier (library key, report label, and the
            prefix of every generated wearer-scenario name).
        base_scenario: library scenario every wearer is derived from
            (see ``repro scenarios list``); supplies the template
            environment, the system (battery/harvester/policy/app) and
            the step size.
        n_wearers: population size (at least 1).
        horizon_days: simulated horizon per wearer, in days; the base
            timeline is tiled and re-sampled until it covers it.
        seed: master seed; wearer ``i`` uses ``seed + i``.
        sampler: the environment perturbation applied per wearer.
        description: one-line human-readable summary.
    """

    name: str
    base_scenario: str
    n_wearers: int = 25
    horizon_days: int = 7
    seed: int = 0
    sampler: SamplerSpec = SamplerSpec()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("fleet name cannot be empty")
        if not self.base_scenario:
            raise SpecError("fleet base_scenario cannot be empty")
        for attr in ("n_wearers", "horizon_days", "seed"):
            value = getattr(self, attr)
            if isinstance(value, bool) or not isinstance(value, int):
                raise SpecError(
                    f"fleet {attr} must be an integer, got {value!r}")
        if self.n_wearers < 1:
            raise SpecError("a fleet needs at least one wearer")
        if self.horizon_days < 1:
            raise SpecError("fleet horizon must be at least one day")

    def replace(self, **changes: Any) -> "FleetSpec":
        """A copy with the given fields replaced (frozen-safe)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "base_scenario": self.base_scenario,
            "n_wearers": self.n_wearers,
            "horizon_days": self.horizon_days,
            "seed": self.seed,
            "sampler": self.sampler.to_dict(),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetSpec":
        known = {"name", "base_scenario", "n_wearers", "horizon_days",
                 "seed", "sampler", "description"}
        data = check_mapping_keys("FleetSpec", data, known)
        if "name" not in data or "base_scenario" not in data:
            raise SpecError(
                "a FleetSpec needs at least name and base_scenario")
        kwargs: dict[str, Any] = {
            "name": data["name"],
            "base_scenario": data["base_scenario"],
        }
        for key in ("n_wearers", "horizon_days", "seed", "description"):
            if key in data:
                kwargs[key] = data[key]
        if "sampler" in data:
            kwargs["sampler"] = SamplerSpec.from_dict(data["sampler"])
        return cls(**kwargs)


def load_fleet_file(path: Any) -> FleetSpec:
    """The :class:`FleetSpec` stored in one JSON file.

    A fleet file is exactly one :meth:`FleetSpec.to_dict` payload
    (what ``repro fleet run <name> --json`` prints under ``"spec"``).
    Failures surface as :class:`~repro.errors.SpecError` naming the
    path.
    """
    # Deferred: repro.scenarios.files owns the on-disk error reporting.
    from repro.scenarios.files import load_json_payload

    payload = load_json_payload(path, what="fleet")
    try:
        return FleetSpec.from_dict(payload)
    except SpecError as exc:
        raise SpecError(f"fleet file {path}: {exc}") from None
