"""Turn a :class:`FleetSpec` into per-wearer scenario specs.

This is the deterministic heart of the fleet subsystem: every wearer's
environment is sampled *here, in the calling process*, from
``random.Random(seed + index)``, and the result is an ordinary
self-contained :class:`~repro.scenarios.spec.ScenarioSpec` with inline
segments.  The sweep backends then only ever see fully-materialized
JSON-shippable specs — which is why a fleet's outcome is
bitwise-identical across ``serial``/``thread``/``process`` and across
runs.

The base scenario's timeline (built once) is the *template*: the
sampler perturbs one copy per repetition until the wearer's segments
cover ``horizon_days``, and the wearer scenario's ``duration_s`` pins
the horizon exactly (a final over-long segment is simply cut off by
the engine).
"""

from __future__ import annotations

import dataclasses
import os
import random
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import RegistryError, SpecError
from repro.fleet.samplers import build_sampler
from repro.fleet.spec import FleetSpec
from repro.scenarios.builder import build_timeline
from repro.scenarios.library import get_scenario
from repro.scenarios.spec import (PolicySpec, ScenarioSpec, SegmentSpec,
                                  TimelineSpec)
from repro.units import SECONDS_PER_DAY

__all__ = [
    "run_wearer_chunk",
    "shard_indices",
    "template_segments",
    "wearer_name",
    "wearer_scenario",
    "wearer_scenarios",
]


def shard_indices(fleet: FleetSpec, shard_index: int,
                  shard_count: int) -> range:
    """The wearer indices belonging to one shard of a partition.

    Shards are *strided*: shard ``i`` of ``N`` owns every wearer with
    ``index % N == i``.  Striding keeps the shards balanced for any
    fleet size, and because each wearer's randomness comes from its
    own ``random.Random(seed + index)``, any subset of wearers can be
    materialized without generating the rest — which is what makes the
    partition safe in the first place.

    >>> list(shard_indices(FleetSpec(name="d", base_scenario="s",
    ...                              n_wearers=7), 1, 3))
    [1, 4]
    """
    for label, value in (("shard index", shard_index),
                         ("shard count", shard_count)):
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpecError(f"{label} must be an integer, got {value!r}")
    if shard_count < 1:
        raise SpecError(f"shard count must be at least 1, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise SpecError(
            f"shard index {shard_index} outside partition of {shard_count}")
    return range(shard_index, fleet.n_wearers, shard_count)


def template_segments(base: ScenarioSpec) -> tuple[SegmentSpec, ...]:
    """The base scenario's timeline as self-contained segment specs.

    Registry-named timelines are built and flattened, so the template
    works for inline and named timelines alike and the generated
    wearer specs never depend on timeline registrations.
    """
    timeline = build_timeline(base.timeline)
    return tuple(
        SegmentSpec(
            duration_s=seg.duration_s,
            lux=seg.lighting.lux,
            ambient_c=seg.thermal.ambient_c,
            skin_c=seg.thermal.skin_c,
            wind_ms=seg.thermal.wind_ms,
            label=seg.lighting.description,
        )
        for seg in timeline.segments
    )


def wearer_name(fleet: FleetSpec, index: int) -> str:
    """The generated scenario name of wearer ``index``.

    >>> wearer_name(FleetSpec(name="demo", base_scenario="night_shift"), 7)
    'demo::wearer_0007'
    """
    return f"{fleet.name}::wearer_{index:04d}"


def wearer_scenario(fleet: FleetSpec, index: int,
                    base: ScenarioSpec | None = None,
                    template: tuple[SegmentSpec, ...] | None = None,
                    ) -> ScenarioSpec:
    """The fully-sampled scenario of one wearer.

    Args:
        fleet: the population description.
        index: 0-based wearer index; seeds ``random.Random(seed + index)``.
        base / template: precomputed base scenario and template
            segments (resolved from the fleet spec when omitted —
            callers generating many wearers pass them to avoid
            rebuilding the timeline per wearer).
    """
    if index < 0 or index >= fleet.n_wearers:
        raise SpecError(
            f"wearer index {index} outside fleet of {fleet.n_wearers}")
    if base is None:
        base = get_scenario(fleet.base_scenario)
    if template is None:
        template = template_segments(base)
    rng = random.Random(fleet.seed + index)
    sampler = build_sampler(fleet.sampler)  # fresh: may hold wearer state
    horizon_s = fleet.horizon_days * SECONDS_PER_DAY
    segments: list[SegmentSpec] = []
    covered_s = 0.0
    day = 0
    while covered_s < horizon_s:
        sampled = tuple(sampler.sample_day(day, template, rng))
        day_duration = sum(seg.duration_s for seg in sampled)
        if not sampled or day_duration <= 0:
            raise SpecError(
                f"sampler {fleet.sampler.name!r} returned an empty day for "
                f"wearer {index} (day {day}); samplers must emit at least "
                "one segment with positive total duration")
        segments.extend(sampled)
        covered_s += day_duration
        day += 1
    return dataclasses.replace(
        base,
        name=wearer_name(fleet, index),
        timeline=TimelineSpec(segments=tuple(segments)),
        duration_s=horizon_s,
        description=(f"wearer {index} of fleet {fleet.name!r} "
                     f"({fleet.sampler.label}, seed {fleet.seed + index})"),
        trace="none",
    )


def wearer_scenarios(fleet: FleetSpec,
                     indices: Iterable[int] | None = None,
                     ) -> list[ScenarioSpec]:
    """The scenarios of ``indices`` (default: every wearer, in order).

    The base scenario and template are resolved once; each wearer then
    gets a fresh sampler and its own ``seed + index`` generator, so
    any wearer's scenario can also be regenerated alone
    (:func:`wearer_scenario`) and matches this list entry exactly.
    Sharded fleet runs pass :func:`shard_indices` to materialize only
    their own wearers — the other wearers' randomness is never drawn,
    and the generated specs are identical to the full run's entries.
    """
    base = get_scenario(fleet.base_scenario)
    template = template_segments(base)
    if indices is None:
        indices = range(fleet.n_wearers)
    return [wearer_scenario(fleet, index, base=base, template=template)
            for index in indices]


def run_wearer_chunk(context: Mapping[str, Any],
                     items: Sequence[int]) -> list[dict]:
    """Pool chunk handler: wearer indices in, outcome dicts out.

    The fleet half of the chunked-dispatch protocol
    (:mod:`repro.pool`): the parent broadcasts the :class:`FleetSpec`
    dict (plus an optional replacement ``"policy"`` for paired
    comparisons and the forwarded ``"crash"`` test hook) once per
    chunk, and ships only wearer indices per item.  The worker
    rematerializes each wearer from ``random.Random(seed + index)`` —
    deterministic, so the outcomes are bitwise-identical to a parent
    materialization — and runs it.  Because the worker resolves the
    base scenario and sampler by name in its own fresh ``import
    repro``, runtime-registered components raise the process backend's
    usual explanatory :class:`~repro.errors.SpecError`.

    Runs unchanged in-process; the chunked-vs-unchunked identity tests
    call it directly.
    """
    # Deferred: repro.scenarios.runner imports stay off the fleet
    # module's import path until a chunk actually runs.
    from repro.scenarios.runner import run_scenario

    fleet = FleetSpec.from_dict(context["fleet"])
    crash = context.get("crash") or os.environ.get("REPRO_WORKER_CRASH")
    try:
        base = get_scenario(fleet.base_scenario)
        if context.get("policy") is not None:
            base = dataclasses.replace(
                base,
                system=dataclasses.replace(
                    base.system,
                    policy=PolicySpec.from_dict(context["policy"])))
        template = template_segments(base)
        results = []
        for index in items:
            spec = wearer_scenario(fleet, index, base=base,
                                   template=template)
            if crash and crash == spec.name:
                # Same testable-crash hook as the scenario path: die
                # like an OOM-killed worker would.
                os._exit(13)
            results.append(run_scenario(spec).to_dict())
        return results
    except RegistryError as exc:
        raise SpecError(
            f"fleet {fleet.name!r} cannot run on the process backend: "
            f"{exc}. Worker processes import repro fresh, so only "
            "components registered at import time are visible; runtime "
            "@register_* registrations require the thread or serial "
            "backend."
        ) from None
