"""Built-in named fleets.

Naming convention mirrors the scenario library: lowercase
``snake_case`` phrases describing the *population* and its horizon
(``office_cohort_week``), not the sampler configuration — sampler
variants belong in the spec.

Every fleet here is asserted runnable (and its determinism pinned) by
``tests/fleet``; keep new entries small enough that a thread-backend
run stays interactive.
"""

from __future__ import annotations

from repro.errors import RegistryError
from repro.fleet.spec import FleetSpec, SamplerSpec

__all__ = [
    "register_fleet",
    "get_fleet",
    "fleet_names",
    "all_fleets",
]

_FLEETS: dict[str, FleetSpec] = {}


def register_fleet(spec: FleetSpec) -> FleetSpec:
    """Add a named fleet to the library; rejects duplicate names."""
    if spec.name in _FLEETS:
        raise RegistryError(f"fleet {spec.name!r} is already registered")
    _FLEETS[spec.name] = spec
    return spec


def get_fleet(name: str) -> FleetSpec:
    """The library fleet registered under ``name``."""
    try:
        return _FLEETS[name]
    except KeyError:
        raise RegistryError(
            f"unknown fleet {name!r}; known: {fleet_names()}"
        ) from None


def fleet_names() -> list[str]:
    """All library fleet names, sorted."""
    return sorted(_FLEETS)


def all_fleets() -> list[FleetSpec]:
    """All library fleets, sorted by name."""
    return [_FLEETS[name] for name in fleet_names()]


register_fleet(FleetSpec(
    name="office_cohort_week",
    base_scenario="sunny_office_worker",
    n_wearers=25,
    horizon_days=7,
    seed=2020,
    sampler=SamplerSpec("daily_jitter"),
    description="25 office commuters, one week of day-to-day jitter",
))

register_fleet(FleetSpec(
    name="overcast_commuters_fortnight",
    base_scenario="sunny_office_worker",
    n_wearers=40,
    horizon_days=14,
    seed=7,
    sampler=SamplerSpec("cloudy_streaks",
                        {"p_enter": 0.45, "p_exit": 0.35}),
    description="40 commuters through two weeks of persistent cloud spells",
))

register_fleet(FleetSpec(
    name="night_shift_ward_month",
    base_scenario="night_shift",
    n_wearers=30,
    horizon_days=30,
    seed=99,
    sampler=SamplerSpec("daily_jitter", {"lux_sigma": 0.2,
                                         "ambient_sigma_c": 1.0}),
    description="30 night-shift nurses over a month of ward light",
))
