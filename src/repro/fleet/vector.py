"""Vectorized fleet engine: step a whole population as numpy arrays.

The scalar engine (:class:`repro.core.simulation.DaySimulation`) costs
one Python interpreter pass per wearer per step, which caps fleet
throughput at tens of wearers per second.  This module steps all N
wearers of a fleet *simultaneously*: state of charge, detection carry,
downtime and totals live in float64 arrays, and every step performs a
fixed number of numpy operations regardless of the population size.

The scalar engine stays the oracle.  Rather than approximating it, the
array loop replicates its float operations exactly, in the same order
per wearer:

* **Shared lockstep.**  Every wearer of a fleet shares the system spec
  (battery, policy, step size, sleep power, fault windows) and horizon
  — only the sampled timelines differ — so all wearers see the same
  ``(t, dt)`` sequence (:func:`repro.core.simulation.step_grid`) and
  the same per-step fault state, and per-wearer data reduces to one
  intake value per step.
* **Array layout.**  Per wearer, the sampled timeline's segments are
  priced once through the shared memoized harvester and spread onto
  the step grid (``np.searchsorted`` over the segment end boundaries —
  the exact segment the engine's cursor lands on), giving an
  ``(n_wearers, n_steps)`` intake matrix.  Fault windows compile to
  per-step scalars (all wearers share them) via
  :meth:`repro.core.faults.FaultTimeline.indices_at`.
* **Branches become masks.**  The battery's early-return guards
  (``is_full``, ``is_undervoltage``, zero power) and the engine's
  brown-out branch turn into ``np.where`` masks whose selected lanes
  perform the scalar expressions verbatim; masked lanes contribute the
  same literal ``0.0`` the scalar early-returns produce.  ``np.floor``
  replaces ``float(int(...))`` (equal for the non-negative carry and
  coverage values), and ``np.interp`` on an array runs the same
  compiled kernel as the battery's scalar OCV lookup.

**Tolerance contract: none.**  Per-wearer accumulation order is
unchanged (each wearer's totals sum over steps exactly as the scalar
loop does, and the fleet reduction never sums across wearers), so the
vector path reproduces the scalar per-wearer ``SimulationResult``
totals — and therefore the canonical ``FleetResult`` JSON — *bitwise*.
``tests/fleet/test_vector_oracle.py`` asserts exact equality, not a
tolerance, across the fleet library, every registered policy, shard
patterns and horizons.

**Dispatch.**  Only policies exposing ``decide_batch``
(:class:`repro.policies.base.BatchPolicy` — the built-in
``energy_aware`` and ``static_duty_cycle``) and the stock
:class:`~repro.power.battery.LiPoBattery` can step through the array
loop.  Everything else — stateful forecasts, ``oracle_lookahead``,
the ``learned``/``learned_q`` networks, third-party components — falls
back to the per-wearer scalar loop behind the single dispatch point in
:func:`simulate_specs_vector`, so ``backend="vector"`` is safe for
*every* fleet and merely fastest for batchable ones.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Sequence

import numpy as np

from repro.core.simulation import SimulationResult, step_grid
from repro.errors import PowerModelError, SimulationError, SpecError
from repro.power.battery import _OCV_SOC_GRID, _OCV_VOLTS, LiPoBattery
from repro.scenarios.builder import build_simulation, build_timeline
from repro.scenarios.runner import ScenarioOutcome, SweepResult
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "DEFAULT_CHUNK",
    "batchable",
    "run_batch_vector",
    "simulate_specs_vector",
]

#: Wearers stepped per array pass.  Bounds the intake matrix at
#: ``chunk * n_steps`` float64 (a 4096-wearer week at 300 s steps is
#: ~66 MB); wearers are independent, so chunking changes nothing but
#: peak memory.
DEFAULT_CHUNK = 4096


def _uniform(specs: Sequence[ScenarioSpec]) -> bool:
    """True when the batch shares system, step, horizon and faults.

    What lockstep stepping requires — exactly the invariant
    :func:`repro.fleet.population.wearer_scenarios` guarantees (only
    ``timeline``/``name``/``description`` vary per wearer).
    """
    head = specs[0]
    return all(spec.system == head.system
               and spec.step_s == head.step_s
               and spec.duration_s == head.duration_s
               and spec.faults == head.faults
               for spec in specs)


def batchable(specs: Sequence[ScenarioSpec], sim=None) -> bool:
    """True when the whole batch can step through the array engine.

    Requires a uniform batch (:func:`_uniform`) with a pinned horizon,
    the stock :class:`~repro.power.battery.LiPoBattery` (whose
    arithmetic the array loop replicates) and a policy exposing
    ``decide_batch`` (:class:`~repro.policies.base.BatchPolicy`).

    Args:
        specs: the candidate batch.
        sim: a simulation already built from ``specs[0]``, to avoid
            building it twice (built here when omitted).
    """
    specs = list(specs)
    if not specs:
        return True
    if specs[0].duration_s is None or not _uniform(specs):
        return False
    if sim is None:
        sim = build_simulation(dataclasses.replace(specs[0], trace="none"))
    return (type(sim.battery) is LiPoBattery
            and callable(getattr(sim.policy, "decide_batch", None)))


def _run_scalar(spec: ScenarioSpec) -> SimulationResult:
    """One wearer through the scalar oracle (the fallback unit)."""
    lean = (spec if spec.trace == "none"
            else dataclasses.replace(spec, trace="none"))
    return build_simulation(lean).run()


def simulate_specs_vector(specs: Sequence[ScenarioSpec],
                          chunk: int = DEFAULT_CHUNK,
                          ) -> list[SimulationResult]:
    """Per-wearer results, bitwise-identical to the scalar engine.

    The vector analogue of running ``build_simulation(spec).run()``
    over the batch: summary totals only (the vector engine keeps no
    per-step trace — fleet runs never do).  This is also the single
    dispatch point of the subsystem: batchable batches (see
    :func:`batchable`) step through the array loop in chunks of
    ``chunk`` wearers, everything else drops to the per-wearer scalar
    loop — so callers get the scalar-oracle numbers either way.
    """
    specs = list(specs)
    if not specs:
        return []
    if chunk < 1:
        raise SpecError(f"chunk must be at least 1, got {chunk!r}")
    sim = build_simulation(dataclasses.replace(specs[0], trace="none"))
    if not batchable(specs, sim):
        return [_run_scalar(spec) for spec in specs]
    results: list[SimulationResult] = []
    for start in range(0, len(specs), chunk):
        results.extend(_simulate_chunk(specs[start:start + chunk], sim))
    return results


def run_batch_vector(specs: Sequence[ScenarioSpec],
                     chunk: int = DEFAULT_CHUNK) -> SweepResult:
    """The vector backend's :meth:`ScenarioRunner.run_batch` twin.

    Same contract: outcomes in input order, unique names required,
    provenance on the result.  ``backend`` records ``"vector"``
    whether the batch stepped through the array loop or fell back —
    the outcomes are identical either way, and the canonical payload
    never contains the backend.
    """
    specs = list(specs)
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise SpecError("batch scenario names must be unique")
    started = time.perf_counter()
    results = simulate_specs_vector(specs, chunk=chunk)
    outcomes = tuple(ScenarioOutcome.from_result(spec.name, result)
                     for spec, result in zip(specs, results))
    return SweepResult(outcomes=outcomes, backend="vector",
                       wall_time_s=time.perf_counter() - started)


def _intake_matrix(specs: Sequence[ScenarioSpec], harvester,
                   times: Sequence[float]) -> np.ndarray:
    """Per-step harvest intake, one row per wearer.

    Each wearer's segments are priced once through the shared memoized
    harvester (``battery_intake_w`` is a pure function of the
    condition pair, so sharing one cache across wearers changes no
    floats) and spread onto the step grid: ``searchsorted(side=
    "right")`` over the cumulative end boundaries, clipped to the last
    segment, is exactly the segment the engine's monotone cursor
    evaluates at each step time (see
    :meth:`~repro.harvest.environment.EnvironmentTimeline.indices_at`).

    Rows are memoized per distinct timeline spec (hashable frozen
    dataclasses): fleets whose sampler repeats timelines across
    wearers — ``identity`` above all — price the whole population in
    one row.  For such batch-friendly fleets the per-segment harvest
    solves (Lambert-W bisection per *distinct* condition pair, a
    millisecond-scale cost no engine can vectorize away bitwise)
    amortize to nothing, which is where the vector engine's
    multipliers come from; fully jittered fleets keep their per-wearer
    pricing bill on every backend.
    """
    t_arr = np.asarray(times)
    intake = np.empty((len(specs), len(times)))
    rows: dict = {}
    for row, spec in enumerate(specs):
        cached = rows.get(spec.timeline)
        if cached is not None:
            intake[row] = cached
            continue
        timeline = build_timeline(spec.timeline)
        powers = np.array([
            harvester.battery_intake_w(segment.lighting, segment.thermal)
            for segment in timeline.segments])
        boundaries = np.asarray(timeline.boundaries_s)
        seg_idx = np.minimum(
            np.searchsorted(boundaries, t_arr, side="right"),
            len(powers) - 1)
        intake[row] = powers[seg_idx]
        rows[spec.timeline] = intake[row]
    return intake


def _simulate_chunk(specs: Sequence[ScenarioSpec],
                    sim) -> list[SimulationResult]:
    """Step one chunk of wearers through the array loop.

    ``sim`` is a *fresh* (never stepped) simulation built from any
    spec of the batch: it supplies the shared components — battery
    parameters and initial charge, policy, detection energy, fault
    timeline, memoized harvester.  Every numpy expression below is the
    scalar loop's float arithmetic verbatim; comments reference the
    matching lines of :meth:`DaySimulation.run` and
    :class:`~repro.power.battery.LiPoBattery`.
    """
    n = len(specs)
    horizon = float(specs[0].duration_s)
    times, dts = step_grid(horizon, sim.step_s)
    n_steps = len(times)

    policy = sim.policy
    reset = getattr(policy, "reset", None)
    if reset is not None:
        reset()
    decide_batch = policy.decide_batch
    max_rate = policy.max_rate_per_min
    detection_j = sim.detection_energy_j
    sleep_power_w = sim.sleep_power_w

    # Fault state is shared by every wearer (windows ride on the base
    # scenario), so it compiles to per-step *scalars* — including the
    # fault-demand total, accumulated in step order exactly as the
    # scalar loop's `fault_demand_j += extra_load_w * dt`.
    faults = sim.faults
    if faults is not None:
        states = [faults.intervals[i] for i in faults.indices_at(times)]
        scales = np.array([state.harvest_scale for state in states])
        overheads = [sleep_power_w + state.extra_load_w for state in states]
        sensor_oks = [state.sensor_ok for state in states]
        fault_demand_j = 0.0
        for state, dt in zip(states, dts):
            fault_demand_j += state.extra_load_w * dt
    else:
        # Mirror the engine's `faults is None` fast path: no scaling
        # op at all (not a multiply by 1.0), plain sleep overhead.
        scales = None
        overheads = [sleep_power_w] * n_steps
        sensor_oks = [True] * n_steps
        fault_demand_j = 0.0

    intake = _intake_matrix(specs, sim.harvester, times)
    if scales is not None:
        intake = intake * scales[np.newaxis, :]
    if np.any(intake < 0.0):
        # LiPoBattery.charge would raise on the scalar path too.
        raise PowerModelError("charge power and duration cannot be negative")

    # Battery parameters (all wearers start from identical fresh cells).
    battery = sim.battery
    capacity_c = battery.capacity_c
    efficiency = battery.charge_efficiency
    ov_volts = battery.overvoltage_v
    uv_volts = battery.undervoltage_lockout_v
    uv_floor_c = battery._uv_floor_c
    initial_soc = battery.state_of_charge
    charge_c = np.full(n, battery.charge_c)

    carry = np.zeros(n)
    total_harvest = np.zeros(n)
    total_consumed = np.zeros(n)
    total_detections = np.zeros(n)
    downtime = np.zeros(n)

    for k in range(n_steps):
        t = times[k]
        dt = dts[k]
        intake_k = intake[:, k]
        overhead_w = overheads[k]

        # LiPoBattery.charge: guards (zero power / is_full) as a mask;
        # selected lanes run `delta_c = p*dt/V*eta`, `accepted =
        # min(delta_c, capacity - charge)`, return `accepted*V/eta`.
        soc = charge_c / capacity_c
        volts = np.interp(soc, _OCV_SOC_GRID, _OCV_VOLTS)
        can_charge = (intake_k > 0.0) & (volts < ov_volts)
        accepted = np.where(
            can_charge,
            np.minimum(intake_k * dt / volts * efficiency,
                       capacity_c - charge_c),
            0.0)
        charge_c = charge_c + accepted
        total_harvest += accepted * volts / efficiency

        # The policy observes the post-charge SoC and the effective
        # (fault-scaled) intake, exactly like the scalar observation.
        soc = charge_c / capacity_c
        rates = np.asarray(decide_batch(t, dt, intake_k, soc), dtype=float)
        try:
            rates = np.broadcast_to(rates, (n,))
        except ValueError:
            raise SimulationError(
                f"policy {type(policy).__name__} returned a batch of "
                f"shape {rates.shape} for {n} wearers") from None
        if not np.all(rates >= 0.0):  # rejects negatives and NaN alike
            raise SimulationError(
                f"policy {type(policy).__name__} returned an invalid "
                f"detection rate at t={t:.0f}s")
        rates = np.minimum(rates, max_rate)
        step_cap = max(1.0, max_rate * dt / 60.0)
        if sensor_oks[k]:
            carry = carry + rates * dt / 60.0
            detections_now = np.floor(np.minimum(carry, step_cap))
            carry = carry - detections_now
        else:
            detections_now = np.zeros(n)

        # LiPoBattery.discharge with the engine's demand: guards (zero
        # power / is_undervoltage) as a mask; selected lanes run
        # `delta_c = p*dt/V`, `delivered = min(delta_c, available)`.
        demand_j = detections_now * detection_j + overhead_w * dt
        volts = np.interp(soc, _OCV_SOC_GRID, _OCV_VOLTS)
        power_w = demand_j / dt
        can_discharge = (power_w != 0.0) & (volts > uv_volts)
        delivered_c = np.where(
            can_discharge,
            np.minimum(power_w * dt / volts,
                       np.maximum(0.0, charge_c - uv_floor_c)),
            0.0)
        charge_c = charge_c - delivered_c
        delivered_j = delivered_c * volts

        # Brown-out branch as a mask (same 1e-12 slack): only whole
        # detections execute, remainder back on the bounded carry.
        short = delivered_j + 1e-12 < demand_j
        if short.any():
            covered = np.maximum(0.0, delivered_j - overhead_w * dt)
            executed = np.floor(covered / detection_j)
            carry = np.where(
                short,
                np.minimum(carry + detections_now - executed, step_cap),
                carry)
            detections_now = np.where(short, executed, detections_now)
            downtime = np.where(short, downtime + dt, downtime)
        total_consumed += delivered_j
        total_detections += detections_now

    return [
        SimulationResult(
            total_detections=float(total_detections[i]),
            initial_soc=initial_soc,
            final_soc=float(charge_c[i] / capacity_c),
            total_harvest_j=float(total_harvest[i]),
            total_consumed_j=float(total_consumed[i]),
            duration_s=horizon,
            downtime_s=float(downtime[i]),
            fault_demand_j=fault_demand_j,
        )
        for i in range(n)
    ]
