"""Resilient shard orchestration: manifest, retry, resume, merge.

``repro fleet orchestrate`` drives a sharded campaign — a fleet
population study or a chaos campaign — as a set of independent
subprocess tasks with a *manifest* file recording progress.  The
design goals, in order:

1. **Crash-safe**: the manifest and every shard output are written
   atomically (temp file + rename), so a killed orchestrator never
   leaves a half-written file that poisons a resume.
2. **Resume-exact**: on restart the orchestrator re-validates every
   shard output on disk against the manifest's spec and reuses the
   valid ones; only missing or corrupt shards re-run.  Because shard
   merging is the fleet's merge-exact reduction, a resumed campaign's
   merged payload is bitwise-identical to an uninterrupted run.
3. **Fault-tolerant**: each shard runs under a wall-clock timeout and
   a bounded retry budget with exponential backoff, so one wedged
   worker cannot hang the campaign and one flaky failure does not
   abort it.

Tasks are ordinary ``repro`` CLI invocations (``fleet run --shard`` /
``chaos run --shard``), so a manifest is also a recipe a human — or a
different machine per shard — can execute by hand.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.errors import SpecError
from repro.fleet.spec import FleetSpec
from repro.scenarios.spec import canonical_json, check_mapping_keys

__all__ = ["plan_manifest", "write_manifest", "load_manifest",
           "orchestrate", "MANIFEST_NAME"]

MANIFEST_NAME = "manifest.json"
SPEC_NAME = "spec.json"
MERGED_NAME = "merged.json"

KINDS = ("fleet", "chaos")
TASK_STATUSES = ("pending", "done", "failed")

#: ``runner(argv, cwd, timeout_s) -> (returncode, detail)`` — the
#: injectable task executor.  ``argv`` is the ``repro`` subcommand
#: line (no interpreter prefix).
TaskRunner = Callable[[list[str], Path, float], tuple[int, str]]


def _atomic_write(path: Path, text: str) -> None:
    """Write via a sibling temp file + rename so readers (and resumes)
    never observe a torn file."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _spec_of(kind: str, payload: Mapping[str, Any]):
    if kind == "fleet":
        return FleetSpec.from_dict(payload)
    from repro.chaos import ChaosSpec

    return ChaosSpec.from_dict(payload)


def _task_count_of(kind: str, spec) -> int:
    return spec.n_wearers if kind == "fleet" else spec.n_cases


def plan_manifest(kind: str, spec, shard_count: int,
                  timeout_s: float = 600.0, max_attempts: int = 3,
                  backoff_s: float = 1.0, workers: int = 1,
                  backend: str = "thread") -> dict[str, Any]:
    """The manifest payload for a fresh campaign.

    Args:
        kind: ``"fleet"`` or ``"chaos"``.
        spec: the :class:`~repro.fleet.spec.FleetSpec` or
            :class:`~repro.chaos.ChaosSpec` to shard.
        shard_count: how many shard tasks to partition into.
        timeout_s: per-shard wall-clock ceiling.
        max_attempts: total tries per shard (1 = no retry).
        backoff_s: base of the exponential retry backoff
            (``backoff_s * 2**(attempt - 1)`` seconds).
        workers / backend: forwarded to each shard's ``--workers`` /
            ``--backend``.
    """
    if kind not in KINDS:
        raise SpecError(f"unknown campaign kind {kind!r}; known: "
                        f"{list(KINDS)}")
    if isinstance(shard_count, bool) or not isinstance(shard_count, int):
        raise SpecError(f"shard count must be an integer, "
                        f"got {shard_count!r}")
    population = _task_count_of(kind, spec)
    if not 1 <= shard_count <= population:
        raise SpecError(
            f"shard count must lie in [1, {population}] for this "
            f"{kind} campaign, got {shard_count}")
    if max_attempts < 1:
        raise SpecError(f"max_attempts must be at least 1, "
                        f"got {max_attempts}")
    if timeout_s <= 0:
        raise SpecError(f"timeout must be positive, got {timeout_s}")
    if backoff_s < 0:
        raise SpecError(f"backoff must be non-negative, got {backoff_s}")
    subcommand = ["fleet", "run"] if kind == "fleet" else ["chaos", "run"]
    tasks = []
    for index in range(shard_count):
        out = f"part{index:04d}.json"
        argv = subcommand + [
            SPEC_NAME, "--shard", f"{index}/{shard_count}", "--out", out,
            "--workers", str(workers), "--backend", backend,
        ]
        tasks.append({"id": index, "argv": argv, "out": out,
                      "status": "pending", "attempts": 0})
    return {
        "kind": kind,
        "spec": spec.to_dict(),
        "shard_count": shard_count,
        "timeout_s": float(timeout_s),
        "max_attempts": int(max_attempts),
        "backoff_s": float(backoff_s),
        "merged_out": MERGED_NAME,
        "tasks": tasks,
    }


def write_manifest(workspace: str | Path,
                   manifest: Mapping[str, Any]) -> Path:
    """Materialise a campaign workspace: the manifest plus the spec
    file every shard task reads.  Returns the manifest path."""
    workspace = Path(workspace)
    workspace.mkdir(parents=True, exist_ok=True)
    _atomic_write(workspace / SPEC_NAME,
                  canonical_json(manifest["spec"]) + "\n")
    path = workspace / MANIFEST_NAME
    _atomic_write(path, canonical_json(dict(manifest)) + "\n")
    return path


def load_manifest(workspace: str | Path) -> dict[str, Any]:
    """The validated manifest of an existing workspace."""
    path = Path(workspace) / MANIFEST_NAME
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise SpecError(f"cannot read manifest {path}: {exc}") from None
    except ValueError as exc:
        raise SpecError(f"manifest {path} is not valid JSON: "
                        f"{exc}") from None
    if not isinstance(payload, dict):
        raise SpecError(f"manifest {path} must be a JSON object, got "
                        f"{type(payload).__name__}")
    required = ("kind", "spec", "shard_count", "timeout_s",
                "max_attempts", "backoff_s", "merged_out", "tasks")
    payload = check_mapping_keys("manifest", payload, known=required,
                                 required=required)
    if payload["kind"] not in KINDS:
        raise SpecError(f"manifest {path}: unknown kind "
                        f"{payload['kind']!r}; known: {list(KINDS)}")
    tasks = payload["tasks"]
    if not isinstance(tasks, list) or not tasks:
        raise SpecError(f"manifest {path} has no tasks")
    task_keys = ("id", "argv", "out", "status", "attempts")
    for task in tasks:
        check_mapping_keys("manifest task", task, known=task_keys,
                           required=task_keys)
        if task["status"] not in TASK_STATUSES:
            raise SpecError(
                f"manifest {path}: task {task['id']} has unknown status "
                f"{task['status']!r}; known: {list(TASK_STATUSES)}")
    _spec_of(payload["kind"], payload["spec"])  # validates the spec
    return payload


def _load_partial(kind: str, path: Path):
    if kind == "fleet":
        from repro.fleet.result import load_partial_file

        return load_partial_file(path)
    from repro.chaos import PartialCampaignResult, load_campaign_result

    partial = load_campaign_result(path)
    if not isinstance(partial, PartialCampaignResult):
        raise SpecError(f"{path} holds a full campaign result, not a "
                        "shard")
    return partial


def _validate_shard_output(manifest: Mapping[str, Any], task, spec,
                           workspace: Path) -> object | None:
    """The shard's partial result if its output file is present and
    consistent with the manifest; ``None`` otherwise."""
    path = workspace / task["out"]
    if not path.is_file():
        return None
    try:
        partial = _load_partial(manifest["kind"], path)
    except SpecError:
        return None
    if (partial.spec != spec
            or partial.shard_index != task["id"]
            or partial.shard_count != manifest["shard_count"]):
        return None
    return partial


def _default_runner(argv: list[str], cwd: Path,
                    timeout_s: float) -> tuple[int, str]:
    """Run one shard as ``python -m repro ...`` under a timeout.

    The child runs with the workspace as its working directory (so the
    manifest's relative paths resolve), which would break a relative
    ``PYTHONPATH`` — so the parent's own ``repro`` location is pinned
    absolutely on the child's path.
    """
    import repro

    package_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (package_root + os.pathsep + existing
                         if existing else package_root)
    command = [sys.executable, "-m", "repro", *argv]
    try:
        proc = subprocess.run(command, cwd=cwd, timeout=timeout_s,
                              capture_output=True, text=True, env=env)
    except subprocess.TimeoutExpired:
        return 124, f"timed out after {timeout_s:g} s"
    detail = (proc.stderr or proc.stdout or "").strip().splitlines()
    return proc.returncode, detail[-1] if detail else ""


def _merge(kind: str, partials):
    if kind == "fleet":
        from repro.fleet.result import FleetResult

        return FleetResult.merge(partials)
    from repro.chaos import CampaignResult

    return CampaignResult.merge(partials)


def orchestrate(workspace: str | Path,
                runner: TaskRunner | None = None,
                sleep: Callable[[float], None] = time.sleep,
                echo: Callable[[str], None] | None = None,
                ) -> dict[str, Any]:
    """Run (or resume) a campaign workspace to completion and merge.

    Reconciliation happens before anything runs: a shard whose output
    file already exists and validates against the manifest is marked
    done and **never re-simulated** — this is what makes killing the
    orchestrator mid-campaign recoverable.  Conversely a shard marked
    done whose output is missing or corrupt is demoted and re-run.

    Args:
        workspace: the directory holding ``manifest.json``.
        runner: injectable task executor (tests); defaults to a
            ``python -m repro`` subprocess per shard.
        sleep: injectable backoff sleep (tests).
        echo: optional progress line sink (the CLI passes ``print``).

    Returns:
        A summary dict: kind, shard counts (``reused`` / ``ran`` /
        ``failed``), the merged payload path and its SHA-256 digest,
        and for chaos campaigns the judged verdict totals.

    Raises:
        SpecError: when any shard exhausts its retry budget — the
            manifest keeps the failure state so a later resume retries
            only the failed shards.
    """
    workspace = Path(workspace)
    manifest = load_manifest(workspace)
    kind = manifest["kind"]
    spec = _spec_of(kind, manifest["spec"])
    run = runner if runner is not None else _default_runner
    say = echo if echo is not None else (lambda line: None)

    def persist() -> None:
        _atomic_write(workspace / MANIFEST_NAME,
                      canonical_json(manifest) + "\n")

    # Reconcile the manifest against what is actually on disk.
    partials: dict[int, object] = {}
    reused = 0
    for task in manifest["tasks"]:
        partial = _validate_shard_output(manifest, task, spec, workspace)
        if partial is not None:
            if task["status"] != "done":
                task["status"] = "done"
            partials[task["id"]] = partial
            reused += 1
        else:
            # Missing or corrupt evidence: (re-)run with a fresh retry
            # budget — each orchestrate invocation grants unfinished
            # shards the full max_attempts, so resuming after an
            # exhausted budget actually retries.
            task["status"] = "pending"
            task["attempts"] = 0
    persist()
    if reused:
        say(f"resume: {reused}/{len(manifest['tasks'])} shard(s) "
            "already on disk, reusing")

    ran = 0
    failures: list[str] = []
    for task in manifest["tasks"]:
        if task["status"] == "done":
            continue
        succeeded = False
        while task["attempts"] < manifest["max_attempts"]:
            attempt = task["attempts"] + 1
            if attempt > 1:
                delay = manifest["backoff_s"] * 2 ** (attempt - 2)
                if delay > 0:
                    say(f"shard {task['id']}: backing off "
                        f"{delay:g} s before attempt {attempt}")
                    sleep(delay)
            task["attempts"] = attempt
            persist()
            say(f"shard {task['id']}: attempt {attempt}/"
                f"{manifest['max_attempts']}")
            code, detail = run(list(task["argv"]), workspace,
                               manifest["timeout_s"])
            if code == 0:
                partial = _validate_shard_output(manifest, task, spec,
                                                 workspace)
                if partial is not None:
                    task["status"] = "done"
                    partials[task["id"]] = partial
                    persist()
                    ran += 1
                    succeeded = True
                    break
                detail = (f"exited 0 but {task['out']} is missing or "
                          "inconsistent with the manifest")
            say(f"shard {task['id']}: attempt {attempt} failed "
                f"(exit {code}{': ' + detail if detail else ''})")
        if not succeeded:
            task["status"] = "failed"
            persist()
            failures.append(
                f"shard {task['id']} failed after "
                f"{task['attempts']} attempt(s)")
    if failures:
        raise SpecError(
            "campaign incomplete: " + "; ".join(failures)
            + ". Finished shards are kept; re-run `repro fleet "
            "orchestrate --resume` on the same directory to retry "
            "only the failures.")

    ordered = [partials[task["id"]] for task in manifest["tasks"]]
    merged = _merge(kind, ordered)
    if kind == "fleet":
        payload = {"spec": spec.to_dict(), "result": merged.to_dict()}
    else:
        payload = merged.to_dict()
    text = canonical_json(payload) + "\n"
    merged_path = workspace / manifest["merged_out"]
    _atomic_write(merged_path, text)
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()

    summary: dict[str, Any] = {
        "kind": kind,
        "shard_count": manifest["shard_count"],
        "reused": reused,
        "ran": ran,
        "merged_out": str(merged_path),
        "sha256": digest,
    }
    if kind == "chaos":
        summary["verdicts"] = merged.counts()
    return summary
