"""Fan a fleet out over the sweep backends and reduce the population.

:class:`FleetRunner` is a thin orchestration layer over
:class:`~repro.scenarios.runner.ScenarioRunner`: it materializes every
wearer's scenario (:mod:`repro.fleet.population`), runs the batch on
the chosen backend, and reduces the per-wearer outcomes into a
:class:`~repro.fleet.result.FleetResult`.  Because sampling happens
before the fan-out, the result's canonical payload is identical on
every backend — the backends only change how fast you get it.

:meth:`FleetRunner.compare` reruns the *same sampled population* under
candidate power policies (every wearer's environment is held fixed
while the policy varies — a paired experiment), returning a
:class:`FleetComparison` ranked by worst-case battery health first:
p5 final state of charge, then median detections per day.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import SpecError
from repro.fleet.population import wearer_scenarios
from repro.fleet.result import FleetResult
from repro.fleet.spec import FleetSpec
from repro.policies.grid import policy_label
from repro.scenarios.runner import BACKENDS, ScenarioRunner
from repro.scenarios.spec import PolicySpec

__all__ = ["FleetRunner", "ComparisonEntry", "FleetComparison", "run_fleet"]


@dataclass(frozen=True)
class ComparisonEntry:
    """One candidate policy and the fleet it produced."""

    label: str
    policy: PolicySpec
    result: FleetResult

    @property
    def rank_key(self) -> tuple:
        """Sort key: best p5 final SoC, then median detections/day."""
        return (-self.result.final_soc.p5,
                -self.result.detections_per_day.p50)

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "policy": self.policy.to_dict(),
            "result": self.result.to_dict(),
        }


@dataclass(frozen=True)
class FleetComparison:
    """Outcome of a policy comparison over one sampled population.

    Attributes:
        fleet: the compared fleet's name.
        entries: one entry per candidate policy, in input order.
        backend: the sweep backend that executed the runs.
        wall_time_s: wall-clock spent across all candidates.
    """

    fleet: str
    entries: tuple[ComparisonEntry, ...]
    backend: str = ""
    wall_time_s: float = 0.0

    def ranked(self) -> list[ComparisonEntry]:
        """Entries best-first: p5 final SoC, then median detections/day
        (stable for exact ties)."""
        return sorted(self.entries, key=lambda entry: entry.rank_key)

    @property
    def best(self) -> ComparisonEntry:
        """The top-ranked candidate."""
        if not self.entries:
            raise SpecError("empty fleet comparison has no best entry")
        return self.ranked()[0]

    def to_dict(self) -> dict[str, Any]:
        """Canonical payload: ranking only, no timing provenance."""
        return {
            "fleet": self.fleet,
            "ranking": [entry.to_dict() for entry in self.ranked()],
        }

    def format_table(self) -> str:
        """A fixed-width best-first ranking report."""
        header = (f"{'rank':>4s} {'policy':42s} {'SoC p5':>7s} "
                  f"{'det/day p50':>11s} {'neutral':>8s} {'downtime p95':>12s}")
        lines = [header, "-" * len(header)]
        for position, entry in enumerate(self.ranked(), start=1):
            r = entry.result
            lines.append(
                f"{position:4d} {entry.label:42s} "
                f"{100 * r.final_soc.p5:6.1f}% "
                f"{r.detections_per_day.p50:11.0f} "
                f"{100 * r.fraction_energy_neutral:7.1f}% "
                f"{r.downtime_hours.p95:10.1f} h")
        return "\n".join(lines)


class FleetRunner:
    """Executes fleet studies, optionally in parallel.

    Args:
        workers: worker count handed to the underlying
            :class:`~repro.scenarios.runner.ScenarioRunner`.
        backend: ``"serial"``, ``"thread"`` (default) or ``"process"``.
            Fleet wearer scenarios are always self-contained (inline
            segments, import-time components), so every backend works
            for every fleet — the process pool is the right choice
            from roughly a hundred wearer-weeks up.
    """

    def __init__(self, workers: int = 4, backend: str = "thread") -> None:
        if backend not in BACKENDS:
            raise SpecError(
                f"unknown backend {backend!r}; known: {list(BACKENDS)}")
        self._runner = ScenarioRunner(workers=workers, backend=backend)
        self.workers = workers
        self.backend = backend

    def run(self, fleet: FleetSpec,
            workers: int | None = None,
            backend: str | None = None) -> FleetResult:
        """Sample, sweep and reduce one fleet.

        The canonical part of the returned result
        (:meth:`~repro.fleet.result.FleetResult.to_dict`) depends only
        on the spec; ``backend``/``wall_time_s`` record provenance.
        """
        specs = wearer_scenarios(fleet)
        sweep = self._runner.run_batch(specs, workers=workers,
                                       backend=backend)
        return FleetResult.from_outcomes(fleet, sweep.outcomes,
                                         backend=sweep.backend,
                                         wall_time_s=sweep.wall_time_s)

    def compare(self, fleet: FleetSpec,
                policies: Sequence[PolicySpec],
                workers: int | None = None,
                backend: str | None = None) -> FleetComparison:
        """Rerun one sampled population under each candidate policy.

        The population is sampled once; every candidate sees exactly
        the same wearer environments (a paired comparison), with only
        ``system.policy`` replaced per wearer scenario.

        Args:
            fleet: the population description.
            policies: candidate :class:`PolicySpec` values; duplicate
                (name, params) candidates are rejected.
            workers / backend: per-call overrides, as in :meth:`run`.
        """
        policies = list(policies)
        if not policies:
            raise SpecError("a fleet comparison needs at least one policy")
        keys = [(p.name, tuple(sorted(p.params.items()))) for p in policies]
        if len(set(keys)) != len(keys):
            raise SpecError("duplicate policies in fleet comparison")
        base_specs = wearer_scenarios(fleet)
        started = time.perf_counter()
        entries = []
        used = self.backend if backend is None else backend
        for policy in policies:
            specs = [
                dataclasses.replace(
                    spec,
                    system=dataclasses.replace(spec.system, policy=policy))
                for spec in base_specs
            ]
            sweep = self._runner.run_batch(specs, workers=workers,
                                           backend=backend)
            used = sweep.backend
            entries.append(ComparisonEntry(
                label=policy_label(policy),
                policy=policy,
                result=FleetResult.from_outcomes(
                    fleet, sweep.outcomes, backend=sweep.backend,
                    wall_time_s=sweep.wall_time_s),
            ))
        return FleetComparison(
            fleet=fleet.name,
            entries=tuple(entries),
            backend=used,
            wall_time_s=time.perf_counter() - started,
        )


def run_fleet(fleet: FleetSpec, workers: int = 4,
              backend: str = "thread") -> FleetResult:
    """One-shot convenience: ``FleetRunner(...).run(fleet)``."""
    return FleetRunner(workers=workers, backend=backend).run(fleet)
