"""Fan a fleet out over the sweep backends and reduce the population.

:class:`FleetRunner` is a thin orchestration layer over
:class:`~repro.scenarios.runner.ScenarioRunner`: it materializes every
wearer's scenario (:mod:`repro.fleet.population`), runs the batch on
the chosen backend, and reduces the per-wearer outcomes into a
:class:`~repro.fleet.result.FleetResult`.  On the process backend the
materialization itself moves into the shared worker pool
(:mod:`repro.pool`): the fleet spec is broadcast once per chunk, bare
wearer indices ride as items, and each worker samples its own wearers
from ``random.Random(seed + index)``.  Sampling is a pure function of
the spec either way, so the result's canonical payload is identical on
every backend — the backends only change how fast you get it.  On top
of the scenario sweep pools, fleets can run on the fleet-only
``"vector"`` backend (:mod:`repro.fleet.vector`), which steps the
whole population as numpy arrays and reproduces the scalar engine's
payload bitwise.

:meth:`FleetRunner.compare` reruns the *same sampled population* under
candidate power policies (every wearer's environment is held fixed
while the policy varies — a paired experiment), returning a
:class:`FleetComparison` ranked by survival first: fraction of wearers
that finished energy-neutral, then p5 final state of charge, then
median detections per day.  :meth:`FleetRunner.run_grid` lifts the
scenario-level policy grid search to the population: every
:class:`~repro.policies.grid.PolicyGrid` candidate is evaluated
against the same sampled wearers and ranked by the same ordering.

Sharded execution splits one fleet across machines:
``run(fleet, shard=(i, N))`` materializes only the wearers with
``index % N == i`` (per-wearer ``random.Random(seed + index)`` makes
any subset independently generatable) and returns a
:class:`~repro.fleet.result.PartialFleetResult`;
:meth:`~repro.fleet.result.FleetResult.merge` reduces a complete
partition to a result bitwise-identical to the unsharded run.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import SpecError
from repro.fleet.population import (shard_indices, wearer_name,
                                    wearer_scenarios)
from repro.fleet.result import FleetResult, PartialFleetResult, WearerRecord
from repro.fleet.spec import FleetSpec
from repro.fleet.vector import run_batch_vector
from repro.policies.grid import PolicyGrid, expand_grids, policy_label
from repro.scenarios.runner import BACKENDS as SCENARIO_BACKENDS
from repro.scenarios.runner import (ScenarioOutcome, ScenarioRunner,
                                    SweepResult)
from repro.scenarios.spec import PolicySpec, canonical_json

__all__ = ["BACKENDS", "FleetRunner", "ComparisonEntry", "FleetComparison",
           "FleetGridResult", "run_fleet"]

#: Every backend a fleet study can run on: the scenario sweep backends
#: plus the fleet-only ``"vector"`` array engine
#: (:mod:`repro.fleet.vector`).  All of them produce bitwise-identical
#: canonical payloads; they only change how fast you get them.
BACKENDS = (*SCENARIO_BACKENDS, "vector")


@dataclass(frozen=True)
class ComparisonEntry:
    """One candidate policy and the fleet it produced."""

    label: str
    policy: PolicySpec
    result: FleetResult

    @property
    def rank_key(self) -> tuple:
        """Sort key: most wearers energy-neutral, then best p5 final
        SoC, then median detections/day."""
        return (-self.result.fraction_energy_neutral,
                -self.result.final_soc.p5,
                -self.result.detections_per_day.p50)

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "policy": self.policy.to_dict(),
            "result": self.result.to_dict(),
        }


@dataclass(frozen=True)
class FleetComparison:
    """Outcome of a policy comparison over one sampled population.

    Attributes:
        fleet: the compared fleet's name.
        entries: one entry per candidate policy, in input order.
        backend: the sweep backend that executed the runs.
        wall_time_s: wall-clock spent across all candidates.
    """

    fleet: str
    entries: tuple[ComparisonEntry, ...]
    backend: str = ""
    wall_time_s: float = 0.0

    #: What an empty result calls itself in error messages.
    _what = "fleet comparison"

    def ranked(self) -> list[ComparisonEntry]:
        """Entries best-first: fraction energy-neutral, then p5 final
        SoC, then median detections/day (stable for exact ties)."""
        return sorted(self.entries, key=lambda entry: entry.rank_key)

    @property
    def best(self) -> ComparisonEntry:
        """The top-ranked candidate."""
        if not self.entries:
            raise SpecError(f"empty {self._what} has no best entry")
        return self.ranked()[0]

    @property
    def policy_names(self) -> list[str]:
        """Distinct policy names evaluated, sorted."""
        return sorted({entry.policy.name for entry in self.entries})

    def to_dict(self) -> dict[str, Any]:
        """Canonical payload: ranking only, no timing provenance."""
        return {
            "fleet": self.fleet,
            "ranking": [entry.to_dict() for entry in self.ranked()],
        }

    def format_table(self) -> str:
        """A fixed-width best-first ranking report."""
        header = (f"{'rank':>4s} {'policy':42s} {'neutral':>8s} "
                  f"{'SoC p5':>7s} {'det/day p50':>11s} "
                  f"{'downtime p95':>12s}")
        lines = [header, "-" * len(header)]
        for position, entry in enumerate(self.ranked(), start=1):
            r = entry.result
            lines.append(
                f"{position:4d} {entry.label:42s} "
                f"{100 * r.fraction_energy_neutral:7.1f}% "
                f"{100 * r.final_soc.p5:6.1f}% "
                f"{r.detections_per_day.p50:11.0f} "
                f"{r.downtime_hours.p95:10.1f} h")
        return "\n".join(lines)


@dataclass(frozen=True)
class FleetGridResult(FleetComparison):
    """Outcome of a policy grid search over one sampled population.

    The fleet-level sibling of
    :class:`~repro.policies.grid.GridResult`, and structurally a
    :class:`FleetComparison` (same entries, ranking, canonical
    payload): every grid candidate was evaluated against the *same*
    sampled wearer population (a paired experiment), and entries rank
    by the comparison ordering — fraction energy-neutral, then p5
    final SoC, then median detections/day.  ``entries`` arrive in grid
    order (one per expanded grid point).
    """

    _what = "fleet grid result"


class FleetRunner:
    """Executes fleet studies, optionally in parallel.

    Args:
        workers: worker count handed to the underlying
            :class:`~repro.scenarios.runner.ScenarioRunner`.
        backend: ``"serial"``, ``"thread"`` (default), ``"process"``
            or ``"vector"``.  Fleet wearer scenarios are always
            self-contained (inline segments, import-time components),
            so every backend works for every fleet — the process pool
            is the right choice from roughly a hundred wearer-weeks
            up, and the vector engine (:mod:`repro.fleet.vector`)
            beats it by another order of magnitude on fleets whose
            policy can batch (falling back to a serial scalar loop per
            wearer when it cannot).
    """

    def __init__(self, workers: int = 4, backend: str = "thread") -> None:
        if backend not in BACKENDS:
            raise SpecError(
                f"unknown backend {backend!r}; known: {list(BACKENDS)}")
        # The vector engine needs no scenario runner of its own; keep a
        # serial one around for per-call backend overrides.
        scenario_backend = (backend if backend in SCENARIO_BACKENDS
                            else "serial")
        self._runner = ScenarioRunner(workers=workers,
                                      backend=scenario_backend)
        self.workers = workers
        self.backend = backend

    def _sweep(self, specs, workers: int | None, backend: str | None):
        """Run one batch on the chosen backend (the dispatch point).

        ``backend=None`` means the runner's own; ``"vector"`` routes to
        :func:`~repro.fleet.vector.run_batch_vector`, everything else
        to the scenario runner's pools.
        """
        chosen = self.backend if backend is None else backend
        if chosen not in BACKENDS:
            raise SpecError(
                f"unknown backend {chosen!r}; known: {list(BACKENDS)}")
        if chosen == "vector":
            return run_batch_vector(specs)
        return self._runner.run_batch(specs, workers=workers,
                                      backend=chosen)

    def _sweep_wearers(self, fleet: FleetSpec, indices: Sequence[int],
                       policy: PolicySpec | None,
                       workers: int | None,
                       backend: str | None) -> SweepResult:
        """Sweep the given wearers, materializing where it is cheapest.

        On the process backend the wearer scenarios are *not* built in
        the parent: the shared pool (:mod:`repro.pool`) broadcasts the
        fleet spec once per chunk and ships bare wearer indices, and
        the workers rematerialize their own wearers from
        ``random.Random(seed + index)`` — deterministic, so the result
        is bitwise-identical to parent materialization at a fraction
        of the dispatch payload.  Every other backend keeps the
        materialize-in-parent path (threads share memory; the vector
        engine wants the full spec list).  Trivial runs (one wearer,
        one worker) fall through to :meth:`ScenarioRunner.run_batch`,
        which routes them serially and records the effective backend.
        """
        chosen = self.backend if backend is None else backend
        if chosen not in BACKENDS:
            raise SpecError(
                f"unknown backend {chosen!r}; known: {list(BACKENDS)}")
        n = self.workers if workers is None else workers
        if chosen == "process" and len(indices) > 1 and n > 1:
            return self._sweep_wearers_pooled(fleet, indices, policy, n)
        specs = wearer_scenarios(fleet, indices)
        if policy is not None:
            specs = [
                dataclasses.replace(
                    spec,
                    system=dataclasses.replace(spec.system, policy=policy))
                for spec in specs
            ]
        return self._sweep(specs, workers, chosen)

    def _sweep_wearers_pooled(self, fleet: FleetSpec,
                              indices: Sequence[int],
                              policy: PolicySpec | None,
                              n: int) -> SweepResult:
        """The process-backend fleet path: indices through the pool."""
        from repro.pool import WorkerCrash, get_shared_pool

        if n < 1:
            raise SpecError("worker count must be at least 1")
        started = time.perf_counter()
        indices = list(indices)
        context: dict[str, Any] = {"fleet": fleet.to_dict()}
        if policy is not None:
            context["policy"] = policy.to_dict()
        crash = os.environ.get("REPRO_WORKER_CRASH")
        if crash:
            context["crash"] = crash
        pool = get_shared_pool()
        try:
            results = pool.run_chunked("fleet", context, indices,
                                       chunks=min(n, len(indices)))
        except WorkerCrash as exc:
            names = [wearer_name(fleet, indices[i]) for i in exc.indices]
            if len(names) <= 3:
                span = ", ".join(repr(name) for name in names)
            else:
                span = (f"{names[0]!r} .. {names[-1]!r} "
                        f"({len(names)} wearers)")
            raise SpecError(
                f"process-backend worker died while running chunk "
                f"{exc.chunk_index + 1}/{exc.chunk_count} of fleet "
                f"{fleet.name!r} — wearers {span}. A worker killed "
                "mid-fleet (OOM, signal) breaks the pool this way, as "
                "does a launching script without the standard "
                "`if __name__ == '__main__':` guard; see the chained "
                "exception. The shared pool respawns on the next "
                "batch; the thread backend avoids both."
            ) from exc
        outcomes = tuple(ScenarioOutcome.from_dict(payload)
                         for payload in results)
        return SweepResult(outcomes=outcomes, backend="process",
                           wall_time_s=time.perf_counter() - started)

    def run(self, fleet: FleetSpec,
            workers: int | None = None,
            backend: str | None = None,
            shard: tuple[int, int] | None = None,
            ) -> FleetResult | PartialFleetResult:
        """Sample, sweep and reduce one fleet — whole or one shard.

        The canonical part of the returned result
        (:meth:`~repro.fleet.result.FleetResult.to_dict`) depends only
        on the spec; ``backend``/``wall_time_s`` record provenance.

        With ``shard=(index, count)`` only that shard's wearers
        (``wearer_index % count == index``) are materialized and
        simulated, and the return value is a
        :class:`~repro.fleet.result.PartialFleetResult` of raw
        per-wearer records.  Reducing a complete partition with
        :meth:`FleetResult.merge` reproduces the unsharded result
        bitwise — run shards on as many machines as you like.
        """
        if shard is None:
            sweep = self._sweep_wearers(fleet, range(fleet.n_wearers),
                                        None, workers, backend)
            return FleetResult.from_outcomes(fleet, sweep.outcomes,
                                             backend=sweep.backend,
                                             wall_time_s=sweep.wall_time_s)
        try:
            shard_index, shard_count = shard
        except (TypeError, ValueError):
            raise SpecError(
                f"shard must be an (index, count) pair, got {shard!r}"
            ) from None
        indices = shard_indices(fleet, shard_index, shard_count)
        sweep = self._sweep_wearers(fleet, indices, None, workers, backend)
        records = tuple(
            WearerRecord.from_outcome(index, outcome)
            for index, outcome in zip(indices, sweep.outcomes))
        return PartialFleetResult(
            spec=fleet,
            shard_index=shard_index,
            shard_count=shard_count,
            records=records,
            backend=sweep.backend,
            wall_time_s=sweep.wall_time_s,
        )

    def _run_candidates(self, fleet: FleetSpec,
                        candidates: Sequence[tuple[str, PolicySpec]],
                        workers: int | None,
                        backend: str | None,
                        ) -> tuple[tuple[ComparisonEntry, ...], str, float]:
        """Rerun one sampled population under each labelled candidate.

        The paired-experiment core shared by :meth:`compare` and
        :meth:`run_grid`: the population is sampled once, and every
        candidate sees exactly the same wearer environments with only
        ``system.policy`` replaced per wearer scenario.  (On the
        process backend the sampling happens worker-side per
        candidate — identical environments either way, since wearer
        sampling is a pure function of ``seed + index``.)
        """
        chosen = self.backend if backend is None else backend
        if chosen not in BACKENDS:
            raise SpecError(
                f"unknown backend {chosen!r}; known: {list(BACKENDS)}")
        n = self.workers if workers is None else workers
        pooled = chosen == "process" and fleet.n_wearers > 1 and n > 1
        base_specs = None if pooled else wearer_scenarios(fleet)
        started = time.perf_counter()
        entries = []
        used = chosen
        for label, policy in candidates:
            if pooled:
                sweep = self._sweep_wearers_pooled(
                    fleet, range(fleet.n_wearers), policy, n)
            else:
                specs = [
                    dataclasses.replace(
                        spec,
                        system=dataclasses.replace(spec.system,
                                                   policy=policy))
                    for spec in base_specs
                ]
                sweep = self._sweep(specs, workers, chosen)
            used = sweep.backend
            entries.append(ComparisonEntry(
                label=label,
                policy=policy,
                result=FleetResult.from_outcomes(
                    fleet, sweep.outcomes, backend=sweep.backend,
                    wall_time_s=sweep.wall_time_s),
            ))
        return tuple(entries), used, time.perf_counter() - started

    def compare(self, fleet: FleetSpec,
                policies: Sequence[PolicySpec],
                workers: int | None = None,
                backend: str | None = None) -> FleetComparison:
        """Rerun one sampled population under each candidate policy.

        Args:
            fleet: the population description.
            policies: candidate :class:`PolicySpec` values; duplicate
                (name, params) candidates are rejected.
            workers / backend: per-call overrides, as in :meth:`run`.
        """
        policies = list(policies)
        if not policies:
            raise SpecError("a fleet comparison needs at least one policy")
        # Canonical JSON rather than sorted items: params may carry
        # nested weight arrays, which are unhashable as tuples.
        keys = [canonical_json(p.to_dict()) for p in policies]
        if len(set(keys)) != len(keys):
            raise SpecError("duplicate policies in fleet comparison")
        candidates = [(policy_label(policy), policy) for policy in policies]
        entries, used, wall_time_s = self._run_candidates(
            fleet, candidates, workers, backend)
        return FleetComparison(
            fleet=fleet.name,
            entries=entries,
            backend=used,
            wall_time_s=wall_time_s,
        )

    def run_grid(self, fleet: FleetSpec,
                 grids: PolicyGrid | Iterable[PolicyGrid],
                 workers: int | None = None,
                 backend: str | None = None) -> FleetGridResult:
        """Search a policy grid against one sampled population.

        Every candidate of every
        :class:`~repro.policies.grid.PolicyGrid` is evaluated against
        the same seeded wearer population (paired across candidates,
        like :meth:`compare`) and ranked by the comparison ordering:
        fraction energy-neutral, then p5 final SoC, then median
        detections/day.

        Args:
            fleet: the population description.
            grids: a :class:`PolicyGrid` or an iterable of them (one
                per policy family); duplicate (name, params) candidates
                across all grids are rejected.
            workers / backend: per-call overrides, as in :meth:`run`.

        Returns:
            A :class:`FleetGridResult` whose canonical payload
            (:meth:`~FleetGridResult.to_dict`) is a pure function of
            the fleet spec and the grids — identical on every backend.
        """
        candidates = expand_grids(grids)
        entries, used, wall_time_s = self._run_candidates(
            fleet, candidates, workers, backend)
        return FleetGridResult(
            fleet=fleet.name,
            entries=entries,
            backend=used,
            wall_time_s=wall_time_s,
        )


def run_fleet(fleet: FleetSpec, workers: int = 4,
              backend: str = "thread") -> FleetResult:
    """One-shot convenience: ``FleetRunner(...).run(fleet)``."""
    return FleetRunner(workers=workers, backend=backend).run(fleet)
