"""Power-state machines for every component on the InfiniWolf board.

Each block from the Fig. 1 diagram is a :class:`LoadComponent` with a
set of named power states.  The numbers the paper states explicitly are
primary: the MAX30001 ECG front end draws 171 uW while acquiring and
the GSR front end 30 uW; the processor active powers come from the
calibrated Table IV fit (see :mod:`repro.timing.processors`).  The
remaining components carry datasheet-typical figures and matter only
for the sleep/streaming budgets, not for any reproduced table.

The BLE radio model supports the streaming-vs-local-inference ablation
(A3 in DESIGN.md): the paper's Section II argues the dual-processor
architecture wins *because* local classification avoids streaming raw
sensor data over BLE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PowerModelError

__all__ = [
    "PowerState",
    "LoadComponent",
    "ComponentCatalog",
    "default_catalog",
    "BleRadioModel",
    "ECG_AFE_ACTIVE_W",
    "GSR_AFE_ACTIVE_W",
    "SYSTEM_SLEEP_W",
]

# Paper, Section IV: "the data acquisition of the ECG consumes only
# 171 uW, while the GSR front-end consumes 30 uW when active".
ECG_AFE_ACTIVE_W = 171.0e-6
GSR_AFE_ACTIVE_W = 30.0e-6

# Whole-watch sleep floor (all components in their lowest state plus
# regulator/gauge overhead).  The Table I/II intake measurements were
# taken with InfiniWolf asleep, so this draw is already inside those
# numbers; the system simulation therefore charges it only on top of
# *additional* activity.
SYSTEM_SLEEP_W = 8.0e-6


@dataclass(frozen=True)
class PowerState:
    """One named operating state of a component.

    Attributes:
        name: state label ("off", "sleep", "active", ...).
        power_w: steady-state draw in that state.
    """

    name: str
    power_w: float

    def __post_init__(self) -> None:
        if self.power_w < 0:
            raise PowerModelError(f"state {self.name!r} has negative power")


@dataclass
class LoadComponent:
    """A board component with named power states.

    Attributes:
        name: component label (matches the Fig. 1 block).
        states: the allowed operating states.
        current_state: name of the active state.
    """

    name: str
    states: dict[str, PowerState]
    current_state: str = "off"

    def __post_init__(self) -> None:
        if not self.states:
            raise PowerModelError(f"component {self.name!r} has no states")
        if self.current_state not in self.states:
            raise PowerModelError(
                f"component {self.name!r} has no state {self.current_state!r}"
            )

    @classmethod
    def from_pairs(cls, name: str, pairs: dict[str, float],
                   initial: str = "off") -> "LoadComponent":
        """Build a component from a ``{state: watts}`` mapping."""
        states = {label: PowerState(label, watts) for label, watts in pairs.items()}
        return cls(name=name, states=states, current_state=initial)

    @property
    def power_w(self) -> float:
        """Draw in the current state."""
        return self.states[self.current_state].power_w

    def set_state(self, state: str) -> None:
        """Switch to a named state."""
        if state not in self.states:
            valid = ", ".join(sorted(self.states))
            raise PowerModelError(
                f"component {self.name!r} has no state {state!r}; valid: {valid}"
            )
        self.current_state = state

    def power_in(self, state: str) -> float:
        """Draw of a named state without switching to it."""
        if state not in self.states:
            raise PowerModelError(f"component {self.name!r} has no state {state!r}")
        return self.states[state].power_w


@dataclass
class ComponentCatalog:
    """All board components, addressable by name.

    Attributes:
        components: mapping from component name to its load model.
    """

    components: dict[str, LoadComponent] = field(default_factory=dict)

    def add(self, component: LoadComponent) -> None:
        """Register a component (names must be unique)."""
        if component.name in self.components:
            raise PowerModelError(f"duplicate component {component.name!r}")
        self.components[component.name] = component

    def __getitem__(self, name: str) -> LoadComponent:
        if name not in self.components:
            raise PowerModelError(f"unknown component {name!r}")
        return self.components[name]

    def __contains__(self, name: str) -> bool:
        return name in self.components

    def __iter__(self):
        return iter(self.components.values())

    def total_power_w(self) -> float:
        """Sum of all components' current-state draws."""
        return sum(c.power_w for c in self.components.values())


def default_catalog() -> ComponentCatalog:
    """The full InfiniWolf board with every block in its lowest state.

    Processor active powers match the calibrated Table IV fit; sensor
    actives use the paper's figures where stated and datasheet-typical
    values otherwise.
    """
    from repro.timing.processors import (
        MRWOLF_IBEX,
        MRWOLF_RI5CY_CLUSTER8,
        MRWOLF_RI5CY_SINGLE,
        NORDIC_ARM_M4F,
    )

    catalog = ComponentCatalog()
    catalog.add(LoadComponent.from_pairs("nrf52832", {
        "off": 0.0,
        "sleep": 1.9e-6,               # system-on sleep w/ RAM retention
        "active": NORDIC_ARM_M4F.active_power_w,
        "radio_tx": 16.0e-3,           # 16 mW peak radio TX at 0 dBm
    }, initial="sleep"))
    catalog.add(LoadComponent.from_pairs("mrwolf_soc", {
        "off": 0.0,
        "sleep": 3.0e-6,
        "active": MRWOLF_IBEX.active_power_w,
    }))
    catalog.add(LoadComponent.from_pairs("mrwolf_cluster", {
        "off": 0.0,
        "active_single": MRWOLF_RI5CY_SINGLE.active_power_w,
        "active_parallel": MRWOLF_RI5CY_CLUSTER8.active_power_w,
    }))
    catalog.add(LoadComponent.from_pairs("max30001_ecg", {
        "off": 0.0,
        "standby": 0.5e-6,
        "active": ECG_AFE_ACTIVE_W,
    }))
    catalog.add(LoadComponent.from_pairs("gsr_afe", {
        "off": 0.0,
        "active": GSR_AFE_ACTIVE_W,
    }))
    catalog.add(LoadComponent.from_pairs("icm20948_imu", {
        "off": 0.0,
        "sleep": 8.0e-6,
        "low_power_accel": 60.0e-6,
        "nine_axis": 3.1e-3,
    }))
    catalog.add(LoadComponent.from_pairs("bmp280_pressure", {
        "off": 0.0,
        "sleep": 0.3e-6,
        "active": 8.0e-6,
    }))
    catalog.add(LoadComponent.from_pairs("ics43434_mic", {
        "off": 0.0,
        "active": 1.2e-3,
    }))
    catalog.add(LoadComponent.from_pairs("bq27441_gauge", {
        "sleep": 0.3e-6,
        "active": 2.0e-6,
    }, initial="sleep"))
    return catalog


@dataclass(frozen=True)
class BleRadioModel:
    """Energy model for BLE 5 data transfer on the nRF52832.

    A simple goodput model: the radio burns ``radio_power_w`` while on
    air, moves ``goodput_bps`` of application payload, and each
    connection event adds ``event_overhead_j``.  Defaults follow
    nRF52832 measurements at 0 dBm with a 1 Mbit PHY: ~5 mA at 3 V
    while active, ~60 kbit/s practical notification goodput.

    Used by the streaming-vs-local ablation (A3).
    """

    radio_power_w: float = 15.0e-3
    goodput_bps: float = 60_000.0
    event_overhead_j: float = 15.0e-6
    connection_interval_s: float = 0.05

    def transfer_energy_j(self, payload_bytes: float) -> float:
        """Energy to notify ``payload_bytes`` of application data."""
        if payload_bytes < 0:
            raise PowerModelError("payload cannot be negative")
        if payload_bytes == 0:
            return 0.0
        air_time_s = payload_bytes * 8.0 / self.goodput_bps
        events = max(1.0, air_time_s / self.connection_interval_s)
        return self.radio_power_w * air_time_s + events * self.event_overhead_j

    def streaming_power_w(self, data_rate_bytes_per_s: float) -> float:
        """Average radio power to stream a continuous byte rate."""
        return self.transfer_energy_j(data_rate_bytes_per_s)
