"""Linear regulator model (the 1.8 V LDO rail in Fig. 1).

An LDO's efficiency is structurally ``V_out / V_in`` plus its own
ground current: every milliamp delivered at 1.8 V from a ~3.8 V LiPo
burns the difference as heat.  The model answers the only two questions
the system simulation asks: how much battery power does a given rail
load imply, and is the rail in dropout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PowerModelError

__all__ = ["LowDropoutRegulator"]


@dataclass(frozen=True)
class LowDropoutRegulator:
    """A fixed-output LDO.

    Attributes:
        output_voltage_v: regulated output (1.8 V on InfiniWolf).
        dropout_v: minimum input-output headroom for regulation.
        ground_current_a: the regulator's own quiescent current.
    """

    output_voltage_v: float = 1.8
    dropout_v: float = 0.2
    ground_current_a: float = 1.0e-6

    def __post_init__(self) -> None:
        if self.output_voltage_v <= 0:
            raise PowerModelError("output voltage must be positive")
        if self.dropout_v < 0 or self.ground_current_a < 0:
            raise PowerModelError("dropout and ground current cannot be negative")

    def in_regulation(self, input_voltage_v: float) -> bool:
        """Whether the rail regulates at a given input voltage."""
        return input_voltage_v >= self.output_voltage_v + self.dropout_v

    def input_power_w(self, load_power_w: float, input_voltage_v: float) -> float:
        """Battery-side power implied by a rail-side load.

        The load current is ``P_load / V_out``; the same current flows
        from the input at ``V_in``, plus the ground current.
        """
        if load_power_w < 0:
            raise PowerModelError("load power cannot be negative")
        if not self.in_regulation(input_voltage_v):
            raise PowerModelError(
                f"LDO in dropout: V_in {input_voltage_v} V < "
                f"{self.output_voltage_v + self.dropout_v} V"
            )
        load_current = load_power_w / self.output_voltage_v
        return (load_current + self.ground_current_a) * input_voltage_v

    def efficiency(self, load_power_w: float, input_voltage_v: float) -> float:
        """Rail efficiency at a load point."""
        if load_power_w == 0:
            return 0.0
        return load_power_w / self.input_power_w(load_power_w, input_voltage_v)
