"""LiPo battery model with coulomb counting and an OCV curve.

InfiniWolf carries a single 120 mAh lithium-polymer cell that both
harvester ICs charge and every rail discharges.  The model tracks
charge with coulomb counting, maps state of charge to open-circuit
voltage through a piecewise-linear LiPo curve, applies a series
internal resistance under load, and enforces the over/under-voltage
lockouts the harvester ICs implement (battery protection).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PowerModelError
from repro.units import mah_to_coulombs

__all__ = ["BatteryState", "LiPoBattery"]

# Typical single-cell LiPo open-circuit voltage vs state of charge.
_OCV_SOC_GRID = np.array([0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50,
                          0.60, 0.70, 0.80, 0.90, 0.95, 1.00])
_OCV_VOLTS = np.array([3.00, 3.45, 3.60, 3.69, 3.74, 3.77, 3.80,
                       3.85, 3.91, 3.98, 4.07, 4.12, 4.20])


@dataclass(frozen=True)
class BatteryState:
    """Immutable snapshot of the battery.

    Attributes:
        charge_c: remaining charge in coulombs.
        capacity_c: full-charge capacity in coulombs.
        open_circuit_voltage_v: OCV at the current state of charge.
    """

    charge_c: float
    capacity_c: float
    open_circuit_voltage_v: float

    @property
    def state_of_charge(self) -> float:
        """State of charge as a fraction in [0, 1]."""
        return self.charge_c / self.capacity_c


class LiPoBattery:
    """A rechargeable LiPo cell tracked by coulomb counting.

    Args:
        capacity_mah: nameplate capacity (the paper's cell is 120 mAh).
        initial_soc: starting state of charge in [0, 1].
        internal_resistance_ohm: series resistance for loaded-voltage
            estimates.
        charge_efficiency: coulombic efficiency of charging (energy
            pushed in times this reaches the stored charge).
        undervoltage_lockout_v: terminal voltage below which discharge
            is blocked (the BQ parts' VBAT_UV).
        overvoltage_v: charge is rejected above this OCV (VBAT_OV).
        capacity_fade: irreversible capacity loss from aging as a
            fraction of the nameplate in [0, 1) — ``0.3`` models a cell
            that only holds 70 % of its rated charge.  State of charge
            stays relative to the *effective* capacity, matching what a
            fuel gauge on an aged cell reports.
    """

    def __init__(self, capacity_mah: float = 120.0, initial_soc: float = 0.5,
                 internal_resistance_ohm: float = 0.35,
                 charge_efficiency: float = 0.98,
                 undervoltage_lockout_v: float = 3.0,
                 overvoltage_v: float = 4.2,
                 capacity_fade: float = 0.0) -> None:
        if capacity_mah <= 0:
            raise PowerModelError("capacity must be positive")
        if not 0.0 <= initial_soc <= 1.0:
            raise PowerModelError("initial_soc must lie in [0, 1]")
        if not 0.0 < charge_efficiency <= 1.0:
            raise PowerModelError("charge_efficiency must lie in (0, 1]")
        if internal_resistance_ohm < 0:
            raise PowerModelError("internal resistance cannot be negative")
        if not 0.0 <= capacity_fade < 1.0:
            raise PowerModelError(
                f"capacity_fade must lie in [0, 1), got {capacity_fade!r}")
        self.capacity_fade = float(capacity_fade)
        self.nameplate_capacity_c = float(mah_to_coulombs(capacity_mah))
        self.capacity_c = self.nameplate_capacity_c * (1.0 - self.capacity_fade)
        self.charge_c = float(initial_soc) * self.capacity_c
        self.internal_resistance_ohm = internal_resistance_ohm
        self.charge_efficiency = charge_efficiency
        self.undervoltage_lockout_v = undervoltage_lockout_v
        self.overvoltage_v = overvoltage_v
        # Charge at the UV-lockout state of charge; constant for the
        # life of the cell, so the OCV-curve inversion runs once here
        # instead of on every discharge.
        uv_soc = float(np.interp(undervoltage_lockout_v,
                                 _OCV_VOLTS, _OCV_SOC_GRID))
        self._uv_floor_c = uv_soc * self.capacity_c

    # -- read-only views -------------------------------------------------------

    @property
    def state_of_charge(self) -> float:
        """Current state of charge in [0, 1], as a plain ``float``."""
        return float(self.charge_c / self.capacity_c)

    def open_circuit_voltage(self) -> float:
        """OCV from the piecewise-linear LiPo curve."""
        return float(np.interp(self.state_of_charge, _OCV_SOC_GRID, _OCV_VOLTS))

    def terminal_voltage(self, load_current_a: float = 0.0) -> float:
        """Voltage under load (positive current discharges)."""
        return self.open_circuit_voltage() - load_current_a * self.internal_resistance_ohm

    def snapshot(self) -> BatteryState:
        """An immutable view of the present state."""
        return BatteryState(
            charge_c=self.charge_c,
            capacity_c=self.capacity_c,
            open_circuit_voltage_v=self.open_circuit_voltage(),
        )

    @property
    def is_undervoltage(self) -> bool:
        """True when the UV lockout blocks further discharge."""
        return self.open_circuit_voltage() <= self.undervoltage_lockout_v

    @property
    def is_full(self) -> bool:
        """True when the OV threshold rejects further charge."""
        return self.open_circuit_voltage() >= self.overvoltage_v

    # -- state changes -----------------------------------------------------------

    def charge(self, power_w: float, duration_s: float) -> float:
        """Push charging power in for a duration.

        Returns the energy actually stored as a plain ``float`` (J).
        Charge is accepted at the charging voltage (approximated by the
        OCV), reduced by the coulombic efficiency, and clipped at full
        capacity / the OV lockout.
        """
        if power_w < 0 or duration_s < 0:
            raise PowerModelError("charge power and duration cannot be negative")
        if power_w == 0 or duration_s == 0 or self.is_full:
            return 0.0
        voltage = self.open_circuit_voltage()
        delta_c = power_w * duration_s / voltage * self.charge_efficiency
        accepted = min(delta_c, self.capacity_c - self.charge_c)
        self.charge_c += accepted
        return float(accepted * voltage / self.charge_efficiency)

    def discharge(self, power_w: float, duration_s: float) -> float:
        """Draw load power for a duration.

        Returns the energy actually delivered as a plain ``float`` (J);
        this is less than requested when the battery empties or hits UV
        lockout mid-way.  Discharge never takes the cell below the
        UV-lockout state of charge (precomputed in the constructor).
        """
        if power_w < 0 or duration_s < 0:
            raise PowerModelError("discharge power and duration cannot be negative")
        if power_w == 0 or duration_s == 0 or self.is_undervoltage:
            return 0.0
        voltage = self.open_circuit_voltage()
        delta_c = power_w * duration_s / voltage
        available = max(0.0, self.charge_c - self._uv_floor_c)
        delivered = min(delta_c, available)
        self.charge_c -= delivered
        return float(delivered * voltage)
