"""The smart power-supply unit: harvest in, rails out, one battery.

The paper's "smart PSU" lets the system "operate with low losses while
harvesting energy, monitoring sensors and managing the power according
to the policies implemented".  :class:`SmartPowerUnit` is that block as
a steppable model: each time slice it

1. charges the battery with the dual-source intake for the current
   environment,
2. draws the component catalog's load through the 1.8 V LDO,
3. advances the fuel gauge so the policy layer reads quantised gauge
   registers instead of privileged float state, and
4. enforces the under-voltage lockout (loads shed to their lowest
   states when the battery protection trips).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PowerModelError
from repro.harvest.dual import DualSourceHarvester
from repro.harvest.environment import LightingCondition, ThermalCondition
from repro.power.battery import LiPoBattery
from repro.power.fuelgauge import BQ27441FuelGauge, FuelGaugeReading
from repro.power.loads import ComponentCatalog
from repro.power.regulators import LowDropoutRegulator

__all__ = ["PsuStep", "SmartPowerUnit"]


@dataclass(frozen=True)
class PsuStep:
    """Energy accounting of one PSU time slice.

    Attributes:
        harvested_j: energy pushed into the battery.
        delivered_j: load energy delivered at the rail.
        drawn_from_battery_j: battery-side energy (rail + LDO losses).
        load_shed: True when the UV lockout forced loads off.
    """

    harvested_j: float
    delivered_j: float
    drawn_from_battery_j: float
    load_shed: bool


class SmartPowerUnit:
    """Battery + harvesters + LDO + loads, stepped together.

    Args:
        battery: the storage cell.
        harvester: the dual-source harvesting chain.
        catalog: per-component load models (their current states set
            the rail demand).
        ldo: the 1.8 V rail regulator.
    """

    def __init__(self, battery: LiPoBattery, harvester: DualSourceHarvester,
                 catalog: ComponentCatalog,
                 ldo: LowDropoutRegulator | None = None) -> None:
        self.battery = battery
        self.harvester = harvester
        self.catalog = catalog
        self.ldo = ldo if ldo is not None else LowDropoutRegulator()
        self.fuel_gauge = BQ27441FuelGauge(battery)

    def rail_demand_w(self) -> float:
        """Current load on the 1.8 V rail from the component states."""
        return self.catalog.total_power_w()

    def battery_demand_w(self) -> float:
        """Battery-side draw implied by the rail demand (LDO losses in)."""
        rail_w = self.rail_demand_w()
        voltage = self.battery.open_circuit_voltage()
        if not self.ldo.in_regulation(voltage):
            raise PowerModelError(
                f"battery at {voltage:.2f} V cannot sustain the "
                f"{self.ldo.output_voltage_v} V rail"
            )
        return self.ldo.input_power_w(rail_w, voltage)

    def shed_loads(self) -> None:
        """Drop every component to its lowest state (UV protection)."""
        for component in self.catalog:
            for preferred in ("off", "sleep", "standby"):
                if preferred in component.states:
                    component.set_state(preferred)
                    break

    def step(self, lighting: LightingCondition, thermal: ThermalCondition,
             duration_s: float) -> PsuStep:
        """Advance the PSU by one time slice under given conditions."""
        if duration_s <= 0:
            raise PowerModelError("step duration must be positive")

        intake_w = self.harvester.battery_intake_w(lighting, thermal)
        charge_before = self.battery.charge_c
        harvested_j = self.battery.charge(intake_w, duration_s)

        load_shed = False
        if self.battery.is_undervoltage:
            self.shed_loads()
            load_shed = True

        battery_w = self.battery_demand_w()
        drawn_j = self.battery.discharge(battery_w, duration_s)
        rail_fraction = (self.rail_demand_w() / battery_w
                         if battery_w > 0 else 0.0)
        delivered_j = drawn_j * rail_fraction

        self.fuel_gauge.advance(duration_s,
                                charge_delta_c=self.battery.charge_c - charge_before)
        return PsuStep(
            harvested_j=harvested_j,
            delivered_j=delivered_j,
            drawn_from_battery_j=drawn_j,
            load_shed=load_shed,
        )

    def gauge_reading(self) -> FuelGaugeReading:
        """What the nRF52832 reads over I2C."""
        return self.fuel_gauge.read()
