"""Behavioural model of the BQ27441 fuel gauge.

The nRF52832 polls the BQ27441 over I2C to "keep track of the battery
charging status" (paper, Section II).  The gauge reports state of
charge in whole percent, terminal voltage in millivolts, and an average
current over its internal update interval — quantisations this model
reproduces so the power-manager policy operates on gauge readings, not
on privileged float state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PowerModelError
from repro.power.battery import LiPoBattery

__all__ = ["FuelGaugeReading", "BQ27441FuelGauge"]


@dataclass(frozen=True)
class FuelGaugeReading:
    """One I2C poll of the gauge.

    Attributes:
        state_of_charge_pct: whole-percent state of charge (0..100).
        voltage_mv: terminal voltage in millivolts, 1 mV resolution.
        average_current_ma: signed average current over the update
            window (positive = charging), 1 mA-resolution as the real
            part reports for small cells.
        remaining_capacity_mah: remaining capacity in mAh.
    """

    state_of_charge_pct: int
    voltage_mv: int
    average_current_ma: float
    remaining_capacity_mah: float


class BQ27441FuelGauge:
    """Fuel gauge wrapped around a battery model.

    Args:
        battery: the cell being gauged.
        update_interval_s: the gauge's internal averaging window
            (1 s on the real part in NORMAL mode).
        quiescent_w: the gauge's own standing draw, drawn from the
            battery on every :meth:`advance` call.
    """

    def __init__(self, battery: LiPoBattery, update_interval_s: float = 1.0,
                 quiescent_w: float = 0.3e-6) -> None:
        if update_interval_s <= 0:
            raise PowerModelError("update interval must be positive")
        if quiescent_w < 0:
            raise PowerModelError("quiescent power cannot be negative")
        self.battery = battery
        self.update_interval_s = update_interval_s
        self.quiescent_w = quiescent_w
        self._window_charge_delta_c = 0.0
        self._window_elapsed_s = 0.0
        self._last_average_a = 0.0

    def advance(self, duration_s: float, charge_delta_c: float = 0.0) -> None:
        """Account a time slice and the battery-charge delta seen in it.

        Args:
            duration_s: length of the slice.
            charge_delta_c: signed change in battery charge during the
                slice (positive = charged), used for the average-current
                register.
        """
        if duration_s < 0:
            raise PowerModelError("duration cannot be negative")
        self.battery.discharge(self.quiescent_w, duration_s)
        self._window_charge_delta_c += charge_delta_c
        self._window_elapsed_s += duration_s
        while self._window_elapsed_s >= self.update_interval_s:
            self._last_average_a = (self._window_charge_delta_c
                                    / max(self._window_elapsed_s, 1e-12))
            self._window_charge_delta_c = 0.0
            self._window_elapsed_s -= self.update_interval_s

    def read(self) -> FuelGaugeReading:
        """Poll the gauge registers."""
        from repro.units import coulombs_to_mah

        soc_pct = int(round(self.battery.state_of_charge * 100.0))
        voltage_mv = int(round(self.battery.open_circuit_voltage() * 1000.0))
        avg_ma = round(self._last_average_a * 1000.0, 0)
        return FuelGaugeReading(
            state_of_charge_pct=max(0, min(100, soc_pct)),
            voltage_mv=voltage_mv,
            average_current_ma=avg_ma,
            remaining_capacity_mah=coulombs_to_mah(self.battery.charge_c),
        )
