"""System power substrate: battery, fuel gauge, regulators, loads.

Models the storage and consumption side of InfiniWolf's smart power
unit: the 120 mAh LiPo cell, the BQ27441 fuel gauge that tracks it, the
1.8 V LDO rail, and per-component power-state machines for every block
in the Fig. 1 diagram (sensors, the two processors, the BLE radio).
"""

from repro.power.battery import LiPoBattery, BatteryState
from repro.power.fuelgauge import BQ27441FuelGauge, FuelGaugeReading
from repro.power.regulators import LowDropoutRegulator
from repro.power.psu import PsuStep, SmartPowerUnit
from repro.power.loads import (
    LoadComponent,
    PowerState,
    ComponentCatalog,
    default_catalog,
    BleRadioModel,
    ECG_AFE_ACTIVE_W,
    GSR_AFE_ACTIVE_W,
)

__all__ = [
    "LiPoBattery",
    "BatteryState",
    "BQ27441FuelGauge",
    "FuelGaugeReading",
    "LowDropoutRegulator",
    "LoadComponent",
    "PowerState",
    "ComponentCatalog",
    "default_catalog",
    "BleRadioModel",
    "ECG_AFE_ACTIVE_W",
    "GSR_AFE_ACTIVE_W",
    "PsuStep",
    "SmartPowerUnit",
]
