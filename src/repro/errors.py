"""Exception hierarchy shared by all :mod:`repro` subpackages.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still distinguishing the domain-specific kinds.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A model or component was configured with inconsistent parameters."""


class SpecError(ConfigurationError):
    """A scenario/system spec is invalid or cannot be (de)serialized."""


class RegistryError(ReproError):
    """A component registry lookup or registration failed."""


class UnknownPolicyError(SpecError, RegistryError):
    """A spec names a policy absent from the ``POLICIES`` registry.

    Both a :class:`SpecError` (the spec is unbuildable as written) and
    a :class:`RegistryError` (the name missed the registry), so the
    process-backend worker — which distinguishes registry misses to
    explain its import-time-registration contract — handles it like
    any other missing component.
    """


class QuantizationError(ReproError):
    """A value cannot be represented in the requested fixed-point format."""


class NetworkStructureError(ReproError):
    """An MLP definition is structurally invalid (layer sizes, activations)."""


class TrainingError(ReproError):
    """Training failed to make progress or received invalid data."""


class SerializationError(ReproError):
    """A network file could not be parsed or written."""


class AssemblyError(ReproError):
    """Assembly source could not be assembled into a program."""


class SimulationError(ReproError):
    """An instruction-set or system simulation entered an invalid state."""


class MemoryMapError(SimulationError):
    """An access fell outside every mapped memory region."""


class HarvestModelError(ReproError):
    """An energy-harvesting model was driven outside its valid domain."""


class PowerModelError(ReproError):
    """A power/battery model was driven outside its valid domain."""


class MeasurementError(ReproError):
    """A lab-instrument emulation could not complete a measurement."""
