"""Built-in named scenarios and environment timelines.

Naming convention: scenario names are lowercase ``snake_case`` phrases
describing the *wearer's day* (``sunny_office_worker``), not the model
configuration; configuration variants belong in the spec, not the
name.  Timeline names describe the *environment* (``paper_indoor_day``).

Every scenario here is asserted energy-plausible by
``tests/scenarios/test_library.py`` — a new entry must keep its battery
inside [0, 1] SoC, harvest a sane number of joules and execute at least
one detection over its horizon.
"""

from __future__ import annotations

from repro.harvest.environment import (
    DARKNESS,
    EnvironmentSample,
    EnvironmentTimeline,
    INDOOR_OFFICE_700LX,
    LightingCondition,
    OUTDOOR_SUN_30KLX,
    TEG_ROOM_15C_WIND_42KMH,
    TEG_ROOM_22C_NO_WIND,
    ThermalCondition,
)
from repro.errors import RegistryError
from repro.scenarios.registry import register_timeline
from repro.scenarios.spec import (
    BatterySpec,
    ScenarioSpec,
    SystemSpec,
    TimelineSpec,
)
from repro.units import kmh_to_ms

__all__ = [
    "OVERCAST_DAYLIGHT_2KLX",
    "TEG_ARCTIC_WIND",
    "TEG_WARM_ROOM_LOW_DELTA",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
]

HOUR = 3600.0
DAY = 24 * HOUR

# Environment presets beyond the paper's five characterisation points.
OVERCAST_DAYLIGHT_2KLX = LightingCondition(
    lux=2_000.0, description="overcast daylight, 2 klx")
TEG_ARCTIC_WIND = ThermalCondition(
    ambient_c=-10.0, skin_c=28.0, wind_ms=kmh_to_ms(20.0),
    description="arctic street, -10 C, 20 km/h wind")
TEG_WARM_ROOM_LOW_DELTA = ThermalCondition(
    ambient_c=28.0, skin_c=33.0, wind_ms=0.0,
    description="warm room, 5 K skin-air delta")


# --- built-in timelines ------------------------------------------------------

@register_timeline("paper_indoor_day")
def paper_indoor_day() -> EnvironmentTimeline:
    """The paper's Section IV-A day: 6 h at 700 lx, 18 h darkness,
    worst-case TEG around the clock."""
    return EnvironmentTimeline([
        EnvironmentSample(6 * HOUR, INDOOR_OFFICE_700LX, TEG_ROOM_22C_NO_WIND),
        EnvironmentSample(18 * HOUR, DARKNESS, TEG_ROOM_22C_NO_WIND),
    ])


@register_timeline("office_day_with_commute")
def office_day_with_commute() -> EnvironmentTimeline:
    """Sleep, a windy sunny cycle commute, office light, commute, evening."""
    return EnvironmentTimeline([
        EnvironmentSample(7 * HOUR, DARKNESS, TEG_ROOM_22C_NO_WIND),
        EnvironmentSample(0.5 * HOUR, OUTDOOR_SUN_30KLX, TEG_ROOM_15C_WIND_42KMH),
        EnvironmentSample(8.5 * HOUR, INDOOR_OFFICE_700LX, TEG_ROOM_22C_NO_WIND),
        EnvironmentSample(0.5 * HOUR, OUTDOOR_SUN_30KLX, TEG_ROOM_15C_WIND_42KMH),
        EnvironmentSample(7.5 * HOUR, DARKNESS, TEG_ROOM_22C_NO_WIND),
    ])


@register_timeline("hiking_day")
def hiking_day() -> EnvironmentTimeline:
    """A night indoors, then seven hours of full sun and mountain wind."""
    return EnvironmentTimeline([
        EnvironmentSample(8 * HOUR, DARKNESS, TEG_ROOM_22C_NO_WIND),
        EnvironmentSample(1 * HOUR, INDOOR_OFFICE_700LX, TEG_ROOM_22C_NO_WIND),
        EnvironmentSample(7 * HOUR, OUTDOOR_SUN_30KLX, TEG_ROOM_15C_WIND_42KMH),
        EnvironmentSample(1 * HOUR, INDOOR_OFFICE_700LX, TEG_ROOM_22C_NO_WIND),
        EnvironmentSample(7 * HOUR, DARKNESS, TEG_ROOM_22C_NO_WIND),
    ])


@register_timeline("night_shift_day")
def night_shift_day() -> EnvironmentTimeline:
    """Lit ward work overnight, dark commutes, daytime sleep."""
    return EnvironmentTimeline([
        EnvironmentSample(7 * HOUR, INDOOR_OFFICE_700LX, TEG_ROOM_22C_NO_WIND),
        EnvironmentSample(0.5 * HOUR, DARKNESS, TEG_ROOM_15C_WIND_42KMH),
        EnvironmentSample(9 * HOUR, DARKNESS, TEG_ROOM_22C_NO_WIND),
        EnvironmentSample(0.5 * HOUR, DARKNESS, TEG_ROOM_15C_WIND_42KMH),
        EnvironmentSample(7 * HOUR, INDOOR_OFFICE_700LX, TEG_ROOM_22C_NO_WIND),
    ])


@register_timeline("arctic_commute_day")
def arctic_commute_day() -> EnvironmentTimeline:
    """Office day with two freezing, windy walks — a TEG bonanza."""
    return EnvironmentTimeline([
        EnvironmentSample(7 * HOUR, DARKNESS, TEG_ROOM_22C_NO_WIND),
        EnvironmentSample(1 * HOUR, DARKNESS, TEG_ARCTIC_WIND),
        EnvironmentSample(8 * HOUR, INDOOR_OFFICE_700LX, TEG_ROOM_22C_NO_WIND),
        EnvironmentSample(1 * HOUR, DARKNESS, TEG_ARCTIC_WIND),
        EnvironmentSample(7 * HOUR, DARKNESS, TEG_ROOM_22C_NO_WIND),
    ])


@register_timeline("cloudy_week")
def cloudy_week() -> EnvironmentTimeline:
    """Seven overcast days: 10 h of weak daylight, 14 h of darkness."""
    day = [
        EnvironmentSample(10 * HOUR, OVERCAST_DAYLIGHT_2KLX, TEG_ROOM_22C_NO_WIND),
        EnvironmentSample(14 * HOUR, DARKNESS, TEG_ROOM_22C_NO_WIND),
    ]
    return EnvironmentTimeline(day * 7)


@register_timeline("sedentary_warm_day")
def sedentary_warm_day() -> EnvironmentTimeline:
    """Warm, still room all day: the TEG's hardest case (5 K delta)."""
    return EnvironmentTimeline([
        EnvironmentSample(8 * HOUR, INDOOR_OFFICE_700LX, TEG_WARM_ROOM_LOW_DELTA),
        EnvironmentSample(16 * HOUR, DARKNESS, TEG_WARM_ROOM_LOW_DELTA),
    ])


# --- the scenario library ----------------------------------------------------

_SCENARIOS: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a named scenario to the library; rejects duplicate names."""
    if spec.name in _SCENARIOS:
        raise RegistryError(f"scenario {spec.name!r} is already registered")
    _SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """The library scenario registered under ``name``."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise RegistryError(
            f"unknown scenario {name!r}; known: {scenario_names()}"
        ) from None


def scenario_names() -> list[str]:
    """All library scenario names, sorted."""
    return sorted(_SCENARIOS)


def all_scenarios() -> list[ScenarioSpec]:
    """All library scenarios, sorted by name."""
    return [_SCENARIOS[name] for name in scenario_names()]


register_scenario(ScenarioSpec(
    name="paper_indoor_worst_case",
    timeline=TimelineSpec(name="paper_indoor_day"),
    step_s=300.0,
    description="Section IV-A: 6 h challenging indoor light, worst TEG",
))

register_scenario(ScenarioSpec(
    name="sunny_office_worker",
    timeline=TimelineSpec(name="office_day_with_commute"),
    step_s=300.0,
    description="office day bracketed by sunny, windy cycle commutes",
))

register_scenario(ScenarioSpec(
    name="outdoor_hiker",
    timeline=TimelineSpec(name="hiking_day"),
    step_s=300.0,
    description="seven hours of full sun and wind on the trail",
))

register_scenario(ScenarioSpec(
    name="night_shift",
    timeline=TimelineSpec(name="night_shift_day"),
    step_s=300.0,
    description="lit ward overnight, dark commutes, daytime sleep",
))

register_scenario(ScenarioSpec(
    name="arctic_commute",
    timeline=TimelineSpec(name="arctic_commute_day"),
    step_s=300.0,
    description="office day with two freezing windy walks (TEG-rich)",
))

register_scenario(ScenarioSpec(
    name="dead_battery_cold_start",
    timeline=TimelineSpec(name="paper_indoor_day"),
    system=SystemSpec(battery=BatterySpec(initial_soc=0.02)),
    step_s=300.0,
    description="wake up at 2 % charge on the paper's worst-case day",
))

register_scenario(ScenarioSpec(
    name="cloudy_week_multi_day",
    timeline=TimelineSpec(name="cloudy_week"),
    step_s=1800.0,
    description="seven overcast days of weak daylight, multi-day horizon",
))

register_scenario(ScenarioSpec(
    name="sedentary_low_teg",
    timeline=TimelineSpec(name="sedentary_warm_day"),
    step_s=300.0,
    description="warm still room all day: 5 K skin-air delta starves the TEG",
))
