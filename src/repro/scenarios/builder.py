"""Turn declarative specs into live simulation objects.

:func:`build_simulation` is the single construction path from a
:class:`~repro.scenarios.spec.ScenarioSpec` to a runnable
:class:`~repro.core.simulation.DaySimulation`.  All component defaults
live here (resolved through the registries), which keeps the engine in
:mod:`repro.core.simulation` a thin stepper over injected parts — the
engine asks this module for defaults instead of hard-wiring them.

Every spec-built harvester chain is wrapped in a
:class:`~repro.harvest.dual.CachedHarvester` (pass
``cache_harvest=False`` to opt out), so repeated conditions across a
long horizon or a sweep hit the memo instead of re-running the
transducer models; the wrapper's ``stats`` feed the throughput bench.
"""

from __future__ import annotations

from repro.core.faults import build_fault_timeline
from repro.core.simulation import DaySimulation
from repro.errors import RegistryError, UnknownPolicyError
from repro.harvest.dual import CachedHarvester
from repro.harvest.environment import (
    EnvironmentSample,
    EnvironmentTimeline,
    LightingCondition,
    ThermalCondition,
)
from repro.policies.base import PolicyContext
from repro.scenarios.registry import (
    APPS,
    BATTERIES,
    HARVESTERS,
    POLICIES,
    TIMELINES,
)
from repro.scenarios.spec import (
    AppSpec,
    BatterySpec,
    PolicySpec,
    ScenarioSpec,
    SystemSpec,
    TimelineSpec,
)

__all__ = [
    "build_timeline",
    "build_harvester",
    "build_battery",
    "build_policy",
    "build_app",
    "build_simulation",
]


def build_timeline(spec: TimelineSpec) -> EnvironmentTimeline:
    """An :class:`EnvironmentTimeline` from a registry name or segments."""
    if spec.name:
        return TIMELINES.get(spec.name)()
    samples = [
        EnvironmentSample(
            duration_s=seg.duration_s,
            lighting=LightingCondition(lux=seg.lux, description=seg.label),
            thermal=ThermalCondition(
                ambient_c=seg.ambient_c,
                skin_c=seg.skin_c,
                wind_ms=seg.wind_ms,
                description=seg.label,
            ),
        )
        for seg in spec.segments
    ]
    return EnvironmentTimeline(samples)


def build_harvester(name: str = "calibrated_dual", cached: bool = False):
    """The named harvester chain, optionally memoized per condition pair."""
    harvester = HARVESTERS.get(name)()
    return CachedHarvester(harvester) if cached else harvester


def build_battery(spec: BatterySpec | None = None):
    """The battery described by ``spec`` (stock 120 mAh cell by default)."""
    spec = spec if spec is not None else BatterySpec()
    return BATTERIES.get(spec.kind)(spec)


def build_policy(spec: PolicySpec | None = None,
                 context: PolicyContext | None = None):
    """The decision policy described by ``spec``.

    Args:
        spec: the ``{name, params}`` policy choice (paper-default
            ``energy_aware`` when omitted).
        context: build-time facts the factory may need.  When omitted,
            a context is derived from the default app's energy budget —
            enough for context-light policies; timeline-peeking ones
            (``oracle_lookahead``) need the caller to supply the built
            timeline and harvester, as :func:`build_simulation` does.

    An unknown policy name raises :class:`~repro.errors.SpecError`
    listing the registered names, so a typo in a grid search fails
    with the menu in hand.
    """
    spec = spec if spec is not None else PolicySpec()
    try:
        factory = POLICIES.get(spec.name)
    except RegistryError:
        from repro.policies.learned import unknown_policy_message

        raise UnknownPolicyError(unknown_policy_message(spec.name)) from None
    if context is None:
        context = PolicyContext(
            detection_energy_j=build_app().energy_budget().total_j)
    return factory(spec.params, context)


def build_app(spec: AppSpec | None = None):
    """The application described by ``spec`` (Network A on the cluster)."""
    spec = spec if spec is not None else AppSpec()
    return APPS.get(spec.kind)(spec)


def build_simulation(scenario: ScenarioSpec, *,
                     cache_harvest: bool = True) -> DaySimulation:
    """A runnable :class:`DaySimulation` assembled from a scenario spec.

    Args:
        scenario: the spec to build.
        cache_harvest: wrap the harvester chain in a
            :class:`~repro.harvest.dual.CachedHarvester` (the default;
            numerically transparent).  ``False`` builds the raw chain —
            useful for benchmarking the memo itself.
    """
    system: SystemSpec = scenario.system
    timeline = build_timeline(scenario.timeline)
    app = build_app(system.app)
    harvester = build_harvester(system.harvester, cached=cache_harvest)
    detection_energy_j = app.energy_budget().total_j
    policy = build_policy(system.policy, PolicyContext(
        detection_energy_j=detection_energy_j,
        sleep_power_w=system.sleep_power_w,
        step_s=scenario.step_s,
        timeline=timeline,
        harvester=harvester,
    ))
    return DaySimulation(
        timeline=timeline,
        app=app,
        harvester=harvester,
        battery=build_battery(system.battery),
        policy=policy,
        step_s=scenario.step_s,
        sleep_power_w=system.sleep_power_w,
        detection_energy_j=detection_energy_j,
        duration_s=scenario.duration_s,
        trace=scenario.trace,
        faults=build_fault_timeline(scenario.faults),
    )
