"""Scenario specs on disk: load ``*.json`` files and directories.

A scenario file is exactly one :meth:`ScenarioSpec.to_dict` payload —
what ``repro simulate <name> --json`` prints under ``"spec"`` — so the
round trip *run → save → edit → sweep* needs no other format.  A
directory of such files is a shareable scenario suite:
``repro sweep --from-json dir/`` sweeps every ``*.json`` in it.

All failure modes (unreadable file, invalid JSON, non-object payload,
unknown keys) surface as :class:`~repro.errors.SpecError` naming the
offending path, so the CLI reports them as user errors rather than
tracebacks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import SpecError
from repro.scenarios.spec import ScenarioSpec

__all__ = ["load_json_payload", "load_scenario_file", "load_scenario_dir"]


def load_json_payload(path: str | Path, what: str = "spec") -> dict[str, Any]:
    """The JSON object in ``path``, with errors reported per-file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SpecError(f"cannot read {what} file {path}: {exc}") from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"{what} file {path} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise SpecError(
            f"{what} file {path} must hold a JSON object, "
            f"got {type(payload).__name__}")
    return payload


def load_scenario_file(path: str | Path) -> ScenarioSpec:
    """The :class:`ScenarioSpec` stored in one JSON file."""
    payload = load_json_payload(path, what="scenario")
    try:
        return ScenarioSpec.from_dict(payload)
    except SpecError as exc:
        raise SpecError(f"scenario file {Path(path)}: {exc}") from None


def load_scenario_dir(path: str | Path) -> list[ScenarioSpec]:
    """Every ``*.json`` scenario in a directory, sorted by filename.

    Duplicate scenario names across files are rejected here (they
    would collide in a sweep anyway) with both filenames in the error.
    """
    directory = Path(path)
    if not directory.is_dir():
        raise SpecError(f"scenario directory {directory} does not exist")
    files = sorted(directory.glob("*.json"))
    if not files:
        raise SpecError(f"no *.json scenario files in {directory}")
    specs: list[ScenarioSpec] = []
    seen: dict[str, Path] = {}
    for file in files:
        spec = load_scenario_file(file)
        if spec.name in seen:
            raise SpecError(
                f"duplicate scenario name {spec.name!r} in {file} "
                f"(already defined by {seen[spec.name]})")
        seen[spec.name] = file
        specs.append(spec)
    return specs
