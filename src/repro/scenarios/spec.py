"""Declarative specs for a whole simulated system and scenario.

A :class:`ScenarioSpec` is the serializable description of one
day-in-the-life experiment: which harvester chain, battery, manager
policy and application to build (referenced by registry name, see
:mod:`repro.scenarios.registry`), the environment timeline to drive
them with, and the horizon/step to run.  Specs are frozen dataclasses
with lossless ``to_dict``/``from_dict`` JSON round-tripping, so a
scenario can be named, stored, swept and shipped between processes.

The spec layer deliberately knows nothing about the component classes
themselves — :mod:`repro.scenarios.builder` turns a spec into a live
:class:`repro.core.simulation.DaySimulation`.

>>> spec = ScenarioSpec(name="demo",
...                     timeline=TimelineSpec(name="paper_indoor_day"))
>>> ScenarioSpec.from_dict(spec.to_dict()) == spec
True
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Mapping

from repro.errors import SpecError
from repro.power.loads import SYSTEM_SLEEP_W

__all__ = [
    "canonical_json",
    "canonical_json_bytes",
    "spec_digest",
    "check_mapping_keys",
    "SegmentSpec",
    "TimelineSpec",
    "FaultSpec",
    "FAULT_KINDS",
    "BatterySpec",
    "PolicySpec",
    "AppSpec",
    "SystemSpec",
    "ScenarioSpec",
]


def canonical_json_bytes(obj: Any) -> bytes:
    """The one canonical JSON encoding of a spec/result payload.

    Sorted keys, compact separators, ASCII-only, NaN/Infinity rejected
    — so equal payloads encode to equal bytes on every platform and
    Python version.  Objects with a ``to_dict`` method are serialized
    through it; everything else must already be JSON-compatible.

    This is the single encoder shared by everything that stores or
    compares spec/result JSON: the content-addressed result store's
    keys and cached payloads (:mod:`repro.serve.store`), the CLI's
    ``--json``/``--out`` emission, canonical ``FleetResult`` payload
    comparisons and shard files.  Hand-rolled ``json.dumps`` with
    ad-hoc settings is how byte-identity contracts rot.

    >>> canonical_json_bytes({"b": 1, "a": [True, None]})
    b'{"a":[true,null],"b":1}'
    """
    payload = obj.to_dict() if hasattr(obj, "to_dict") else obj
    try:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                          ensure_ascii=True, allow_nan=False).encode("ascii")
    except ValueError as exc:
        raise SpecError(
            f"payload is not canonically JSON-serializable: {exc}") from None


def canonical_json(obj: Any) -> str:
    """:func:`canonical_json_bytes` as text (what the CLI prints).

    >>> canonical_json({"b": 1, "a": 2})
    '{"a":2,"b":1}'
    """
    return canonical_json_bytes(obj).decode("ascii")


def spec_digest(obj: Any) -> str:
    """SHA-256 hex digest of a payload's canonical JSON bytes.

    The content address of a spec (or any ``to_dict``-able value):
    because the encoding is canonical, equal specs digest identically
    across processes, machines and runs — the key contract of the
    result store.

    >>> spec_digest({"a": 1}) == spec_digest({"a": 1})
    True
    >>> len(spec_digest({"a": 1}))
    64
    """
    return hashlib.sha256(canonical_json_bytes(obj)).hexdigest()


def _check_dict(data: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise SpecError(f"{what} must be a mapping, got {type(data).__name__}")
    return data


def check_mapping_keys(what: str, data: Any, known,
                       required=()) -> Mapping[str, Any]:
    """Validate a ``from_dict`` payload's key set, uniformly.

    The shared guard every spec/result ``from_dict`` in the codebase
    uses: ``data`` must be a mapping, carry no keys outside ``known``
    and none missing from ``required`` — violations raise
    :class:`~repro.errors.SpecError` naming ``what`` and the key sets,
    so a typo in a JSON file fails with the menu in hand.
    """
    data = _check_dict(data, what)
    unknown = set(data) - set(known)
    if unknown:
        raise SpecError(
            f"unknown {what} keys: {sorted(unknown)} "
            f"(known: {sorted(known)})")
    missing = set(required) - set(data)
    if missing:
        raise SpecError(f"missing {what} keys: {sorted(missing)}")
    return data


def _from_mapping(cls, data: Any):
    """Build a flat spec dataclass from a mapping, rejecting unknown keys."""
    data = check_mapping_keys(cls.__name__, data,
                              {f.name for f in fields(cls)})
    return cls(**data)


@dataclass(frozen=True)
class SegmentSpec:
    """One piecewise-constant environment segment, fully inline.

    Attributes:
        duration_s: how long the conditions last.
        lux: illuminance at the panel.
        ambient_c: air temperature at the wrist.
        skin_c: skin temperature under the TEG.
        wind_ms: air speed over the watch.
        label: optional human-readable tag for reports.
    """

    duration_s: float
    lux: float
    ambient_c: float
    skin_c: float
    wind_ms: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise SpecError("segment duration must be positive")
        if self.lux < 0:
            raise SpecError("segment illuminance cannot be negative")
        if self.wind_ms < 0:
            raise SpecError("segment wind speed cannot be negative")

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SegmentSpec":
        return _from_mapping(cls, data)


@dataclass(frozen=True)
class TimelineSpec:
    """The environment over the horizon: a registry name or inline segments.

    Exactly one of the two forms must be used:

    * ``name`` — a timeline registered in
      :data:`repro.scenarios.registry.TIMELINES`;
    * ``segments`` — an explicit ordered tuple of :class:`SegmentSpec`,
      self-contained and registry-independent.
    """

    name: str = ""
    segments: tuple[SegmentSpec, ...] = ()

    def __post_init__(self) -> None:
        if bool(self.name) == bool(self.segments):
            raise SpecError(
                "a TimelineSpec needs exactly one of a registry name "
                "or inline segments"
            )
        if self.segments:
            object.__setattr__(self, "segments", tuple(self.segments))

    def to_dict(self) -> dict[str, Any]:
        if self.name:
            return {"name": self.name}
        return {"segments": [seg.to_dict() for seg in self.segments]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TimelineSpec":
        data = _check_dict(data, "TimelineSpec")
        unknown = set(data) - {"name", "segments"}
        if unknown:
            raise SpecError(f"unknown TimelineSpec keys: {sorted(unknown)}")
        segments = tuple(SegmentSpec.from_dict(seg)
                         for seg in data.get("segments", ()))
        return cls(name=data.get("name", ""), segments=segments)


#: Fault kinds the chaos layer can inject into the engine.
FAULT_KINDS = ("sensor_dropout", "harvester_derate", "load_spike")


@dataclass(frozen=True)
class FaultSpec:
    """One fault window injected into the simulation.

    Attributes:
        kind: what breaks — one of :data:`FAULT_KINDS`:

            * ``"sensor_dropout"`` — the detection pipeline is dead for
              the window: no detections execute and none accumulate on
              the carry (``magnitude`` unused, must stay ``0``);
            * ``"harvester_derate"`` — harvest intake is scaled by
              ``magnitude`` ∈ [0, 1] (``0`` is total occlusion,
              overlapping derates multiply);
            * ``"load_spike"`` — an extra parasitic draw of
              ``magnitude`` watts (> 0) on top of sleep power
              (overlapping spikes add).
        start_s: window start, seconds from the run start.
        duration_s: window length (must be positive).
        magnitude: per-kind parameter, see above.
    """

    kind: str
    start_s: float
    duration_s: float
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise SpecError(
                f"unknown fault kind {self.kind!r} "
                f"(known: {list(FAULT_KINDS)})")
        if self.start_s < 0:
            raise SpecError("fault start_s cannot be negative")
        if self.duration_s <= 0:
            raise SpecError("fault duration_s must be positive")
        if self.kind == "sensor_dropout" and self.magnitude != 0.0:
            raise SpecError(
                "sensor_dropout faults take no magnitude (leave it 0)")
        if self.kind == "harvester_derate" and not 0.0 <= self.magnitude <= 1.0:
            raise SpecError(
                f"harvester_derate magnitude is the remaining intake "
                f"fraction and must lie in [0, 1], got {self.magnitude!r}")
        if self.kind == "load_spike" and not self.magnitude > 0.0:
            raise SpecError(
                f"load_spike magnitude is extra watts and must be "
                f"positive, got {self.magnitude!r}")

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        return _from_mapping(cls, data)


@dataclass(frozen=True)
class BatterySpec:
    """Storage cell choice (by registry kind) and its parameters.

    ``capacity_fade`` is the chaos aging axis: the fraction of
    nameplate capacity irreversibly lost, in [0, 1).  It is omitted
    from ``to_dict`` when zero so every pre-aging spec keeps its
    canonical JSON bytes (and therefore its result-store digest).
    """

    kind: str = "lipo"
    capacity_mah: float = 120.0
    initial_soc: float = 0.5
    internal_resistance_ohm: float = 0.35
    charge_efficiency: float = 0.98
    capacity_fade: float = 0.0

    def __post_init__(self) -> None:
        if not self.kind:
            raise SpecError("battery kind cannot be empty")
        if not 0.0 <= self.initial_soc <= 1.0:
            raise SpecError("battery initial_soc must lie in [0, 1]")
        if not 0.0 <= self.capacity_fade < 1.0:
            raise SpecError(
                f"battery capacity_fade must lie in [0, 1), "
                f"got {self.capacity_fade!r}")

    def to_dict(self) -> dict[str, Any]:
        data = dataclasses.asdict(self)
        if self.capacity_fade == 0.0:
            del data["capacity_fade"]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BatterySpec":
        return _from_mapping(cls, data)


#: Legacy (pre-policy-protocol) PolicySpec keys, recognized only to
#: point old payloads at the redesigned form.
_LEGACY_POLICY_KEYS = frozenset({
    "kind", "min_rate_per_min", "max_rate_per_min", "low_soc", "high_soc",
    "neutrality_margin",
})

_PARAM_SCALARS = (bool, int, float, str)

#: Ceilings for nested-array policy params (trained-policy weight
#: blobs).  The scalar budget bounds the canonical JSON body a spec
#: can produce — a ``learned`` MLP of a few hundred weights uses well
#: under 1% of it — and the depth guard turns a pathologically nested
#: payload into a :class:`SpecError` instead of deep recursion.
MAX_PARAM_SCALARS = 65_536
MAX_PARAM_DEPTH = 8


def _check_param_value(key: str, value: Any, depth: int,
                       budget: list[int]) -> Any:
    """Validate one param value: a JSON scalar or nested scalar arrays.

    Returns the normalized value (sequences become plain lists, so two
    specs built from tuples and lists compare and serialize equal) and
    charges every scalar leaf against the per-spec ``budget``.
    """
    if isinstance(value, _PARAM_SCALARS):
        budget[0] += 1
        if budget[0] > MAX_PARAM_SCALARS:
            raise SpecError(
                f"policy params exceed {MAX_PARAM_SCALARS} scalar values "
                f"(param {key!r} crosses the cap); weight blobs larger "
                f"than this cannot round-trip as a PolicySpec")
        return value
    if isinstance(value, (list, tuple)):
        if depth >= MAX_PARAM_DEPTH:
            raise SpecError(
                f"policy param {key!r} nests arrays deeper than "
                f"{MAX_PARAM_DEPTH} levels")
        return [_check_param_value(key, item, depth + 1, budget)
                for item in value]
    raise SpecError(
        f"policy param {key!r} must be a JSON scalar (number, string "
        f"or bool) or a nested array of scalars, "
        f"got {type(value).__name__}")


@dataclass(frozen=True)
class PolicySpec:
    """Power-policy choice: a registered name plus its keyword params.

    Any policy in the ``POLICIES`` registry can be named
    (``energy_aware``, ``static_duty_cycle``, ``ewma_forecast``,
    ``oracle_lookahead``, ``learned``, or a third-party registration);
    ``params`` are passed to its factory as keyword arguments, so the
    spec stays JSON-round-trippable for every policy rather than
    hard-coding one policy's threshold fields.  Param values must be
    JSON scalars (numbers, strings, booleans) or nested arrays of
    scalars — the latter carry trained-policy weight blobs, capped at
    ``MAX_PARAM_SCALARS`` total scalars — so specs survive the process
    backend unchanged.
    """

    name: str = "energy_aware"
    params: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("policy name cannot be empty")
        params = _check_dict(self.params, "PolicySpec params")
        budget = [0]
        checked = {}
        for key, value in params.items():
            if not isinstance(key, str) or not key:
                raise SpecError(
                    f"policy param names must be non-empty strings, "
                    f"got {key!r}")
            checked[key] = _check_param_value(key, value, 0, budget)
        object.__setattr__(self, "params", checked)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicySpec":
        data = _check_dict(data, "PolicySpec")
        unknown = set(data) - {"name", "params"}
        if unknown & _LEGACY_POLICY_KEYS:
            raise SpecError(
                f"legacy PolicySpec keys {sorted(unknown & _LEGACY_POLICY_KEYS)}: "
                "the policy layer was redesigned around named policies — use "
                "{'name': <registered policy>, 'params': {...}}, e.g. "
                "{'name': 'energy_aware', 'params': {'max_rate_per_min': 24.0}}")
        if unknown:
            raise SpecError(
                f"unknown PolicySpec keys: {sorted(unknown)} "
                f"(known: ['name', 'params'])")
        return cls(name=data.get("name", "energy_aware"),
                   params=data.get("params", {}))


@dataclass(frozen=True)
class AppSpec:
    """Application choice (by registry kind) plus network/processor names."""

    kind: str = "stress_detection"
    network: str = "network_a"
    processor: str = "ri5cy_multi"

    def __post_init__(self) -> None:
        if not self.kind:
            raise SpecError("app kind cannot be empty")

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AppSpec":
        return _from_mapping(cls, data)


@dataclass(frozen=True)
class SystemSpec:
    """The buildable watch: harvester chain, storage, policy, workload."""

    harvester: str = "calibrated_dual"
    battery: BatterySpec = BatterySpec()
    policy: PolicySpec = PolicySpec()
    app: AppSpec = AppSpec()
    sleep_power_w: float = SYSTEM_SLEEP_W

    def __post_init__(self) -> None:
        if not self.harvester:
            raise SpecError("harvester name cannot be empty")
        if self.sleep_power_w < 0:
            raise SpecError("sleep power cannot be negative")

    def to_dict(self) -> dict[str, Any]:
        return {
            "harvester": self.harvester,
            "battery": self.battery.to_dict(),
            "policy": self.policy.to_dict(),
            "app": self.app.to_dict(),
            "sleep_power_w": self.sleep_power_w,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SystemSpec":
        data = _check_dict(data, "SystemSpec")
        unknown = set(data) - {"harvester", "battery", "policy", "app",
                               "sleep_power_w"}
        if unknown:
            raise SpecError(f"unknown SystemSpec keys: {sorted(unknown)}")
        kwargs: dict[str, Any] = {}
        if "harvester" in data:
            kwargs["harvester"] = data["harvester"]
        if "battery" in data:
            kwargs["battery"] = BatterySpec.from_dict(data["battery"])
        if "policy" in data:
            kwargs["policy"] = PolicySpec.from_dict(data["policy"])
        if "app" in data:
            kwargs["app"] = AppSpec.from_dict(data["app"])
        if "sleep_power_w" in data:
            kwargs["sleep_power_w"] = data["sleep_power_w"]
        return cls(**kwargs)


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, fully-described day-in-the-life experiment.

    Attributes:
        name: scenario identifier (library key, report label).
        timeline: the environment over the horizon.
        system: the watch to build.
        step_s: simulation step size.
        duration_s: horizon override; ``None`` runs the whole timeline.
        description: one-line human-readable summary.
        trace: per-step trace retention, as the string form of
            :class:`repro.core.simulation.TraceMode` (``"full"``,
            ``"none"``, ``"decimated:<n>"``).  Summary totals are
            exact in every mode; sweeps over long horizons should use
            ``"none"`` so no per-step trace is allocated.
        faults: chaos fault windows injected into the run (see
            :class:`FaultSpec`); empty for a healthy system.  Omitted
            from ``to_dict`` when empty so fault-free specs keep their
            pre-chaos canonical JSON bytes.
    """

    name: str
    timeline: TimelineSpec
    system: SystemSpec = SystemSpec()
    step_s: float = 60.0
    duration_s: float | None = None
    description: str = ""
    trace: str = "full"
    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, FaultSpec):
                raise SpecError(
                    f"scenario faults must be FaultSpec instances, "
                    f"got {type(fault).__name__}")
        if not self.name:
            raise SpecError("scenario name cannot be empty")
        if self.step_s <= 0:
            raise SpecError("scenario step size must be positive")
        if self.duration_s is not None and self.duration_s <= 0:
            raise SpecError("scenario duration must be positive when given")
        # Validate eagerly so a bad trace string fails at spec time,
        # not at run time.  Deferred import: the engine module is a
        # consumer of specs, not a dependency of the spec layer.
        from repro.core.simulation import TraceMode
        from repro.errors import SimulationError
        try:
            TraceMode.parse(self.trace)
        except SimulationError as exc:
            raise SpecError(str(exc)) from None
        if not isinstance(self.trace, str):
            object.__setattr__(self, "trace", str(self.trace))

    def to_dict(self) -> dict[str, Any]:
        data = {
            "name": self.name,
            "timeline": self.timeline.to_dict(),
            "system": self.system.to_dict(),
            "step_s": self.step_s,
            "duration_s": self.duration_s,
            "description": self.description,
            "trace": self.trace,
        }
        if self.faults:
            data["faults"] = [fault.to_dict() for fault in self.faults]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        data = _check_dict(data, "ScenarioSpec")
        unknown = set(data) - {"name", "timeline", "system", "step_s",
                               "duration_s", "description", "trace", "faults"}
        if unknown:
            raise SpecError(f"unknown ScenarioSpec keys: {sorted(unknown)}")
        if "name" not in data or "timeline" not in data:
            raise SpecError("a ScenarioSpec needs at least name and timeline")
        kwargs: dict[str, Any] = {
            "name": data["name"],
            "timeline": TimelineSpec.from_dict(data["timeline"]),
        }
        if "system" in data:
            kwargs["system"] = SystemSpec.from_dict(data["system"])
        if "faults" in data:
            kwargs["faults"] = tuple(FaultSpec.from_dict(fault)
                                     for fault in data["faults"])
        for key in ("step_s", "duration_s", "description", "trace"):
            if key in data:
                kwargs[key] = data[key]
        return cls(**kwargs)
