"""Declarative scenario API: specs, registries, builder, library, runner.

The subsystem that turns "hand-wire a :class:`DaySimulation` in every
script" into "name a scenario and run it":

* :mod:`repro.scenarios.spec` — frozen, JSON-round-trippable
  :class:`ScenarioSpec`/:class:`SystemSpec` dataclasses;
* :mod:`repro.scenarios.registry` — string-keyed component registries
  (``@register_harvester("calibrated_dual")``, batteries, policies,
  apps, networks, processors, timelines) so specs reference components
  by name and third-party code can plug in its own;
* :mod:`repro.scenarios.builder` — ``build_simulation(spec)``, the one
  construction path from spec to live system;
* :mod:`repro.scenarios.library` — named built-in scenarios
  (``paper_indoor_worst_case``, ``sunny_office_worker``, ...);
* :mod:`repro.scenarios.files` — scenario specs on disk
  (``load_scenario_file``/``load_scenario_dir``, the ``repro sweep
  --from-json dir/`` loader);
* :mod:`repro.scenarios.runner` — ``ScenarioRunner.run_batch`` parallel
  sweeps, the :class:`SweepResult` aggregate, and
  ``ScenarioRunner.run_grid`` policy grid search.

Power policies live in their own subsystem, :mod:`repro.policies`
(observation -> decision protocol, built-in policies, parameter
grids); they share the ``POLICIES`` registry exported here, and
importing this package registers the built-ins.
"""

from repro.scenarios.spec import (
    AppSpec,
    BatterySpec,
    PolicySpec,
    ScenarioSpec,
    SegmentSpec,
    SystemSpec,
    TimelineSpec,
    canonical_json,
    canonical_json_bytes,
    spec_digest,
)
from repro.scenarios.registry import (
    APPS,
    BATTERIES,
    ComponentRegistry,
    HARVESTERS,
    NETWORKS,
    POLICIES,
    PROCESSORS,
    TIMELINES,
    register_app,
    register_battery,
    register_harvester,
    register_network,
    register_policy,
    register_processor,
    register_timeline,
)
from repro.scenarios.builder import (
    build_app,
    build_battery,
    build_harvester,
    build_policy,
    build_simulation,
    build_timeline,
)
from repro.scenarios.files import (
    load_scenario_dir,
    load_scenario_file,
)
from repro.scenarios.library import (
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.runner import (
    ScenarioOutcome,
    ScenarioRunner,
    SweepResult,
    run_scenario,
)

__all__ = [
    "AppSpec",
    "BatterySpec",
    "PolicySpec",
    "ScenarioSpec",
    "SegmentSpec",
    "SystemSpec",
    "TimelineSpec",
    "canonical_json",
    "canonical_json_bytes",
    "spec_digest",
    "ComponentRegistry",
    "APPS",
    "BATTERIES",
    "HARVESTERS",
    "NETWORKS",
    "POLICIES",
    "PROCESSORS",
    "TIMELINES",
    "register_app",
    "register_battery",
    "register_harvester",
    "register_network",
    "register_policy",
    "register_processor",
    "register_timeline",
    "register_scenario",
    "build_app",
    "build_battery",
    "build_harvester",
    "build_policy",
    "build_simulation",
    "build_timeline",
    "all_scenarios",
    "get_scenario",
    "scenario_names",
    "load_scenario_dir",
    "load_scenario_file",
    "ScenarioOutcome",
    "ScenarioRunner",
    "SweepResult",
    "run_scenario",
]
