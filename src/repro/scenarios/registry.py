"""String-keyed registries mapping spec names to component factories.

Specs (:mod:`repro.scenarios.spec`) reference every buildable component
— harvester chain, battery, manager policy, application, classifier
network, processor configuration, environment timeline — by name, so a
scenario serializes to plain JSON and third-party code can plug in new
components without touching the builder:

.. code-block:: python

    from repro.scenarios import register_harvester

    @register_harvester("solar_farm")
    def build_solar_farm():
        return MyGiantPanelChain()

Built-in components are registered at the bottom of this module (and
built-in timelines in :mod:`repro.scenarios.library`), so importing
:mod:`repro.scenarios` wires up everything a stock spec can name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import RegistryError

__all__ = [
    "ComponentRegistry",
    "HARVESTERS",
    "BATTERIES",
    "POLICIES",
    "APPS",
    "NETWORKS",
    "PROCESSORS",
    "TIMELINES",
    "register_harvester",
    "register_battery",
    "register_policy",
    "register_app",
    "register_network",
    "register_processor",
    "register_timeline",
]

F = TypeVar("F", bound=Callable)


class ComponentRegistry:
    """A named factory table for one kind of component.

    Args:
        kind: what the registry holds ("harvester", "battery", ...);
            used in error messages.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: dict[str, Callable] = {}

    def register(self, name: str) -> Callable[[F], F]:
        """Decorator registering ``name -> factory``; rejects duplicates."""
        if not name:
            raise RegistryError(f"{self.kind} name cannot be empty")

        def decorator(factory: F) -> F:
            if name in self._factories:
                raise RegistryError(
                    f"{self.kind} {name!r} is already registered"
                )
            self._factories[name] = factory
            return factory

        return decorator

    def get(self, name: str) -> Callable:
        """The factory registered under ``name``."""
        try:
            return self._factories[name]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; known: {self.names()}"
            ) from None

    def remove(self, name: str) -> Callable:
        """Drop and return the factory registered under ``name``.

        Registries are append-only in normal operation; this exists so
        tests and plug-in teardown can restore global state without
        reaching into internals.  Whole-registry consumers (``repro
        search`` with no selection) see removals immediately.
        """
        try:
            return self._factories.pop(name)
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; known: {self.names()}"
            ) from None

    def names(self) -> list[str]:
        """All registered names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComponentRegistry({self.kind!r}, {self.names()})"


HARVESTERS = ComponentRegistry("harvester")
BATTERIES = ComponentRegistry("battery")
POLICIES = ComponentRegistry("policy")
APPS = ComponentRegistry("app")
NETWORKS = ComponentRegistry("network")
PROCESSORS = ComponentRegistry("processor")
TIMELINES = ComponentRegistry("timeline")

register_harvester = HARVESTERS.register
register_battery = BATTERIES.register
register_policy = POLICIES.register
register_app = APPS.register
register_network = NETWORKS.register
register_processor = PROCESSORS.register
register_timeline = TIMELINES.register


# --- built-in components -----------------------------------------------------
#
# Factory signatures by registry:
#   HARVESTERS:  ()            -> object with battery_intake_w(lighting, thermal)
#   BATTERIES:   (BatterySpec) -> battery
#   POLICIES:    (params, PolicyContext) -> Policy (see repro.policies;
#                built-ins are registered by repro.policies.library)
#   APPS:        (AppSpec)     -> application
#   NETWORKS:    ()            -> MultiLayerPerceptron
#   PROCESSORS:  ()            -> ProcessorConfig
#   TIMELINES:   ()            -> EnvironmentTimeline


@dataclass(frozen=True)
class _SingleChannelDual:
    """Adapter exposing one harvesting channel as a dual-source chain.

    Used by the ablation harvesters below so a spec can ask "what if
    only the panel / only the TEG were populated" without changing the
    simulation engine.
    """

    solar: object | None = None
    teg: object | None = None

    def battery_intake_w(self, lighting, thermal) -> float:
        power = 0.0
        if self.solar is not None:
            power += self.solar.battery_intake_w(lighting)
        if self.teg is not None:
            power += self.teg.battery_intake_w(thermal)
        return power


@register_harvester("calibrated_dual")
def _build_calibrated_dual():
    from repro.harvest.calibrated import calibrated_dual_harvester

    return calibrated_dual_harvester()


@register_harvester("calibrated_solar_only")
def _build_calibrated_solar_only():
    from repro.harvest.calibrated import calibrated_solar_harvester

    return _SingleChannelDual(solar=calibrated_solar_harvester())


@register_harvester("calibrated_teg_only")
def _build_calibrated_teg_only():
    from repro.harvest.calibrated import calibrated_teg_harvester

    return _SingleChannelDual(teg=calibrated_teg_harvester())


@register_battery("lipo")
def _build_lipo(spec):
    from repro.power.battery import LiPoBattery

    return LiPoBattery(
        capacity_mah=spec.capacity_mah,
        initial_soc=spec.initial_soc,
        internal_resistance_ohm=spec.internal_resistance_ohm,
        charge_efficiency=spec.charge_efficiency,
        capacity_fade=spec.capacity_fade,
    )


@register_app("stress_detection")
def _build_stress_detection_app(spec):
    from repro.core.application import StressDetectionApp

    network = NETWORKS.get(spec.network)()
    processor = PROCESSORS.get(spec.processor)()
    return StressDetectionApp(network=network, processor=processor)


@register_network("network_a")
def _build_network_a():
    from repro.fann.zoo import build_network_a

    return build_network_a()


@register_network("network_b")
def _build_network_b():
    from repro.fann.zoo import build_network_b

    return build_network_b()


def _register_builtin_processors() -> None:
    from repro.timing.processors import ALL_PROCESSORS

    for config in ALL_PROCESSORS:
        PROCESSORS.register(config.key)(lambda config=config: config)


_register_builtin_processors()
