"""Run scenarios — single or in parallel batches — and aggregate results.

:class:`ScenarioRunner` executes a batch of
:class:`~repro.scenarios.spec.ScenarioSpec` on one of three backends:

* ``"serial"`` — in the calling thread, one scenario at a time;
* ``"thread"`` — a :class:`concurrent.futures.ThreadPoolExecutor`
  (each scenario builds its own components, so runs share nothing
  mutable; threads also see runtime registry registrations);
* ``"process"`` — the persistent shared worker pool
  (:mod:`repro.pool`): *spawned* workers created once per process and
  reused across every ``run_batch``/``run_grid``/fleet/chaos call.
  Dispatch is chunked — a worker receives a strided block of specs,
  not one future per spec — and the batch's base spec is broadcast
  once per chunk with per-spec deltas riding alongside, so repeated
  structure (grid variants, fleet wearers) never ships twice.  Specs
  still cross the process boundary through their JSON
  ``to_dict``/``from_dict`` round-trip, so every component must be
  resolvable by name in a fresh ``import repro.scenarios`` —
  components registered at runtime with ``@register_*`` are not
  visible to the workers, and referencing one raises a clear
  :class:`~repro.errors.SpecError`.  Use the thread backend for
  runtime-registered components.

All backends return a :class:`SweepResult` with the per-scenario
outcomes in input order plus provenance metadata (which backend
actually ran and how long it took), and a batch's outcomes are
identical across backends (simulations are deterministic and share no
state).  :meth:`ScenarioRunner.run_grid` reuses the same backends to
sweep one scenario under a policy grid
(:class:`~repro.policies.grid.PolicyGrid`), returning a ranked
:class:`~repro.policies.grid.GridResult`.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, fields
from functools import cached_property
from typing import Any, Iterable, Mapping, Sequence

from repro.core.simulation import SimulationResult
from repro.errors import RegistryError, SpecError
from repro.scenarios.builder import build_simulation
from repro.scenarios.spec import ScenarioSpec, check_mapping_keys
from repro.units import SECONDS_PER_DAY

__all__ = ["ScenarioOutcome", "SweepResult", "run_scenario",
           "run_scenario_chunk", "spec_delta", "apply_spec_delta",
           "ScenarioRunner"]

BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class ScenarioOutcome:
    """Summary of one scenario run.

    Attributes:
        name: the scenario's library/spec name.
        duration_s: simulated horizon.
        energy_neutral: battery ended no lower than it started.
        total_detections: detections executed over the horizon.
        detections_per_day: detections normalised to a 24 h day.
        initial_soc: battery state of charge at the start.
        final_soc: battery state of charge at the end.
        total_harvest_j: energy harvested into the battery.
        total_consumed_j: energy drawn by detections and sleep.
        downtime_s: time spent in steps where the battery could not
            cover the full demand (dropped detections / brown-out).
    """

    name: str
    duration_s: float
    energy_neutral: bool
    total_detections: float
    detections_per_day: float
    initial_soc: float
    final_soc: float
    total_harvest_j: float
    total_consumed_j: float
    downtime_s: float = 0.0

    @classmethod
    def from_result(cls, name: str,
                    result: SimulationResult) -> "ScenarioOutcome":
        """Summarise a :class:`SimulationResult` under a scenario name.

        Works in every trace mode — the summary reads only the exact
        totals, never the per-step trace.  Fields are coerced to plain
        ``float``/``bool``: the stock battery returns plain floats at
        the source, but registry-registered third-party components may
        not, and outcomes must stay JSON-serializable regardless.
        """
        duration_s = float(result.duration_s)
        days = duration_s / SECONDS_PER_DAY if duration_s > 0 else 1.0
        return cls(
            name=name,
            duration_s=duration_s,
            energy_neutral=bool(result.energy_neutral),
            total_detections=float(result.total_detections),
            detections_per_day=float(result.total_detections) / days,
            initial_soc=float(result.initial_soc),
            final_soc=float(result.final_soc),
            total_harvest_j=float(result.total_harvest_j),
            total_consumed_j=float(result.total_consumed_j),
            downtime_s=float(result.downtime_s),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "duration_s": self.duration_s,
            "energy_neutral": self.energy_neutral,
            "total_detections": self.total_detections,
            "detections_per_day": self.detections_per_day,
            "initial_soc": self.initial_soc,
            "final_soc": self.final_soc,
            "total_harvest_j": self.total_harvest_j,
            "total_consumed_j": self.total_consumed_j,
            "downtime_s": self.downtime_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioOutcome":
        """Rebuild an outcome from :meth:`to_dict` output (exact)."""
        known = {f.name for f in fields(cls)}
        check_mapping_keys("ScenarioOutcome", data, known, required=known)
        return cls(**data)


@dataclass(frozen=True)
class SweepResult:
    """Aggregate outcome of a scenario batch, in input order.

    Attributes:
        outcomes: per-scenario summaries, in input order.
        backend: the backend that actually executed the batch
            (``"serial"`` when a thread request degenerated to an
            inline run), so a saved result file records its provenance.
        wall_time_s: wall-clock seconds the batch took end to end.
    """

    outcomes: tuple[ScenarioOutcome, ...]
    backend: str = ""
    wall_time_s: float = 0.0

    @property
    def all_neutral(self) -> bool:
        """True when every scenario in the sweep was energy-neutral."""
        return all(outcome.energy_neutral for outcome in self.outcomes)

    @cached_property
    def _by_name(self) -> dict[str, ScenarioOutcome]:
        # Lazily-built index; safe on a frozen dataclass because
        # cached_property writes to __dict__ directly, and outcomes
        # never change after construction.
        return {outcome.name: outcome for outcome in self.outcomes}

    def by_name(self, name: str) -> ScenarioOutcome:
        """The outcome of the named scenario (O(1) after first lookup)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SpecError(
                f"no outcome for scenario {name!r} in this sweep") from None

    def to_dict(self) -> dict[str, Any]:
        return {
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
            "backend": self.backend,
            "wall_time_s": self.wall_time_s,
        }

    def format_table(self) -> str:
        """A fixed-width neutrality / detections-per-day report."""
        header = (f"{'scenario':28s} {'neutral':>7s} {'det/day':>9s} "
                  f"{'SoC start':>9s} {'SoC end':>8s} {'harvest J':>10s}")
        lines = [header, "-" * len(header)]
        for o in self.outcomes:
            lines.append(
                f"{o.name:28s} {'yes' if o.energy_neutral else 'NO':>7s} "
                f"{o.detections_per_day:9.0f} {100 * o.initial_soc:8.1f}% "
                f"{100 * o.final_soc:7.1f}% {o.total_harvest_j:10.2f}"
            )
        return "\n".join(lines)


def run_scenario(spec: ScenarioSpec) -> ScenarioOutcome:
    """Build and run one scenario, returning its summary outcome.

    The outcome reads only the run's exact totals, so the simulation
    is forced to ``trace="none"`` regardless of the spec — a sweep
    over long horizons allocates no per-step trace at all.  Callers
    who want the trace should ``build_simulation(spec).run()``
    directly.
    """
    lean = (spec if spec.trace == "none"
            else dataclasses.replace(spec, trace="none"))
    result = build_simulation(lean).run()
    return ScenarioOutcome.from_result(spec.name, result)


def _run_scenario_payload(payload: dict, crash: str | None = None) -> dict:
    """Process-pool worker: spec dict in, outcome dict out.

    Plain dicts cross the pool so the payload pickles trivially on any
    start method.  A registry miss in the worker means the spec names a
    component that only exists in the parent (registered at runtime) —
    re-raised as a SpecError that explains the backend's contract.
    """
    spec = ScenarioSpec.from_dict(payload)
    if crash == spec.name or os.environ.get("REPRO_WORKER_CRASH") == spec.name:
        # Test hook: die the way an OOM-killed or signalled worker
        # does, so the crash-surfacing path is testable without real
        # memory pressure.  The parent forwards REPRO_WORKER_CRASH in
        # the chunk context — persistent pool workers may predate the
        # variable, so environment inheritance alone is not enough.
        os._exit(13)
    try:
        return run_scenario(spec).to_dict()
    except RegistryError as exc:
        raise SpecError(
            f"scenario {spec.name!r} cannot run on the process backend: "
            f"{exc}. Worker processes import repro.scenarios fresh, so "
            "only components registered at import time are visible; "
            "runtime @register_* registrations require the thread or "
            "serial backend."
        ) from None


def spec_delta(base: Mapping[str, Any],
               payload: Mapping[str, Any]) -> dict[str, Any]:
    """The top-level-key delta turning ``base`` into ``payload``.

    The broadcast half of the chunk protocol: a batch ships its first
    spec once per chunk as the base, and every other spec as
    ``{"set": {changed keys}, "drop": [absent keys]}``.  Grid variants
    (same scenario, different policy) and fleet wearers (same system,
    different timeline) compress to a fraction of their full payload;
    a batch of unrelated scenarios degrades to full dicts under
    ``"set"``.  Empty parts are omitted so identical specs ship as
    ``{}``.
    """
    delta: dict[str, Any] = {}
    changed = {key: value for key, value in payload.items()
               if key not in base or base[key] != value}
    dropped = [key for key in base if key not in payload]
    if changed:
        delta["set"] = changed
    if dropped:
        delta["drop"] = dropped
    return delta


def apply_spec_delta(base: Mapping[str, Any],
                     delta: Mapping[str, Any]) -> dict[str, Any]:
    """Rebuild a full spec dict from :func:`spec_delta` output (exact)."""
    payload = dict(base)
    for key in delta.get("drop", ()):
        payload.pop(key, None)
    payload.update(delta.get("set", {}))
    return payload


def run_scenario_chunk(context: Mapping[str, Any],
                       items: Sequence[Mapping[str, Any]]) -> list[dict]:
    """Pool chunk handler: base-plus-delta specs in, outcome dicts out.

    ``context`` carries the chunk's broadcast state — ``"base"`` (the
    batch's first spec dict) and optionally ``"crash"`` (the forwarded
    ``REPRO_WORKER_CRASH`` test hook); each item is a
    :func:`spec_delta`.  Runs unchanged in-process: the
    chunked-vs-unchunked bitwise-identity tests call it directly.
    """
    base = context.get("base") or {}
    crash = context.get("crash")
    return [_run_scenario_payload(apply_spec_delta(base, delta), crash)
            for delta in items]


class ScenarioRunner:
    """Executes scenario batches, optionally in parallel.

    Args:
        workers: default worker count for :meth:`run_batch`; on the
            thread backend ``1`` runs serially in the calling thread.
        backend: ``"serial"``, ``"thread"`` (default) or ``"process"``
            — see the module docstring for the process backend's
            registry-visibility contract.
    """

    def __init__(self, workers: int = 1, backend: str = "thread") -> None:
        if workers < 1:
            raise SpecError("worker count must be at least 1")
        if backend not in BACKENDS:
            raise SpecError(
                f"unknown backend {backend!r}; known: {list(BACKENDS)}")
        self.workers = workers
        self.backend = backend

    def run(self, spec: ScenarioSpec) -> ScenarioOutcome:
        """Run a single scenario."""
        return run_scenario(spec)

    def run_batch(self, specs: Iterable[ScenarioSpec],
                  workers: int | None = None,
                  backend: str | None = None) -> SweepResult:
        """Run every scenario, ``workers`` at a time, preserving order."""
        specs = list(specs)
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise SpecError("batch scenario names must be unique")
        n = self.workers if workers is None else workers
        if n < 1:
            raise SpecError("worker count must be at least 1")
        chosen = self.backend if backend is None else backend
        if chosen not in BACKENDS:
            raise SpecError(
                f"unknown backend {chosen!r}; known: {list(BACKENDS)}")

        started = time.perf_counter()
        outcomes: Sequence[ScenarioOutcome]
        used = chosen
        if len(specs) <= 1 or chosen == "serial" or n == 1:
            # Trivial batches never pay pool overhead, whatever backend
            # was requested — and the result records the backend that
            # actually ran, so provenance stays honest.
            outcomes = [run_scenario(s) for s in specs]
            used = "serial"
        elif chosen == "process":
            outcomes = self._run_process_batch(specs, n)
        else:
            with ThreadPoolExecutor(max_workers=min(n, len(specs))) as pool:
                outcomes = list(pool.map(run_scenario, specs))
        return SweepResult(outcomes=tuple(outcomes), backend=used,
                           wall_time_s=time.perf_counter() - started)

    @staticmethod
    def _run_process_batch(specs: Sequence[ScenarioSpec],
                           n: int) -> list[ScenarioOutcome]:
        """Dispatch a batch through the shared persistent worker pool.

        The first spec is the chunk broadcast; every spec ships as a
        delta against it (grid variants and fleet wearers compress to
        near-nothing).  ``REPRO_WORKER_CRASH`` is forwarded through the
        chunk context because persistent workers may have been spawned
        before the variable was set.  A dead worker surfaces as a
        :class:`~repro.errors.SpecError` naming the crashed chunk's
        scenario range; the pool self-heals on the next batch.
        """
        # Deferred: keeps repro.scenarios importable in pool workers
        # without circularity games.
        from repro.pool import WorkerCrash, get_shared_pool

        base = specs[0].to_dict()
        context = {"base": base}
        crash = os.environ.get("REPRO_WORKER_CRASH")
        if crash:
            context["crash"] = crash
        items = [spec_delta(base, spec.to_dict()) for spec in specs]
        pool = get_shared_pool()
        try:
            results = pool.run_chunked("scenarios", context, items,
                                       chunks=min(n, len(specs)))
        except WorkerCrash as exc:
            names = [specs[i].name for i in exc.indices]
            if len(names) <= 3:
                span = ", ".join(repr(name) for name in names)
            else:
                span = (f"{names[0]!r} .. {names[-1]!r} "
                        f"({len(names)} scenarios)")
            raise SpecError(
                f"process-backend worker died while running chunk "
                f"{exc.chunk_index + 1}/{exc.chunk_count} of the batch "
                f"— scenarios {span}. Most often this means the "
                "launching script lacks the standard "
                "`if __name__ == '__main__':` guard (spawned workers "
                "re-import it, and stdin/REPL sessions cannot be "
                "re-imported at all) — but a worker killed mid-sweep "
                "(OOM, signal) breaks the pool the same way; see the "
                "chained exception. The shared pool respawns on the "
                "next batch; the thread backend avoids both."
            ) from exc
        return [ScenarioOutcome.from_dict(payload) for payload in results]

    def run_grid(self, scenario: ScenarioSpec, grid,
                 workers: int | None = None,
                 backend: str | None = None) -> "GridResult":
        """Run ``scenario`` under every point of a policy grid.

        Args:
            scenario: the scenario to hold fixed while policies vary.
            grid: a :class:`~repro.policies.grid.PolicyGrid` or an
                iterable of them (one per policy family to compare).
            workers / backend: as in :meth:`run_batch` — grid points
                are independent scenarios, so they sweep on any
                backend, including the process pool.

        Returns:
            A ranked :class:`~repro.policies.grid.GridResult`.
        """
        # Deferred: repro.policies builds on this package.
        from repro.policies.grid import GridEntry, GridResult, expand_grids

        candidates = expand_grids(grid)
        variants = [
            dataclasses.replace(
                scenario,
                name=f"{scenario.name}::{label}",
                system=dataclasses.replace(scenario.system, policy=point),
            )
            for label, point in candidates
        ]
        sweep = self.run_batch(variants, workers=workers, backend=backend)
        entries = tuple(
            GridEntry(label=label, policy=point, outcome=outcome)
            for (label, point), outcome in zip(candidates, sweep.outcomes)
        )
        return GridResult(scenario=scenario.name, entries=entries,
                          backend=sweep.backend,
                          wall_time_s=sweep.wall_time_s)
