"""Run scenarios — single or in parallel batches — and aggregate results.

:class:`ScenarioRunner` executes a batch of
:class:`~repro.scenarios.spec.ScenarioSpec` with a
:class:`concurrent.futures.ThreadPoolExecutor` (each scenario builds
its own components, so runs share nothing mutable; threads also see
runtime registry registrations, which process pools would not) and
returns a :class:`SweepResult` with the per-scenario outcomes in input
order.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.core.simulation import SimulationResult
from repro.errors import SpecError
from repro.scenarios.builder import build_simulation
from repro.scenarios.spec import ScenarioSpec
from repro.units import SECONDS_PER_DAY

__all__ = ["ScenarioOutcome", "SweepResult", "run_scenario", "ScenarioRunner"]


@dataclass(frozen=True)
class ScenarioOutcome:
    """Summary of one scenario run.

    Attributes:
        name: the scenario's library/spec name.
        duration_s: simulated horizon.
        energy_neutral: battery ended no lower than it started.
        total_detections: detections executed over the horizon.
        detections_per_day: detections normalised to a 24 h day.
        initial_soc: battery state of charge at the start.
        final_soc: battery state of charge at the end.
        total_harvest_j: energy harvested into the battery.
        total_consumed_j: energy drawn by detections and sleep.
    """

    name: str
    duration_s: float
    energy_neutral: bool
    total_detections: float
    detections_per_day: float
    initial_soc: float
    final_soc: float
    total_harvest_j: float
    total_consumed_j: float

    @classmethod
    def from_result(cls, name: str,
                    result: SimulationResult) -> "ScenarioOutcome":
        """Summarise a :class:`SimulationResult` under a scenario name."""
        if not result.steps:
            raise SpecError(f"scenario {name!r} produced no steps")
        duration_s = float(result.duration_s)
        days = duration_s / SECONDS_PER_DAY if duration_s > 0 else 1.0
        # Plain Python scalars: the battery model leaks numpy scalars
        # (np.interp) and those are not JSON-serializable.
        return cls(
            name=name,
            duration_s=duration_s,
            energy_neutral=bool(result.energy_neutral),
            total_detections=float(result.total_detections),
            detections_per_day=float(result.total_detections) / days,
            initial_soc=float(result.initial_soc),
            final_soc=float(result.final_soc),
            total_harvest_j=float(result.total_harvest_j),
            total_consumed_j=float(result.total_consumed_j),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "duration_s": self.duration_s,
            "energy_neutral": self.energy_neutral,
            "total_detections": self.total_detections,
            "detections_per_day": self.detections_per_day,
            "initial_soc": self.initial_soc,
            "final_soc": self.final_soc,
            "total_harvest_j": self.total_harvest_j,
            "total_consumed_j": self.total_consumed_j,
        }


@dataclass(frozen=True)
class SweepResult:
    """Aggregate outcome of a scenario batch, in input order."""

    outcomes: tuple[ScenarioOutcome, ...]

    @property
    def all_neutral(self) -> bool:
        """True when every scenario in the sweep was energy-neutral."""
        return all(outcome.energy_neutral for outcome in self.outcomes)

    def by_name(self, name: str) -> ScenarioOutcome:
        """The outcome of the named scenario."""
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise SpecError(f"no outcome for scenario {name!r} in this sweep")

    def to_dict(self) -> dict[str, Any]:
        return {"outcomes": [outcome.to_dict() for outcome in self.outcomes]}

    def format_table(self) -> str:
        """A fixed-width neutrality / detections-per-day report."""
        header = (f"{'scenario':28s} {'neutral':>7s} {'det/day':>9s} "
                  f"{'SoC start':>9s} {'SoC end':>8s} {'harvest J':>10s}")
        lines = [header, "-" * len(header)]
        for o in self.outcomes:
            lines.append(
                f"{o.name:28s} {'yes' if o.energy_neutral else 'NO':>7s} "
                f"{o.detections_per_day:9.0f} {100 * o.initial_soc:8.1f}% "
                f"{100 * o.final_soc:7.1f}% {o.total_harvest_j:10.2f}"
            )
        return "\n".join(lines)


def run_scenario(spec: ScenarioSpec) -> ScenarioOutcome:
    """Build and run one scenario, returning its summary outcome."""
    result = build_simulation(spec).run()
    return ScenarioOutcome.from_result(spec.name, result)


class ScenarioRunner:
    """Executes scenario batches, optionally in parallel.

    Args:
        workers: default worker-thread count for :meth:`run_batch`;
            ``1`` runs serially in the calling thread.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise SpecError("worker count must be at least 1")
        self.workers = workers

    def run(self, spec: ScenarioSpec) -> ScenarioOutcome:
        """Run a single scenario."""
        return run_scenario(spec)

    def run_batch(self, specs: Iterable[ScenarioSpec],
                  workers: int | None = None) -> SweepResult:
        """Run every scenario, ``workers`` at a time, preserving order."""
        specs = list(specs)
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise SpecError("batch scenario names must be unique")
        n = self.workers if workers is None else workers
        if n < 1:
            raise SpecError("worker count must be at least 1")
        if n == 1 or len(specs) <= 1:
            outcomes: Sequence[ScenarioOutcome] = [run_scenario(s) for s in specs]
        else:
            with ThreadPoolExecutor(max_workers=min(n, len(specs))) as pool:
                outcomes = list(pool.map(run_scenario, specs))
        return SweepResult(outcomes=tuple(outcomes))
