"""Worker-side entry points for :class:`~repro.pool.WorkerPool`.

A chunk crosses the process boundary as one plain dict::

    {"kind": "<handler>", "context": <shared payload>, "items": [...]}

``run_chunk`` resolves the handler named by ``kind`` (lazily, so
worker start-up never imports subsystems a batch does not use),
executes it over the chunk's items, and returns::

    {"pid": <worker pid>, "results": [<one result per item>]}

The PID ride-along is what makes pool persistence *observable*:
callers (tests, the bench, ``/stats``) can assert that consecutive
batches were served by the same workers instead of trusting timing.

Handlers are pure functions ``(context, items) -> list`` of
JSON-ready values, registered here by dotted name.  They run
unchanged in-process too — the chunked-vs-unchunked bitwise-identity
tests call them directly — so the worker boundary adds no semantics,
only transport.
"""

from __future__ import annotations

import importlib
import os
from typing import Any, Callable, Sequence

from repro.errors import SpecError

__all__ = ["run_chunk", "warm_worker"]

#: kind -> "module:function" of the handler executing one chunk.
#: Resolved lazily inside the worker; every handler module must be
#: importable from a fresh ``import repro`` (the process backend's
#: registry-visibility contract).
HANDLERS = {
    "ping": "repro.pool.worker:ping_chunk",
    "scenarios": "repro.scenarios.runner:run_scenario_chunk",
    "fleet": "repro.fleet.population:run_wearer_chunk",
    "chaos": "repro.chaos.campaign:run_chaos_chunk",
}


def warm_worker() -> None:  # pragma: no cover - runs in spawned workers
    """Pool initializer: pay the heavy imports at spawn, not dispatch.

    Pulls in the three chunk-handler subsystems (which transitively
    import the engine, the registries and the policy layer) so the
    first real batch meets fully-warmed workers.
    """
    import repro.chaos.campaign  # noqa: F401
    import repro.fleet.population  # noqa: F401
    import repro.scenarios.runner  # noqa: F401


def ping_chunk(context: Any, items: Sequence[Any]) -> list[Any]:
    """The no-op handler behind :meth:`WorkerPool.warm`."""
    return [None for _ in items]


def _resolve(kind: str) -> Callable[[Any, Sequence[Any]], list]:
    try:
        target = HANDLERS[kind]
    except KeyError:
        raise SpecError(
            f"unknown chunk kind {kind!r}; known: "
            f"{sorted(HANDLERS)}") from None
    module_name, _, attribute = target.partition(":")
    return getattr(importlib.import_module(module_name), attribute)


def run_chunk(payload: dict) -> dict:
    """Execute one chunk; the single function every pool future runs."""
    handler = _resolve(payload["kind"])
    return {
        "pid": os.getpid(),
        "results": handler(payload["context"], payload["items"]),
    }
