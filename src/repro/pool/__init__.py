"""Persistent shared worker pools with chunked dispatch.

The process backend used to lose to serial: every ``run_batch`` /
``run_grid`` / ``FleetRunner.run`` / ``ChaosRunner.run`` call spawned
a fresh ``ProcessPoolExecutor`` (interpreter start + ``import repro``
per worker, per call) and shipped one full JSON spec per future, so
pool setup and payload shipping swamped the simulations
(``BENCH_sim_throughput.json`` recorded 2.47 scenarios/s against
174.75 serial).  :class:`WorkerPool` fixes the dispatch granularity:

* **Persistent** — the pool is created once (lazily, on first use)
  and reused by every process-backed call in the process: scenario
  sweeps, policy grids, fleet runs, chaos campaigns and the serve
  layer all share :func:`get_shared_pool`.  Workers warm the heavy
  ``repro`` imports in their initializer, so the spawn cost is paid
  once per process lifetime instead of once per call.
* **Chunked** — a batch is split into *strided* chunks (chunk ``c``
  of ``C`` owns items ``c, c+C, c+2C, ...``), one future per chunk
  instead of one per item, and results are reassembled in input
  order.  Striding keeps chunks balanced for any batch size, exactly
  like fleet sharding.
* **Broadcast** — the batch's shared context (the base scenario, the
  fleet spec, the campaign spec) ships once per chunk, not once per
  item; per-item payloads are deltas or bare indices.  A 500-wearer
  fleet run ships the ``FleetSpec`` a handful of times and two small
  integer lists per chunk — workers rematerialize their own wearers
  from ``random.Random(seed + index)``, which is deterministic, so
  the canonical-JSON contract across backends is untouched.

Worker death (OOM, signal) breaks a ``ProcessPoolExecutor``
permanently; the pool detects ``BrokenProcessPool``, discards the
broken executor so the *next* batch self-heals onto fresh workers,
and raises :class:`WorkerCrash` carrying the dead chunk's item
positions so callers can name the scenarios that were in flight.

Start methods: ``spawn`` (the default — identical registry-visibility
semantics on every platform) or the opt-in ``forkserver``
(``REPRO_POOL_START_METHOD=forkserver``), which forks workers from a
clean preloaded server process for cheaper respawns on POSIX.  Plain
``fork`` is deliberately not offered: forked workers would inherit the
parent's runtime registrations and silently break the process
backend's import-time-registry contract.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import ReproError, SpecError
from repro.pool.worker import run_chunk

__all__ = [
    "PoolStats",
    "WorkerCrash",
    "WorkerPool",
    "get_shared_pool",
    "shared_pool_stats",
    "shutdown_shared_pool",
]

#: Start methods the pool accepts.  ``fork`` is excluded on purpose:
#: forked workers see the parent's runtime registrations, which would
#: make process-backend behaviour platform-dependent.
START_METHODS = ("spawn", "forkserver")

#: Environment knobs (read at :class:`WorkerPool` construction).
WORKERS_ENV = "REPRO_POOL_WORKERS"
START_METHOD_ENV = "REPRO_POOL_START_METHOD"


def default_workers() -> int:
    """The shared pool's default size: ``REPRO_POOL_WORKERS`` if set,
    else the machine's CPU count."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if raw:
        try:
            workers = int(raw)
        except ValueError:
            raise SpecError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}") from None
        if workers < 1:
            raise SpecError(
                f"{WORKERS_ENV} must be at least 1, got {workers}")
        return workers
    return os.cpu_count() or 1


@dataclass(frozen=True)
class PoolStats:
    """Counters describing a pool's lifetime (what ``/stats`` shows).

    Attributes:
        spawns: executors created — 1 for the whole process unless a
            worker crash forced a respawn.
        batches: chunked dispatches executed.
        chunks: chunk futures submitted across all batches.
        tasks: items carried by those chunks.
        crashes: ``BrokenProcessPool`` incidents survived.
    """

    workers: int
    start_method: str
    spawns: int = 0
    batches: int = 0
    chunks: int = 0
    tasks: int = 0
    crashes: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "start_method": self.start_method,
            "spawns": self.spawns,
            "batches": self.batches,
            "chunks": self.chunks,
            "tasks": self.tasks,
            "crashes": self.crashes,
        }


class WorkerCrash(ReproError):
    """A worker died mid-chunk and broke the pool.

    Carries the positions (indices into the dispatched item list) of
    the chunk that was in flight, so the call site can name the
    scenarios/cases the dead worker was responsible for.  The pool has
    already discarded the broken executor; the next batch respawns.
    """

    def __init__(self, indices: Sequence[int], chunk_index: int,
                 chunk_count: int) -> None:
        self.indices = tuple(indices)
        self.chunk_index = chunk_index
        self.chunk_count = chunk_count
        super().__init__(
            f"worker died while running chunk {chunk_index + 1} of "
            f"{chunk_count} ({len(self.indices)} tasks)")


class WorkerPool:
    """A persistent spawned-worker pool with chunked dispatch.

    Args:
        workers: pool size; defaults to ``REPRO_POOL_WORKERS`` or the
            CPU count.
        start_method: ``"spawn"`` (default) or ``"forkserver"``
            (honours ``REPRO_POOL_START_METHOD`` when omitted); must
            be supported by the platform.

    The underlying executor is created lazily on first dispatch (or
    :meth:`warm`) and survives until :meth:`shutdown` — callers never
    pay the spawn cost more than once unless a worker crash forces a
    respawn.
    """

    def __init__(self, workers: int | None = None,
                 start_method: str | None = None) -> None:
        if workers is None:
            workers = default_workers()
        if isinstance(workers, bool) or not isinstance(workers, int):
            raise SpecError(f"worker count must be an integer, "
                            f"got {workers!r}")
        if workers < 1:
            raise SpecError(f"worker count must be at least 1, "
                            f"got {workers}")
        if start_method is None:
            start_method = os.environ.get(START_METHOD_ENV, "").strip() \
                or "spawn"
        if start_method not in START_METHODS:
            raise SpecError(
                f"unknown pool start method {start_method!r}; known: "
                f"{list(START_METHODS)} (fork is deliberately excluded "
                "— forked workers would leak runtime registrations)")
        if start_method not in multiprocessing.get_all_start_methods():
            raise SpecError(
                f"start method {start_method!r} is not supported on "
                f"this platform; available: "
                f"{multiprocessing.get_all_start_methods()}")
        self.workers = workers
        self.start_method = start_method
        self._lock = threading.Lock()
        self._executor: ProcessPoolExecutor | None = None
        self._spawns = 0
        self._batches = 0
        self._chunks = 0
        self._tasks = 0
        self._crashes = 0
        self._known_pids: set[int] = set()
        self._last_batch_pids: frozenset[int] = frozenset()

    # -- lifecycle ----------------------------------------------------

    def _ensure(self) -> ProcessPoolExecutor:
        """The live executor, created under the lock on first use."""
        with self._lock:
            if self._executor is None:
                from repro.pool.worker import warm_worker

                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context(
                        self.start_method),
                    initializer=warm_worker)
                self._spawns += 1
            return self._executor

    def _discard_broken(self, executor: ProcessPoolExecutor) -> None:
        """Drop a broken executor so the next batch respawns fresh."""
        with self._lock:
            if self._executor is executor:
                self._executor = None
                self._crashes += 1
        executor.shutdown(wait=False, cancel_futures=True)

    @property
    def started(self) -> bool:
        """True once workers exist (and have not crashed away)."""
        with self._lock:
            return self._executor is not None

    def warm(self) -> float:
        """Spawn the workers now; returns the wall seconds it took.

        Dispatches one trivial chunk per worker so every worker is
        forked/spawned and has finished its warm-up imports before the
        first real batch is timed.  Calling it on a warm pool is a
        cheap ping round.
        """
        started = time.perf_counter()
        self.run_chunked("ping", None, list(range(self.workers)),
                         chunks=self.workers)
        return time.perf_counter() - started

    def shutdown(self) -> None:
        """Tear the workers down (the next dispatch would respawn)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    # -- dispatch -----------------------------------------------------

    def run_chunked(self, kind: str, context: Any,
                    items: Iterable[Any], *,
                    chunks: int | None = None) -> list[Any]:
        """Run ``items`` through the ``kind`` chunk handler, chunked.

        Args:
            kind: a handler key from :mod:`repro.pool.worker`.
            context: the batch's shared payload, shipped once per
                chunk (the broadcast half of the protocol).
            items: per-item payloads (deltas, indices); must be
                picklable, conventionally JSON-ready.
            chunks: ceiling on the number of chunks; the effective
                count never exceeds the pool size or ``len(items)``
                (splitting finer than the workers would only multiply
                dispatch overhead).

        Returns:
            The handlers' per-item results, reassembled in input
            order.

        Raises:
            WorkerCrash: a worker died; carries the positions of the
                chunk that was in flight.  The pool self-heals on the
                next call.
        """
        items = list(items)
        if not items:
            return []
        count = max(1, min(len(items), self.workers,
                           self.workers if chunks is None else chunks))
        executor = self._ensure()
        payloads = [
            {"kind": kind, "context": context, "items": items[c::count]}
            for c in range(count)
        ]
        try:
            futures = [executor.submit(run_chunk, payload)
                       for payload in payloads]
        except RuntimeError:
            # A concurrent crash shut this executor down between
            # _ensure() and submit(); retry once on a fresh one.
            executor = self._ensure()
            futures = [executor.submit(run_chunk, payload)
                       for payload in payloads]
        results: list[Any] = [None] * len(items)
        batch_pids: set[int] = set()
        for c, future in enumerate(futures):
            try:
                chunk = future.result()
            except BrokenProcessPool:
                self._discard_broken(executor)
                raise WorkerCrash(indices=range(c, len(items), count),
                                  chunk_index=c,
                                  chunk_count=count) from None
            batch_pids.add(chunk["pid"])
            results[c::count] = chunk["results"]
        with self._lock:
            self._batches += 1
            self._chunks += count
            self._tasks += len(items)
            self._known_pids |= batch_pids
            self._last_batch_pids = frozenset(batch_pids)
        return results

    # -- observability ------------------------------------------------

    @property
    def stats(self) -> PoolStats:
        """A consistent snapshot of the lifetime counters."""
        with self._lock:
            return PoolStats(
                workers=self.workers,
                start_method=self.start_method,
                spawns=self._spawns,
                batches=self._batches,
                chunks=self._chunks,
                tasks=self._tasks,
                crashes=self._crashes,
            )

    @property
    def known_pids(self) -> frozenset[int]:
        """Every worker PID ever observed on this pool."""
        with self._lock:
            return frozenset(self._known_pids)

    @property
    def last_batch_pids(self) -> frozenset[int]:
        """The worker PIDs that served the most recent batch."""
        with self._lock:
            return self._last_batch_pids


# -- the process-wide shared pool -------------------------------------

_shared: WorkerPool | None = None
_shared_lock = threading.Lock()


def get_shared_pool() -> WorkerPool:
    """The process-wide pool every process-backed call path shares.

    Created lazily on first use with the environment defaults
    (``REPRO_POOL_WORKERS`` / ``REPRO_POOL_START_METHOD``) and torn
    down at interpreter exit.  ``ScenarioRunner``, ``FleetRunner``,
    ``ChaosRunner`` and the serve layer all dispatch through this one
    pool, so a long-lived service pays the worker spawn cost exactly
    once.
    """
    global _shared
    with _shared_lock:
        if _shared is None:
            _shared = WorkerPool()
        return _shared


def shutdown_shared_pool() -> None:
    """Tear down the shared pool (the next use recreates it)."""
    global _shared
    with _shared_lock:
        pool, _shared = _shared, None
    if pool is not None:
        pool.shutdown()


def shared_pool_stats() -> dict[str, Any] | None:
    """The shared pool's stats without forcing its creation (or
    ``None`` when no process-backed work has run yet)."""
    with _shared_lock:
        pool = _shared
    return None if pool is None else pool.stats.to_dict()


atexit.register(shutdown_shared_pool)
