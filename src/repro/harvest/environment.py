"""Environmental conditions driving the harvesting models.

The paper characterises the transducers at five operating points:
two lighting conditions (Table I) and three thermal conditions
(Table II).  This module defines the condition value types and those
presets, plus simple time-varying profiles used by the day-in-the-life
simulation.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate

from repro.errors import HarvestModelError
from repro.units import kmh_to_ms

__all__ = [
    "LightingCondition",
    "ThermalCondition",
    "EnvironmentTimeline",
    "EnvironmentSample",
    "INDOOR_OFFICE_700LX",
    "OUTDOOR_SUN_30KLX",
    "DARKNESS",
    "TEG_ROOM_22C_NO_WIND",
    "TEG_ROOM_15C_NO_WIND",
    "TEG_ROOM_15C_WIND_42KMH",
]


@dataclass(frozen=True)
class LightingCondition:
    """Illumination hitting the watch face.

    Attributes:
        lux: illuminance at the panel surface.
        description: human-readable label used in reports.
    """

    lux: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.lux < 0:
            raise HarvestModelError(f"illuminance cannot be negative: {self.lux}")


@dataclass(frozen=True)
class ThermalCondition:
    """Thermal environment at the wrist.

    Attributes:
        ambient_c: room/air temperature in °C.
        skin_c: wrist skin temperature in °C.
        wind_ms: air speed over the watch in m/s (0 = still air).
        description: human-readable label used in reports.
    """

    ambient_c: float
    skin_c: float
    wind_ms: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.wind_ms < 0:
            raise HarvestModelError(f"wind speed cannot be negative: {self.wind_ms}")

    @property
    def body_delta_t(self) -> float:
        """Temperature difference skin minus ambient, in kelvin."""
        return self.skin_c - self.ambient_c


@dataclass(frozen=True)
class EnvironmentSample:
    """Joint lighting + thermal conditions during one timeline segment.

    Attributes:
        duration_s: how long these conditions last.
        lighting: illumination during the segment.
        thermal: thermal environment during the segment.
    """

    duration_s: float
    lighting: LightingCondition
    thermal: ThermalCondition

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise HarvestModelError("segment duration must be positive")


class EnvironmentTimeline:
    """A piecewise-constant environment over a day (or any horizon).

    Args:
        segments: ordered environment segments; total duration is their
            sum.
    """

    def __init__(self, segments: list[EnvironmentSample]) -> None:
        if not segments:
            raise HarvestModelError("a timeline needs at least one segment")
        # A tuple so the precomputed boundaries below can never go
        # stale: a timeline is frozen at construction.
        self.segments: tuple[EnvironmentSample, ...] = tuple(segments)
        # Cumulative end times of every segment, accumulated left to
        # right exactly as a linear scan would, so bisecting them gives
        # the same segment a scan over running sums does.
        self.boundaries_s: tuple[float, ...] = tuple(
            accumulate(seg.duration_s for seg in self.segments))

    @property
    def total_duration_s(self) -> float:
        """Length of the whole timeline in seconds."""
        return self.boundaries_s[-1]

    def index_at(self, t_s: float) -> int:
        """Index of the segment active at time ``t_s`` (O(log n)).

        Times at or beyond the end map to the final segment, so a
        simulation can run slightly past the horizon without errors.
        """
        if t_s < 0:
            raise HarvestModelError(f"time cannot be negative: {t_s}")
        return min(bisect_right(self.boundaries_s, t_s),
                   len(self.segments) - 1)

    def at(self, t_s: float) -> EnvironmentSample:
        """Conditions active at time ``t_s`` from the timeline start."""
        return self.segments[self.index_at(t_s)]

    def indices_at(self, times_s) -> list[int]:
        """Segment indices active at a non-decreasing sequence of times.

        The batch form of :meth:`index_at`, walked with the same
        monotone cursor the simulation engine keeps (advance while the
        time has passed the current segment's end boundary), so the
        returned indices are exactly the segments the engine's stepping
        loop evaluates at those times.  Times at or beyond the timeline
        end map to the final segment, as in :meth:`index_at`.
        """
        indices: list[int] = []
        idx = 0
        last = len(self.segments) - 1
        boundaries = self.boundaries_s
        previous = None
        for t_s in times_s:
            if t_s < 0:
                raise HarvestModelError(f"time cannot be negative: {t_s}")
            if previous is not None and t_s < previous:
                raise HarvestModelError(
                    "indices_at needs non-decreasing times (the cursor "
                    "only moves forward); use index_at for random access")
            previous = t_s
            while idx < last and t_s >= boundaries[idx]:
                idx += 1
            indices.append(idx)
        return indices

    def repeated(self, times: int) -> "EnvironmentTimeline":
        """A new timeline with these segments tiled ``times`` times.

        The multi-day building block: a one-day timeline repeated 30
        times is a deterministic month (stochastic per-day variation
        is the fleet layer's job, see :mod:`repro.fleet.samplers`).
        """
        if times < 1 or times != int(times):
            raise HarvestModelError(
                f"repeat count must be a positive integer, got {times!r}")
        return EnvironmentTimeline(list(self.segments) * int(times))

    def __iter__(self):
        return iter(self.segments)


# --- Table I lighting presets ------------------------------------------------

INDOOR_OFFICE_700LX = LightingCondition(lux=700.0, description="indoor office, 700 lx")
OUTDOOR_SUN_30KLX = LightingCondition(lux=30_000.0, description="outdoor with sun, 30 klx")
DARKNESS = LightingCondition(lux=0.0, description="darkness")

# --- Table II thermal presets ------------------------------------------------

TEG_ROOM_22C_NO_WIND = ThermalCondition(
    ambient_c=22.0, skin_c=32.0, wind_ms=0.0,
    description="room 22 C, skin 32 C, no wind",
)
TEG_ROOM_15C_NO_WIND = ThermalCondition(
    ambient_c=15.0, skin_c=30.0, wind_ms=0.0,
    description="room 15 C, skin 30 C, no wind",
)
TEG_ROOM_15C_WIND_42KMH = ThermalCondition(
    ambient_c=15.0, skin_c=30.0, wind_ms=kmh_to_ms(42.0),
    description="room 15 C, skin 30 C, 42 km/h wind",
)
