"""Behavioural models of the TI harvester ICs (BQ25570 / BQ25505).

Both parts are boost chargers with fractional-open-circuit-voltage
MPPT: they periodically disconnect the transducer, sample its
open-circuit voltage, and regulate the input to a resistor-programmed
fraction of it.  InfiniWolf programs the solar BQ25570 to 80 % (near a
PV panel's MPP) and the TEG BQ25505 to 50 % (matched load for a
Thevenin source).

Conversion efficiency depends strongly on input power at the uW-to-mW
levels a wearable harvests; the models interpolate a log-power
efficiency curve shaped after the datasheet plots.  Cold start (the
inefficient charge-pump phase before VSTOR rises) is modelled as a
minimum-input-power gate; battery over/under-voltage lockouts live in
:mod:`repro.power.battery`.

The Table I/II numbers are *battery intake including converter losses
and the sleeping watch's quiescent draw on the harvest path*, so the
converter model also subtracts its own quiescent current.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HarvestModelError

__all__ = [
    "ConverterEfficiencyCurve",
    "HarvesterConverter",
    "BQ25570",
    "BQ25505",
    "BQ25570_EFFICIENCY",
    "BQ25505_EFFICIENCY",
]


@dataclass(frozen=True)
class ConverterEfficiencyCurve:
    """Efficiency as a function of input power, interpolated in log-power.

    Attributes:
        power_points_w: strictly increasing input-power grid, watts.
        efficiencies: efficiency at each grid point, in (0, 1].
    """

    power_points_w: tuple[float, ...]
    efficiencies: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.power_points_w) != len(self.efficiencies):
            raise HarvestModelError("power grid and efficiency grid differ in length")
        if len(self.power_points_w) < 2:
            raise HarvestModelError("an efficiency curve needs >= 2 points")
        if any(p <= 0 for p in self.power_points_w):
            raise HarvestModelError("power grid points must be positive")
        if any(not 0 < e <= 1 for e in self.efficiencies):
            raise HarvestModelError("efficiencies must lie in (0, 1]")
        diffs = np.diff(self.power_points_w)
        if np.any(diffs <= 0):
            raise HarvestModelError("power grid must be strictly increasing")

    def efficiency(self, input_power_w: float) -> float:
        """Interpolated efficiency at an input power (clamped at the ends)."""
        if input_power_w <= 0:
            return 0.0
        log_p = np.log10(input_power_w)
        log_grid = np.log10(self.power_points_w)
        return float(np.interp(log_p, log_grid, self.efficiencies))


# Shapes follow the datasheet efficiency-vs-input-power plots: the
# BQ25570's synchronous boost peaks near 90 % above ~10 mW and falls
# towards 40 % at 1 uW; the BQ25505 used on the TEG path runs from
# lower input voltages and is a few points less efficient at the
# uW levels the TEG delivers.
BQ25570_EFFICIENCY = ConverterEfficiencyCurve(
    power_points_w=(1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1),
    efficiencies=(0.40, 0.60, 0.75, 0.85, 0.88, 0.90),
)

BQ25505_EFFICIENCY = ConverterEfficiencyCurve(
    power_points_w=(1e-6, 1e-5, 1e-4, 1e-3, 1e-2),
    efficiencies=(0.50, 0.615, 0.645, 0.72, 0.78),
)


@dataclass(frozen=True)
class HarvesterConverter:
    """One harvester IC channel: MPPT fraction + efficiency + quiescent.

    Attributes:
        name: part label used in reports.
        mppt_fraction: fraction of the transducer's V_oc the input is
            regulated to.
        efficiency_curve: efficiency vs transducer output power.
        quiescent_w: the channel's own standing draw, charged against
            the harvested power (already reflected in the measured
            Table I/II intake numbers).
        cold_start_minimum_w: below this transducer power the converter
            cannot leave cold start and delivers nothing.
        mppt_sampling_loss: fraction of time lost to the periodic V_oc
            sampling window (the transducer is disconnected while the
            reference is refreshed).
    """

    name: str
    mppt_fraction: float
    efficiency_curve: ConverterEfficiencyCurve
    quiescent_w: float = 0.0
    cold_start_minimum_w: float = 0.0
    mppt_sampling_loss: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.mppt_fraction < 1.0:
            raise HarvestModelError("mppt_fraction must lie in (0, 1)")
        if self.quiescent_w < 0 or self.cold_start_minimum_w < 0:
            raise HarvestModelError("quiescent and cold-start powers cannot be negative")
        if not 0.0 <= self.mppt_sampling_loss < 0.5:
            raise HarvestModelError("mppt_sampling_loss must lie in [0, 0.5)")

    def battery_intake_w(self, transducer_power_w: float) -> float:
        """Net power delivered into the battery from a transducer output.

        Applies the MPPT sampling duty loss, the efficiency curve at
        the (post-sampling) input power and the quiescent draw.  Never
        returns a negative number: when the input cannot cover the
        quiescent draw the channel contributes nothing (the chip's own
        ship-mode leakage is accounted in the system quiescent budget,
        not double-counted here).
        """
        if transducer_power_w <= 0:
            return 0.0
        if transducer_power_w < self.cold_start_minimum_w:
            return 0.0
        usable = transducer_power_w * (1.0 - self.mppt_sampling_loss)
        converted = usable * self.efficiency_curve.efficiency(usable)
        return max(0.0, converted - self.quiescent_w)


def BQ25570(mppt_fraction: float = 0.80,
            quiescent_w: float = 2.0e-6,
            cold_start_minimum_w: float = 15.0e-6) -> HarvesterConverter:
    """The solar-channel converter as configured on InfiniWolf.

    Defaults: 80 % V_oc MPPT (PV), ~0.5 uA quiescent at VSTOR ~4 V
    (2 uW), 15 uW cold-start floor.
    """
    return HarvesterConverter(
        name="BQ25570",
        mppt_fraction=mppt_fraction,
        efficiency_curve=BQ25570_EFFICIENCY,
        quiescent_w=quiescent_w,
        cold_start_minimum_w=cold_start_minimum_w,
    )


def BQ25505(mppt_fraction: float = 0.50,
            quiescent_w: float = 1.3e-6,
            cold_start_minimum_w: float = 5.0e-6) -> HarvesterConverter:
    """The TEG-channel converter as configured on InfiniWolf.

    Defaults: 50 % V_oc MPPT (matched load for a Thevenin TEG),
    ~0.325 uA quiescent (1.3 uW), 5 uW cold-start floor.  The paper
    notes the TEG "continuously generates energy in every condition";
    the 5 uW floor keeps that true across Table II while still
    modelling a cold-start gate.
    """
    return HarvesterConverter(
        name="BQ25505",
        mppt_fraction=mppt_fraction,
        efficiency_curve=BQ25505_EFFICIENCY,
        quiescent_w=quiescent_w,
        cold_start_minimum_w=cold_start_minimum_w,
    )
