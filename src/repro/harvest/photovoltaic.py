"""Single-diode photovoltaic panel model.

The panel follows the standard five-parameter single-diode equivalent
circuit: a photocurrent source in parallel with a diode and a shunt
resistance, in series with a series resistance.  The implicit I-V
relation

    I = I_ph - I_0 * (exp((V + I*Rs) / (Ns * n * Vt)) - 1) - (V + I*Rs) / Rsh

is solved in closed form with the Lambert-W function (scipy), which
keeps I-V sweeps fast and exact.

Thin-film amorphous-silicon panels like the SP3-12 track illuminance
(lux) well across spectra, so the photocurrent is parameterised
directly per lux.  The low-light efficiency collapse measured in
Table I (0.9 mW at 700 lx vs 24.7 mW at 30 klx — only 27x power for
43x light) emerges from the shunt-leakage and series-loss physics, not
from a lookup table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import lambertw

from repro.errors import HarvestModelError
from repro.units import thermal_voltage

__all__ = ["PVPanelParams", "PVPanel", "IVPoint"]


@dataclass(frozen=True)
class PVPanelParams:
    """Electrical parameters of a PV panel (possibly several in parallel).

    Attributes:
        photocurrent_per_lux: short-circuit photocurrent generated per
            lux of illuminance, in A/lx.
        diode_saturation_current: diode reverse saturation current I_0, A.
        diode_ideality: diode ideality factor n (a-Si is ~1.5-2).
        cells_in_series: number of series-connected cells Ns.
        series_resistance: lumped series resistance Rs, ohm.
        shunt_resistance: lumped shunt resistance Rsh, ohm.
        temperature_c: cell temperature for the diode thermal voltage.
    """

    photocurrent_per_lux: float
    diode_saturation_current: float
    diode_ideality: float
    cells_in_series: int
    series_resistance: float
    shunt_resistance: float
    temperature_c: float = 25.0

    def __post_init__(self) -> None:
        if self.photocurrent_per_lux <= 0:
            raise HarvestModelError("photocurrent_per_lux must be positive")
        if self.diode_saturation_current <= 0:
            raise HarvestModelError("diode_saturation_current must be positive")
        if self.diode_ideality <= 0:
            raise HarvestModelError("diode_ideality must be positive")
        if self.cells_in_series < 1:
            raise HarvestModelError("cells_in_series must be >= 1")
        if self.series_resistance < 0:
            raise HarvestModelError("series_resistance cannot be negative")
        if self.shunt_resistance <= 0:
            raise HarvestModelError("shunt_resistance must be positive")


@dataclass(frozen=True)
class IVPoint:
    """One electrical operating point.

    Attributes:
        voltage_v: terminal voltage.
        current_a: terminal current (positive = delivering power).
    """

    voltage_v: float
    current_a: float

    @property
    def power_w(self) -> float:
        """Electrical power delivered at this point."""
        return self.voltage_v * self.current_a


class PVPanel:
    """A photovoltaic panel evaluated through the single-diode model.

    Args:
        params: electrical parameters of the panel assembly.
    """

    def __init__(self, params: PVPanelParams) -> None:
        self.params = params

    # -- basic electrical quantities ------------------------------------------

    def _nvt(self) -> float:
        """Combined junction thermal voltage Ns * n * Vt."""
        p = self.params
        return p.cells_in_series * p.diode_ideality * thermal_voltage(p.temperature_c)

    def photocurrent(self, lux: float) -> float:
        """Photogenerated current at an illuminance, in amperes."""
        if lux < 0:
            raise HarvestModelError(f"illuminance cannot be negative: {lux}")
        return self.params.photocurrent_per_lux * lux

    def current(self, voltage_v, lux: float):
        """Terminal current at a terminal voltage (Lambert-W closed form).

        Accepts a scalar or array of voltages; returns the matching
        shape.  Valid in the power quadrant and slightly beyond (the
        formula itself holds for any V).
        """
        p = self.params
        nvt = self._nvt()
        i_ph = self.photocurrent(lux)
        v = np.asarray(voltage_v, dtype=np.float64)

        rs, rsh, i0 = p.series_resistance, p.shunt_resistance, p.diode_saturation_current
        if rs == 0.0:
            # No series resistance: the diode equation is explicit.
            i = i_ph - i0 * np.expm1(v / nvt) - v / rsh
        else:
            # Standard Lambert-W solution of the implicit diode equation.
            theta = (
                rs * i0 * rsh / (nvt * (rs + rsh))
                * np.exp(rsh * (v + rs * (i_ph + i0)) / (nvt * (rs + rsh)))
            )
            w = np.real(lambertw(theta))
            i = (rsh * (i_ph + i0) - v) / (rs + rsh) - (nvt / rs) * w
        if np.ndim(voltage_v) == 0:
            return float(i)
        return i

    def short_circuit_current(self, lux: float) -> float:
        """Terminal current with the panel shorted."""
        return self.current(0.0, lux)

    def open_circuit_voltage(self, lux: float) -> float:
        """Terminal voltage at zero current, found by bisection."""
        if self.photocurrent(lux) <= 0.0:
            return 0.0
        # The current is strictly decreasing in V, so bisection is safe.
        v_hi = self._nvt() * np.log1p(self.photocurrent(lux)
                                      / self.params.diode_saturation_current)
        v_lo = 0.0
        for _ in range(80):
            mid = 0.5 * (v_lo + v_hi)
            if self.current(mid, lux) > 0.0:
                v_lo = mid
            else:
                v_hi = mid
        return 0.5 * (v_lo + v_hi)

    # -- curves and maximum power ----------------------------------------------

    def iv_curve(self, lux: float, num_points: int = 200) -> list[IVPoint]:
        """Sample the I-V curve from short to open circuit."""
        voc = self.open_circuit_voltage(lux)
        if voc <= 0.0:
            return [IVPoint(0.0, 0.0)]
        volts = np.linspace(0.0, voc, num_points)
        amps = self.current(volts, lux)
        return [IVPoint(float(v), float(i)) for v, i in zip(volts, amps)]

    def maximum_power_point(self, lux: float) -> IVPoint:
        """True MPP found by golden-section search over the voltage axis."""
        voc = self.open_circuit_voltage(lux)
        if voc <= 0.0:
            return IVPoint(0.0, 0.0)
        phi = (np.sqrt(5.0) - 1.0) / 2.0
        lo, hi = 0.0, voc
        for _ in range(100):
            v1 = hi - phi * (hi - lo)
            v2 = lo + phi * (hi - lo)
            if v1 * self.current(v1, lux) < v2 * self.current(v2, lux):
                lo = v1
            else:
                hi = v2
        v = 0.5 * (lo + hi)
        return IVPoint(v, self.current(v, lux))

    def operating_point_at_fraction_voc(self, lux: float, fraction: float) -> IVPoint:
        """Operating point a fractional-V_oc MPPT regulator settles at.

        The BQ25570 periodically samples the panel's open-circuit
        voltage and then regulates the input to ``fraction`` of it
        (0.8 by default in the solar circuit).
        """
        if not 0.0 < fraction < 1.0:
            raise HarvestModelError(f"MPPT fraction must lie in (0, 1): {fraction}")
        voc = self.open_circuit_voltage(lux)
        v = fraction * voc
        return IVPoint(v, self.current(v, lux)) if voc > 0 else IVPoint(0.0, 0.0)
