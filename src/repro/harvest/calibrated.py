"""Calibrated transducer parameters reproducing Tables I and II.

The physical structure of both harvesting models is fixed from
datasheet-plausible values; only the parameters that a lab
characterisation would pin down are calibrated against the published
battery-intake anchors:

* **Solar** (Table I): the per-lux photocurrent ``k_lux`` (panel size /
  optical coupling) and the lumped series resistance ``R_s`` are solved
  so the BQ25570 chain delivers exactly 24.711 mW at 30 klx and 0.9 mW
  at 700 lx.  The published pair is strongly sublinear in illuminance
  (27.5x the power for 42.9x the light), which in the single-diode
  model is the signature of high-current I^2*R_s losses — exactly what
  the high sheet resistance of small thin-film panels produces.
* **TEG** (Table II): the module Seebeck coefficient ``S``, the
  natural-convection coefficient ``h0``, the forced-convection gain
  ``k_wind`` and the BQ25505 channel's quiescent draw are solved so the
  chain delivers exactly 24.0 uW (22 °C room / 32 °C skin, still air),
  55.5 uW (15/30, still air) and 155.4 uW (15/30, 42 km/h wind).  The
  published still-air pair sits almost exactly on the quadratic
  P ~ dT^2 law (55.5/24.0 = 2.31 vs (15 K/10 K)^2 = 2.25), which pins
  the converter's efficiency slope and quiescent draw in the tens-of-uW
  window.

:func:`recalibrate` re-runs the fit from scratch; the regression tests
verify that the hard-coded constants below match what it returns, so
the provenance of every number is executable.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import fsolve, least_squares

from repro.errors import HarvestModelError
from repro.harvest.converters import BQ25505, BQ25570, HarvesterConverter
from repro.harvest.dual import DualSourceHarvester, SolarHarvester, TEGHarvester
from repro.harvest.environment import (
    INDOOR_OFFICE_700LX,
    OUTDOOR_SUN_30KLX,
    TEG_ROOM_15C_NO_WIND,
    TEG_ROOM_15C_WIND_42KMH,
    TEG_ROOM_22C_NO_WIND,
)
from repro.harvest.photovoltaic import PVPanel, PVPanelParams
from repro.harvest.teg import TEGDevice, TEGParams

__all__ = [
    "TABLE1_ANCHORS_W",
    "TABLE2_ANCHORS_W",
    "SOLAR_FIXED",
    "TEG_FIXED",
    "CALIBRATED_PHOTOCURRENT_PER_LUX",
    "CALIBRATED_SERIES_RESISTANCE",
    "CALIBRATED_SEEBECK_V_PER_K",
    "CALIBRATED_H_NATURAL",
    "CALIBRATED_H_FORCED_COEFF",
    "CALIBRATED_TEG_CONVERTER_QUIESCENT_W",
    "solar_panel_params",
    "teg_params",
    "calibrated_solar_harvester",
    "calibrated_teg_harvester",
    "calibrated_dual_harvester",
    "recalibrate",
]

# Published battery-intake anchors.
TABLE1_ANCHORS_W = {
    "outdoor_30klx": 24.711e-3,
    "indoor_700lx": 0.9e-3,
}
TABLE2_ANCHORS_W = {
    "room22_skin32_still": 24.0e-6,
    "room15_skin30_still": 55.5e-6,
    "room15_skin30_wind42": 155.4e-6,
}

# Fixed (non-calibrated) physical structure.  Values are plausible for
# two parallel SP3-12 amorphous-silicon strips (5 series cells, high
# ideality, thin-film series resistance) and a watch-sized BiTe TEG
# (tens of couples, ~18 ohm, strap-limited skin coupling, case-back
# convective sink).
SOLAR_FIXED = {
    "diode_saturation_current": 3.4e-10,
    "diode_ideality": 1.8,
    "cells_in_series": 5,
    "shunt_resistance": 5.0e4,
    "temperature_c": 25.0,
}
TEG_FIXED = {
    "internal_resistance_ohm": 18.0,
    "contact_resistance_k_per_w": 20.0,
    "teg_thermal_resistance_k_per_w": 10.0,
    "sink_area_m2": 0.0012,
}

# Calibrated constants (provenance: ``recalibrate()``; regression test
# ``tests/harvest/test_calibrated.py`` re-derives them).
CALIBRATED_PHOTOCURRENT_PER_LUX = 7.068357291041582e-07
CALIBRATED_SERIES_RESISTANCE = 84.11309127066482
CALIBRATED_SEEBECK_V_PER_K = 0.05801358349508241
CALIBRATED_H_NATURAL = 10.496474284357738
CALIBRATED_H_FORCED_COEFF = 2.1518399520276414
CALIBRATED_TEG_CONVERTER_QUIESCENT_W = 4.6454755676464654e-07


def solar_panel_params(photocurrent_per_lux: float | None = None,
                       series_resistance: float | None = None) -> PVPanelParams:
    """Panel parameters: fixed structure + (possibly overridden) calibration."""
    return PVPanelParams(
        photocurrent_per_lux=(CALIBRATED_PHOTOCURRENT_PER_LUX
                              if photocurrent_per_lux is None else photocurrent_per_lux),
        series_resistance=(CALIBRATED_SERIES_RESISTANCE
                           if series_resistance is None else series_resistance),
        **SOLAR_FIXED,
    )


def teg_params(seebeck_v_per_k: float | None = None,
               h_natural: float | None = None,
               h_forced_coeff: float | None = None) -> TEGParams:
    """TEG parameters: fixed structure + (possibly overridden) calibration."""
    return TEGParams(
        seebeck_v_per_k=(CALIBRATED_SEEBECK_V_PER_K
                         if seebeck_v_per_k is None else seebeck_v_per_k),
        h_natural_w_per_m2k=(CALIBRATED_H_NATURAL if h_natural is None else h_natural),
        h_forced_coeff=(CALIBRATED_H_FORCED_COEFF
                        if h_forced_coeff is None else h_forced_coeff),
        **TEG_FIXED,
    )


def calibrated_solar_harvester(converter: HarvesterConverter | None = None) -> SolarHarvester:
    """The solar channel with calibrated parameters."""
    return SolarHarvester(
        panel=PVPanel(solar_panel_params()),
        converter=BQ25570() if converter is None else converter,
    )


def calibrated_teg_harvester(converter: HarvesterConverter | None = None) -> TEGHarvester:
    """The TEG channel with calibrated parameters."""
    if converter is None:
        converter = BQ25505(quiescent_w=CALIBRATED_TEG_CONVERTER_QUIESCENT_W)
    return TEGHarvester(
        device=TEGDevice(teg_params()),
        converter=converter,
    )


def calibrated_dual_harvester() -> DualSourceHarvester:
    """Both calibrated channels combined."""
    return DualSourceHarvester(
        solar=calibrated_solar_harvester(),
        teg=calibrated_teg_harvester(),
    )


def recalibrate() -> dict[str, float]:
    """Re-derive the calibrated constants from the published anchors.

    Returns a dict with keys matching the ``CALIBRATED_*`` module
    constants.  Raises :class:`HarvestModelError` if the solver fails
    to converge, which would indicate the fixed structure has been
    changed incompatibly.
    """
    # Solve in log-space: every calibrated parameter is physically
    # positive, and the anchors span orders of magnitude.
    solar_converter = BQ25570()

    def solar_residual(log_x: np.ndarray) -> list[float]:
        k_lux, r_series = np.exp(log_x)
        harvester = SolarHarvester(
            panel=PVPanel(solar_panel_params(k_lux, r_series)),
            converter=solar_converter,
        )
        return [
            harvester.battery_intake_w(OUTDOOR_SUN_30KLX)
            / TABLE1_ANCHORS_W["outdoor_30klx"] - 1.0,
            harvester.battery_intake_w(INDOOR_OFFICE_700LX)
            / TABLE1_ANCHORS_W["indoor_700lx"] - 1.0,
        ]

    solar_log, _, solar_ok, solar_msg = fsolve(
        solar_residual, np.log([7.0e-7, 80.0]), full_output=True
    )
    if solar_ok != 1:
        raise HarvestModelError(f"solar calibration failed: {solar_msg}")
    solar_x = np.exp(solar_log)

    # The TEG fit has one more degree of freedom (the converter's
    # quiescent draw) than anchors, so a bounded least-squares drives
    # the residuals to machine zero while keeping every parameter in a
    # physically sensible range.
    def teg_residual(x: np.ndarray) -> list[float]:
        seebeck, h0, k_wind, quiescent = x
        harvester = TEGHarvester(
            device=TEGDevice(teg_params(seebeck, h0, k_wind)),
            converter=BQ25505(quiescent_w=quiescent),
        )
        return [
            harvester.battery_intake_w(TEG_ROOM_22C_NO_WIND)
            / TABLE2_ANCHORS_W["room22_skin32_still"] - 1.0,
            harvester.battery_intake_w(TEG_ROOM_15C_NO_WIND)
            / TABLE2_ANCHORS_W["room15_skin30_still"] - 1.0,
            harvester.battery_intake_w(TEG_ROOM_15C_WIND_42KMH)
            / TABLE2_ANCHORS_W["room15_skin30_wind42"] - 1.0,
        ]

    teg_fit = least_squares(
        teg_residual,
        x0=[0.06, 10.0, 1.8, 0.6e-6],
        bounds=([0.01, 4.0, 0.3, 0.0], [0.2, 40.0, 20.0, 3.0e-6]),
        xtol=1e-15, ftol=1e-15, gtol=1e-15,
    )
    if not teg_fit.success or float(np.max(np.abs(teg_fit.fun))) > 1e-9:
        raise HarvestModelError(
            f"TEG calibration failed: residuals {teg_fit.fun}"
        )

    return {
        "CALIBRATED_PHOTOCURRENT_PER_LUX": float(solar_x[0]),
        "CALIBRATED_SERIES_RESISTANCE": float(solar_x[1]),
        "CALIBRATED_SEEBECK_V_PER_K": float(teg_fit.x[0]),
        "CALIBRATED_H_NATURAL": float(teg_fit.x[1]),
        "CALIBRATED_H_FORCED_COEFF": float(teg_fit.x[2]),
        "CALIBRATED_TEG_CONVERTER_QUIESCENT_W": float(teg_fit.x[3]),
    }
