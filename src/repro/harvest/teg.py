"""Thermoelectric generator model (Seebeck + thermal resistance network).

The wrist TEG sits in a series thermal path:

    skin ──R_contact──> hot plate ──R_teg──> cold plate ──R_sink(v)──> ambient

Only the temperature drop across the TEG plates produces voltage, and
that drop is the fraction of the skin-to-ambient difference falling on
``R_teg``:

    dT_plates = (T_skin - T_amb) * R_teg / (R_contact + R_teg + R_sink(v))

The sink-to-ambient resistance depends on airflow: forced convection at
42 km/h shrinks ``R_sink`` several-fold, which is exactly why Table II
measures 155 uW with wind versus 55 uW without at the same temperature
difference.  The convection coefficient follows a flat-plate
correlation ``h(v) = h_natural + k_forced * v^0.7``.

Electrically the module is a Thevenin source (``V_oc = S * dT_plates``
behind ``R_internal``); maximum extraction is the matched load
``P = V_oc^2 / (4 R_internal)``, which is what a 50 %-V_oc MPPT
(the BQ25505's TEG configuration) settles at.

The Peltier heat pumped by the load current slightly reduces the plate
difference; at the sub-kelvin drops and sub-mA currents of a wrist TEG
the correction is <1 % and is deliberately omitted (documented
simplification).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HarvestModelError
from repro.harvest.environment import ThermalCondition
from repro.harvest.photovoltaic import IVPoint

__all__ = ["TEGParams", "TEGDevice"]

WIND_EXPONENT = 0.7


@dataclass(frozen=True)
class TEGParams:
    """Thermal and electrical parameters of the wrist TEG assembly.

    Attributes:
        seebeck_v_per_k: net module Seebeck coefficient S (all couples
            in series), V/K.
        internal_resistance_ohm: electrical series resistance of the
            module, ohm.
        contact_resistance_k_per_w: thermal resistance from skin into
            the hot plate (strap pressure, skin, interface), K/W.
        teg_thermal_resistance_k_per_w: plate-to-plate thermal
            resistance of the module itself, K/W.
        sink_area_m2: effective convective area of the cold side (case
            back and body), m^2.
        h_natural_w_per_m2k: natural-convection coefficient in still
            air, W/(m^2 K).
        h_forced_coeff: forced-convection gain k in
            ``h = h_natural + k * v^0.7``, W/(m^2 K) per (m/s)^0.7.
    """

    seebeck_v_per_k: float
    internal_resistance_ohm: float
    contact_resistance_k_per_w: float
    teg_thermal_resistance_k_per_w: float
    sink_area_m2: float
    h_natural_w_per_m2k: float
    h_forced_coeff: float

    def __post_init__(self) -> None:
        positive = {
            "seebeck_v_per_k": self.seebeck_v_per_k,
            "internal_resistance_ohm": self.internal_resistance_ohm,
            "contact_resistance_k_per_w": self.contact_resistance_k_per_w,
            "teg_thermal_resistance_k_per_w": self.teg_thermal_resistance_k_per_w,
            "sink_area_m2": self.sink_area_m2,
            "h_natural_w_per_m2k": self.h_natural_w_per_m2k,
        }
        for name, value in positive.items():
            if value <= 0:
                raise HarvestModelError(f"{name} must be positive, got {value}")
        if self.h_forced_coeff < 0:
            raise HarvestModelError("h_forced_coeff cannot be negative")


class TEGDevice:
    """A wrist-worn TEG evaluated through the thermal network model.

    Args:
        params: thermal/electrical parameters of the assembly.
    """

    def __init__(self, params: TEGParams) -> None:
        self.params = params

    def convection_coefficient(self, wind_ms: float) -> float:
        """Convective coefficient h(v) at an air speed, W/(m^2 K)."""
        if wind_ms < 0:
            raise HarvestModelError(f"wind speed cannot be negative: {wind_ms}")
        p = self.params
        return p.h_natural_w_per_m2k + p.h_forced_coeff * wind_ms ** WIND_EXPONENT

    def sink_resistance(self, wind_ms: float) -> float:
        """Cold-plate-to-ambient thermal resistance at an air speed, K/W."""
        return 1.0 / (self.convection_coefficient(wind_ms) * self.params.sink_area_m2)

    def plate_delta_t(self, condition: ThermalCondition) -> float:
        """Temperature difference across the TEG plates, kelvin.

        Negative skin-ambient differences (watch hotter than skin)
        would reverse the polarity; the magnitude physics is identical,
        so the sign is preserved.
        """
        p = self.params
        total = (
            p.contact_resistance_k_per_w
            + p.teg_thermal_resistance_k_per_w
            + self.sink_resistance(condition.wind_ms)
        )
        return condition.body_delta_t * p.teg_thermal_resistance_k_per_w / total

    def open_circuit_voltage(self, condition: ThermalCondition) -> float:
        """Thevenin open-circuit voltage S * dT_plates."""
        return self.params.seebeck_v_per_k * self.plate_delta_t(condition)

    def matched_load_power(self, condition: ThermalCondition) -> float:
        """Maximum extractable electrical power V_oc^2 / (4 R_int), watts."""
        voc = self.open_circuit_voltage(condition)
        return voc * voc / (4.0 * self.params.internal_resistance_ohm)

    def operating_point_at_fraction_voc(self, condition: ThermalCondition,
                                        fraction: float) -> IVPoint:
        """Operating point of a fractional-V_oc MPPT regulator.

        At ``fraction = 0.5`` this is exactly the matched-load maximum;
        other fractions trade power per the Thevenin divider.
        """
        if not 0.0 < fraction < 1.0:
            raise HarvestModelError(f"MPPT fraction must lie in (0, 1): {fraction}")
        voc = self.open_circuit_voltage(condition)
        v = fraction * voc
        i = (voc - v) / self.params.internal_resistance_ohm
        return IVPoint(v, i)

    def iv_curve(self, condition: ThermalCondition, num_points: int = 50) -> list[IVPoint]:
        """Sample the linear I-V curve from short to open circuit."""
        voc = self.open_circuit_voltage(condition)
        r = self.params.internal_resistance_ohm
        points = []
        for idx in range(num_points):
            v = voc * idx / (num_points - 1)
            points.append(IVPoint(v, (voc - v) / r))
        return points
