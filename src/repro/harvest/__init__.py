"""Dual-source energy-harvesting models (Tables I and II).

InfiniWolf harvests from two transducers through two TI harvester ICs:

* two Flexsolarcells SP3-12 thin-film panels on the watch face, through
  a BQ25570 (fractional-V_oc MPPT at 80 %),
* the Matrix Powerwatch TEG on the wrist side, through a BQ25505
  (fractional-V_oc MPPT at 50 %, i.e. matched load for a Thévenin
  source).

:mod:`repro.harvest.photovoltaic` implements a single-diode PV model
(solved in closed form via the Lambert-W function),
:mod:`repro.harvest.teg` a Seebeck + thermal-resistance-network TEG
model with wind-speed-dependent convection, and
:mod:`repro.harvest.converters` the harvester-IC behaviour (MPPT
fraction, efficiency vs input power, cold start).  Device parameters
are calibrated against the published Table I/II battery-intake numbers
in :mod:`repro.harvest.calibrated`.
"""

from repro.harvest.environment import (
    LightingCondition,
    ThermalCondition,
    INDOOR_OFFICE_700LX,
    OUTDOOR_SUN_30KLX,
    TEG_ROOM_22C_NO_WIND,
    TEG_ROOM_15C_NO_WIND,
    TEG_ROOM_15C_WIND_42KMH,
)
from repro.harvest.photovoltaic import PVPanel, PVPanelParams
from repro.harvest.teg import TEGDevice, TEGParams
from repro.harvest.converters import (
    ConverterEfficiencyCurve,
    HarvesterConverter,
    BQ25570,
    BQ25505,
)
from repro.harvest.calibrated import (
    calibrated_solar_harvester,
    calibrated_teg_harvester,
)
from repro.harvest.dual import (
    CachedHarvester,
    DualSourceHarvester,
    HarvestCacheStats,
    SolarHarvester,
    TEGHarvester,
)

__all__ = [
    "LightingCondition",
    "ThermalCondition",
    "INDOOR_OFFICE_700LX",
    "OUTDOOR_SUN_30KLX",
    "TEG_ROOM_22C_NO_WIND",
    "TEG_ROOM_15C_NO_WIND",
    "TEG_ROOM_15C_WIND_42KMH",
    "PVPanel",
    "PVPanelParams",
    "TEGDevice",
    "TEGParams",
    "ConverterEfficiencyCurve",
    "HarvesterConverter",
    "BQ25570",
    "BQ25505",
    "calibrated_solar_harvester",
    "calibrated_teg_harvester",
    "CachedHarvester",
    "DualSourceHarvester",
    "HarvestCacheStats",
    "SolarHarvester",
    "TEGHarvester",
]
