"""Harvesting channels and the dual-source power intake.

A *harvester* pairs one transducer model with its converter IC and
answers "how much power reaches the battery under these conditions" —
the quantity Tables I and II report.  :class:`DualSourceHarvester`
combines the solar and TEG channels the way InfiniWolf's smart power
unit does (both charge the same battery independently) and integrates
intake over an environment timeline for the self-sustainability
analysis.

:class:`CachedHarvester` wraps any harvesting chain and memoizes the
intake per distinct ``(lighting, thermal)`` pair.  Both condition
types are frozen (hashable) dataclasses and a day-in-the-life timeline
only ever visits a handful of distinct pairs, so a multi-day
simulation pays for the Lambert-W diode solve and the TEG thermal
network once per pair instead of once per step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harvest.converters import HarvesterConverter
from repro.harvest.environment import (
    EnvironmentTimeline,
    LightingCondition,
    ThermalCondition,
)
from repro.harvest.photovoltaic import PVPanel
from repro.harvest.teg import TEGDevice

__all__ = [
    "SolarHarvester",
    "TEGHarvester",
    "DualSourceHarvester",
    "HarvestCacheStats",
    "CachedHarvester",
]


@dataclass(frozen=True)
class SolarHarvester:
    """PV panel + BQ25570 channel.

    Attributes:
        panel: the single-diode panel model.
        converter: the converter-IC model configured for solar.
    """

    panel: PVPanel
    converter: HarvesterConverter

    def transducer_power_w(self, lighting: LightingCondition) -> float:
        """Panel output power at the converter's MPPT operating point."""
        point = self.panel.operating_point_at_fraction_voc(
            lighting.lux, self.converter.mppt_fraction
        )
        return max(0.0, point.power_w)

    def battery_intake_w(self, lighting: LightingCondition) -> float:
        """Net power into the battery under a lighting condition."""
        return self.converter.battery_intake_w(self.transducer_power_w(lighting))


@dataclass(frozen=True)
class TEGHarvester:
    """TEG + BQ25505 channel.

    Attributes:
        device: the thermal-network TEG model.
        converter: the converter-IC model configured for the TEG.
    """

    device: TEGDevice
    converter: HarvesterConverter

    def transducer_power_w(self, thermal: ThermalCondition) -> float:
        """TEG output power at the converter's MPPT operating point."""
        point = self.device.operating_point_at_fraction_voc(
            thermal, self.converter.mppt_fraction
        )
        return max(0.0, point.power_w)

    def battery_intake_w(self, thermal: ThermalCondition) -> float:
        """Net power into the battery under a thermal condition."""
        return self.converter.battery_intake_w(self.transducer_power_w(thermal))


@dataclass(frozen=True)
class DualSourceHarvester:
    """Both harvesting channels charging one battery.

    Attributes:
        solar: the solar channel.
        teg: the TEG channel.
    """

    solar: SolarHarvester
    teg: TEGHarvester

    def battery_intake_w(self, lighting: LightingCondition,
                         thermal: ThermalCondition) -> float:
        """Combined net intake under joint conditions.

        The two ICs charge the battery through separate inductors, so
        their contributions add.
        """
        return self.solar.battery_intake_w(lighting) + self.teg.battery_intake_w(thermal)

    def harvested_energy_j(self, timeline: EnvironmentTimeline) -> float:
        """Energy delivered to the battery over a whole timeline."""
        return sum(
            self.battery_intake_w(seg.lighting, seg.thermal) * seg.duration_s
            for seg in timeline
        )


@dataclass
class HarvestCacheStats:
    """Hit/miss counters of a :class:`CachedHarvester`.

    Attributes:
        hits: lookups answered from the memo.
        misses: lookups that ran the wrapped chain's models.
    """

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        """Total intake queries seen."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the memo (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


class CachedHarvester:
    """Memoizes a harvesting chain's intake per condition pair.

    Args:
        inner: any object with ``battery_intake_w(lighting, thermal)``.

    The wrapper is transparent: unknown attributes delegate to the
    wrapped chain, so chain-specific helpers (``harvested_energy_j``,
    ``solar``/``teg`` channels) stay reachable.  ``stats`` counts hits
    and misses for the throughput benches.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.stats = HarvestCacheStats()
        self._memo: dict[tuple[LightingCondition, ThermalCondition], float] = {}

    def battery_intake_w(self, lighting: LightingCondition,
                         thermal: ThermalCondition) -> float:
        """Combined net intake, computed once per distinct pair."""
        key = (lighting, thermal)
        try:
            intake = self._memo[key]
        except KeyError:
            intake = self._memo[key] = self.inner.battery_intake_w(
                lighting, thermal)
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return intake

    def cache_clear(self) -> None:
        """Forget every memoized intake and reset the counters."""
        self._memo.clear()
        self.stats = HarvestCacheStats()

    def __getattr__(self, name: str):
        # Read through __dict__: during unpickling/copying this runs
        # before __init__ populated the instance, and touching
        # self.inner would recurse into __getattr__ forever.
        try:
            inner = self.__dict__["inner"]
        except KeyError:
            raise AttributeError(name) from None
        return getattr(inner, name)
