"""Fit the tiny rate network and package it as deployable policies.

:func:`train_policy` is the bridge from a supervision
:class:`~repro.learn.dataset.Dataset` to registered policies: a
seeded :class:`~repro.fann.network.MultiLayerPerceptron` (TANH hidden
layers, one SIGMOID output) trained with FANN's deterministic
full-batch :class:`~repro.fann.training.RpropTrainer`.  Because both
the initial draw and the trainer are deterministic, the same dataset
and :class:`~repro.learn.spec.TrainSpec` always produce bitwise-
identical weights — pinned by the train-twice test and the bench gate.

The result bundles two :class:`~repro.scenarios.spec.PolicySpec`
values whose params carry the weights as nested JSON arrays:
``learned`` (float inference) and ``learned_q`` (the
``repro.quant``/fixed-point MCU path, with the derived binary point
frozen in) — both ride the ordinary spec machinery anywhere a policy
travels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import SpecError
from repro.fann.activation import Activation
from repro.fann.fixedpoint import required_decimal_point
from repro.fann.network import LayerSpec, MultiLayerPerceptron
from repro.fann.training import RpropTrainer
from repro.learn.dataset import Dataset
from repro.learn.spec import DatasetSpec, TrainSpec
from repro.policies.learned import FEATURE_NAMES, network_to_params
from repro.scenarios.spec import PolicySpec, check_mapping_keys

__all__ = ["TrainedPolicy", "build_network", "train_policy",
           "load_trained_file"]

#: Format tag of a saved trained-policy payload.
TRAINED_KIND = "repro.learn/trained"
TRAINED_VERSION = 1


def build_network(spec: TrainSpec) -> MultiLayerPerceptron:
    """The seeded, untrained rate network of one :class:`TrainSpec`."""
    layers = [LayerSpec(width, Activation.TANH) for width in spec.hidden]
    layers.append(LayerSpec(1, Activation.SIGMOID))
    return MultiLayerPerceptron(len(FEATURE_NAMES), layers, seed=spec.seed)


@dataclass(frozen=True)
class TrainedPolicy:
    """A trained rate network packaged for deployment and provenance.

    Attributes:
        policy: the ``learned`` spec (float inference), weights inline.
        quantized: the ``learned_q`` spec — same weights through the
            fixed-point path, binary point frozen at training time.
        train: the :class:`TrainSpec` that produced the weights.
        dataset: the :class:`DatasetSpec` of the supervision data.
        samples: how many supervision pairs were fitted.
        epochs_run / final_mse / converged: the training report.
    """

    policy: PolicySpec
    quantized: PolicySpec
    train: TrainSpec
    dataset: DatasetSpec
    samples: int
    epochs_run: int
    final_mse: float
    converged: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": TRAINED_KIND,
            "version": TRAINED_VERSION,
            "policy": self.policy.to_dict(),
            "quantized": self.quantized.to_dict(),
            "train": self.train.to_dict(),
            "dataset": self.dataset.to_dict(),
            "report": {
                "samples": self.samples,
                "epochs_run": self.epochs_run,
                "final_mse": self.final_mse,
                "converged": self.converged,
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrainedPolicy":
        known = {"kind", "version", "policy", "quantized", "train",
                 "dataset", "report"}
        check_mapping_keys("trained policy payload", data, known,
                           required={"policy", "quantized", "train",
                                     "dataset", "report"})
        if data.get("kind", TRAINED_KIND) != TRAINED_KIND:
            raise SpecError(
                f"not a {TRAINED_KIND} payload (kind={data.get('kind')!r})")
        if data.get("version", TRAINED_VERSION) != TRAINED_VERSION:
            raise SpecError(
                f"trained payload version {data.get('version')!r} is not "
                f"{TRAINED_VERSION}")
        report = data["report"]
        check_mapping_keys("trained policy report", report,
                           {"samples", "epochs_run", "final_mse",
                            "converged"},
                           required={"samples", "epochs_run", "final_mse",
                                     "converged"})
        return cls(
            policy=PolicySpec.from_dict(data["policy"]),
            quantized=PolicySpec.from_dict(data["quantized"]),
            train=TrainSpec.from_dict(data["train"]),
            dataset=DatasetSpec.from_dict(data["dataset"]),
            samples=report["samples"],
            epochs_run=report["epochs_run"],
            final_mse=report["final_mse"],
            converged=report["converged"],
        )


def train_policy(dataset: Dataset, spec: TrainSpec) -> TrainedPolicy:
    """Fit the rate network to one dataset, deterministically.

    The returned bundle's float params reproduce the trained weights
    exactly (JSON floats round-trip IEEE doubles); the quantized spec
    adds the binary point :func:`required_decimal_point` derives, so
    the deployed fixed-point network is also pinned.
    """
    inputs, targets = dataset.matrices()
    network = build_network(spec)
    report = RpropTrainer().train(network, inputs, targets,
                                  max_epochs=spec.epochs,
                                  desired_mse=spec.desired_mse)
    params = network_to_params(network, spec.max_rate_per_min)
    quantized_params = dict(params)
    quantized_params["decimal_point"] = int(required_decimal_point(network))
    return TrainedPolicy(
        policy=PolicySpec("learned", params),
        quantized=PolicySpec("learned_q", quantized_params),
        train=spec,
        dataset=dataset.spec,
        samples=len(dataset.samples),
        epochs_run=report.epochs_run,
        final_mse=float(report.final_mse),
        converged=report.converged,
    )


def load_trained_file(path: Any) -> TrainedPolicy:
    """Read a saved :meth:`TrainedPolicy.to_dict` JSON file."""
    import json
    from pathlib import Path

    file_path = Path(path)
    try:
        data = json.loads(file_path.read_text())
    except OSError as exc:
        raise SpecError(
            f"cannot read trained policy {file_path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise SpecError(
            f"trained policy {file_path} is not valid JSON: {exc}") from None
    if not isinstance(data, Mapping):
        raise SpecError(
            f"trained policy {file_path} must hold a JSON object")
    return TrainedPolicy.from_dict(data)
