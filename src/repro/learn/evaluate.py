"""Fleet-scale evaluation: how much of the oracle gap did we close?

The question the whole subsystem answers: between the deployable
baseline (``energy_aware``, the paper's manager) and the unrealizable
upper bound (``oracle_lookahead``, the teacher), where does the
trained policy land?  :func:`evaluate_trained` reruns one seeded
population under every built-in policy plus the trained candidates via
:meth:`~repro.fleet.runner.FleetRunner.run_grid` (paired wearers, like
any policy study) and reports:

* the full survival-first ranking (the grid result, canonical);
* the **gap closed**: ``(learned - baseline) / (oracle - baseline)``
  on median detections/day, ``None`` when the oracle opens no gap;
* the quantized network's :func:`~repro.fann.deploy.deployment_summary`
  — whether the trained net actually fits the paper's MCU budget.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.errors import SpecError
from repro.fann.deploy import deployment_summary
from repro.learn.train import TrainedPolicy
from repro.policies.grid import PolicyGrid
from repro.policies.learned import network_from_params

__all__ = ["BASELINE_POLICIES", "GAP_METRIC", "EvalReport",
           "evaluate_trained", "oracle_gap"]

#: Built-ins every evaluation runs against, at default params.
BASELINE_POLICIES = ("static_duty_cycle", "energy_aware", "ewma_forecast",
                     "oracle_lookahead")

#: The scalar the gap is measured on.
GAP_METRIC = "detections_per_day.p50"


def _median_detections(comparison, policy_name: str) -> float:
    for entry in comparison.entries:
        if entry.policy.name == policy_name:
            return entry.result.detections_per_day.p50
    raise SpecError(
        f"policy {policy_name!r} is not part of the comparison "
        f"({sorted({e.policy.name for e in comparison.entries})})")


def oracle_gap(comparison, candidate: str = "learned",
               baseline: str = "energy_aware",
               oracle: str = "oracle_lookahead") -> dict[str, Any]:
    """The fraction of the oracle-vs-baseline gap the candidate closed.

    Measured on :data:`GAP_METRIC`; ``gap_closed`` is ``None`` when
    the oracle does not beat the baseline (no gap to close — dividing
    would report noise as skill).
    """
    baseline_value = _median_detections(comparison, baseline)
    oracle_value = _median_detections(comparison, oracle)
    candidate_value = _median_detections(comparison, candidate)
    opened = oracle_value - baseline_value
    gap_closed = ((candidate_value - baseline_value) / opened
                  if opened > 0 else None)
    return {
        "metric": GAP_METRIC,
        "baseline": baseline,
        "oracle": oracle,
        "candidate": candidate,
        "baseline_value": baseline_value,
        "oracle_value": oracle_value,
        "candidate_value": candidate_value,
        "gap_closed": gap_closed,
    }


@dataclass(frozen=True)
class EvalReport:
    """One trained policy's fleet evaluation, canonical-serializable.

    Attributes:
        fleet: the evaluated fleet's name.
        comparison: the grid result over baselines + trained policies.
        gap: the :func:`oracle_gap` payload for ``learned`` (and the
            quantized variant under ``"quantized"`` when evaluated).
        deployment: the quantized network's MCU footprint summary.
    """

    fleet: str
    comparison: Any
    gap: dict[str, Any]
    deployment: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {
            "fleet": self.fleet,
            "search": self.comparison.to_dict(),
            "gap": self.gap,
            "deployment": self.deployment,
        }


def evaluate_trained(trained: TrainedPolicy,
                     fleet: Any = None,
                     include_quantized: bool = True,
                     workers: int = 4,
                     backend: str = "thread",
                     runner: Any = None) -> EvalReport:
    """Run the trained policy against every built-in on one fleet.

    Args:
        trained: the :func:`~repro.learn.train.train_policy` bundle.
        fleet: a :class:`~repro.fleet.spec.FleetSpec` or fleet name;
            defaults to the *full* fleet the dataset was drawn from
            (even when training used a wearer cap — evaluation is the
            generalization check).
        include_quantized: also race the ``learned_q`` fixed-point
            variant.
        workers / backend: sweep parallelism, as everywhere else.
        runner: inject a preconfigured
            :class:`~repro.fleet.runner.FleetRunner` (tests); wins
            over ``workers``/``backend``.
    """
    from repro.fleet import FleetRunner, get_fleet

    if fleet is None:
        fleet = get_fleet(trained.dataset.fleet)
    elif isinstance(fleet, str):
        fleet = get_fleet(fleet)
    if runner is None:
        runner = FleetRunner(workers=workers, backend=backend)
    grids = [PolicyGrid(name) for name in BASELINE_POLICIES]
    grids.append(PolicyGrid("learned", base=trained.policy.params))
    if include_quantized:
        grids.append(PolicyGrid("learned_q", base=trained.quantized.params))
    comparison = runner.run_grid(fleet, grids)
    gap = oracle_gap(comparison)
    if include_quantized:
        gap = dict(gap)
        gap["quantized"] = oracle_gap(comparison, candidate="learned_q")
    network, _ = network_from_params(trained.policy.params)
    deployment = dataclasses.asdict(deployment_summary(network))
    return EvalReport(fleet=fleet.name, comparison=comparison, gap=gap,
                      deployment=deployment)
