"""Frozen specs for the oracle-supervised learning pipeline.

Two small specs pin everything the pipeline does, so a dataset or a
trained policy is reproducible from its header alone:

* :class:`DatasetSpec` — which fleet supplies the supervision, how
  many wearers, the decision-step stride, and the oracle teacher's
  lookahead window.
* :class:`TrainSpec` — network shape, epoch budget and the seed that
  fully determines the initial weight draw (and therefore, with
  deterministic full-batch iRPROP-, the trained network: retraining is
  bitwise-identical).

Both round-trip losslessly through ``to_dict``/``from_dict`` under the
shared canonical encoder, like every other spec in the repo.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import SpecError
from repro.scenarios.spec import PolicySpec, check_mapping_keys

__all__ = ["DatasetSpec", "TrainSpec"]


def _check_int(what: str, value: Any, minimum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{what} must be an integer, got {value!r}")
    if value < minimum:
        raise SpecError(f"{what} must be >= {minimum}, got {value}")
    return value


@dataclass(frozen=True)
class DatasetSpec:
    """What one supervision dataset is made of.

    Attributes:
        fleet: built-in fleet name (see ``repro.fleet.fleet_names()``)
            whose sampled wearers the oracle replays over.
        wearers: cap on the number of wearers replayed (0 = the whole
            fleet).  Capping keeps smoke datasets cheap while the
            wearer scenarios stay identical to the full fleet's first
            ``wearers`` entries (per-wearer seeding).
        stride: record every ``stride``-th decision step; 1 keeps all.
        lookahead_s: the ``oracle_lookahead`` teacher's window.
    """

    fleet: str = "office_cohort_week"
    wearers: int = 0
    stride: int = 1
    lookahead_s: float = 6 * 3600.0

    def __post_init__(self) -> None:
        if not self.fleet or not isinstance(self.fleet, str):
            raise SpecError(
                f"dataset fleet must be a non-empty name, got {self.fleet!r}")
        _check_int("dataset wearers", self.wearers, 0)
        _check_int("dataset stride", self.stride, 1)
        if (isinstance(self.lookahead_s, bool)
                or not isinstance(self.lookahead_s, (int, float))
                or not math.isfinite(self.lookahead_s)
                or self.lookahead_s <= 0):
            raise SpecError(
                f"dataset lookahead_s must be a positive finite number, "
                f"got {self.lookahead_s!r}")

    def teacher_policy(self) -> PolicySpec:
        """The oracle policy whose decisions become the targets."""
        return PolicySpec("oracle_lookahead",
                          {"lookahead_s": float(self.lookahead_s)})

    def resolved_fleet(self):
        """The (possibly wearer-capped) :class:`FleetSpec` to replay."""
        from repro.fleet import get_fleet

        fleet = get_fleet(self.fleet)
        if self.wearers and self.wearers < fleet.n_wearers:
            fleet = fleet.replace(n_wearers=self.wearers)
        return fleet

    def to_dict(self) -> dict[str, Any]:
        return {
            "fleet": self.fleet,
            "wearers": self.wearers,
            "stride": self.stride,
            "lookahead_s": float(self.lookahead_s),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DatasetSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        check_mapping_keys("DatasetSpec", data, known)
        return cls(**dict(data))


@dataclass(frozen=True)
class TrainSpec:
    """Network shape and training budget, frozen for reproducibility.

    Attributes:
        hidden: hidden-layer widths (TANH activations); the output is
            always one SIGMOID neuron — the fraction of
            ``max_rate_per_min`` to run.
        epochs: iRPROP- epoch budget (full-batch, deterministic).
        seed: seed of the initial weight draw; with the deterministic
            trainer it pins the trained network bitwise.
        desired_mse: early-stop target (0 disables early stopping).
        max_rate_per_min: the rate ceiling the output scales to.
    """

    hidden: tuple[int, ...] = (8,)
    epochs: int = 200
    seed: int = 0
    desired_mse: float = 0.0
    max_rate_per_min: float = 24.0

    def __post_init__(self) -> None:
        if isinstance(self.hidden, (str, bytes)) or not hasattr(
                self.hidden, "__iter__"):
            raise SpecError(
                f"train hidden must be a sequence of layer widths, "
                f"got {self.hidden!r}")
        hidden = tuple(self.hidden)
        for width in hidden:
            _check_int("train hidden layer width", width, 1)
        object.__setattr__(self, "hidden", hidden)
        _check_int("train epochs", self.epochs, 1)
        _check_int("train seed", self.seed, 0)
        if (isinstance(self.desired_mse, bool)
                or not isinstance(self.desired_mse, (int, float))
                or not self.desired_mse >= 0):
            raise SpecError(
                f"train desired_mse must be >= 0, got {self.desired_mse!r}")
        if (isinstance(self.max_rate_per_min, bool)
                or not isinstance(self.max_rate_per_min, (int, float))
                or not math.isfinite(self.max_rate_per_min)
                or self.max_rate_per_min <= 0):
            raise SpecError(
                f"train max_rate_per_min must be a positive finite number, "
                f"got {self.max_rate_per_min!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "hidden": list(self.hidden),
            "epochs": self.epochs,
            "seed": self.seed,
            "desired_mse": float(self.desired_mse),
            "max_rate_per_min": float(self.max_rate_per_min),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrainSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        check_mapping_keys("TrainSpec", data, known)
        data = dict(data)
        if "hidden" in data:
            hidden = data["hidden"]
            if not isinstance(hidden, (list, tuple)):
                raise SpecError(
                    f"TrainSpec hidden must be a list of widths, "
                    f"got {hidden!r}")
            data["hidden"] = tuple(hidden)
        return cls(**data)
