"""Oracle replay -> canonical JSONL supervision datasets.

Dataset generation replays the ``oracle_lookahead`` teacher over a
seeded sampled fleet and records, at every ``stride``-th decision
step, the :func:`~repro.policies.learned.extract_features` vector the
policy protocol exposes and the oracle's chosen rate as a fraction of
its ceiling.  Everything is deterministic — the fleet's wearers are
seeded, the engine is, the oracle is stateless — so the same
:class:`~repro.learn.spec.DatasetSpec` always produces the same bytes.

Sharding follows the fleet convention: ``shard=(i, n)`` replays only
the wearers of the strided partition, and :meth:`Dataset.merge` over a
complete partition reassembles the exact unsharded dataset (samples
re-ordered by wearer, bitwise identical — pinned by tests).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import SpecError
from repro.learn.spec import DatasetSpec
from repro.policies.base import PolicyDecision, PowerObservation
from repro.policies.learned import FEATURE_NAMES, extract_features
from repro.scenarios.spec import canonical_json

__all__ = ["Sample", "Dataset", "RecordingPolicy", "generate_dataset",
           "load_dataset_file"]

#: Format tag of the JSONL header line.
DATASET_KIND = "repro.learn/dataset"
DATASET_VERSION = 1


@dataclass(frozen=True)
class Sample:
    """One supervision pair: observation features -> oracle rate fraction.

    Attributes:
        wearer: 0-based wearer index in the fleet.
        time_s: simulation time of the observation.
        features: the feature vector, in ``FEATURE_NAMES`` order.
        target: the oracle's rate divided by its ceiling, in [0, 1].
    """

    wearer: int
    time_s: float
    features: tuple[float, ...]
    target: float

    def to_dict(self) -> dict[str, Any]:
        return {"w": self.wearer, "t": self.time_s,
                "x": list(self.features), "y": self.target}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Sample":
        try:
            return cls(wearer=data["w"], time_s=data["t"],
                       features=tuple(data["x"]), target=data["y"])
        except (KeyError, TypeError):
            raise SpecError(
                f"malformed dataset sample line: {dict(data)!r} "
                f"(need keys w/t/x/y)") from None


class RecordingPolicy:
    """A transparent policy wrapper that captures supervision pairs.

    Delegates every decision to the wrapped teacher unchanged (the run
    is bitwise the teacher's run) and records every ``stride``-th
    decision as a :class:`Sample`.  The recorded target is the decided
    rate normalized by the teacher's ceiling — exactly what the
    ``learned`` policy's sigmoid output is trained to reproduce.
    """

    def __init__(self, inner, wearer: int, stride: int = 1) -> None:
        self.inner = inner
        self.wearer = wearer
        self.stride = stride
        self.samples: list[Sample] = []
        self._calls = 0

    @property
    def max_rate_per_min(self) -> float:
        return self.inner.max_rate_per_min

    def reset(self) -> None:
        reset = getattr(self.inner, "reset", None)
        if reset is not None:
            reset()
        self._calls = 0

    def decide(self, obs: PowerObservation) -> PolicyDecision:
        decision = self.inner.decide(obs)
        if self._calls % self.stride == 0:
            ceiling = self.inner.max_rate_per_min
            fraction = min(max(
                decision.detection_rate_per_min / ceiling, 0.0), 1.0)
            self.samples.append(Sample(
                wearer=self.wearer,
                time_s=obs.time_s,
                features=extract_features(obs),
                target=fraction,
            ))
        self._calls += 1
        return decision


@dataclass(frozen=True)
class Dataset:
    """A (possibly partial) supervision dataset plus its provenance.

    Attributes:
        spec: the generating :class:`DatasetSpec`.
        shard_index / shard_count: which strided wearer partition this
            dataset covers (``0/1`` = the whole fleet).
        samples: the supervision pairs, wearers in index order.
    """

    spec: DatasetSpec
    shard_index: int = 0
    shard_count: int = 1
    samples: tuple[Sample, ...] = ()

    def __post_init__(self) -> None:
        if not 0 <= self.shard_index < self.shard_count:
            raise SpecError(
                f"dataset shard {self.shard_index}/{self.shard_count} is "
                f"not a valid partition position")

    @property
    def wearers(self) -> list[int]:
        """Distinct wearer indices present, sorted."""
        return sorted({sample.wearer for sample in self.samples})

    def matrices(self) -> tuple[np.ndarray, np.ndarray]:
        """``(inputs, targets)`` training batches for the fann trainers."""
        if not self.samples:
            raise SpecError("cannot build training matrices from an "
                            "empty dataset")
        x = np.array([sample.features for sample in self.samples],
                     dtype=np.float64)
        y = np.array([[sample.target] for sample in self.samples],
                     dtype=np.float64)
        return x, y

    def to_jsonl(self) -> str:
        """Canonical JSONL: one header line, then one line per sample."""
        header = {
            "kind": DATASET_KIND,
            "version": DATASET_VERSION,
            "features": list(FEATURE_NAMES),
            "spec": self.spec.to_dict(),
            "shard": [self.shard_index, self.shard_count],
        }
        lines = [canonical_json(header)]
        lines.extend(canonical_json(sample.to_dict())
                     for sample in self.samples)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str, what: str = "dataset") -> "Dataset":
        """Parse :meth:`to_jsonl` output back, validating the header."""
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise SpecError(f"{what} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise SpecError(f"{what} header is not valid JSON: {exc}") from None
        if not isinstance(header, dict) or header.get("kind") != DATASET_KIND:
            raise SpecError(
                f"{what} is not a {DATASET_KIND} file (header {lines[0][:80]!r})")
        if header.get("version") != DATASET_VERSION:
            raise SpecError(
                f"{what} uses dataset version {header.get('version')!r}; "
                f"this build reads version {DATASET_VERSION}")
        if header.get("features") != list(FEATURE_NAMES):
            raise SpecError(
                f"{what} was generated with features "
                f"{header.get('features')!r}, but this build extracts "
                f"{list(FEATURE_NAMES)} — regenerate the dataset")
        shard = header.get("shard", [0, 1])
        if (not isinstance(shard, list) or len(shard) != 2
                or not all(isinstance(v, int) for v in shard)):
            raise SpecError(f"{what} header shard must be [index, count], "
                            f"got {shard!r}")
        samples = []
        for number, line in enumerate(lines[1:], start=2):
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SpecError(
                    f"{what} line {number} is not valid JSON: {exc}") from None
            samples.append(Sample.from_dict(data))
        return cls(spec=DatasetSpec.from_dict(header.get("spec", {})),
                   shard_index=shard[0], shard_count=shard[1],
                   samples=tuple(samples))

    @classmethod
    def merge(cls, parts: Sequence["Dataset"]) -> "Dataset":
        """Reassemble a complete shard partition into the full dataset.

        Validates that the parts share one spec and form exactly the
        partition ``0..count-1``, then re-orders samples by wearer —
        producing the bitwise-identical unsharded dataset (wearer
        scenarios are independent, so sample values never depend on
        the partition).
        """
        parts = list(parts)
        if not parts:
            raise SpecError("dataset merge needs at least one part")
        spec = parts[0].spec
        count = parts[0].shard_count
        positions = []
        for part in parts:
            if part.spec != spec:
                raise SpecError(
                    f"dataset merge mixes specs: {part.spec.to_dict()} "
                    f"vs {spec.to_dict()}")
            if part.shard_count != count:
                raise SpecError(
                    f"dataset merge mixes shard counts: "
                    f"{part.shard_count} vs {count}")
            positions.append(part.shard_index)
        if sorted(positions) != list(range(count)):
            raise SpecError(
                f"dataset merge needs each shard 0..{count - 1} exactly "
                f"once, got indices {sorted(positions)}")
        merged = sorted(
            (sample for part in parts for sample in part.samples),
            key=lambda sample: (sample.wearer, sample.time_s))
        return cls(spec=spec, shard_index=0, shard_count=1,
                   samples=tuple(merged))


def generate_dataset(spec: DatasetSpec,
                     shard: tuple[int, int] | None = None) -> Dataset:
    """Replay the oracle teacher and collect supervision pairs.

    Args:
        spec: what to generate (fleet, wearer cap, stride, teacher
            window).
        shard: optional ``(index, count)`` strided wearer partition;
            the resulting partial datasets merge exactly
            (:meth:`Dataset.merge`).
    """
    from repro.fleet import shard_indices, wearer_scenarios
    from repro.scenarios import build_simulation

    fleet = spec.resolved_fleet()
    if shard is None:
        shard = (0, 1)
        indices = list(range(fleet.n_wearers))
    else:
        indices = shard_indices(fleet, shard[0], shard[1])
    teacher = spec.teacher_policy()
    samples: list[Sample] = []
    for index, scenario in zip(indices, wearer_scenarios(fleet, indices)):
        scenario = dataclasses.replace(
            scenario,
            system=dataclasses.replace(scenario.system, policy=teacher))
        simulation = build_simulation(scenario)
        recorder = RecordingPolicy(simulation.policy, wearer=index,
                                   stride=spec.stride)
        simulation.policy = recorder
        simulation.run()
        samples.extend(recorder.samples)
    return Dataset(spec=spec, shard_index=shard[0], shard_count=shard[1],
                   samples=tuple(samples))


def load_dataset_file(path: Any) -> Dataset:
    """Read a :meth:`Dataset.to_jsonl` file, naming it in errors."""
    from pathlib import Path

    file_path = Path(path)
    try:
        text = file_path.read_text()
    except OSError as exc:
        raise SpecError(f"cannot read dataset {file_path}: {exc}") from None
    return Dataset.from_jsonl(text, what=str(file_path))
