"""Oracle-supervised learning: dataset -> train -> quantize -> deploy.

The training half of the learned energy manager (the inference half —
the registered ``learned``/``learned_q`` policies — lives in
:mod:`repro.policies.learned`):

* :mod:`repro.learn.spec` — frozen :class:`DatasetSpec` /
  :class:`TrainSpec`, so datasets and trained policies are
  reproducible from their headers;
* :mod:`repro.learn.dataset` — replay the ``oracle_lookahead``
  teacher over a seeded fleet into canonical JSONL supervision,
  sharded and merge-exact like every other fleet artifact;
* :mod:`repro.learn.train` — deterministic seeded init + full-batch
  iRPROP- (:class:`~repro.fann.training.RpropTrainer`), packaged as
  :class:`~repro.scenarios.spec.PolicySpec` values whose params carry
  the weights;
* :mod:`repro.learn.evaluate` — fleet-scale comparison against every
  built-in, reporting the fraction of the oracle-vs-``energy_aware``
  gap closed and the quantized network's MCU deployment summary.

Driven end to end by ``repro learn dataset|merge|train|eval``.
"""

from repro.learn.spec import DatasetSpec, TrainSpec
from repro.learn.dataset import (
    Dataset,
    RecordingPolicy,
    Sample,
    generate_dataset,
    load_dataset_file,
)
from repro.learn.train import (
    TrainedPolicy,
    build_network,
    load_trained_file,
    train_policy,
)
from repro.learn.evaluate import (
    BASELINE_POLICIES,
    EvalReport,
    evaluate_trained,
    oracle_gap,
)

__all__ = [
    "DatasetSpec",
    "TrainSpec",
    "Dataset",
    "RecordingPolicy",
    "Sample",
    "generate_dataset",
    "load_dataset_file",
    "TrainedPolicy",
    "build_network",
    "load_trained_file",
    "train_policy",
    "BASELINE_POLICIES",
    "EvalReport",
    "evaluate_trained",
    "oracle_gap",
]
