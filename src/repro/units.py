"""Unit conversion helpers and physical constants.

The library stores every physical quantity in base SI units (watts,
joules, seconds, volts, amperes, kelvin-differences expressed in °C,
metres).  Paper values are quoted in engineering units (mW, µJ, klx,
km/h, mAh), so this module centralises the conversions instead of
scattering magic factors through the code.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Scale prefixes (multiply to convert INTO base SI units)
# ---------------------------------------------------------------------------

MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
KILO = 1e3
MEGA = 1e6

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0


def mw_to_w(milliwatts: float) -> float:
    """Convert milliwatts to watts."""
    return milliwatts * MILLI


def w_to_mw(watts: float) -> float:
    """Convert watts to milliwatts."""
    return watts / MILLI


def uw_to_w(microwatts: float) -> float:
    """Convert microwatts to watts."""
    return microwatts * MICRO


def w_to_uw(watts: float) -> float:
    """Convert watts to microwatts."""
    return watts / MICRO


def uj_to_j(microjoules: float) -> float:
    """Convert microjoules to joules."""
    return microjoules * MICRO


def j_to_uj(joules: float) -> float:
    """Convert joules to microjoules."""
    return joules / MICRO


def mah_to_coulombs(milliamp_hours: float) -> float:
    """Convert battery capacity in mAh to coulombs (ampere-seconds)."""
    return milliamp_hours * MILLI * SECONDS_PER_HOUR


def coulombs_to_mah(coulombs: float) -> float:
    """Convert coulombs to mAh."""
    return coulombs / (MILLI * SECONDS_PER_HOUR)


def kmh_to_ms(kilometres_per_hour: float) -> float:
    """Convert a wind speed in km/h to m/s."""
    return kilometres_per_hour * KILO / SECONDS_PER_HOUR


def ms_to_kmh(metres_per_second: float) -> float:
    """Convert a wind speed in m/s to km/h."""
    return metres_per_second * SECONDS_PER_HOUR / KILO


def celsius_to_kelvin(celsius: float) -> float:
    """Convert a temperature in °C to kelvin."""
    return celsius + 273.15


def mhz_to_hz(megahertz: float) -> float:
    """Convert a clock frequency in MHz to Hz."""
    return megahertz * MEGA


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Time taken by ``cycles`` clock cycles at ``frequency_hz``."""
    return cycles / frequency_hz


def energy_joules(power_watts: float, duration_s: float) -> float:
    """Energy in joules from a constant power draw over a duration."""
    return power_watts * duration_s


# ---------------------------------------------------------------------------
# Photometry
# ---------------------------------------------------------------------------

# Luminous efficacy used to convert illuminance (lux) into irradiance
# (W/m^2).  Sunlight carries roughly 120 lx per W/m^2 of broadband
# irradiance; indoor white LED / fluorescent light is more concentrated
# in the visible band, so a lux of artificial light corresponds to less
# harvestable broadband power for the same photopic response.
LUX_PER_WM2_SUNLIGHT = 120.0
LUX_PER_WM2_INDOOR = 110.0


def lux_to_irradiance(lux: float, efficacy_lx_per_wm2: float = LUX_PER_WM2_SUNLIGHT) -> float:
    """Convert an illuminance in lux to broadband irradiance in W/m^2."""
    return lux / efficacy_lx_per_wm2


# ---------------------------------------------------------------------------
# Physical constants
# ---------------------------------------------------------------------------

BOLTZMANN_J_PER_K = 1.380649e-23
ELECTRON_CHARGE_C = 1.602176634e-19


def thermal_voltage(temperature_c: float) -> float:
    """Diode thermal voltage kT/q at a given temperature in °C."""
    return BOLTZMANN_J_PER_K * celsius_to_kelvin(temperature_c) / ELECTRON_CHARGE_C
