"""Assembly code generation for fixed-point MLP inference.

The generated program mirrors FANN's deployed inference loop: for each
connection layer, every output neuron accumulates ``weight * input``
products over the source layer plus the bias (the input buffer carries
a fixed-point ``1.0`` in its final slot), shifts the accumulator back
to storage precision, applies the tanh lookup table with linear
interpolation, and stores the result into the ping-pong output buffer.

To let the ISS reproduce the Python reference *bit-exactly*, the tanh
table uses 257 entries over [-4, 4]: the span is then exactly 256
segments of power-of-two length, so the interpolation index and
remainder reduce to shifts and masks — the same trick the embedded C
implementation uses.  :func:`with_power_of_two_tables` rebuilds a
quantised network with those tables so reference and ISS agree.

Targets:

* ``"rv32im"`` — plain RV32IM (IBEX-style: no DSP help);
* ``"xpulp"`` — RI5CY: hardware loop + post-increment loads + MAC in
  the inner product;
* ``"armv7m"`` — Cortex-M4 style: post-index loads + ``mla``;
* the xpulp variant accepts ``num_cores > 1`` and emits an SPMD kernel
  (rows strided across cores, barrier between layers) for
  :class:`~repro.isa.cluster.ClusterSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.fann.activation import Activation
from repro.fann.fixedpoint import FixedPointNetwork
from repro.isa.assembler import assemble
from repro.isa.cluster import ClusterResult, ClusterSimulator
from repro.isa.memory import (
    MRWOLF_L1_BASE,
    NRF52_RAM_BASE,
    MemoryMap,
    mrwolf_memory_map,
    nrf52_memory_map,
)
from repro.isa.program import Program
from repro.isa.riscv import IBEX_TIMINGS, RV32Core
from repro.isa.armv7m import ArmV7MCore
from repro.isa.xpulp import XpulpCore
from repro.quant.lut import ActivationTable, tanh_table

__all__ = ["CompiledMLP", "compile_mlp", "run_mlp", "with_power_of_two_tables"]

TARGETS = ("rv32im", "xpulp", "armv7m")
TANH_ENTRIES = 257  # 256 power-of-two segments over [-4, 4]


def with_power_of_two_tables(network: FixedPointNetwork) -> FixedPointNetwork:
    """Clone a fixed-point network with 257-entry tanh tables.

    The clone's :meth:`forward_raw` matches the generated assembly
    bit-for-bit (the default 256-entry table has non-power-of-two
    segments which the shift-based kernel cannot express).
    """
    tables = []
    for activation in network.activations:
        if activation is Activation.TANH:
            tables.append(tanh_table(network.fmt, num_entries=TANH_ENTRIES))
        elif activation is Activation.LINEAR:
            tables.append(None)
        else:
            raise ConfigurationError(
                f"kernel codegen supports tanh/linear layers, not {activation}"
            )
    return FixedPointNetwork(
        fmt=network.fmt,
        weights=[w.copy() for w in network.weights],
        activations=list(network.activations),
        tables=tables,
        num_inputs=network.num_inputs,
    )


@dataclass(frozen=True)
class CompiledMLP:
    """An assembled inference program plus its interface metadata.

    Attributes:
        program: the assembled program.
        source: the generated assembly text (for inspection/tests).
        target: ISA target name.
        num_cores: SPMD width (1 for single-core targets).
        layer_sizes: widths including the input layer.
        frac_bits: the network's binary point.
        input_symbol: data symbol of the input buffer.
        output_symbol: data symbol holding the final layer's outputs.
    """

    program: Program
    source: str
    target: str
    num_cores: int
    layer_sizes: tuple[int, ...]
    frac_bits: int
    input_symbol: str
    output_symbol: str


def _tanh_lut_words(table: ActivationTable) -> list[int]:
    """The raw table entries as 32-bit words."""
    return [int(v) for v in table.entries]


def _check_network(network: FixedPointNetwork) -> None:
    if network.fmt.frac_bits < 6 or network.fmt.frac_bits > 16:
        raise ConfigurationError(
            "kernel codegen needs 6 <= frac_bits <= 16 so that the "
            "interpolation mask fits an andi immediate and 32-bit "
            "accumulators cannot overflow on small test networks"
        )


def _activation_asm_riscv(layer: int, table_symbol: str, fmt_frac_bits: int,
                          low: int, high: int) -> list[str]:
    """Tanh-LUT evaluation on t2 (RISC-V targets), result in t2."""
    scale = 1 << fmt_frac_bits
    lo_raw, hi_raw = -4 * scale, 4 * scale
    shift = fmt_frac_bits - 5          # seg_len = 2**(frac_bits - 5)
    mask = (1 << shift) - 1
    return [
        f"    li t0, {lo_raw}",
        f"    li t1, {hi_raw}",
        f"    blt t2, t0, act_low_{layer}",
        f"    bge t2, t1, act_high_{layer}",
        "    sub t3, t2, t0",          # offset in [0, span)
        f"    srai t4, t3, {shift}",   # segment index
        "    slli t5, t4, 2",
        f"    li t6, ={table_symbol}",
        "    add t6, t6, t5",
        "    lw t5, 0(t6)",            # y0
        "    lw t6, 4(t6)",            # y1
        "    sub t6, t6, t5",
        f"    andi t3, t3, {mask}",    # remainder inside the segment
        "    mul t6, t6, t3",
        f"    srai t6, t6, {shift}",
        "    add t2, t5, t6",
        f"    j act_done_{layer}",
        f"act_low_{layer}:",
        f"    li t2, {low}",
        f"    j act_done_{layer}",
        f"act_high_{layer}:",
        f"    li t2, {high}",
        f"act_done_{layer}:",
    ]


def _activation_asm_arm(layer: int, table_symbol: str, fmt_frac_bits: int,
                        low: int, high: int) -> list[str]:
    """Tanh-LUT evaluation on r6 (ARM target), result in r6."""
    scale = 1 << fmt_frac_bits
    lo_raw, hi_raw = -4 * scale, 4 * scale
    shift = fmt_frac_bits - 5
    mask = (1 << shift) - 1
    return [
        f"    mov r9, #{lo_raw}",
        f"    mov r10, #{hi_raw}",
        "    cmp r6, r9",
        f"    blt act_low_{layer}",
        "    cmp r6, r10",
        f"    bge act_high_{layer}",
        "    sub r11, r6, r9",         # offset
        f"    asr r12, r11, #{shift}", # segment index
        "    lsl r12, r12, #2",
        f"    mov r9, ={table_symbol}",
        "    add r9, r9, r12",
        "    ldr r10, [r9]",           # y0
        "    ldr r12, [r9, #4]",       # y1
        "    sub r12, r12, r10",
        f"    and r11, r11, #{mask}",
        "    mul r12, r12, r11",
        f"    asr r12, r12, #{shift}",
        "    add r6, r10, r12",
        f"    b act_done_{layer}",
        f"act_low_{layer}:",
        f"    mov r6, #{low}",
        f"    b act_done_{layer}",
        f"act_high_{layer}:",
        f"    mov r6, #{high}",
        f"act_done_{layer}:",
    ]


def _data_section(network: FixedPointNetwork, tables: list[ActivationTable | None],
                  data_base: int, max_width: int) -> list[str]:
    """Emit the .data segment: buffers, weights, tanh tables."""
    lines = [f".data {hex(data_base)}"]
    buffer_bytes = 4 * (max_width + 1)
    lines.append(f"buf0: .space {buffer_bytes}")
    lines.append(f"buf1: .space {buffer_bytes}")
    for idx, weights in enumerate(network.weights):
        flat = [int(v) for v in np.asarray(weights, dtype=np.int64).ravel()]
        lines.append(f"weights_{idx}: .word " + ", ".join(str(v) for v in flat))
    first_table = next((t for t in tables if t is not None), None)
    if first_table is not None:
        # One shared tanh table serves every layer (same format).
        words = _tanh_lut_words(first_table)
        lines.append("tanh_lut: .word " + ", ".join(str(v) for v in words))
    return lines


def _generate_riscv(network: FixedPointNetwork, tables, data_base: int,
                    use_xpulp: bool, num_cores: int) -> tuple[str, str]:
    """RISC-V program text (both plain RV32IM and XpulpV2 flavours).

    Returns (source, output_symbol).
    """
    fmt = network.fmt
    sizes = [network.num_inputs] + [w.shape[0] for w in network.weights]
    max_width = max(sizes)
    lines = _data_section(network, tables, data_base, max_width)
    lines.append(".text")
    lines.append("    csrr s10, mhartid")
    lines.append(f"    li s11, {num_cores}")

    for layer, weights in enumerate(network.weights):
        n_out, n_in_plus_1 = weights.shape
        in_buf = f"buf{layer % 2}"
        out_buf = f"buf{(layer + 1) % 2}"
        row_bytes = 4 * n_in_plus_1
        lines.append(f"layer_{layer}:")
        if num_cores > 1:
            lines += [
                f"    li s4, {n_out}",
                "    mv s3, s10",
                f"    li s0, =weights_{layer}",
                f"    li t0, {row_bytes}",
                "    mul t0, t0, s10",
                "    add s0, s0, t0",
                f"    li s2, ={out_buf}",
                "    slli t0, s10, 2",
                "    add s2, s2, t0",
            ]
        else:
            lines += [
                f"    li s4, {n_out}",
                "    li s3, 0",
                f"    li s0, =weights_{layer}",
                f"    li s2, ={out_buf}",
            ]
        lines.append(f"row_{layer}:")
        lines.append(f"    bge s3, s4, rows_done_{layer}")
        lines.append("    li t2, 0")
        lines.append(f"    li t4, ={in_buf}")
        if use_xpulp:
            lines += [
                f"    lp.setupi 0, {n_in_plus_1}, col_end_{layer}",
                "    p.lw t0, 4(s0!)",
                "    p.lw t1, 4(t4!)",
                "    p.mac t2, t0, t1",
                f"col_end_{layer}:",
            ]
        else:
            lines += [
                f"    li t3, {n_in_plus_1}",
                f"col_{layer}:",
                "    lw t0, 0(s0)",
                "    lw t1, 0(t4)",
                "    addi s0, s0, 4",
                "    addi t4, t4, 4",
                "    mul t5, t0, t1",
                "    add t2, t2, t5",
                "    addi t3, t3, -1",
                f"    bne t3, zero, col_{layer}",
            ]
        lines.append(f"    srai t2, t2, {fmt.frac_bits}")
        table = tables[layer]
        if table is not None:
            lines += _activation_asm_riscv(layer, "tanh_lut", fmt.frac_bits,
                                           table.low_value, table.high_value)
        lines.append("    sw t2, 0(s2)")
        if num_cores > 1:
            lines += [
                "    add s3, s3, s11",
                "    slli t0, s11, 2",
                "    add s2, s2, t0",
                f"    li t0, {row_bytes * (num_cores - 1)}",
                "    add s0, s0, t0",
                f"    j row_{layer}",
            ]
        else:
            lines += [
                "    addi s3, s3, 1",
                "    addi s2, s2, 4",
                f"    j row_{layer}",
            ]
        lines.append(f"rows_done_{layer}:")
        # Core 0 plants the bias (fixed-point 1.0) for the next layer.
        lines += [
            f"    bne s10, zero, skip_bias_{layer}",
            f"    li t0, {fmt.scale}",
            f"    li t1, ={out_buf}",
            f"    sw t0, {4 * n_out}(t1)",
            f"skip_bias_{layer}:",
        ]
        if num_cores > 1:
            lines.append("    p.barrier")
    lines.append("    halt")
    output_symbol = f"buf{len(network.weights) % 2}"
    return "\n".join(lines) + "\n", output_symbol


def _generate_arm(network: FixedPointNetwork, tables,
                  data_base: int) -> tuple[str, str]:
    """ARMv7-M program text.  Returns (source, output_symbol)."""
    fmt = network.fmt
    sizes = [network.num_inputs] + [w.shape[0] for w in network.weights]
    max_width = max(sizes)
    lines = _data_section(network, tables, data_base, max_width)
    lines.append(".text")

    for layer, weights in enumerate(network.weights):
        n_out, n_in_plus_1 = weights.shape
        in_buf = f"buf{layer % 2}"
        out_buf = f"buf{(layer + 1) % 2}"
        lines += [
            f"layer_{layer}:",
            f"    mov r0, =weights_{layer}",
            f"    mov r2, ={out_buf}",
            f"    mov r3, #{n_out}",
            f"row_{layer}:",
            "    mov r6, #0",
            f"    mov r8, ={in_buf}",
            f"    mov r7, #{n_in_plus_1}",
            f"col_{layer}:",
            "    ldr r4, [r0], #4",
            "    ldr r5, [r8], #4",
            "    mla r6, r4, r5, r6",
            "    subs r7, r7, #1",
            f"    bne col_{layer}",
            f"    asr r6, r6, #{fmt.frac_bits}",
        ]
        table = tables[layer]
        if table is not None:
            lines += _activation_asm_arm(layer, "tanh_lut", fmt.frac_bits,
                                         table.low_value, table.high_value)
        lines += [
            "    str r6, [r2], #4",
            "    subs r3, r3, #1",
            f"    bne row_{layer}",
            f"    mov r4, #{fmt.scale}",
            f"    mov r5, ={out_buf}",
            f"    str r4, [r5, #{4 * n_out}]",
        ]
    lines.append("    halt")
    output_symbol = f"buf{len(network.weights) % 2}"
    return "\n".join(lines) + "\n", output_symbol


def compile_mlp(network: FixedPointNetwork, target: str = "xpulp",
                num_cores: int = 1, data_base: int | None = None) -> CompiledMLP:
    """Generate and assemble an inference program for a target ISA.

    Args:
        network: the quantised network (tables are replaced by the
            power-of-two variants, see :func:`with_power_of_two_tables`).
        target: one of ``rv32im``, ``xpulp``, ``armv7m``.
        num_cores: SPMD width; only the ``xpulp`` target supports > 1.
        data_base: where the data image lives; defaults to L1 for the
            RISC-V targets and RAM for ARM.  Pass the L2 base to stage
            an L2-residency experiment.
    """
    if target not in TARGETS:
        raise ConfigurationError(f"unknown target {target!r}; expected {TARGETS}")
    if num_cores > 1 and target != "xpulp":
        raise ConfigurationError("multi-core kernels require the xpulp target")
    _check_network(network)

    prepared = with_power_of_two_tables(network)
    if data_base is None:
        data_base = NRF52_RAM_BASE if target == "armv7m" else MRWOLF_L1_BASE

    if target == "armv7m":
        source, output_symbol = _generate_arm(prepared, prepared.tables, data_base)
    else:
        source, output_symbol = _generate_riscv(
            prepared, prepared.tables, data_base,
            use_xpulp=(target == "xpulp"), num_cores=num_cores)

    program = assemble(source, data_base=data_base)
    sizes = [prepared.num_inputs] + [w.shape[0] for w in prepared.weights]
    return CompiledMLP(
        program=program,
        source=source,
        target=target,
        num_cores=num_cores,
        layer_sizes=tuple(sizes),
        frac_bits=prepared.fmt.frac_bits,
        input_symbol="buf0",
        output_symbol=output_symbol,
    )


def _memory_for_target(target: str) -> MemoryMap:
    if target == "armv7m":
        return nrf52_memory_map()
    return mrwolf_memory_map()


def run_mlp(compiled: CompiledMLP, inputs,
            memory: MemoryMap | None = None):
    """Execute a compiled MLP on the matching simulator.

    Args:
        compiled: output of :func:`compile_mlp`.
        inputs: real-valued input vector (quantised on the way in).
        memory: override the default memory map (e.g. different wait
            states for residency experiments).

    Returns:
        ``(outputs, result)`` where ``outputs`` are the raw fixed-point
        output words and ``result`` is the
        :class:`~repro.isa.cpu.ExecutionResult` or
        :class:`~repro.isa.cluster.ClusterResult`.
    """
    x = np.asarray(inputs, dtype=np.float64)
    n_in = compiled.layer_sizes[0]
    if x.shape != (n_in,):
        raise SimulationError(f"expected {n_in} inputs, got shape {x.shape}")
    scale = 1 << compiled.frac_bits
    raw = [int(v) for v in np.round(x * scale).astype(np.int64)]

    if memory is None:
        memory = _memory_for_target(compiled.target)

    if compiled.num_cores > 1:
        cluster = ClusterSimulator(compiled.program, memory,
                                   num_cores=compiled.num_cores)
        _poke_inputs(cluster.memory, compiled, raw, scale)
        result: ClusterResult = cluster.run()
        outputs = _peek_outputs(cluster.memory, compiled)
        return outputs, result

    if compiled.target == "armv7m":
        core = ArmV7MCore(compiled.program, memory)
    elif compiled.target == "xpulp":
        core = XpulpCore(compiled.program, memory)
    else:
        core = RV32Core(compiled.program, memory, timings=IBEX_TIMINGS)
    _poke_inputs(memory, compiled, raw, scale)
    result = core.run()
    outputs = _peek_outputs(memory, compiled)
    return outputs, result


def _poke_inputs(memory, compiled: CompiledMLP, raw: list[int],
                 scale: int) -> None:
    """Write quantised inputs plus the bias slot into the input buffer."""
    address = compiled.program.symbol_address(compiled.input_symbol)
    memory.write_words(address, raw + [scale])


def _peek_outputs(memory, compiled: CompiledMLP) -> np.ndarray:
    """Read the final layer's raw outputs."""
    address = compiled.program.symbol_address(compiled.output_symbol)
    n_out = compiled.layer_sizes[-1]
    return np.asarray(memory.read_words(address, n_out), dtype=np.int64)
