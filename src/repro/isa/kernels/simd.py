"""Packed-SIMD (halfword) MLP kernel for the XpulpV2 target.

The 32-bit kernels in :mod:`repro.isa.kernels.codegen` mirror FANN's
deployed data layout.  RI5CY's packed-SIMD extensions allow twice the
MAC throughput by storing weights and activations as 16-bit halfwords
and consuming them two at a time with ``pv.sdotsp.h`` (sum-of-products
with accumulation): the inner loop becomes

.. code-block:: text

    lp.setupi 0, <pairs>, end
    p.lw  t0, 4(wptr!)        # two weights
    p.lw  t1, 4(xptr!)        # two activations
    pv.sdotsp.h t2, t0, t1    # acc += w0*x0 + w1*x1
    end:

i.e. 1.5 cycles per MAC instead of 3.  The paper credits exactly this
class of "custom DSP extensions" for Mr. Wolf's efficiency; the SIMD
ablation quantifies the headroom beyond the 32-bit FANN layout.

Rows are padded to an even number of halfwords (a zero weight paired
with a zero activation), and every value must fit 16 bits — networks
quantised with ``decimal_point <= 12`` and |w| < 8 satisfy this, which
:func:`compile_mlp_simd` validates.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.fann.fixedpoint import FixedPointNetwork
from repro.isa.assembler import assemble
from repro.isa.cluster import ClusterSimulator
from repro.isa.kernels.codegen import (
    CompiledMLP,
    _activation_asm_riscv,
    with_power_of_two_tables,
)
from repro.isa.memory import MRWOLF_L1_BASE, MemoryMap, mrwolf_memory_map
from repro.isa.xpulp import XpulpCore

__all__ = ["compile_mlp_simd", "run_mlp_simd", "simd_reference_forward"]

INT16_MIN, INT16_MAX = -(1 << 15), (1 << 15) - 1


def _check_simd_compatible(network: FixedPointNetwork) -> None:
    """All raw weights must be representable as int16."""
    if network.fmt.frac_bits < 6 or network.fmt.frac_bits > 12:
        raise ConfigurationError(
            "SIMD kernels need 6 <= frac_bits <= 12 so weights and "
            "activations fit 16-bit lanes with headroom"
        )
    for idx, w in enumerate(network.weights):
        if np.any(w < INT16_MIN) or np.any(w > INT16_MAX):
            raise ConfigurationError(
                f"layer {idx} weights exceed the int16 lane range"
            )


def _pack_halfwords(values: list[int]) -> list[int]:
    """Pack int16 values (padded to even length) into 32-bit words."""
    if len(values) % 2:
        values = values + [0]
    words = []
    for low, high in zip(values[::2], values[1::2]):
        words.append(((high & 0xFFFF) << 16) | (low & 0xFFFF))
    return words


def simd_reference_forward(network: FixedPointNetwork,
                           inputs: np.ndarray) -> np.ndarray:
    """Bit-exact Python model of the SIMD kernel's arithmetic.

    Identical to :meth:`FixedPointNetwork.forward_raw` with the
    power-of-two tables, except that weights and activations are
    first narrowed to int16 lanes (the layer outputs of a tanh network
    already fit; the narrowing matters only for the stored weights).
    """
    prepared = with_power_of_two_tables(network)
    fmt = prepared.fmt
    x = np.asarray(inputs, dtype=np.float64)
    raw = np.clip(np.asarray(fmt.to_fixed(x), dtype=np.int64),
                  INT16_MIN, INT16_MAX)
    for w, table in zip(prepared.weights, prepared.tables):
        w16 = np.clip(w, INT16_MIN, INT16_MAX)
        with_bias = np.concatenate([raw, [fmt.scale]])
        acc = w16 @ with_bias
        pre = acc >> fmt.frac_bits
        pre = np.clip(pre, fmt.min_int, fmt.max_int)
        if table is None:
            raw = np.clip(pre, INT16_MIN, INT16_MAX)
        else:
            raw = table.lookup(pre)
    return np.asarray(raw, dtype=np.int64)


def _generate_simd(network: FixedPointNetwork, data_base: int,
                   num_cores: int) -> tuple[str, str]:
    """Emit the packed-halfword SPMD kernel.  Returns (source, out symbol)."""
    fmt = network.fmt
    sizes = [network.num_inputs] + [w.shape[0] for w in network.weights]
    max_width = max(sizes)
    # Halfword buffers: width + bias slot + zero pad, rounded to words.
    buffer_halfwords = max_width + 2
    buffer_bytes = 2 * (buffer_halfwords + buffer_halfwords % 2)

    lines = [f".data {hex(data_base)}"]
    lines.append(f"buf0: .space {buffer_bytes}")
    lines.append(f"buf1: .space {buffer_bytes}")
    for idx, weights in enumerate(network.weights):
        packed_rows: list[int] = []
        for row in np.asarray(weights, dtype=np.int64):
            packed_rows.extend(_pack_halfwords([int(v) for v in row]))
        lines.append(f"weights_{idx}: .word "
                     + ", ".join(str(v) for v in packed_rows))
    table = next(t for t in network.tables if t is not None)
    lines.append("tanh_lut: .word " + ", ".join(str(int(v)) for v in table.entries))

    lines.append(".text")
    lines.append("    csrr s10, mhartid")
    lines.append(f"    li s11, {num_cores}")

    for layer, weights in enumerate(network.weights):
        n_out, n_in_plus_1 = weights.shape
        pairs = (n_in_plus_1 + 1) // 2
        row_bytes = 4 * pairs
        in_buf = f"buf{layer % 2}"
        out_buf = f"buf{(layer + 1) % 2}"
        lines.append(f"layer_{layer}:")
        lines += [
            f"    li s4, {n_out}",
            "    mv s3, s10",
            f"    li s0, =weights_{layer}",
            f"    li t0, {row_bytes}",
            "    mul t0, t0, s10",
            "    add s0, s0, t0",
            f"    li s2, ={out_buf}",
            "    slli t0, s10, 1",
            "    add s2, s2, t0",
        ]
        lines.append(f"row_{layer}:")
        lines.append(f"    bge s3, s4, rows_done_{layer}")
        lines.append("    li t2, 0")
        lines.append(f"    li t4, ={in_buf}")
        lines += [
            f"    lp.setupi 0, {pairs}, col_end_{layer}",
            "    p.lw t0, 4(s0!)",
            "    p.lw t1, 4(t4!)",
            "    pv.sdotsp.h t2, t0, t1",
            f"col_end_{layer}:",
        ]
        lines.append(f"    srai t2, t2, {fmt.frac_bits}")
        act_table = network.tables[layer]
        if act_table is not None:
            lines += _activation_asm_riscv(layer, "tanh_lut", fmt.frac_bits,
                                           act_table.low_value,
                                           act_table.high_value)
        lines.append("    sh t2, 0(s2)")
        lines += [
            "    add s3, s3, s11",
            "    slli t0, s11, 1",
            "    add s2, s2, t0",
            f"    li t0, {row_bytes * (num_cores - 1)}",
            "    add s0, s0, t0",
            f"    j row_{layer}",
        ]
        lines.append(f"rows_done_{layer}:")
        # Core 0 plants the bias halfword and the zero pad slot.
        lines += [
            f"    bne s10, zero, skip_bias_{layer}",
            f"    li t0, {fmt.scale}",
            f"    li t1, ={out_buf}",
            f"    sh t0, {2 * n_out}(t1)",
            f"    sh zero, {2 * (n_out + 1)}(t1)",
            f"skip_bias_{layer}:",
        ]
        if num_cores > 1:
            lines.append("    p.barrier")
    lines.append("    halt")
    return "\n".join(lines) + "\n", f"buf{len(network.weights) % 2}"


def compile_mlp_simd(network: FixedPointNetwork, num_cores: int = 1,
                     data_base: int = MRWOLF_L1_BASE) -> CompiledMLP:
    """Generate and assemble the packed-SIMD XpulpV2 kernel.

    Args:
        network: quantised network (tanh/linear layers, weights must
            fit int16 lanes).
        num_cores: SPMD width (1..8).
        data_base: data-segment base (L1 by default).
    """
    _check_simd_compatible(network)
    prepared = with_power_of_two_tables(network)
    source, output_symbol = _generate_simd(prepared, data_base, num_cores)
    program = assemble(source, data_base=data_base)
    sizes = [prepared.num_inputs] + [w.shape[0] for w in prepared.weights]
    return CompiledMLP(
        program=program,
        source=source,
        target="xpulp-simd",
        num_cores=num_cores,
        layer_sizes=tuple(sizes),
        frac_bits=prepared.fmt.frac_bits,
        input_symbol="buf0",
        output_symbol=output_symbol,
    )


def _poke_halfword_inputs(memory, compiled: CompiledMLP,
                          raw: list[int], scale: int) -> None:
    """Write int16 inputs + bias + zero pad into the input buffer."""
    address = compiled.program.symbol_address(compiled.input_symbol)
    values = raw + [scale, 0]
    for i, value in enumerate(values):
        memory.store(address + 2 * i, 2, value)


def _peek_halfword_outputs(memory, compiled: CompiledMLP) -> np.ndarray:
    """Read the final layer's int16 outputs."""
    address = compiled.program.symbol_address(compiled.output_symbol)
    n_out = compiled.layer_sizes[-1]
    return np.asarray(
        [memory.load(address + 2 * i, 2, signed=True)[0] for i in range(n_out)],
        dtype=np.int64,
    )


def run_mlp_simd(compiled: CompiledMLP, inputs,
                 memory: MemoryMap | None = None):
    """Execute a SIMD-compiled MLP; returns (raw outputs, result)."""
    if compiled.target != "xpulp-simd":
        raise SimulationError("run_mlp_simd needs a compile_mlp_simd program")
    x = np.asarray(inputs, dtype=np.float64)
    n_in = compiled.layer_sizes[0]
    if x.shape != (n_in,):
        raise SimulationError(f"expected {n_in} inputs, got shape {x.shape}")
    scale = 1 << compiled.frac_bits
    raw = [int(np.clip(v, INT16_MIN, INT16_MAX))
           for v in np.round(x * scale).astype(np.int64)]

    if memory is None:
        memory = mrwolf_memory_map()

    if compiled.num_cores > 1:
        cluster = ClusterSimulator(compiled.program, memory,
                                   num_cores=compiled.num_cores)
        _poke_halfword_inputs(cluster.memory, compiled, raw, scale)
        result = cluster.run()
        return _peek_halfword_outputs(cluster.memory, compiled), result

    core = XpulpCore(compiled.program, memory)
    _poke_halfword_inputs(memory, compiled, raw, scale)
    result = core.run()
    return _peek_halfword_outputs(memory, compiled), result
