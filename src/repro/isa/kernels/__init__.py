"""MLP kernel code generation for the instruction-set simulators.

:func:`compile_mlp` turns a quantised
:class:`~repro.fann.fixedpoint.FixedPointNetwork` into a complete
assembly program for one of the three ISAs (plus an SPMD variant for
the cluster), and :func:`run_mlp` executes it and returns the network
outputs together with the cycle counts.  The generated programs use
exactly the integer arithmetic of the Python fixed-point reference, so
the integration tests assert bit-exact equality between the ISS and
:meth:`FixedPointNetwork.forward_raw`.
"""

from repro.isa.kernels.codegen import (
    CompiledMLP,
    compile_mlp,
    run_mlp,
    with_power_of_two_tables,
)
from repro.isa.kernels.simd import (
    compile_mlp_simd,
    run_mlp_simd,
    simd_reference_forward,
)

__all__ = [
    "CompiledMLP",
    "compile_mlp",
    "run_mlp",
    "with_power_of_two_tables",
    "compile_mlp_simd",
    "run_mlp_simd",
    "simd_reference_forward",
]
