"""Instruction-set simulators for the InfiniWolf processors.

The calibrated cycle model in :mod:`repro.timing` is fit to the paper's
measurements.  This package provides the *independent, bottom-up*
counterpart: small instruction-set simulators for the three ISAs on the
board —

* RV32IM (:class:`~repro.isa.riscv.RV32Core`), configured with IBEX-like
  instruction timings for the fabric controller;
* RV32IM + XpulpV2 (:class:`~repro.isa.xpulp.XpulpCore`): hardware
  loops, post-increment memory access, multiply-accumulate and packed
  SIMD — the RI5CY feature set the paper credits for its speed-ups;
* an ARMv7E-M subset (:class:`~repro.isa.armv7m.ArmV7MCore`) with
  Cortex-M4-like timings;

plus a word-interleaved-TCDM cluster simulator
(:class:`~repro.isa.cluster.ClusterSimulator`) with a hardware barrier,
and a code generator (:mod:`repro.isa.kernels`) that emits complete
fixed-point MLP inference programs for each ISA.  The ISS cross-check
bench compares measured cycles/MAC against the calibrated constants.
"""

from repro.isa.memory import MemoryMap, MemoryRegion
from repro.isa.program import Instruction, Program
from repro.isa.assembler import assemble
from repro.isa.cpu import Core, ExecutionResult
from repro.isa.riscv import RV32Core, IBEX_TIMINGS, RI5CY_TIMINGS
from repro.isa.xpulp import XpulpCore
from repro.isa.armv7m import ArmV7MCore, CORTEX_M4_TIMINGS
from repro.isa.cluster import ClusterSimulator, ClusterResult
from repro.isa.dma import DmaEngine, DmaTransfer, double_buffered_layer_cycles
from repro.isa.profile import ExecutionProfile, ProfilingCore, profile_run

__all__ = [
    "MemoryMap",
    "MemoryRegion",
    "Instruction",
    "Program",
    "assemble",
    "Core",
    "ExecutionResult",
    "RV32Core",
    "IBEX_TIMINGS",
    "RI5CY_TIMINGS",
    "XpulpCore",
    "ArmV7MCore",
    "CORTEX_M4_TIMINGS",
    "ClusterSimulator",
    "ClusterResult",
    "DmaEngine",
    "DmaTransfer",
    "double_buffered_layer_cycles",
    "ExecutionProfile",
    "ProfilingCore",
    "profile_run",
]
