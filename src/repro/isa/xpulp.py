"""RI5CY core: RV32IM plus the XpulpV2 extensions the paper leans on.

The paper attributes Mr. Wolf's single-core advantage over the plain
RV32IM IBEX to "custom instruction set extensions to efficiently
perform digital signal processing".  The relevant XpulpV2 features are
implemented here:

* **hardware loops** (two nesting levels): ``lp.setupi id, count, end``
  and ``lp.setup id, rcount, end`` execute the body from the next
  instruction up to (excluding) the ``end`` label ``count`` times with
  zero branch overhead;
* **post-increment memory access**: ``p.lw rd, imm(rs1!)`` loads from
  ``rs1`` and then advances it by ``imm`` in the same cycle;
* **multiply-accumulate**: ``p.mac rd, rs1, rs2`` computes
  ``rd += rs1 * rs2`` in one cycle;
* **clipping**: ``p.clip rd, rs1, bit`` saturates to the symmetric
  ``[-2^bit, 2^bit - 1]`` range in one cycle;
* **packed 16-bit SIMD**: ``pv.add.h``, ``pv.sub.h``, ``pv.dotsp.h``
  (dot product of the two halfword lanes) and the accumulating
  ``pv.sdotsp.h``, which is what a Q15 MLP inner loop uses.

Also implemented: ``p.barrier`` (the cluster event unit's barrier,
meaningful only under :class:`~repro.isa.cluster.ClusterSimulator`;
single-core execution treats it as a 1-cycle nop) and ``p.min``/
``p.max``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.isa.cpu import to_signed32
from repro.isa.riscv import RI5CY_TIMINGS, RV32Core, RiscvTimings

__all__ = ["XpulpCore", "HardwareLoop"]


@dataclass
class HardwareLoop:
    """State of one hardware-loop channel.

    Attributes:
        start: index of the first body instruction.
        end: index one past the last body instruction.
        remaining: iterations left (counts down at each body end).
    """

    start: int
    end: int
    remaining: int

    @property
    def active(self) -> bool:
        """Whether this loop channel still has iterations to run."""
        return self.remaining > 0


def _halves(value: int) -> tuple[int, int]:
    """Split a 32-bit value into signed (low, high) halfwords."""
    low = value & 0xFFFF
    high = (value >> 16) & 0xFFFF
    if low & 0x8000:
        low -= 1 << 16
    if high & 0x8000:
        high -= 1 << 16
    return low, high


def _pack_halves(low: int, high: int) -> int:
    """Pack two halfwords (wrapping) into a 32-bit value."""
    return ((high & 0xFFFF) << 16) | (low & 0xFFFF)


class XpulpCore(RV32Core):
    """RI5CY: an RV32IM core with the XpulpV2 DSP extensions.

    Args:
        program: assembled program.
        memory: memory map (typically
            :func:`repro.isa.memory.mrwolf_memory_map`).
        timings: defaults to RI5CY-like single-cycle loads and
            multiplies.
        core_id: cluster core id (``csrr rd, mhartid``).
        load_data: copy the data image on construction.
    """

    NUM_HW_LOOPS = 2

    def __init__(self, program, memory, timings: RiscvTimings = RI5CY_TIMINGS,
                 core_id: int = 0, load_data: bool = True) -> None:
        super().__init__(program, memory, timings=timings, core_id=core_id,
                         load_data=load_data)
        self.hw_loops: list[HardwareLoop | None] = [None] * self.NUM_HW_LOOPS
        self.waiting_at_barrier = False

    # -- hardware loops ---------------------------------------------------------------

    def _setup_loop(self, loop_id: int, count: int, end_label) -> int:
        if not 0 <= loop_id < self.NUM_HW_LOOPS:
            raise SimulationError(f"hardware loop id {loop_id} out of range")
        end = end_label if isinstance(end_label, int) \
            else self.program.label_index(end_label)
        start = self.pc + 1
        if end <= start:
            raise SimulationError(
                f"hardware loop body is empty (start {start}, end {end})"
            )
        if count <= 0:
            # Zero-iteration loops skip the body entirely.
            self.branch_to(end)
            return 1
        self.hw_loops[loop_id] = HardwareLoop(start=start, end=end,
                                              remaining=count)
        return 1

    def op_lp_setupi(self, operands):
        loop_id, count, end_label = operands
        return self._setup_loop(loop_id, count, end_label)

    def op_lp_setup(self, operands):
        loop_id, count_reg, end_label = operands
        return self._setup_loop(loop_id, self.read_reg(count_reg), end_label)

    def after_instruction(self) -> int:
        """Zero-overhead loop-back when the pc reaches a loop end.

        Inner (higher-id) loops are checked first, matching RI5CY's
        nesting rule that loop 1 must nest inside loop 0.
        """
        for loop_id in range(self.NUM_HW_LOOPS - 1, -1, -1):
            loop = self.hw_loops[loop_id]
            if loop is not None and loop.active and self.pc == loop.end:
                loop.remaining -= 1
                if loop.remaining > 0:
                    self.pc = loop.start
                else:
                    self.hw_loops[loop_id] = None
                return 0  # the whole point: no branch cost
        return 0

    # -- post-increment and MAC ----------------------------------------------------------

    def op_p_lw(self, operands):
        return self._load(operands, 4, signed=True)

    def op_p_lh(self, operands):
        return self._load(operands, 2, signed=True)

    def op_p_lb(self, operands):
        return self._load(operands, 1, signed=True)

    def op_p_sw(self, operands):
        return self._store(operands, 4)

    def op_p_mac(self, operands):
        rd, rs1, rs2 = operands
        acc = self.read_reg(rd) + self.read_reg(rs1) * self.read_reg(rs2)
        self.write_reg(rd, acc)
        return self.timings.mul

    def op_p_min(self, operands):
        rd, rs1, rs2 = operands
        self.write_reg(rd, min(self.read_reg(rs1), self.read_reg(rs2)))
        return self.timings.alu

    def op_p_max(self, operands):
        rd, rs1, rs2 = operands
        self.write_reg(rd, max(self.read_reg(rs1), self.read_reg(rs2)))
        return self.timings.alu

    def op_p_clip(self, operands):
        rd, rs1, bit = operands
        lo, hi = -(1 << bit), (1 << bit) - 1
        self.write_reg(rd, max(lo, min(hi, self.read_reg(rs1))))
        return self.timings.alu

    # -- packed 16-bit SIMD -----------------------------------------------------------------

    def op_pv_add_h(self, operands):
        rd, rs1, rs2 = operands
        a_lo, a_hi = _halves(self.read_reg(rs1))
        b_lo, b_hi = _halves(self.read_reg(rs2))
        self.write_reg(rd, to_signed32(_pack_halves(a_lo + b_lo, a_hi + b_hi)))
        return self.timings.alu

    def op_pv_sub_h(self, operands):
        rd, rs1, rs2 = operands
        a_lo, a_hi = _halves(self.read_reg(rs1))
        b_lo, b_hi = _halves(self.read_reg(rs2))
        self.write_reg(rd, to_signed32(_pack_halves(a_lo - b_lo, a_hi - b_hi)))
        return self.timings.alu

    def op_pv_dotsp_h(self, operands):
        rd, rs1, rs2 = operands
        a_lo, a_hi = _halves(self.read_reg(rs1))
        b_lo, b_hi = _halves(self.read_reg(rs2))
        self.write_reg(rd, a_lo * b_lo + a_hi * b_hi)
        return self.timings.mul

    def op_pv_sdotsp_h(self, operands):
        rd, rs1, rs2 = operands
        a_lo, a_hi = _halves(self.read_reg(rs1))
        b_lo, b_hi = _halves(self.read_reg(rs2))
        acc = self.read_reg(rd) + a_lo * b_lo + a_hi * b_hi
        self.write_reg(rd, acc)
        return self.timings.mul

    # -- cluster support -----------------------------------------------------------------------

    def op_p_barrier(self, operands):
        """Event-unit barrier; a nop outside a cluster simulation."""
        self.waiting_at_barrier = True
        return 1
