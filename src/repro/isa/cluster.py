"""Eight-core RI5CY cluster simulator with TCDM arbitration.

Mr. Wolf's cluster couples 8 RI5CY cores to a word-interleaved 16-bank
L1 TCDM through a logarithmic interconnect: in any cycle each bank
serves one core, and colliding requests serialise.  The cluster's event
unit provides a hardware barrier the cores spin on between layers.

The simulation advances all cores in cycle-synchronised rounds:

* each round, every core whose ``busy_until`` has passed executes its
  next instruction;
* memory accesses to a banked region register their bank; when ``k``
  cores hit the same bank in the same round, the ``i``-th (round-robin
  from the last winner) is charged ``i`` extra stall cycles;
* a core executing ``p.barrier`` parks until every running core has
  reached it, then all resume (plus a small release latency).

Functional state is exact; timing is a faithful first-order model of
bank conflicts (the effect the calibrated Table III constants absorb
into their per-weight costs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.isa.memory import MemoryMap
from repro.isa.program import Program
from repro.isa.xpulp import XpulpCore

__all__ = ["ClusterResult", "ClusterSimulator"]

BARRIER_RELEASE_CYCLES = 2


@dataclass(frozen=True)
class ClusterResult:
    """Outcome of a cluster run.

    Attributes:
        cycles: wall-clock cycles until the last core halted.
        per_core_instructions: dynamic instruction count per core.
        bank_conflict_stalls: total stall cycles charged for TCDM
            conflicts across all cores.
        barrier_waits: total cycles cores spent parked at barriers.
    """

    cycles: int
    per_core_instructions: tuple[int, ...]
    bank_conflict_stalls: int
    barrier_waits: int


class _MemProbe:
    """Wraps a MemoryMap to observe the banks an instruction touches."""

    def __init__(self, memory: MemoryMap) -> None:
        self.memory = memory
        self.touched_banks: list[tuple[str, int]] = []

    def _record(self, address: int) -> None:
        region = self.memory.region_at(address)
        if region.num_banks > 1:
            self.touched_banks.append((region.name, region.bank_of(address)))

    def load(self, address: int, size: int, signed: bool):
        self._record(address)
        return self.memory.load(address, size, signed)

    def store(self, address: int, size: int, value: int):
        self._record(address)
        return self.memory.store(address, size, value)

    def region_at(self, address: int):
        return self.memory.region_at(address)

    def region_named(self, name: str):
        return self.memory.region_named(name)

    def write_words(self, address: int, values) -> None:
        self.memory.write_words(address, values)

    def read_words(self, address: int, count: int):
        return self.memory.read_words(address, count)


class ClusterSimulator:
    """Lockstep multi-core execution of one program image.

    All cores run the same program (SPMD) against one shared memory
    map; they differentiate through ``csrr rd, mhartid``.

    Args:
        program: the assembled SPMD kernel.
        memory: shared memory map (the data image loads once).
        num_cores: active core count (1..8 on Mr. Wolf).
    """

    MAX_CORES = 8

    def __init__(self, program: Program, memory: MemoryMap,
                 num_cores: int = 8) -> None:
        if not 1 <= num_cores <= self.MAX_CORES:
            raise SimulationError(
                f"cluster supports 1..{self.MAX_CORES} cores, got {num_cores}"
            )
        self.memory = memory
        self.probe = _MemProbe(memory)
        program.load_data(memory)
        self.cores = [
            XpulpCore(program, self.probe, core_id=i, load_data=False)  # type: ignore[arg-type]
            for i in range(num_cores)
        ]
        self._arbitration_offset = 0

    def run(self, max_cycles: int = 50_000_000) -> ClusterResult:
        """Run all cores to completion (cycle-stepped)."""
        cycle = 0
        conflict_stalls = 0
        barrier_waits = 0
        busy_until = [0] * len(self.cores)

        while cycle < max_cycles:
            running = [c for c in self.cores if not c.halted]
            if not running:
                break

            # Barrier release: every running core parked -> release all.
            if all(c.waiting_at_barrier for c in running):
                for core in running:
                    core.waiting_at_barrier = False
                    busy_until[core.core_id] = cycle + BARRIER_RELEASE_CYCLES
                cycle += BARRIER_RELEASE_CYCLES
                continue

            # Execute one instruction on every ready, non-parked core.
            bank_requests: dict[tuple[str, int], list[int]] = {}
            for core in running:
                if core.waiting_at_barrier:
                    barrier_waits += 1
                    continue
                if busy_until[core.core_id] > cycle:
                    continue
                self.probe.touched_banks = []
                cycles_before = core.cycles
                core.step()
                cost = core.cycles - cycles_before
                busy_until[core.core_id] = cycle + max(1, cost)
                for bank in self.probe.touched_banks:
                    bank_requests.setdefault(bank, []).append(core.core_id)

            # Serialise same-bank collisions (round-robin priority).
            for requesters in bank_requests.values():
                if len(requesters) < 2:
                    continue
                order = sorted(
                    requesters,
                    key=lambda cid: (cid - self._arbitration_offset)
                    % len(self.cores),
                )
                for position, core_id in enumerate(order):
                    if position > 0:
                        busy_until[core_id] += position
                        conflict_stalls += position
            self._arbitration_offset = (self._arbitration_offset + 1) \
                % len(self.cores)
            cycle += 1
        else:
            raise SimulationError("cluster run exceeded the cycle budget")

        final_cycle = max([cycle] + busy_until)
        return ClusterResult(
            cycles=final_cycle,
            per_core_instructions=tuple(c.instruction_count for c in self.cores),
            bank_conflict_stalls=conflict_stalls,
            barrier_waits=barrier_waits,
        )
