"""Cluster DMA engine model (L2 <-> L1 transfers).

Mr. Wolf's cluster owns a DMA engine that moves data between the
512 kB L2 and the 64 kB L1 TCDM while the cores compute.  For networks
that do not fit L1 (Network B), the deployed kernels double-buffer:
while the cores consume layer ``i``'s weights from one L1 buffer, the
DMA fills the other with layer ``i+1``'s.

:class:`DmaEngine` is the timing model of that engine (setup latency +
bandwidth-limited transfer), and :func:`double_buffered_layer_cycles`
answers the scheduling question the Table III fit raised: a layer's
wall-clock is ``max(compute, transfer) + setup`` under double
buffering, so a single core (compute-bound) hides the DMA entirely
while eight cores (higher consumption rate) become transfer-limited —
precisely the asymmetry the calibrated per-weight constants absorbed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = ["DmaTransfer", "DmaEngine", "double_buffered_layer_cycles"]


@dataclass(frozen=True)
class DmaTransfer:
    """One programmed transfer.

    Attributes:
        bytes_moved: payload size.
        cycles: total engine occupancy (setup + streaming).
    """

    bytes_moved: int
    cycles: int


class DmaEngine:
    """Bandwidth/latency model of the cluster DMA.

    Args:
        bytes_per_cycle: streaming bandwidth of the L2 port (Mr. Wolf's
            64-bit interface moves 8 B/cycle).
        setup_cycles: per-transfer programming + arbitration latency.
    """

    def __init__(self, bytes_per_cycle: float = 8.0,
                 setup_cycles: int = 24) -> None:
        if bytes_per_cycle <= 0:
            raise SimulationError("DMA bandwidth must be positive")
        if setup_cycles < 0:
            raise SimulationError("setup cycles cannot be negative")
        self.bytes_per_cycle = bytes_per_cycle
        self.setup_cycles = setup_cycles

    def transfer(self, num_bytes: int) -> DmaTransfer:
        """Cycle cost of one transfer."""
        if num_bytes < 0:
            raise SimulationError("cannot transfer a negative byte count")
        if num_bytes == 0:
            return DmaTransfer(bytes_moved=0, cycles=0)
        streaming = -(-num_bytes // self.bytes_per_cycle)  # ceil
        return DmaTransfer(bytes_moved=num_bytes,
                           cycles=self.setup_cycles + int(streaming))

    def transfer_cycles(self, num_bytes: int) -> int:
        """Shorthand for ``transfer(num_bytes).cycles``."""
        return self.transfer(num_bytes).cycles


def double_buffered_layer_cycles(compute_cycles: float, weight_bytes: int,
                                 engine: DmaEngine | None = None) -> float:
    """Wall-clock cycles of one layer under DMA double buffering.

    The next layer's weights stream while this layer computes; the
    layer ends when both finish, so its cost is
    ``max(compute, transfer) + setup`` (the setup is serial: the cores
    program the engine between layers).

    Args:
        compute_cycles: the layer's pure compute time on the cores.
        weight_bytes: size of the *next* layer's weight block to fetch.
        engine: DMA model (defaults to the Mr. Wolf parameters).
    """
    if compute_cycles < 0:
        raise SimulationError("compute cycles cannot be negative")
    if engine is None:
        engine = DmaEngine()
    transfer = engine.transfer(weight_bytes)
    streaming = max(0, transfer.cycles - engine.setup_cycles)
    return max(compute_cycles, float(streaming)) + engine.setup_cycles
