"""Execution profiling for the instruction-set simulators.

Wraps a core to collect a dynamic instruction histogram and per-opcode
cycle attribution — the data an engineer reads before optimising a
kernel (e.g. "the plain RV32IM loop spends 40 % of its cycles in
loads", which is exactly what the post-increment extension removes).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.isa.cpu import Core, ExecutionResult

__all__ = ["ExecutionProfile", "ProfilingCore", "profile_run"]


@dataclass
class ExecutionProfile:
    """Aggregated execution statistics.

    Attributes:
        instruction_counts: dynamic count per mnemonic.
        cycle_counts: cycles attributed per mnemonic (memory wait
            states included in the triggering instruction).
        result: the underlying run result.
    """

    instruction_counts: Counter = field(default_factory=Counter)
    cycle_counts: Counter = field(default_factory=Counter)
    result: ExecutionResult | None = None

    @property
    def total_cycles(self) -> int:
        """Cycles across all opcodes."""
        return sum(self.cycle_counts.values())

    def cycle_fraction(self, mnemonic: str) -> float:
        """Fraction of all cycles spent in one mnemonic."""
        total = self.total_cycles
        if total == 0:
            return 0.0
        return self.cycle_counts.get(mnemonic, 0) / total

    def hottest(self, n: int = 5) -> list[tuple[str, int]]:
        """The ``n`` mnemonics with the highest cycle counts."""
        return self.cycle_counts.most_common(n)

    def memory_cycle_fraction(self) -> float:
        """Fraction of cycles in loads/stores (any ISA's spellings)."""
        memory_ops = {m for m in self.cycle_counts
                      if m.lstrip("p.").startswith(("lw", "lh", "lb", "sw",
                                                    "sh", "sb", "ldr", "str"))}
        total = self.total_cycles
        if total == 0:
            return 0.0
        return sum(self.cycle_counts[m] for m in memory_ops) / total

    def report(self, top: int = 8) -> str:
        """A printable profile summary."""
        lines = [f"{'mnemonic':12s} {'count':>8s} {'cycles':>8s} {'share':>7s}"]
        for mnemonic, cycles in self.hottest(top):
            lines.append(f"{mnemonic:12s} {self.instruction_counts[mnemonic]:8d} "
                         f"{cycles:8d} {100 * self.cycle_fraction(mnemonic):6.1f} %")
        return "\n".join(lines)


class ProfilingCore:
    """Runs a core step-by-step, attributing cycles per mnemonic.

    Args:
        core: any :class:`~repro.isa.cpu.Core` (constructed, not run).
    """

    def __init__(self, core: Core) -> None:
        self.core = core
        self.profile = ExecutionProfile()

    def run(self, max_instructions: int = 20_000_000) -> ExecutionProfile:
        """Execute to completion, collecting the histogram."""
        core = self.core
        while not core.halted and core.instruction_count < max_instructions:
            mnemonic = core.current_instruction.mnemonic
            before = core.cycles
            core.step()
            self.profile.instruction_counts[mnemonic] += 1
            self.profile.cycle_counts[mnemonic] += core.cycles - before
        self.profile.result = ExecutionResult(
            cycles=core.cycles,
            instructions=core.instruction_count,
            halted=core.halted,
        )
        return self.profile


def profile_run(core: Core) -> ExecutionProfile:
    """Convenience wrapper: profile a constructed core to completion."""
    return ProfilingCore(core).run()
