"""ARMv7E-M subset core with Cortex-M4-like timings.

A pragmatic subset sufficient for the MLP kernels and their tests:
data-processing (mov/add/sub/logicals/shifts), multiply and
multiply-accumulate (``mul``, ``mla``, and the DSP ``smlabb``), loads
and stores with immediate offset or post-index writeback, compare and
conditional branches.  Flag handling covers N/Z/C/V as the compare and
``s``-suffixed instructions need them.

Timings follow the Cortex-M4 TRM's headline numbers: single-cycle ALU
and ``mul``/``mla``, 2-cycle loads/stores (pipelined against zero-wait
RAM; flash wait states come from the memory map), and 1+P (here 3)
cycle taken branches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.isa.cpu import MASK32, Core, to_signed32

__all__ = ["ArmTimings", "CORTEX_M4_TIMINGS", "ArmV7MCore"]


@dataclass(frozen=True)
class ArmTimings:
    """Cycle costs per instruction class (memory waits excluded).

    Attributes:
        alu: data-processing operations.
        load: loads before wait states.
        store: stores before wait states.
        mul: mul / mla / smlabb.
        branch_taken: taken branch.
        branch_not_taken: fall-through branch.
    """

    alu: int = 1
    load: int = 2
    store: int = 2
    mul: int = 1
    branch_taken: int = 3
    branch_not_taken: int = 1


CORTEX_M4_TIMINGS = ArmTimings()


def _arm_register_names() -> dict[str, int]:
    names = {f"r{i}": i for i in range(16)}
    names.update({"sp": 13, "lr": 14, "pc": 15})
    return names


class ArmV7MCore(Core):
    """An ARMv7E-M subset core.

    Args:
        program: assembled program.
        memory: memory map (typically
            :func:`repro.isa.memory.nrf52_memory_map`).
        timings: per-class costs (defaults to Cortex-M4-like).
        core_id: unused on this single-core part; kept for symmetry.
        load_data: copy the data image on construction.
    """

    REGISTER_NAMES = _arm_register_names()
    ZERO_REGISTER = None
    NUM_REGISTERS = 16

    def __init__(self, program, memory, timings: ArmTimings = CORTEX_M4_TIMINGS,
                 core_id: int = 0, load_data: bool = True) -> None:
        super().__init__(program, memory, core_id=core_id, load_data=load_data)
        self.timings = timings
        self.flag_n = False
        self.flag_z = False
        self.flag_c = False
        self.flag_v = False

    # -- helpers ------------------------------------------------------------------------

    def _operand_value(self, operand) -> int:
        """Register or immediate operand value."""
        if isinstance(operand, int):
            return operand
        return self.read_reg(operand)

    def _set_nz(self, value: int) -> None:
        value = to_signed32(value)
        self.flag_n = value < 0
        self.flag_z = value == 0

    def _add_with_flags(self, a: int, b: int, carry_in: int = 0) -> int:
        ua, ub = a & MASK32, b & MASK32
        total = ua + ub + carry_in
        result = to_signed32(total)
        self.flag_c = total > MASK32
        self.flag_v = ((to_signed32(a) >= 0) == (to_signed32(b) >= 0)
                       and (result >= 0) != (to_signed32(a) >= 0))
        self._set_nz(result)
        return result

    # -- data processing ----------------------------------------------------------------

    def op_mov(self, operands):
        rd, src = operands
        self.write_reg(rd, self._operand_value(src))
        return self.timings.alu

    def op_movs(self, operands):
        rd, src = operands
        value = self._operand_value(src)
        self.write_reg(rd, value)
        self._set_nz(value)
        return self.timings.alu

    def op_movw(self, operands):
        # mov with a 16-bit immediate: identical here (no encodings).
        return self.op_mov(operands)

    def _binary(self, operands, fn, set_flags: bool) -> int:
        if len(operands) == 3:
            rd, rn, src = operands
        else:
            rd, src = operands
            rn = rd
        result = fn(self.read_reg(rn), self._operand_value(src))
        self.write_reg(rd, result)
        if set_flags:
            self._set_nz(result)
        return self.timings.alu

    def op_add(self, operands):
        return self._binary(operands, lambda a, b: a + b, set_flags=False)

    def op_adds(self, operands):
        if len(operands) == 3:
            rd, rn, src = operands
        else:
            rd, src = operands
            rn = rd
        result = self._add_with_flags(self.read_reg(rn), self._operand_value(src))
        self.write_reg(rd, result)
        return self.timings.alu

    def op_sub(self, operands):
        return self._binary(operands, lambda a, b: a - b, set_flags=False)

    def op_subs(self, operands):
        if len(operands) == 3:
            rd, rn, src = operands
        else:
            rd, src = operands
            rn = rd
        b = self._operand_value(src)
        result = self._add_with_flags(self.read_reg(rn), ~b & MASK32, carry_in=1)
        self.write_reg(rd, result)
        return self.timings.alu

    def op_and(self, operands):
        return self._binary(operands, lambda a, b: a & b, set_flags=False)

    def op_ands(self, operands):
        return self._binary(operands, lambda a, b: a & b, set_flags=True)

    def op_orr(self, operands):
        return self._binary(operands, lambda a, b: a | b, set_flags=False)

    def op_eor(self, operands):
        return self._binary(operands, lambda a, b: a ^ b, set_flags=False)

    def op_lsl(self, operands):
        return self._binary(operands, lambda a, b: a << (b & 31), set_flags=False)

    def op_lsls(self, operands):
        return self._binary(operands, lambda a, b: a << (b & 31), set_flags=True)

    def op_lsr(self, operands):
        return self._binary(operands,
                            lambda a, b: (a & MASK32) >> (b & 31), set_flags=False)

    def op_asr(self, operands):
        return self._binary(operands, lambda a, b: a >> (b & 31), set_flags=False)

    def op_asrs(self, operands):
        return self._binary(operands, lambda a, b: a >> (b & 31), set_flags=True)

    # -- multiply ---------------------------------------------------------------------------

    def op_mul(self, operands):
        if len(operands) == 3:
            rd, rn, rm = operands
        else:
            rd, rm = operands
            rn = rd
        self.write_reg(rd, self.read_reg(rn) * self.read_reg(rm))
        return self.timings.mul

    def op_muls(self, operands):
        cost = self.op_mul(operands)
        self._set_nz(self.read_reg(operands[0]))
        return cost

    def op_mla(self, operands):
        rd, rn, rm, ra = operands
        self.write_reg(rd, self.read_reg(rn) * self.read_reg(rm)
                       + self.read_reg(ra))
        return self.timings.mul

    def op_smlabb(self, operands):
        """DSP 16x16+32 MAC on the bottom halfwords."""
        rd, rn, rm, ra = operands

        def bottom(value: int) -> int:
            half = value & 0xFFFF
            return half - (1 << 16) if half & 0x8000 else half

        self.write_reg(rd, bottom(self.read_reg(rn)) * bottom(self.read_reg(rm))
                       + self.read_reg(ra))
        return self.timings.mul

    # -- memory -----------------------------------------------------------------------------

    def _load(self, operands, size: int, signed: bool) -> int:
        rd, mem = operands
        address, operand = self.resolve_mem_operand(mem)
        self.write_reg(rd, self.mem_load(address, size, signed))
        self.apply_post_increment(operand)
        return self.timings.load

    def _store(self, operands, size: int) -> int:
        rs, mem = operands
        address, operand = self.resolve_mem_operand(mem)
        self.mem_store(address, size, self.read_reg(rs))
        self.apply_post_increment(operand)
        return self.timings.store

    def op_ldr(self, operands):
        return self._load(operands, 4, signed=True)

    def op_ldrh(self, operands):
        return self._load(operands, 2, signed=False)

    def op_ldrsh(self, operands):
        return self._load(operands, 2, signed=True)

    def op_ldrb(self, operands):
        return self._load(operands, 1, signed=False)

    def op_str(self, operands):
        return self._store(operands, 4)

    def op_strh(self, operands):
        return self._store(operands, 2)

    def op_strb(self, operands):
        return self._store(operands, 1)

    # -- compare and branch --------------------------------------------------------------------

    def op_cmp(self, operands):
        rn, src = operands
        b = self._operand_value(src)
        self._add_with_flags(self.read_reg(rn), ~b & MASK32, carry_in=1)
        return self.timings.alu

    def _conditional_branch(self, label, taken: bool) -> int:
        if taken:
            self.branch_to(label)
            return self.timings.branch_taken
        return self.timings.branch_not_taken

    def op_b(self, operands):
        self.branch_to(operands[0])
        return self.timings.branch_taken

    def op_beq(self, operands):
        return self._conditional_branch(operands[0], self.flag_z)

    def op_bne(self, operands):
        return self._conditional_branch(operands[0], not self.flag_z)

    def op_blt(self, operands):
        return self._conditional_branch(operands[0], self.flag_n != self.flag_v)

    def op_bge(self, operands):
        return self._conditional_branch(operands[0], self.flag_n == self.flag_v)

    def op_bgt(self, operands):
        return self._conditional_branch(
            operands[0], not self.flag_z and self.flag_n == self.flag_v)

    def op_ble(self, operands):
        return self._conditional_branch(
            operands[0], self.flag_z or self.flag_n != self.flag_v)

    def op_bl(self, operands):
        self.write_reg("lr", self.pc + 1)
        self.branch_to(operands[0])
        return self.timings.branch_taken

    def op_bx(self, operands):
        if operands[0] != "lr":
            raise SimulationError("only 'bx lr' is supported")
        self.branch_to(self.read_reg("lr"))
        return self.timings.branch_taken
