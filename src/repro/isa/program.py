"""Program containers: instructions, labels and a data image.

The simulators address code by *instruction index* rather than byte
address — branches resolve to indices — which keeps the cores simple
without giving up anything the reproduction needs (cycle counts come
from per-instruction timing classes, not from fetch addresses).  Data
lives in the byte-addressed :class:`~repro.isa.memory.MemoryMap`; the
assembler lays out the data image and exports a symbol table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AssemblyError

__all__ = ["Instruction", "DataImage", "Program"]


@dataclass(frozen=True)
class Instruction:
    """One assembled instruction.

    Attributes:
        mnemonic: lower-case operation name ("addi", "p.mac", ...).
        operands: parsed operand tuple; entries are register names
            (str), integers, labels (str) or structured tuples like
            ``("mem", offset, base_reg, post_increment)``.
        source_line: 1-based line number in the assembly source.
        text: the original source text (for diagnostics).
    """

    mnemonic: str
    operands: tuple
    source_line: int
    text: str


@dataclass
class DataImage:
    """The assembled data segment.

    Attributes:
        base_address: where the image begins in memory.
        payload: initialised bytes (zero-filled for ``.space``).
        symbols: label -> absolute byte address.
    """

    base_address: int
    payload: bytearray = field(default_factory=bytearray)
    symbols: dict[str, int] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Image length in bytes."""
        return len(self.payload)


class Program:
    """Assembled code plus its data image and label table.

    Args:
        instructions: the code, in order.
        labels: code label -> instruction index.
        data: the assembled data segment.
    """

    def __init__(self, instructions: list[Instruction],
                 labels: dict[str, int], data: DataImage) -> None:
        self.instructions = list(instructions)
        self.labels = dict(labels)
        self.data = data

    def __len__(self) -> int:
        return len(self.instructions)

    def label_index(self, label: str) -> int:
        """Instruction index of a code label."""
        if label not in self.labels:
            raise AssemblyError(f"undefined code label {label!r}")
        return self.labels[label]

    def symbol_address(self, name: str) -> int:
        """Absolute address of a data symbol."""
        if name not in self.data.symbols:
            raise AssemblyError(f"undefined data symbol {name!r}")
        return self.data.symbols[name]

    def load_data(self, memory) -> None:
        """Copy the data image into a memory map."""
        for i, byte in enumerate(self.data.payload):
            memory.store(self.data.base_address + i, 1, byte)

    def disassemble(self) -> str:
        """A printable listing (labels inlined)."""
        index_to_labels: dict[int, list[str]] = {}
        for label, idx in self.labels.items():
            index_to_labels.setdefault(idx, []).append(label)
        lines = []
        for idx, instr in enumerate(self.instructions):
            for label in index_to_labels.get(idx, []):
                lines.append(f"{label}:")
            lines.append(f"  {idx:5d}: {instr.text}")
        return "\n".join(lines)
