"""RV32IM core with configurable (IBEX- or RI5CY-like) timings.

Implements the RV32I base integer set plus the M extension, the usual
assembler pseudo-instructions (``li``, ``mv``, ``j``, ``ret``, ...) and
``csrr rd, mhartid`` so cluster kernels can learn their core id.

Timing is a per-class cycle cost plus memory wait states:

* **IBEX** (the Mr. Wolf fabric controller's class of core): 2-stage
  pipeline; taken branches 3 cycles, loads 2 (plus waits), stores 2,
  3-cycle multiplier, 37-cycle iterative divider.
* **RI5CY**: 4-stage pipeline; taken branches 3 cycles, single-cycle
  loads against TCDM (plus waits), single-cycle multiplier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.isa.cpu import MASK32, Core

__all__ = ["RiscvTimings", "IBEX_TIMINGS", "RI5CY_TIMINGS", "RV32Core"]


@dataclass(frozen=True)
class RiscvTimings:
    """Cycle costs per instruction class (memory waits excluded).

    Attributes:
        alu: register/immediate ALU operations.
        load: loads (before wait states).
        store: stores (before wait states).
        mul: 32x32 multiplication.
        div: division / remainder.
        branch_taken: taken conditional branch or jump.
        branch_not_taken: fall-through conditional branch.
    """

    alu: int = 1
    load: int = 2
    store: int = 2
    mul: int = 1
    div: int = 35
    branch_taken: int = 3
    branch_not_taken: int = 1


IBEX_TIMINGS = RiscvTimings(alu=1, load=2, store=2, mul=3, div=37,
                            branch_taken=3, branch_not_taken=1)
RI5CY_TIMINGS = RiscvTimings(alu=1, load=1, store=1, mul=1, div=35,
                             branch_taken=3, branch_not_taken=1)


def _riscv_register_names() -> dict[str, int]:
    """x0-x31 plus the standard ABI spellings."""
    names: dict[str, int] = {f"x{i}": i for i in range(32)}
    abi = ["zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
           "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
           "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
           "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"]
    names.update({name: i for i, name in enumerate(abi)})
    names["fp"] = 8
    return names


class RV32Core(Core):
    """An RV32IM core.

    Args:
        program: assembled program.
        memory: memory map.
        timings: per-class cycle costs (defaults to IBEX-like).
        core_id: value returned by ``csrr rd, mhartid``.
        load_data: copy the program's data image on construction.
    """

    REGISTER_NAMES = _riscv_register_names()
    ZERO_REGISTER = 0

    def __init__(self, program, memory, timings: RiscvTimings = IBEX_TIMINGS,
                 core_id: int = 0, load_data: bool = True) -> None:
        super().__init__(program, memory, core_id=core_id, load_data=load_data)
        self.timings = timings

    # -- ALU register-register ------------------------------------------------------

    def _alu_rrr(self, operands, fn) -> int:
        rd, rs1, rs2 = operands
        self.write_reg(rd, fn(self.read_reg(rs1), self.read_reg(rs2)))
        return self.timings.alu

    def _alu_rri(self, operands, fn) -> int:
        rd, rs1, imm = operands
        if not isinstance(imm, int):
            raise SimulationError(
                f"immediate operand expected, got {imm!r} "
                f"(line {self.current_instruction.source_line})"
            )
        self.write_reg(rd, fn(self.read_reg(rs1), imm))
        return self.timings.alu

    def op_add(self, operands):
        return self._alu_rrr(operands, lambda a, b: a + b)

    def op_sub(self, operands):
        return self._alu_rrr(operands, lambda a, b: a - b)

    def op_and(self, operands):
        return self._alu_rrr(operands, lambda a, b: a & b)

    def op_or(self, operands):
        return self._alu_rrr(operands, lambda a, b: a | b)

    def op_xor(self, operands):
        return self._alu_rrr(operands, lambda a, b: a ^ b)

    def op_sll(self, operands):
        return self._alu_rrr(operands, lambda a, b: a << (b & 31))

    def op_srl(self, operands):
        return self._alu_rrr(operands, lambda a, b: (a & MASK32) >> (b & 31))

    def op_sra(self, operands):
        return self._alu_rrr(operands, lambda a, b: a >> (b & 31))

    def op_slt(self, operands):
        return self._alu_rrr(operands, lambda a, b: int(a < b))

    def op_sltu(self, operands):
        return self._alu_rrr(operands,
                             lambda a, b: int((a & MASK32) < (b & MASK32)))

    def op_addi(self, operands):
        return self._alu_rri(operands, lambda a, b: a + b)

    def op_andi(self, operands):
        return self._alu_rri(operands, lambda a, b: a & b)

    def op_ori(self, operands):
        return self._alu_rri(operands, lambda a, b: a | b)

    def op_xori(self, operands):
        return self._alu_rri(operands, lambda a, b: a ^ b)

    def op_slti(self, operands):
        return self._alu_rri(operands, lambda a, b: int(a < b))

    def op_slli(self, operands):
        return self._alu_rri(operands, lambda a, b: a << (b & 31))

    def op_srli(self, operands):
        return self._alu_rri(operands, lambda a, b: (a & MASK32) >> (b & 31))

    def op_srai(self, operands):
        return self._alu_rri(operands, lambda a, b: a >> (b & 31))

    def op_lui(self, operands):
        rd, imm = operands
        self.write_reg(rd, imm << 12)
        return self.timings.alu

    # -- M extension -------------------------------------------------------------------

    def op_mul(self, operands):
        rd, rs1, rs2 = operands
        self.write_reg(rd, self.read_reg(rs1) * self.read_reg(rs2))
        return self.timings.mul

    def op_mulh(self, operands):
        rd, rs1, rs2 = operands
        product = self.read_reg(rs1) * self.read_reg(rs2)
        self.write_reg(rd, product >> 32)
        return self.timings.mul

    def op_mulhu(self, operands):
        rd, rs1, rs2 = operands
        product = (self.read_reg(rs1) & MASK32) * (self.read_reg(rs2) & MASK32)
        self.write_reg(rd, product >> 32)
        return self.timings.mul

    def op_div(self, operands):
        rd, rs1, rs2 = operands
        a, b = self.read_reg(rs1), self.read_reg(rs2)
        if b == 0:
            self.write_reg(rd, -1)
        else:
            # RISC-V divides round toward zero.
            self.write_reg(rd, int(a / b))
        return self.timings.div

    def op_rem(self, operands):
        rd, rs1, rs2 = operands
        a, b = self.read_reg(rs1), self.read_reg(rs2)
        if b == 0:
            self.write_reg(rd, a)
        else:
            self.write_reg(rd, a - int(a / b) * b)
        return self.timings.div

    # -- memory ---------------------------------------------------------------------------

    def _load(self, operands, size: int, signed: bool) -> int:
        rd, mem = operands
        address, operand = self.resolve_mem_operand(mem)
        self.write_reg(rd, self.mem_load(address, size, signed))
        self.apply_post_increment(operand)
        return self.timings.load

    def _store(self, operands, size: int) -> int:
        rs, mem = operands
        address, operand = self.resolve_mem_operand(mem)
        self.mem_store(address, size, self.read_reg(rs))
        self.apply_post_increment(operand)
        return self.timings.store

    def op_lw(self, operands):
        return self._load(operands, 4, signed=True)

    def op_lh(self, operands):
        return self._load(operands, 2, signed=True)

    def op_lhu(self, operands):
        return self._load(operands, 2, signed=False)

    def op_lb(self, operands):
        return self._load(operands, 1, signed=True)

    def op_lbu(self, operands):
        return self._load(operands, 1, signed=False)

    def op_sw(self, operands):
        return self._store(operands, 4)

    def op_sh(self, operands):
        return self._store(operands, 2)

    def op_sb(self, operands):
        return self._store(operands, 1)

    # -- control flow -----------------------------------------------------------------------

    def _branch(self, operands, condition) -> int:
        rs1, rs2, label = operands
        if condition(self.read_reg(rs1), self.read_reg(rs2)):
            self.branch_to(label)
            return self.timings.branch_taken
        return self.timings.branch_not_taken

    def op_beq(self, operands):
        return self._branch(operands, lambda a, b: a == b)

    def op_bne(self, operands):
        return self._branch(operands, lambda a, b: a != b)

    def op_blt(self, operands):
        return self._branch(operands, lambda a, b: a < b)

    def op_bge(self, operands):
        return self._branch(operands, lambda a, b: a >= b)

    def op_bltu(self, operands):
        return self._branch(operands,
                            lambda a, b: (a & MASK32) < (b & MASK32))

    def op_bgeu(self, operands):
        return self._branch(operands,
                            lambda a, b: (a & MASK32) >= (b & MASK32))

    def op_jal(self, operands):
        rd, label = operands
        self.write_reg(rd, self.pc + 1)
        self.branch_to(label)
        return self.timings.branch_taken

    def op_jalr(self, operands):
        rd, rs1, imm = operands
        target = self.read_reg(rs1) + imm
        self.write_reg(rd, self.pc + 1)
        self.branch_to(target)
        return self.timings.branch_taken

    # -- pseudo-instructions ----------------------------------------------------------------

    def op_li(self, operands):
        rd, imm = operands
        if not isinstance(imm, int):
            raise SimulationError(f"li needs an immediate, got {imm!r}")
        self.write_reg(rd, imm)
        return self.timings.alu

    def op_mv(self, operands):
        rd, rs = operands
        self.write_reg(rd, self.read_reg(rs))
        return self.timings.alu

    def op_j(self, operands):
        self.branch_to(operands[0])
        return self.timings.branch_taken

    def op_ret(self, operands):
        self.branch_to(self.read_reg("ra"))
        return self.timings.branch_taken

    def op_csrr(self, operands):
        rd, csr = operands
        if csr != "mhartid":
            raise SimulationError(f"unsupported CSR {csr!r}")
        self.write_reg(rd, self.core_id)
        return self.timings.alu

    def op_seqz(self, operands):
        rd, rs = operands
        self.write_reg(rd, int(self.read_reg(rs) == 0))
        return self.timings.alu

    def op_snez(self, operands):
        rd, rs = operands
        self.write_reg(rd, int(self.read_reg(rs) != 0))
        return self.timings.alu

    def op_neg(self, operands):
        rd, rs = operands
        self.write_reg(rd, -self.read_reg(rs))
        return self.timings.alu
