"""Two-pass text assembler shared by all three ISAs.

Syntax (a pragmatic GNU-as subset):

.. code-block:: text

    .data 0x10000000          # data segment base address
    input:  .space 64         # 64 zero bytes
    table:  .word 1, -2, 3    # initialised 32-bit words

    .text
    main:
        li   a0, 5
    loop:
        p.lw t0, 4(a1!)       # XpulpV2 post-increment
        mac  t2, t0, t1
        bne  t0, zero, loop
        halt

Operand grammar:

* registers — any identifier the target core accepts (the assembler
  does not validate register names; cores do);
* integers — decimal or ``0x`` hex, optionally negative;
* ``imm(reg)`` / ``imm(reg!)`` — memory operand with optional
  post-increment marker;
* ``[reg, #imm]`` / ``[reg], #imm`` — the ARM equivalents (pre-indexed
  without writeback, and post-indexed);
* ``=symbol`` — the absolute address of a data symbol (resolved at
  assembly time, usable with ``li``/``ldr``);
* anything else — a label, resolved to an instruction index if defined
  in ``.text``, else left for the core to reject.

Memory operands are normalised to ``("mem", offset, base, post_inc)``
tuples so every core decodes one shape.
"""

from __future__ import annotations

import re

from repro.errors import AssemblyError
from repro.isa.program import DataImage, Instruction, Program

__all__ = ["assemble"]

_LABEL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")
_MEM_RISCV_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))\(([\w.$]+)(!?)\)$")
_MEM_ARM_PRE_RE = re.compile(r"^\[([\w.$]+)(?:,\s*#(-?(?:0x[0-9a-fA-F]+|\d+)))?\]$")
_INT_RE = re.compile(r"^-?(0x[0-9a-fA-F]+|\d+)$")


def _parse_int(token: str) -> int:
    """Parse a decimal or hex literal."""
    return int(token, 0)


def _strip_comment(line: str) -> str:
    """Remove ``#`` and ``//`` comments.

    A ``#`` immediately followed by a digit or minus sign is an ARM
    immediate (``#4``, ``#-1``), not a comment.
    """
    idx = line.find("//")
    if idx >= 0:
        line = line[:idx]
    idx = 0
    while True:
        idx = line.find("#", idx)
        if idx < 0:
            break
        following = line[idx + 1:idx + 2]
        if following.isdigit() or following == "-":
            idx += 1
            continue
        line = line[:idx]
        break
    return line.strip()


def _split_operands(text: str) -> list[str]:
    """Split an operand string on top-level commas.

    Commas inside ``[...]`` or ``(...)`` groups do not split, so ARM
    ``[r1, #4]`` stays one operand.
    """
    operands = []
    depth = 0
    current = []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return operands


def _parse_operand(token: str, symbols: dict[str, int], line_no: int):
    """Parse one operand into the normalised representation."""
    if _INT_RE.match(token):
        return _parse_int(token)
    if token.startswith("#"):
        return _parse_int(token[1:])
    if token.startswith("="):
        symbol = token[1:]
        if symbol not in symbols:
            raise AssemblyError(f"line {line_no}: unknown data symbol {symbol!r}")
        return symbols[symbol]

    mem = _MEM_RISCV_RE.match(token)
    if mem:
        offset, base, bang = mem.groups()
        return ("mem", _parse_int(offset), base, bang == "!")

    pre = _MEM_ARM_PRE_RE.match(token)
    if pre:
        base, offset = pre.groups()
        return ("mem", _parse_int(offset) if offset else 0, base, False)

    if _LABEL_RE.match(token):
        return token
    raise AssemblyError(f"line {line_no}: cannot parse operand {token!r}")


def _merge_arm_post_index(operands: list, line_no: int) -> list:
    """Fold ARM post-index syntax ``[rN], #imm`` into one mem operand.

    After generic parsing, ``ldr r0, [r1], #4`` yields operands
    ``["r0", ("mem", 0, "r1", False), 4]``; this folds the trailing
    immediate into a post-increment mem operand.
    """
    if (len(operands) >= 3
            and isinstance(operands[-2], tuple) and operands[-2][0] == "mem"
            and operands[-2][1] == 0
            and isinstance(operands[-1], int)):
        mem = operands[-2]
        return operands[:-2] + [("mem", operands[-1], mem[2], True)]
    return operands


def assemble(source: str, data_base: int = 0x1000_0000) -> Program:
    """Assemble a source string into a :class:`Program`.

    Args:
        source: assembly text in the dialect described above.
        data_base: default data-segment base when the ``.data``
            directive does not name one.

    Raises:
        AssemblyError: on any syntax error, duplicate or undefined
            label, or malformed directive.
    """
    # ---- pass 1: collect sections, labels and the data layout.
    data = DataImage(base_address=data_base)
    code_lines: list[tuple[int, str]] = []            # (line number, text)
    code_labels: dict[str, int] = {}
    section = ".text"
    pending_code_labels: list[str] = []

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue

        if line.startswith(".data"):
            section = ".data"
            parts = line.split()
            if len(parts) == 2:
                data.base_address = _parse_int(parts[1])
            elif len(parts) > 2:
                raise AssemblyError(f"line {line_no}: malformed .data directive")
            continue
        if line.startswith(".text"):
            section = ".text"
            continue

        # Peel off any leading labels (several may stack on one line).
        while True:
            match = re.match(r"^([\w.$]+):\s*(.*)$", line)
            if not match:
                break
            label, line = match.group(1), match.group(2).strip()
            if section == ".text":
                if label in code_labels or label in pending_code_labels:
                    raise AssemblyError(f"line {line_no}: duplicate label {label!r}")
                pending_code_labels.append(label)
            else:
                if label in data.symbols:
                    raise AssemblyError(f"line {line_no}: duplicate symbol {label!r}")
                data.symbols[label] = data.base_address + data.size
        if not line:
            continue

        if section == ".data":
            if line.startswith(".space"):
                count = _parse_int(line.split(maxsplit=1)[1])
                if count < 0:
                    raise AssemblyError(f"line {line_no}: negative .space")
                data.payload.extend(b"\x00" * count)
            elif line.startswith(".word"):
                body = line.split(maxsplit=1)
                if len(body) < 2:
                    raise AssemblyError(f"line {line_no}: .word needs values")
                for token in _split_operands(body[1]):
                    value = _parse_int(token)
                    data.payload.extend((value & 0xFFFFFFFF).to_bytes(4, "little"))
            else:
                raise AssemblyError(
                    f"line {line_no}: unknown data directive {line.split()[0]!r}"
                )
            continue

        # .text instruction: register pending labels at this index.
        for label in pending_code_labels:
            code_labels[label] = len(code_lines)
        pending_code_labels.clear()
        code_lines.append((line_no, line))

    if pending_code_labels:
        # Trailing labels point one past the last instruction (usable
        # as hardware-loop end markers).
        for label in pending_code_labels:
            code_labels[label] = len(code_lines)

    # ---- pass 2: parse instructions with the full symbol table known.
    instructions: list[Instruction] = []
    for line_no, text in code_lines:
        parts = text.split(maxsplit=1)
        mnemonic = parts[0].lower()
        raw_operands = _split_operands(parts[1]) if len(parts) == 2 else []
        operands = [_parse_operand(tok, data.symbols, line_no)
                    for tok in raw_operands]
        operands = _merge_arm_post_index(operands, line_no)
        instructions.append(Instruction(
            mnemonic=mnemonic,
            operands=tuple(operands),
            source_line=line_no,
            text=text,
        ))

    return Program(instructions, code_labels, data)
