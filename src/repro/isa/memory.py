"""Byte-addressed memory map with per-region wait states.

The simulated systems have simple flat maps:

* **nRF52832**: flash at ``0x0000_0000`` (cached, wait states) and RAM
  at ``0x2000_0000`` (zero wait states).
* **Mr. Wolf**: L2 at ``0x1C00_0000`` (SoC domain, slower from the
  cluster) and L1 TCDM at ``0x1000_0000`` (single cycle, banked).

Regions store little-endian bytes; loads/stores return the number of
extra wait-state cycles so the cores can charge memory timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MemoryMapError

__all__ = ["MemoryRegion", "MemoryMap", "mrwolf_memory_map", "nrf52_memory_map"]

# Canonical base addresses.
MRWOLF_L1_BASE = 0x1000_0000
MRWOLF_L2_BASE = 0x1C00_0000
NRF52_FLASH_BASE = 0x0000_0000
NRF52_RAM_BASE = 0x2000_0000


@dataclass
class MemoryRegion:
    """One contiguous memory region.

    Attributes:
        name: label used in errors and reports.
        base: first byte address.
        size: region length in bytes.
        read_wait_states: extra cycles charged per read.
        write_wait_states: extra cycles charged per write.
        num_banks: word-interleaved bank count (1 = unbanked); the
            cluster simulator uses this for conflict arbitration.
    """

    name: str
    base: int
    size: int
    read_wait_states: int = 0
    write_wait_states: int = 0
    num_banks: int = 1
    _data: bytearray = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise MemoryMapError(f"region {self.name!r} must have positive size")
        if self.base < 0:
            raise MemoryMapError(f"region {self.name!r} has a negative base")
        if self.num_banks < 1:
            raise MemoryMapError(f"region {self.name!r} needs >= 1 bank")
        if self._data is None:
            self._data = bytearray(self.size)

    def contains(self, address: int) -> bool:
        """Whether a byte address falls inside this region."""
        return self.base <= address < self.base + self.size

    @property
    def end(self) -> int:
        """One past the last byte address."""
        return self.base + self.size

    def bank_of(self, address: int) -> int:
        """Word-interleaved bank index of an address."""
        return ((address - self.base) >> 2) % self.num_banks


class MemoryMap:
    """A set of non-overlapping regions with typed accessors.

    Args:
        regions: the regions of the map (order irrelevant).
    """

    def __init__(self, regions: list[MemoryRegion]) -> None:
        if not regions:
            raise MemoryMapError("a memory map needs at least one region")
        ordered = sorted(regions, key=lambda r: r.base)
        for a, b in zip(ordered, ordered[1:]):
            if a.end > b.base:
                raise MemoryMapError(
                    f"regions {a.name!r} and {b.name!r} overlap"
                )
        self.regions = ordered

    def region_at(self, address: int) -> MemoryRegion:
        """The region containing ``address``."""
        for region in self.regions:
            if region.contains(address):
                return region
        raise MemoryMapError(f"address {address:#010x} is unmapped")

    def region_named(self, name: str) -> MemoryRegion:
        """Look up a region by name."""
        for region in self.regions:
            if region.name == name:
                return region
        raise MemoryMapError(f"no region named {name!r}")

    # -- typed accessors ---------------------------------------------------------
    # All return (value_or_None, wait_states).

    def load(self, address: int, size: int, signed: bool) -> tuple[int, int]:
        """Load ``size`` bytes little-endian; returns (value, wait states)."""
        region = self.region_at(address)
        if address + size > region.end:
            raise MemoryMapError(
                f"load of {size} bytes at {address:#010x} crosses region end"
            )
        offset = address - region.base
        raw = bytes(region._data[offset:offset + size])
        value = int.from_bytes(raw, "little", signed=signed)
        return value, region.read_wait_states

    def store(self, address: int, size: int, value: int) -> int:
        """Store ``size`` bytes little-endian; returns wait states."""
        region = self.region_at(address)
        if address + size > region.end:
            raise MemoryMapError(
                f"store of {size} bytes at {address:#010x} crosses region end"
            )
        offset = address - region.base
        mask = (1 << (8 * size)) - 1
        region._data[offset:offset + size] = (value & mask).to_bytes(size, "little")
        return region.write_wait_states

    def load_word(self, address: int) -> tuple[int, int]:
        """Load a signed 32-bit word."""
        return self.load(address, 4, signed=True)

    def store_word(self, address: int, value: int) -> int:
        """Store a 32-bit word."""
        return self.store(address, 4, value)

    # -- bulk helpers for the test/bench harnesses --------------------------------

    def write_words(self, address: int, values) -> None:
        """Write a sequence of 32-bit words starting at ``address``."""
        for i, value in enumerate(values):
            self.store(address + 4 * i, 4, int(value))

    def read_words(self, address: int, count: int) -> list[int]:
        """Read ``count`` signed 32-bit words starting at ``address``."""
        return [self.load(address + 4 * i, 4, signed=True)[0] for i in range(count)]


def mrwolf_memory_map(l1_wait_states: int = 0, l2_wait_states: int = 4,
                      l1_banks: int = 16) -> MemoryMap:
    """Mr. Wolf's cluster view: banked L1 TCDM plus slower L2."""
    return MemoryMap([
        MemoryRegion("l1", MRWOLF_L1_BASE, 64 * 1024,
                     read_wait_states=l1_wait_states,
                     write_wait_states=l1_wait_states, num_banks=l1_banks),
        MemoryRegion("l2", MRWOLF_L2_BASE, 512 * 1024,
                     read_wait_states=l2_wait_states,
                     write_wait_states=l2_wait_states),
    ])


def nrf52_memory_map(flash_wait_states: int = 2) -> MemoryMap:
    """The nRF52832's view: wait-stated flash plus zero-wait RAM."""
    return MemoryMap([
        MemoryRegion("flash", NRF52_FLASH_BASE, 512 * 1024,
                     read_wait_states=flash_wait_states,
                     write_wait_states=flash_wait_states),
        MemoryRegion("ram", NRF52_RAM_BASE, 64 * 1024),
    ])
