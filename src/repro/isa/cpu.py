"""Common core machinery: registers, dispatch, cycle accounting.

A :class:`Core` executes an assembled :class:`~repro.isa.program.Program`
against a :class:`~repro.isa.memory.MemoryMap`.  Subclasses declare
their register file and a handler per mnemonic; handlers mutate state
and return the instruction's cycle cost (memory wait states are added
by the load/store helpers).  Handlers that change control flow call
:meth:`Core.branch_to`; everything else falls through to ``pc + 1``.

The program counter is an instruction index.  Execution ends at a
``halt`` instruction or when the instruction budget runs out (which is
reported as an error — a real kernel must halt).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.isa.memory import MemoryMap
from repro.isa.program import Instruction, Program

__all__ = ["Core", "ExecutionResult", "to_signed32", "MASK32"]

MASK32 = 0xFFFFFFFF


def to_signed32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a signed integer."""
    value &= MASK32
    return value - (1 << 32) if value & 0x8000_0000 else value


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of a :meth:`Core.run`.

    Attributes:
        cycles: total cycles including memory wait states.
        instructions: dynamic instruction count.
        halted: whether execution reached a ``halt``.
    """

    cycles: int
    instructions: int
    halted: bool

    @property
    def cycles_per_instruction(self) -> float:
        """Average CPI of the run."""
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions


class Core:
    """Base simulator core.

    Args:
        program: the assembled program to execute.
        memory: the byte-addressed memory map (the program's data image
            is loaded into it on construction unless ``load_data`` is
            False, which the cluster uses to avoid reloading a shared
            image per core).
        core_id: identity exposed to software (``mhartid`` on RISC-V).

    Subclasses must define:

    * ``REGISTER_NAMES``: mapping from accepted register spellings to
      canonical register indices;
    * ``ZERO_REGISTER``: canonical index that always reads zero, or
      None;
    * handler methods named ``op_<mnemonic>`` (dots in mnemonics become
      underscores, e.g. ``p.mac`` -> ``op_p_mac``), each returning the
      cycle cost.
    """

    REGISTER_NAMES: dict[str, int] = {}
    ZERO_REGISTER: int | None = None
    NUM_REGISTERS = 32

    def __init__(self, program: Program, memory: MemoryMap,
                 core_id: int = 0, load_data: bool = True) -> None:
        self.program = program
        self.memory = memory
        self.core_id = core_id
        self.regs = [0] * self.NUM_REGISTERS
        self.pc = 0
        self.cycles = 0
        self.instruction_count = 0
        self.halted = False
        self._branched = False
        if load_data:
            program.load_data(memory)

    # -- register access -----------------------------------------------------------

    def reg_index(self, name) -> int:
        """Canonical register index for a spelling."""
        if not isinstance(name, str) or name not in self.REGISTER_NAMES:
            raise SimulationError(
                f"{type(self).__name__}: unknown register {name!r} "
                f"(line {self.current_instruction.source_line})"
            )
        return self.REGISTER_NAMES[name]

    def read_reg(self, name) -> int:
        """Read a register by spelling (signed 32-bit)."""
        return self.regs[self.reg_index(name)]

    def write_reg(self, name, value: int) -> None:
        """Write a register by spelling (wraps to signed 32-bit)."""
        idx = self.reg_index(name)
        if idx == self.ZERO_REGISTER:
            return
        self.regs[idx] = to_signed32(value)

    # -- memory helpers (charge wait states into self.cycles) -----------------------

    def mem_load(self, address: int, size: int, signed: bool) -> int:
        """Load from memory, charging region wait states."""
        value, waits = self.memory.load(address, size, signed)
        self.cycles += waits
        return value

    def mem_store(self, address: int, size: int, value: int) -> None:
        """Store to memory, charging region wait states."""
        self.cycles += self.memory.store(address, size, value)

    def resolve_mem_operand(self, operand) -> tuple[int, tuple]:
        """Decode a ("mem", offset, base, post) operand.

        Returns ``(effective_address, operand)``; with post-increment
        the effective address is the *pre*-update base (XpulpV2 and ARM
        post-index semantics agree on this).  Call
        :meth:`apply_post_increment` after the access.
        """
        if not (isinstance(operand, tuple) and operand[0] == "mem"):
            raise SimulationError(
                f"expected memory operand, got {operand!r} "
                f"(line {self.current_instruction.source_line})"
            )
        _, offset, base, post = operand
        base_value = self.read_reg(base)
        address = base_value if post else base_value + offset
        return address, operand

    def apply_post_increment(self, operand) -> None:
        """Advance the base register of a post-increment operand."""
        _, offset, base, post = operand
        if post:
            self.write_reg(base, self.read_reg(base) + offset)

    # -- control flow ----------------------------------------------------------------

    def branch_to(self, target) -> None:
        """Redirect execution to a label or instruction index."""
        index = target if isinstance(target, int) \
            else self.program.label_index(target)
        self.pc = index
        self._branched = True

    # -- execution ---------------------------------------------------------------------

    @property
    def current_instruction(self) -> Instruction:
        """The instruction at the current pc."""
        return self.program.instructions[self.pc]

    def dispatch(self, instruction: Instruction) -> int:
        """Execute one instruction; returns its cycle cost."""
        handler_name = "op_" + instruction.mnemonic.replace(".", "_")
        handler = getattr(self, handler_name, None)
        if handler is None:
            raise SimulationError(
                f"{type(self).__name__} does not implement "
                f"{instruction.mnemonic!r} (line {instruction.source_line})"
            )
        return handler(instruction.operands)

    def after_instruction(self) -> int:
        """Hook for subclasses (hardware loops); extra cycles returned.

        Called after each instruction with ``self.pc`` already holding
        the next instruction index.
        """
        return 0

    def step(self) -> None:
        """Fetch/execute one instruction."""
        if self.halted:
            return
        if not 0 <= self.pc < len(self.program):
            raise SimulationError(f"pc {self.pc} outside program")
        instruction = self.current_instruction
        self._branched = False
        cost = self.dispatch(instruction)
        self.cycles += cost
        self.instruction_count += 1
        if not self._branched:
            self.pc += 1
        self.cycles += self.after_instruction()

    def run(self, max_instructions: int = 20_000_000) -> ExecutionResult:
        """Run until ``halt`` or the instruction budget is exhausted."""
        while not self.halted:
            if self.instruction_count >= max_instructions:
                raise SimulationError(
                    f"instruction budget of {max_instructions} exhausted "
                    f"at pc {self.pc} ({self.current_instruction.text!r})"
                )
            self.step()
        return ExecutionResult(
            cycles=self.cycles,
            instructions=self.instruction_count,
            halted=self.halted,
        )

    # -- universal instructions ------------------------------------------------------

    def op_halt(self, operands) -> int:
        """Stop execution."""
        self.halted = True
        return 1

    def op_nop(self, operands) -> int:
        """Do nothing for a cycle."""
        return 1
