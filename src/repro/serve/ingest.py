"""Telemetry-to-scenario pipeline: fit device power traces into specs.

Real deployments stream per-device power telemetry — the INA219-style
record is one JSON object per line::

    {"t_s": 0.0,   "power_w": 0.00092, "event": "office"}
    {"t_s": 60.0,  "power_w": 0.00091, "event": "office"}
    {"t_s": 65.0,  "power_w": 0.00091, "event": "detection"}
    {"t_s": 120.0, "power_w": 0.00002, "event": "commute"}

where ``t_s`` is a non-decreasing device timestamp in seconds,
``power_w`` the measured *harvest intake at the battery*, and
``event`` a free-form tag (``""`` when untagged).  This module closes
the loop from such traces back into the simulator:

1. **Parse** (:func:`parse_records` / :func:`read_trace_file`) —
   strict validation, errors name the line number.
2. **Segment** (:func:`segment_records`) — consecutive runs of the
   same event tag become one piecewise-constant segment with a
   time-weighted mean power.  Records tagged with the *detection tag*
   are momentary load markers, not environment changes: they inherit
   the surrounding tag for segmentation and feed the load model
   instead.
3. **Fit** (:func:`fit_lux` / :func:`fit_scenario`) — each segment's
   mean intake is inverted through a registered harvester chain to the
   equivalent illuminance (bisection over the monotone lux → intake
   curve, thermal conditions held at the configured wrist defaults),
   yielding inline :class:`~repro.scenarios.spec.SegmentSpec` values;
   detection-tagged records fit a ``static_duty_cycle`` load model at
   the observed detections/minute.
4. **Register** (:func:`ingest_file` / :func:`write_scenario_file`) —
   the fitted :class:`~repro.scenarios.spec.ScenarioSpec` is written
   as a canonical-JSON scenario file, loadable by the existing
   :mod:`repro.scenarios.files` machinery (``repro simulate FILE``,
   ``repro sweep --from-json DIR``).

Everything here is a pure function of the input records and fit
parameters — ingesting the same trace twice yields byte-identical
scenario files, so ingested scenarios content-address cleanly in the
result store.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import SpecError
from repro.harvest.environment import LightingCondition, ThermalCondition
from repro.scenarios.registry import HARVESTERS
from repro.scenarios.spec import (
    PolicySpec,
    ScenarioSpec,
    SegmentSpec,
    SystemSpec,
    TimelineSpec,
    canonical_json_bytes,
    check_mapping_keys,
)

__all__ = [
    "TelemetryRecord",
    "SegmentEstimate",
    "parse_records",
    "records_from_dicts",
    "read_trace_file",
    "segment_records",
    "fit_lux",
    "fit_scenario",
    "write_scenario_file",
    "ingest_file",
    "DEFAULT_DETECTION_TAG",
]

#: Event tag marking one detection (inference) in the stream.
DEFAULT_DETECTION_TAG = "detection"

#: Upper bracket of the lux inversion — bright outdoor sun (the
#: paper's Table I tops out at 30 klx; headroom for direct summer sun).
MAX_FIT_LUX = 120_000.0

_FIT_ITERATIONS = 60


@dataclass(frozen=True)
class TelemetryRecord:
    """One telemetry sample: timestamp, battery intake power, event tag.

    Attributes:
        t_s: device timestamp in seconds (non-decreasing per trace).
        power_w: measured harvest intake at the battery, >= 0.
        event: free-form tag ("" when untagged).
    """

    t_s: float
    power_w: float
    event: str = ""

    def __post_init__(self) -> None:
        for attr in ("t_s", "power_w"):
            value = getattr(self, attr)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecError(
                    f"telemetry {attr} must be a number, got {value!r}")
            if value != value or value in (float("inf"), float("-inf")):
                raise SpecError(
                    f"telemetry {attr} must be finite, got {value!r}")
        if self.t_s < 0:
            raise SpecError(f"telemetry t_s cannot be negative: {self.t_s}")
        if self.power_w < 0:
            raise SpecError(
                f"telemetry power_w cannot be negative: {self.power_w}")
        if not isinstance(self.event, str):
            raise SpecError(
                f"telemetry event must be a string, got {self.event!r}")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TelemetryRecord":
        data = check_mapping_keys("TelemetryRecord", data,
                                  {"t_s", "power_w", "event"},
                                  required={"t_s", "power_w"})
        return cls(t_s=data["t_s"], power_w=data["power_w"],
                   event=data.get("event", ""))

    def to_dict(self) -> dict[str, Any]:
        return {"t_s": self.t_s, "power_w": self.power_w,
                "event": self.event}


@dataclass(frozen=True)
class SegmentEstimate:
    """One fitted run of samples: duration, mean intake, tag, count."""

    duration_s: float
    mean_power_w: float
    label: str
    samples: int


def parse_records(lines: Iterable[str],
                  source: str = "<trace>") -> list[TelemetryRecord]:
    """Validated records from JSONL text, blank lines ignored.

    Every failure — invalid JSON, non-object line, unknown/missing
    keys, bad values, timestamps running backwards — raises
    :class:`~repro.errors.SpecError` naming ``source`` and the
    1-based line number, so a gigabyte trace fails with a pointer
    instead of a shrug.
    """
    records: list[TelemetryRecord] = []
    for number, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(
                f"{source}:{number}: invalid JSON record: {exc}") from None
        if not isinstance(payload, dict):
            raise SpecError(
                f"{source}:{number}: telemetry record must be a JSON "
                f"object, got {type(payload).__name__}")
        try:
            record = TelemetryRecord.from_dict(payload)
        except SpecError as exc:
            raise SpecError(f"{source}:{number}: {exc}") from None
        if records and record.t_s < records[-1].t_s:
            raise SpecError(
                f"{source}:{number}: timestamps must be non-decreasing "
                f"({record.t_s} after {records[-1].t_s})")
        records.append(record)
    if len(records) < 2:
        raise SpecError(
            f"{source}: a telemetry trace needs at least 2 records to "
            f"establish durations, got {len(records)}")
    return records


def records_from_dicts(items: Any,
                       source: str = "<records>") -> list[TelemetryRecord]:
    """Validated records from already-parsed JSON objects.

    The in-memory twin of :func:`parse_records` — the ``/ingest`` HTTP
    endpoint ships records as a JSON array rather than JSONL lines.
    Same contract: per-record errors name ``source`` and the 1-based
    position, timestamps must be non-decreasing, and a trace needs at
    least 2 records.
    """
    if not isinstance(items, Sequence) or isinstance(items, (str, bytes)):
        raise SpecError(f"{source}: telemetry records must be a JSON array "
                        f"of objects, got {type(items).__name__}")
    records: list[TelemetryRecord] = []
    for number, payload in enumerate(items, start=1):
        if not isinstance(payload, Mapping):
            raise SpecError(
                f"{source}[{number}]: telemetry record must be a JSON "
                f"object, got {type(payload).__name__}")
        try:
            record = TelemetryRecord.from_dict(payload)
        except SpecError as exc:
            raise SpecError(f"{source}[{number}]: {exc}") from None
        if records and record.t_s < records[-1].t_s:
            raise SpecError(
                f"{source}[{number}]: timestamps must be non-decreasing "
                f"({record.t_s} after {records[-1].t_s})")
        records.append(record)
    if len(records) < 2:
        raise SpecError(
            f"{source}: a telemetry trace needs at least 2 records to "
            f"establish durations, got {len(records)}")
    return records


def read_trace_file(path: str | Path) -> list[TelemetryRecord]:
    """Records of one JSONL trace file on disk."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SpecError(f"cannot read trace file {path}: {exc}") from None
    return parse_records(text.splitlines(), source=str(path))


def _record_durations(records: Sequence[TelemetryRecord]) -> list[float]:
    """How long each sample's conditions hold.

    Sample *i* holds until sample *i+1* arrives; the final sample —
    which has no successor — holds for the median positive gap of the
    trace, the best available estimate of the stream's cadence.
    """
    gaps = [b.t_s - a.t_s for a, b in zip(records, records[1:])]
    positive = sorted(gap for gap in gaps if gap > 0)
    if not positive:
        raise SpecError("telemetry trace spans zero time "
                        "(all timestamps equal)")
    tail = positive[len(positive) // 2]
    return gaps + [tail]


def segment_records(records: Sequence[TelemetryRecord],
                    detection_tag: str = DEFAULT_DETECTION_TAG,
                    ) -> list[SegmentEstimate]:
    """Runs of equal event tags, reduced to duration + mean power.

    Detection-tagged records inherit the surrounding environment tag
    (a detection is a load event *inside* an environment, not an
    environment of its own) — their power and duration still count
    toward the segment they sit in.  Zero-duration samples (repeated
    timestamps) contribute no weight; a whole segment of them is
    rejected.
    """
    durations = _record_durations(records)
    segments: list[SegmentEstimate] = []
    current_tag: str | None = None
    run: list[tuple[TelemetryRecord, float]] = []

    def _flush() -> None:
        if not run:
            return
        total = sum(duration for _, duration in run)
        if total <= 0:
            raise SpecError(
                f"telemetry segment {current_tag!r} spans zero time")
        mean = sum(record.power_w * duration
                   for record, duration in run) / total
        segments.append(SegmentEstimate(
            duration_s=total, mean_power_w=mean,
            label=current_tag or "", samples=len(run)))

    for record, duration in zip(records, durations):
        tag = record.event
        if tag == detection_tag:
            tag = current_tag if current_tag is not None else ""
        if current_tag is None:
            current_tag = tag
        elif tag != current_tag:
            _flush()
            run = []
            current_tag = tag
        run.append((record, duration))
    _flush()
    return segments


def detections_per_minute(records: Sequence[TelemetryRecord],
                          detection_tag: str = DEFAULT_DETECTION_TAG,
                          ) -> float:
    """Observed detection rate over the trace span, per minute."""
    span_s = sum(_record_durations(records))
    count = sum(1 for record in records if record.event == detection_tag)
    return count / (span_s / 60.0)


def fit_lux(target_w: float, harvester: Any,
            thermal: ThermalCondition) -> float:
    """The illuminance at which ``harvester`` intake matches ``target_w``.

    Bisection over the monotone lux → battery-intake curve with the
    thermal conditions held fixed.  Targets at or below the TEG-only
    floor fit to darkness (0 lx); targets beyond :data:`MAX_FIT_LUX`
    clamp to it (the trace out-harvests the model's calibration range
    — the fit saturates rather than extrapolating).
    """
    if target_w < 0:
        raise SpecError(f"cannot fit a negative intake: {target_w}")
    floor = harvester.battery_intake_w(LightingCondition(0.0), thermal)
    if target_w <= floor:
        return 0.0
    ceiling = harvester.battery_intake_w(
        LightingCondition(MAX_FIT_LUX), thermal)
    if target_w >= ceiling:
        return MAX_FIT_LUX
    low, high = 0.0, MAX_FIT_LUX
    for _ in range(_FIT_ITERATIONS):
        mid = (low + high) / 2.0
        if harvester.battery_intake_w(LightingCondition(mid),
                                      thermal) < target_w:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


def fit_scenario(records: Sequence[TelemetryRecord],
                 name: str,
                 harvester: str = "calibrated_dual",
                 ambient_c: float = 22.0,
                 skin_c: float = 32.0,
                 detection_tag: str = DEFAULT_DETECTION_TAG,
                 step_s: float = 60.0,
                 description: str = "") -> ScenarioSpec:
    """A runnable :class:`ScenarioSpec` fitted from a telemetry trace.

    The environment timeline comes from inverting each segment's mean
    intake to an equivalent illuminance under ``harvester`` (thermal
    conditions fixed at ``ambient_c``/``skin_c``); the load model is a
    ``static_duty_cycle`` policy at the observed detection rate.  The
    returned spec is self-contained (inline segments, registered
    component names only), so it runs on every backend and serializes
    canonically.
    """
    chain = HARVESTERS.get(harvester)()
    thermal = ThermalCondition(ambient_c=ambient_c, skin_c=skin_c)
    estimates = segment_records(records, detection_tag=detection_tag)
    segments = tuple(
        SegmentSpec(
            duration_s=estimate.duration_s,
            lux=round(fit_lux(estimate.mean_power_w, chain, thermal), 3),
            ambient_c=ambient_c,
            skin_c=skin_c,
            label=estimate.label,
        )
        for estimate in estimates
    )
    rate = round(detections_per_minute(records, detection_tag), 6)
    system = SystemSpec(
        harvester=harvester,
        policy=PolicySpec("static_duty_cycle",
                          {"rate_per_min": rate} if rate > 0 else {}),
    )
    return ScenarioSpec(
        name=name,
        timeline=TimelineSpec(segments=segments),
        system=system,
        step_s=step_s,
        description=description or (
            f"ingested telemetry trace: {len(records)} samples, "
            f"{len(segments)} segment(s)"),
        trace="none",
    )


def write_scenario_file(spec: ScenarioSpec, out_dir: str | Path) -> Path:
    """Register ``spec`` on disk as ``out_dir/<name>.json``.

    The file is exactly one canonical-JSON ``ScenarioSpec.to_dict``
    payload — what :func:`repro.scenarios.files.load_scenario_file`
    and ``repro sweep --from-json`` consume — so ingesting the same
    trace twice writes byte-identical files.
    """
    directory = Path(out_dir)
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise SpecError(
            f"cannot create scenario directory {directory}: {exc}") from None
    path = directory / f"{spec.name}.json"
    try:
        path.write_bytes(canonical_json_bytes(spec.to_dict()) + b"\n")
    except OSError as exc:
        raise SpecError(f"cannot write scenario file {path}: {exc}") from None
    return path


def ingest_file(trace_path: str | Path, name: str,
                out_dir: str | Path | None = None,
                **fit_kwargs: Any) -> tuple[ScenarioSpec, Path | None]:
    """The whole pipeline: trace file in, (spec, scenario file) out.

    ``fit_kwargs`` pass through to :func:`fit_scenario`.  With
    ``out_dir`` the fitted scenario is also registered on disk; the
    returned path is ``None`` otherwise.
    """
    records = read_trace_file(trace_path)
    spec = fit_scenario(records, name, **fit_kwargs)
    written = None if out_dir is None else write_scenario_file(spec, out_dir)
    return spec, written
