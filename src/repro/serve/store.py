"""Content-addressed result store: canonical JSON keyed by spec digest.

Specs are frozen and JSON-round-trippable, so a canonical-JSON SHA-256
(:func:`repro.scenarios.spec.spec_digest`) of a *normalized* request
is a complete content address for its result: identical resubmissions
— across processes, machines and runs — hash to the same key and can
be served from disk without simulating.  The store holds exactly the
canonical result bytes (:func:`~repro.scenarios.spec.canonical_json_bytes`
output), so a cache hit is bitwise-identical to the response computed
on the original miss.

Three access outcomes, all counted in :class:`StoreStats`:

* **hit** — the digest's file existed and held valid JSON; the stored
  bytes are returned untouched.
* **miss** — nothing stored (or a corrupted entry was evicted); the
  caller's compute function runs and its bytes are persisted.
* **coalesced** — another thread was already computing the same
  digest; this request waited on that single flight and shares its
  bytes (in-flight deduplication: *n* concurrent identical requests
  cost one simulation).

Corrupted entries (truncated writes, hand-edited files) are detected
by re-parsing on read, counted (``corrupt``), evicted and recomputed —
a bad cache can cost time, never wrong answers.  Writes are atomic
(temp file + ``os.replace``) so a crashed server never leaves a
half-written entry that later reads as valid JSON.

The store is thread-safe; the asyncio app calls it from executor
threads so the single-flight map also deduplicates concurrent HTTP
requests.
"""

from __future__ import annotations

import os
import json
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.errors import SpecError
from repro.scenarios.spec import spec_digest

__all__ = ["ResultStore", "StoreStats", "request_digest"]

#: Access outcomes fetch_or_compute can report.
CACHE_STATES = ("hit", "miss", "coalesced")


def request_digest(kind: str, payload: Any) -> str:
    """The store key for one request: digest of ``{kind, request}``.

    ``kind`` namespaces the endpoint ("fleet_run", "search", ...) so
    two request families whose payloads could ever collide never share
    an address; ``payload`` must be the *normalized* request — specs
    round-tripped through ``from_dict``/``to_dict`` — so key order and
    omitted defaults in the client's JSON do not split the cache.
    """
    if not kind:
        raise SpecError("request digest needs a non-empty kind")
    return spec_digest({"kind": kind, "request": payload})


@dataclass
class StoreStats:
    """Counters one :class:`ResultStore` accumulates over its lifetime.

    Attributes:
        hits: requests served from a stored entry.
        misses: requests that ran the compute function.
        coalesced: requests that joined another request's in-flight
            computation instead of starting their own.
        corrupt: stored entries that failed JSON validation and were
            evicted (each also counts toward the miss that recomputed
            it).
        entries_written: successful :meth:`ResultStore.put` calls.
        evicted: entries removed by :meth:`ResultStore.gc`.
        evicted_bytes: total size of those removed entries.
    """

    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    corrupt: int = 0
    entries_written: int = 0
    evicted: int = 0
    evicted_bytes: int = 0

    def to_dict(self) -> dict[str, Any]:
        requests = self.hits + self.misses + self.coalesced
        return {
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "corrupt": self.corrupt,
            "entries_written": self.entries_written,
            "evicted": self.evicted,
            "evicted_bytes": self.evicted_bytes,
            "requests": requests,
            "hit_rate": round(self.hits / requests, 4) if requests else 0.0,
        }


@dataclass
class _Flight:
    """One in-flight computation: its future plus a joiner count."""

    future: Future = field(default_factory=Future)
    joiners: int = 0


class ResultStore:
    """Disk cache of canonical result JSON, addressed by content digest.

    Args:
        root: directory holding the entries (created if missing).
            Layout is ``root/<digest[:2]>/<digest>.json`` — two-level
            fan-out so a million-entry store never puts a million
            files in one directory.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise SpecError(
                f"cannot create result store at {self.root}: {exc}") from None
        self.stats = StoreStats()
        self._lock = threading.Lock()
        self._inflight: dict[str, _Flight] = {}

    def path_for(self, digest: str) -> Path:
        """Where the entry for ``digest`` lives (whether or not it exists)."""
        if not digest or any(c not in "0123456789abcdef" for c in digest):
            raise SpecError(f"malformed store digest {digest!r}")
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> bytes | None:
        """The stored bytes for ``digest``, or ``None`` if absent/corrupt.

        Does *not* touch the hit/miss counters — bookkeeping belongs
        to :meth:`fetch_or_compute`, so a manual inspection never
        skews the serving stats.  Corrupt entries are evicted here
        (and counted) so the next fetch recomputes cleanly.
        """
        path = self.path_for(digest)
        try:
            payload = path.read_bytes()
        except OSError:
            return None
        try:
            json.loads(payload)
        except ValueError:
            with self._lock:
                self.stats.corrupt += 1
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing eviction is benign
                pass
            return None
        try:
            # Touch on hit: gc() evicts least-recently-*used*, not
            # least-recently-written, so a hot entry survives.
            os.utime(path)
        except OSError:  # pragma: no cover - racing eviction is benign
            pass
        return payload

    def put(self, digest: str, payload: bytes) -> None:
        """Persist ``payload`` under ``digest``, atomically."""
        try:
            json.loads(payload)
        except ValueError as exc:
            raise SpecError(
                f"refusing to store non-JSON payload for {digest[:12]}…: "
                f"{exc}") from None
        path = self.path_for(digest)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp-{threading.get_ident()}")
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        except OSError as exc:
            raise SpecError(f"cannot write store entry {path}: {exc}") from None
        with self._lock:
            self.stats.entries_written += 1

    def fetch_or_compute(self, digest: str,
                         compute: Callable[[], bytes],
                         ) -> tuple[bytes, str]:
        """Serve ``digest`` from disk, a shared flight, or ``compute()``.

        Returns ``(payload, state)`` with ``state`` one of ``"hit"``
        (stored bytes returned untouched), ``"coalesced"`` (waited on
        another thread computing the same digest) or ``"miss"``
        (``compute()`` ran here; its bytes were persisted).  A failing
        ``compute`` propagates to the owner *and* every joiner, and
        leaves nothing stored.
        """
        payload = self.get(digest)
        if payload is not None:
            with self._lock:
                self.stats.hits += 1
            return payload, "hit"
        with self._lock:
            flight = self._inflight.get(digest)
            if flight is None:
                flight = _Flight()
                self._inflight[digest] = flight
                owner = True
            else:
                flight.joiners += 1
                owner = False
        if not owner:
            payload = flight.future.result()
            with self._lock:
                self.stats.coalesced += 1
            return payload, "coalesced"
        try:
            payload = compute()
            self.put(digest, payload)
        except BaseException as exc:
            flight.future.set_exception(exc)
            # A Future whose exception is never retrieved warns at GC;
            # with zero joiners nobody else will ever .result() it.
            if flight.joiners == 0:
                flight.future.exception()
            raise
        finally:
            with self._lock:
                self._inflight.pop(digest, None)
        flight.future.set_result(payload)
        with self._lock:
            self.stats.misses += 1
        return payload, "miss"

    def gc(self, max_bytes: int) -> dict[str, Any]:
        """Evict least-recently-used entries until the store fits.

        Entries are ranked by modification time, which :meth:`get`
        refreshes on every hit — so this is LRU over *accesses*, not
        writes.  Eviction is size-driven only: ``max_bytes`` is the
        byte budget the surviving entries must fit in (0 empties the
        store).  Counted in ``stats.evicted`` / ``stats.evicted_bytes``
        and summarised in the returned dict.
        """
        if isinstance(max_bytes, bool) or not isinstance(max_bytes, int):
            raise SpecError(
                f"max_bytes must be an integer, got {max_bytes!r}")
        if max_bytes < 0:
            raise SpecError(
                f"max_bytes must be non-negative, got {max_bytes}")
        entries = []
        for path in self.root.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - racing eviction is benign
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort(key=lambda entry: entry[0])
        total = sum(size for _, size, _ in entries)
        bytes_before = total
        evicted = 0
        evicted_bytes = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing eviction is benign
                continue
            total -= size
            evicted += 1
            evicted_bytes += size
        with self._lock:
            self.stats.evicted += evicted
            self.stats.evicted_bytes += evicted_bytes
        return {
            "entries_before": len(entries),
            "entries_after": len(entries) - evicted,
            "bytes_before": bytes_before,
            "bytes_after": total,
            "evicted": evicted,
            "evicted_bytes": evicted_bytes,
            "max_bytes": max_bytes,
        }

    @property
    def inflight(self) -> int:
        """How many distinct digests are being computed right now."""
        with self._lock:
            return len(self._inflight)

    def __len__(self) -> int:
        """Entries currently on disk (walks the store — diagnostics)."""
        return sum(1 for _ in self.root.glob("*/*.json"))
