"""Asyncio HTTP/1.1 front-end for :class:`~repro.serve.handlers.ServeService`.

Pure stdlib — ``asyncio.start_server`` accepts connections, a small
hand-rolled HTTP/1.1 parser reads one request per connection
(``Connection: close`` semantics), and the simulation work runs in a
thread-pool executor so the event loop stays responsive while a fleet
sweeps.  Concurrent identical requests reach the store from separate
executor threads and coalesce onto one computation
(:meth:`~repro.serve.store.ResultStore.fetch_or_compute`).

Three ways to run it:

* :func:`serve_forever` — the blocking entry point behind
  ``repro serve``;
* :class:`ServerThread` — a context manager that runs the whole stack
  on a background thread and exposes the bound port; what the tests,
  the benchmark and the smoke check use;
* :func:`run_smoke` — an end-to-end self-check (start server, submit a
  tiny fleet twice, assert the resubmission is a bitwise-identical
  cache hit) behind ``repro serve --smoke`` and the CI smoke job.

Responses carry ``X-Repro-Cache: hit|miss|coalesced`` on cacheable
endpoints so clients (and the smoke check) can observe the store
without trusting timing.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Mapping

from repro.errors import SpecError
from repro.serve.handlers import ServeResponse, ServeService
from repro.serve.store import ResultStore

__all__ = ["ReproServer", "ServerThread", "http_request", "run_smoke",
           "serve_forever"]

#: Request bodies above this are rejected with 413 before parsing.
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error", 504: "Gateway Timeout"}


def _render(response: ServeResponse) -> bytes:
    """One full HTTP/1.1 response, headers + body."""
    reason = _REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(response.body)}"]
    if response.cache:
        head.append(f"X-Repro-Cache: {response.cache}")
    head.append("Connection: close")
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + response.body


class ReproServer:
    """The asyncio server: owns the listening socket and the executor.

    Args:
        service: the transport-free request handler.
        host / port: bind address; port ``0`` picks a free ephemeral
            port (read it back from :attr:`port` after :meth:`start`).
        request_workers: executor threads handling requests — the
            concurrency ceiling for simultaneous simulations (requests
            beyond it queue; identical ones coalesce in the store).
        request_timeout_s: wall-clock ceiling per request; a request
            still running after this long gets a 504 JSON error (the
            worker thread finishes in the background — its result may
            still land in the store for the retry to hit).  ``None``
            (the default) means no ceiling.  The same ceiling bounds
            the shutdown drain: :meth:`close` stops accepting, then
            waits up to this long for accepted requests to finish
            instead of dropping them mid-computation.
    """

    def __init__(self, service: ServeService, host: str = "127.0.0.1",
                 port: int = 0, request_workers: int = 8,
                 request_timeout_s: float | None = None) -> None:
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise SpecError(
                f"request timeout must be positive, got {request_timeout_s}")
        self.service = service
        self.host = host
        self.request_timeout_s = request_timeout_s
        self._requested_port = port
        self._server: asyncio.base_events.Server | None = None
        self._inflight: set[asyncio.Task] = set()
        self._executor = ThreadPoolExecutor(
            max_workers=request_workers,
            thread_name_prefix="repro-serve")

    @property
    def port(self) -> int:
        """The bound port (only meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise SpecError("server is not listening yet")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port)

    async def close(self) -> None:
        """Stop accepting, drain in-flight requests, then tear down.

        Accepted requests keep running for up to ``request_timeout_s``
        (unbounded when no timeout is configured — matching the
        per-request ceiling) so a shutdown never drops a simulation
        mid-computation; each request that finishes during the drain
        is counted under ``/stats`` ``"transport"``
        ``"drained_at_close"``.  Only then is the executor torn down,
        cancelling whatever the drain deadline left behind.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = {task for task in self._inflight if not task.done()}
        if pending:
            done, _ = await asyncio.wait(pending,
                                         timeout=self.request_timeout_s)
            self.service.transport["drained_at_close"] += len(done)
        self._executor.shutdown(wait=False, cancel_futures=True)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- one connection = one request ---------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            # Tracked so close() can drain accepted requests instead
            # of dropping them mid-computation.
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)
        try:
            response = await self._read_and_dispatch(reader)
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.LimitOverrunError):
            # Client went away (or sent an unframeable request) before
            # we had a response: nothing to write, count it and move on
            # — a flaky client must never produce traceback spam.
            self.service.transport["client_disconnects"] += 1
            response = None
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            response = ServeResponse(
                status=500,
                body=json.dumps({"error": f"internal error: {exc}"})
                .encode("ascii", "replace") + b"\n")
        try:
            if response is not None:
                writer.write(_render(response))
                await writer.drain()
        except (ConnectionError, RuntimeError):
            # Hung up mid-response (after the simulation ran).
            self.service.transport["client_disconnects"] += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_and_dispatch(
            self, reader: asyncio.StreamReader) -> ServeResponse:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ConnectionError("empty request")
        parts = request_line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            return ServeResponse(
                status=400,
                body=json.dumps({"error": "malformed request line"})
                .encode("ascii") + b"\n")
        method, target = parts[0].upper(), parts[1]
        path = target.split("?", 1)[0]

        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return ServeResponse(
                        status=400,
                        body=json.dumps({"error": "bad Content-Length"})
                        .encode("ascii") + b"\n")
        if content_length > MAX_BODY_BYTES:
            return ServeResponse(
                status=413,
                body=json.dumps({"error": "request body too large"})
                .encode("ascii") + b"\n")

        body: Mapping[str, Any] | None = None
        if content_length > 0:
            raw = await reader.readexactly(content_length)
            try:
                parsed = json.loads(raw)
            except ValueError as exc:
                return ServeResponse(
                    status=400,
                    body=json.dumps({"error": f"invalid JSON body: {exc}"})
                    .encode("ascii", "replace") + b"\n")
            body = parsed if isinstance(parsed, Mapping) else None
            if body is None and method == "POST":
                return ServeResponse(
                    status=400,
                    body=json.dumps(
                        {"error": "request body must be a JSON object"})
                    .encode("ascii") + b"\n")

        # Simulations can take seconds; keep the loop free to accept
        # (and coalesce) concurrent requests while they run.
        loop = asyncio.get_running_loop()
        work = loop.run_in_executor(
            self._executor, self.service.handle, method, path, body)
        if self.request_timeout_s is None:
            return await work
        try:
            return await asyncio.wait_for(work, self.request_timeout_s)
        except TimeoutError:
            self.service.transport["timeouts"] += 1
            return ServeResponse(
                status=504,
                body=json.dumps(
                    {"error": f"request timed out after "
                              f"{self.request_timeout_s:g} s"})
                .encode("ascii") + b"\n")


class ServerThread:
    """A live server on a background thread, for tests and benchmarks.

    ::

        with ServerThread(service) as server:
            status, headers, body = http_request(
                "127.0.0.1", server.port, "GET", "/health")

    The context manager owns the event loop end to end: entering
    starts the loop thread and waits until the socket is bound;
    leaving closes the server and joins the thread.
    """

    def __init__(self, service: ServeService, host: str = "127.0.0.1",
                 port: int = 0, request_workers: int = 8,
                 request_timeout_s: float | None = None) -> None:
        self.server = ReproServer(service, host=host, port=port,
                                  request_workers=request_workers,
                                  request_timeout_s=request_timeout_s)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-loop")
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind failures to __enter__
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.close())
            self._loop.close()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise SpecError(
                f"serve failed to start: {self._startup_error}")
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port


def http_request(host: str, port: int, method: str, path: str,
                 payload: Any = None, timeout: float = 120.0,
                 ) -> tuple[int, dict[str, str], bytes]:
    """One request against a running server, via :mod:`http.client`.

    Returns ``(status, headers, body)`` with header names lowercased —
    ``headers.get("x-repro-cache")`` reads the cache outcome.
    """
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return (response.status,
                {name.lower(): value for name, value in
                 response.getheaders()},
                response.read())
    finally:
        connection.close()


def serve_forever(store_root: str, host: str = "127.0.0.1",
                  port: int = 8751, workers: int = 4,
                  backend: str = "thread",
                  request_timeout_s: float | None = None,
                  ) -> None:  # pragma: no cover
    """Blocking entry point behind ``repro serve``."""
    service = ServeService(ResultStore(store_root), workers=workers,
                           backend=backend)
    server = ReproServer(service, host=host, port=port,
                         request_timeout_s=request_timeout_s)

    async def _main() -> None:
        await server.start()
        bound = server.port
        print(f"repro serve: listening on http://{host}:{bound} "
              f"(store {store_root}, backend {backend}, "
              f"workers {workers})", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("repro serve: stopped", flush=True)


def run_smoke(store_root: str, workers: int = 2,
              backend: str = "thread") -> dict[str, Any]:
    """End-to-end self-check: tiny fleet, twice, second must be a hit.

    Starts a real server on an ephemeral port, POSTs one small
    ``/fleet/run`` request twice, and asserts the resubmission is
    served from the store with bitwise-identical bytes.  Raises
    :class:`~repro.errors.SpecError` on any deviation; returns a small
    summary dict on success (what ``repro serve --smoke`` prints).
    """
    request = {"spec": {"name": "smoke", "base_scenario":
                        "sunny_office_worker", "n_wearers": 3,
                        "horizon_days": 1, "seed": 7}}
    service = ServeService(ResultStore(store_root), workers=workers,
                           backend=backend)
    with ServerThread(service) as server:
        status, _, health = http_request(server.host, server.port,
                                         "GET", "/health")
        if status != 200 or json.loads(health)["status"] != "ok":
            raise SpecError(f"smoke: /health returned {status}")
        first = http_request(server.host, server.port, "POST",
                             "/fleet/run", request)
        second = http_request(server.host, server.port, "POST",
                              "/fleet/run", request)
        for label, (code, headers, _) in (("first", first),
                                          ("second", second)):
            if code != 200:
                raise SpecError(f"smoke: {label} request returned {code}")
        if first[1].get("x-repro-cache") != "miss":
            raise SpecError("smoke: first request was not a cache miss "
                            f"({first[1].get('x-repro-cache')!r})")
        if second[1].get("x-repro-cache") != "hit":
            raise SpecError("smoke: resubmission was not a cache hit "
                            f"({second[1].get('x-repro-cache')!r})")
        if first[2] != second[2]:
            raise SpecError(
                "smoke: cache hit bytes differ from the original result")
        _, _, stats = http_request(server.host, server.port,
                                   "GET", "/stats")
    store_stats = json.loads(stats)["store"]
    return {
        "ok": True,
        "cache": [first[1]["x-repro-cache"], second[1]["x-repro-cache"]],
        "bitwise_identical": True,
        "hits": store_stats["hits"],
        "misses": store_stats["misses"],
    }
