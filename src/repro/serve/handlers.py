"""The serving logic behind each HTTP endpoint, transport-free.

:class:`ServeService` is the whole request/response contract of the
fleet service with no sockets in sight: ``handle(method, path, body)``
returns a :class:`ServeResponse` (status, canonical JSON bytes, cache
state).  The asyncio app (:mod:`repro.serve.app`) is a thin HTTP/1.1
skin over this class, and tests can drive the full routing, caching
and error behaviour without opening a port.

Every simulation endpoint follows the same shape:

1. **normalize** — parse the JSON body into frozen specs
   (``ScenarioSpec.from_dict`` / ``FleetSpec.from_dict`` /
   :func:`~repro.policies.grid.grids_from_mapping`), so key order,
   omitted defaults and library-name-vs-inline-spec differences in the
   client's JSON cannot split the cache;
2. **address** — :func:`~repro.serve.store.request_digest` of the
   normalized request;
3. **serve** — :meth:`~repro.serve.store.ResultStore.fetch_or_compute`
   either returns the stored canonical bytes (bitwise-identical to the
   original response) or runs the simulation on the existing
   :class:`~repro.scenarios.runner.ScenarioRunner` /
   :class:`~repro.fleet.runner.FleetRunner` backends and persists the
   result.

User errors (:class:`~repro.errors.ReproError`) become 400 responses
carrying ``{"error": ...}``; unknown paths 404; wrong methods 405.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import ReproError, SpecError
from repro.fleet.runner import FleetRunner
from repro.fleet.spec import FleetSpec
from repro.policies.grid import expand_grids, grids_from_mapping
from repro.scenarios.library import get_scenario, scenario_names
from repro.scenarios.runner import ScenarioRunner, run_scenario
from repro.scenarios.spec import (
    ScenarioSpec,
    canonical_json_bytes,
    check_mapping_keys,
)
from repro.serve.ingest import fit_scenario, records_from_dicts
from repro.serve.store import ResultStore, request_digest

__all__ = ["ServeService", "ServeResponse"]


@dataclass(frozen=True)
class ServeResponse:
    """One finished request: HTTP status, canonical body, cache state.

    ``cache`` is ``"hit"``/``"miss"``/``"coalesced"`` for cacheable
    endpoints and ``""`` for everything else (health, stats, errors);
    the HTTP layer surfaces it as the ``X-Repro-Cache`` header.
    """

    status: int
    body: bytes
    cache: str = ""


def _json_response(payload: Any, status: int = 200,
                   cache: str = "") -> ServeResponse:
    return ServeResponse(status=status,
                         body=canonical_json_bytes(payload) + b"\n",
                         cache=cache)


class ServeService:
    """Routes requests to the simulation backends through the store.

    Args:
        store: the content-addressed :class:`ResultStore` (or a path
            to create one at).
        workers: worker count for the underlying runners.
        backend: sweep backend executing the simulations — results are
            backend-independent, so this only changes latency.
            ``"process"`` rides the process-wide persistent pool
            (:func:`repro.pool.get_shared_pool`): the workers are
            spawned once for the service's lifetime and reused across
            every request, and ``/stats`` exposes their counters under
            ``"pool"``.
    """

    def __init__(self, store: ResultStore | str, workers: int = 4,
                 backend: str = "thread") -> None:
        self.store = store if isinstance(store, ResultStore) \
            else ResultStore(store)
        self.runner = ScenarioRunner(workers=workers, backend=backend)
        self.fleet_runner = FleetRunner(workers=workers, backend=backend)
        # Transport-layer counters; the HTTP front-end increments these
        # (request timeouts, clients hanging up mid-request, in-flight
        # requests drained at shutdown) and /stats surfaces them.
        self.transport = {"timeouts": 0, "client_disconnects": 0,
                          "drained_at_close": 0}
        self._routes: dict[str, tuple[str, Callable[..., ServeResponse]]] = {
            "/health": ("GET", self._health),
            "/stats": ("GET", self._stats),
            "/scenarios": ("GET", self._scenarios),
            "/simulate": ("POST", self._simulate),
            "/search": ("POST", self._search),
            "/fleet/run": ("POST", self._fleet_run),
            "/fleet/search": ("POST", self._fleet_search),
            "/recommend": ("POST", self._recommend),
            "/ingest": ("POST", self._ingest),
        }

    # -- transport-facing entry point ---------------------------------

    def handle(self, method: str, path: str,
               body: Mapping[str, Any] | None = None) -> ServeResponse:
        """Serve one request; never raises for user-caused failures."""
        route = self._routes.get(path.rstrip("/") or "/")
        if route is None:
            return _json_response(
                {"error": f"unknown path {path!r}",
                 "paths": sorted(self._routes)}, status=404)
        expected, handler = route
        if method != expected:
            return _json_response(
                {"error": f"{path} expects {expected}, got {method}"},
                status=405)
        try:
            if expected == "GET":
                return handler()
            if not isinstance(body, Mapping):
                raise SpecError(
                    f"{path} needs a JSON object body, got "
                    f"{type(body).__name__}")
            return handler(body)
        except ReproError as exc:
            return _json_response({"error": str(exc)}, status=400)

    # -- diagnostics --------------------------------------------------

    def _health(self) -> ServeResponse:
        return _json_response({"status": "ok"})

    def _stats(self) -> ServeResponse:
        # Deferred: the pool is only relevant to process-backed
        # services, and importing it here keeps handlers import-light.
        from repro.pool import shared_pool_stats

        return _json_response({
            "store": self.store.stats.to_dict(),
            "inflight": self.store.inflight,
            "entries": len(self.store),
            "backend": self.runner.backend,
            "workers": self.runner.workers,
            "transport": dict(self.transport),
            # The shared persistent worker pool every process-backed
            # runner dispatches through (None until process work ran).
            "pool": shared_pool_stats(),
        })

    def _scenarios(self) -> ServeResponse:
        return _json_response({"scenarios": scenario_names()})

    # -- request normalization ----------------------------------------

    def _scenario_spec(self, body: Mapping[str, Any]) -> ScenarioSpec:
        """The scenario a request names — library name or inline spec.

        Normalized to ``trace="none"`` (summaries never read the
        trace), so requests differing only in trace mode share one
        cache entry.
        """
        scenario = body.get("scenario")
        if isinstance(scenario, str):
            spec = get_scenario(scenario)
        elif isinstance(scenario, Mapping):
            spec = ScenarioSpec.from_dict(scenario)
        else:
            raise SpecError(
                "request needs a 'scenario': a library name (see "
                "/scenarios) or an inline ScenarioSpec object")
        return dataclasses.replace(spec, trace="none")

    @staticmethod
    def _fleet_spec(body: Mapping[str, Any]) -> FleetSpec:
        spec = body.get("spec")
        if not isinstance(spec, Mapping):
            raise SpecError(
                "request needs a 'spec': an inline FleetSpec object")
        return FleetSpec.from_dict(spec)

    @staticmethod
    def _grids(body: Mapping[str, Any]):
        grids = grids_from_mapping(body.get("grid"),
                                   body.get("policies", ()),
                                   what="request grid")
        if not grids:
            raise SpecError(
                "request needs a 'grid' mapping and/or a 'policies' list")
        return grids

    # -- cacheable endpoints ------------------------------------------

    def _simulate(self, body: Mapping[str, Any]) -> ServeResponse:
        check_mapping_keys("simulate request", body, {"scenario"},
                           required={"scenario"})
        spec = self._scenario_spec(body)
        digest = request_digest("simulate", spec.to_dict())

        def compute() -> bytes:
            outcome = run_scenario(spec)
            return canonical_json_bytes(
                {"spec": spec.to_dict(), "outcome": outcome.to_dict()})

        payload, state = self.store.fetch_or_compute(digest, compute)
        return ServeResponse(status=200, body=payload + b"\n", cache=state)

    def _search(self, body: Mapping[str, Any]) -> ServeResponse:
        check_mapping_keys("search request", body,
                           {"scenario", "grid", "policies"},
                           required={"scenario"})
        spec = self._scenario_spec(body)
        grids = self._grids(body)
        candidates = expand_grids(grids)
        digest = request_digest("search", {
            "scenario": spec.to_dict(),
            "candidates": [point.to_dict() for _, point in candidates],
        })

        def compute() -> bytes:
            result = self.runner.run_grid(spec, grids)
            return canonical_json_bytes(result.to_dict())

        payload, state = self.store.fetch_or_compute(digest, compute)
        return ServeResponse(status=200, body=payload + b"\n", cache=state)

    def _fleet_run(self, body: Mapping[str, Any]) -> ServeResponse:
        check_mapping_keys("fleet run request", body, {"spec"},
                           required={"spec"})
        fleet = self._fleet_spec(body)
        digest = request_digest("fleet_run", fleet.to_dict())

        def compute() -> bytes:
            result = self.fleet_runner.run(fleet)
            return canonical_json_bytes(
                {"spec": fleet.to_dict(), "result": result.to_dict()})

        payload, state = self.store.fetch_or_compute(digest, compute)
        return ServeResponse(status=200, body=payload + b"\n", cache=state)

    def _fleet_search_payload(self,
                              body: Mapping[str, Any]) -> tuple[bytes, str]:
        """The shared fetch behind ``/fleet/search`` and ``/recommend``.

        Both address the same digest, so a recommendation after a
        search (or vice versa) is always a cache hit.
        """
        fleet = self._fleet_spec(body)
        grids = self._grids(body)
        candidates = expand_grids(grids)
        digest = request_digest("fleet_search", {
            "fleet": fleet.to_dict(),
            "candidates": [point.to_dict() for _, point in candidates],
        })

        def compute() -> bytes:
            result = self.fleet_runner.run_grid(fleet, grids)
            return canonical_json_bytes(
                {"spec": fleet.to_dict(), "search": result.to_dict()})

        return self.store.fetch_or_compute(digest, compute)

    def _fleet_search(self, body: Mapping[str, Any]) -> ServeResponse:
        check_mapping_keys("fleet search request", body,
                           {"spec", "grid", "policies"}, required={"spec"})
        payload, state = self._fleet_search_payload(body)
        return ServeResponse(status=200, body=payload + b"\n", cache=state)

    def _recommend(self, body: Mapping[str, Any]) -> ServeResponse:
        """The best-ranked policy for a fleet, from the search cache.

        Answers "which policy should this population run?" by reading
        the top of the ``/fleet/search`` ranking for the same request —
        computed at most once across both endpoints.
        """
        import json as _json

        check_mapping_keys("recommend request", body,
                           {"spec", "grid", "policies"}, required={"spec"})
        payload, state = self._fleet_search_payload(body)
        search = _json.loads(payload)
        best = search["search"]["ranking"][0]
        return _json_response({
            "fleet": search["spec"]["name"],
            "recommendation": {
                "label": best["label"],
                "policy": best["policy"],
                "fraction_energy_neutral":
                    best["result"]["fraction_energy_neutral"],
            },
            "candidates": len(search["search"]["ranking"]),
        }, cache=state)

    def _ingest(self, body: Mapping[str, Any]) -> ServeResponse:
        check_mapping_keys(
            "ingest request", body,
            {"name", "records", "harvester", "ambient_c", "skin_c",
             "detection_tag", "step_s", "description"},
            required={"name", "records"})
        name = body["name"]
        if not isinstance(name, str) or not name:
            raise SpecError("ingest 'name' must be a non-empty string")
        records = records_from_dicts(body["records"], source="records")
        options = {key: body[key] for key in
                   ("harvester", "ambient_c", "skin_c", "detection_tag",
                    "step_s", "description") if key in body}
        digest = request_digest("ingest", {
            "name": name,
            "records": [record.to_dict() for record in records],
            "options": options,
        })

        def compute() -> bytes:
            spec = fit_scenario(records, name, **options)
            return canonical_json_bytes(
                {"spec": spec.to_dict(),
                 "records": len(records),
                 "segments": len(spec.timeline.segments)})

        payload, state = self.store.fetch_or_compute(digest, compute)
        return ServeResponse(status=200, body=payload + b"\n", cache=state)
