"""Fleet-as-a-service: HTTP API, result store, telemetry ingest.

The serving layer turns the simulation stack into a long-lived
service:

* :mod:`repro.serve.store` — the content-addressed
  :class:`ResultStore`: canonical-JSON SHA-256 of a normalized request
  keys a disk cache of canonical result bytes, with in-flight
  deduplication so *n* concurrent identical requests cost one
  simulation;
* :mod:`repro.serve.handlers` — :class:`ServeService`, the
  transport-free request/response contract (normalize → address →
  serve) over the existing :class:`~repro.scenarios.runner.ScenarioRunner`
  and :class:`~repro.fleet.runner.FleetRunner` backends;
* :mod:`repro.serve.app` — the stdlib-asyncio HTTP/1.1 front-end
  (``repro serve``), the :class:`ServerThread` test harness, and the
  :func:`run_smoke` end-to-end self-check;
* :mod:`repro.serve.ingest` — the telemetry-to-scenario pipeline
  (``repro ingest``): per-device ``(t_s, power_w, event)`` JSONL
  streams are segmented, inverted through a harvester model to an
  environment timeline plus a load model, and registered as on-disk
  scenario files.

Everything is pure stdlib — no new dependencies over the simulation
core.
"""

from repro.serve.app import (
    ReproServer,
    ServerThread,
    http_request,
    run_smoke,
    serve_forever,
)
from repro.serve.handlers import ServeResponse, ServeService
from repro.serve.ingest import (
    TelemetryRecord,
    fit_scenario,
    ingest_file,
    parse_records,
    read_trace_file,
    segment_records,
    write_scenario_file,
)
from repro.serve.store import ResultStore, StoreStats, request_digest

__all__ = [
    "ReproServer",
    "ServerThread",
    "http_request",
    "run_smoke",
    "serve_forever",
    "ServeResponse",
    "ServeService",
    "TelemetryRecord",
    "fit_scenario",
    "ingest_file",
    "parse_records",
    "read_trace_file",
    "segment_records",
    "write_scenario_file",
    "ResultStore",
    "StoreStats",
    "request_digest",
]
