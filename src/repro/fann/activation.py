"""Activation functions for MLP layers.

Mirrors the subset of FANN activation functions the paper's networks
use (symmetric sigmoid a.k.a. tanh for hidden/output layers, linear for
completeness) plus ReLU which the extension benchmarks exercise.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.errors import NetworkStructureError

__all__ = ["Activation"]


class Activation(Enum):
    """Supported layer activation functions.

    ``TANH`` corresponds to FANN's ``SIGMOID_SYMMETRIC`` which the paper
    uses for the stress network; ``SIGMOID`` to ``SIGMOID_STEPWISE``'s
    smooth parent; ``LINEAR`` and ``RELU`` round out the set for the
    extension experiments.
    """

    LINEAR = "linear"
    SIGMOID = "sigmoid"
    TANH = "tanh"
    RELU = "relu"

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the activation element-wise."""
        if self is Activation.LINEAR:
            return x
        if self is Activation.SIGMOID:
            return 1.0 / (1.0 + np.exp(-x))
        if self is Activation.TANH:
            return np.tanh(x)
        if self is Activation.RELU:
            return np.maximum(x, 0.0)
        raise NetworkStructureError(f"unhandled activation {self}")

    def derivative_from_output(self, y: np.ndarray) -> np.ndarray:
        """Derivative expressed in terms of the activation *output* ``y``.

        Backpropagation only ever needs the derivative at points where
        the forward pass already produced the output, so expressing it
        as a function of ``y`` avoids recomputing the activation.
        """
        if self is Activation.LINEAR:
            return np.ones_like(y)
        if self is Activation.SIGMOID:
            return y * (1.0 - y)
        if self is Activation.TANH:
            return 1.0 - y * y
        if self is Activation.RELU:
            return (y > 0.0).astype(y.dtype)
        raise NetworkStructureError(f"unhandled activation {self}")

    @property
    def output_range(self) -> tuple[float, float]:
        """(min, max) of the activation output, ``inf`` where unbounded."""
        if self is Activation.SIGMOID:
            return (0.0, 1.0)
        if self is Activation.TANH:
            return (-1.0, 1.0)
        if self is Activation.RELU:
            return (0.0, float("inf"))
        return (float("-inf"), float("inf"))

    @classmethod
    def from_name(cls, name: str) -> "Activation":
        """Parse an activation from its serialized name."""
        try:
            return cls(name)
        except ValueError as exc:
            valid = ", ".join(sorted(a.value for a in cls))
            raise NetworkStructureError(
                f"unknown activation {name!r}; expected one of: {valid}"
            ) from exc
