"""Builders for the paper's two benchmark networks.

Network A is the deployed stress classifier (Fig. 3): 5 input features,
two hidden layers of 50 tanh units, 3 output classes — 108 neurons,
3003 weights, ~14 kB.

Network B is the memory-pressure benchmark: 100 inputs, 8 outputs and
24 hidden layers whose widths grow pairwise (8, 8, 16, 16, ..., 96, 96)
— 1356 neurons, 81 032 weights, ~346 kB with the paper's cost model.
"""

from __future__ import annotations

from repro.fann.activation import Activation
from repro.fann.network import LayerSpec, MultiLayerPerceptron

__all__ = [
    "NETWORK_A_INPUTS",
    "NETWORK_A_HIDDEN",
    "NETWORK_A_OUTPUTS",
    "NETWORK_B_INPUTS",
    "NETWORK_B_OUTPUTS",
    "network_b_hidden_sizes",
    "build_network_a",
    "build_network_b",
]

NETWORK_A_INPUTS = 5
NETWORK_A_HIDDEN = (50, 50)
NETWORK_A_OUTPUTS = 3

NETWORK_B_INPUTS = 100
NETWORK_B_OUTPUTS = 8
NETWORK_B_HIDDEN_PAIRS = 12
NETWORK_B_PAIR_STEP = 8


def network_b_hidden_sizes() -> list[int]:
    """The 24 hidden-layer widths of Network B.

    The first two hidden layers have 8 neurons each, the next pair has
    8 more each, and so on: 8, 8, 16, 16, ..., 96, 96.
    """
    sizes: list[int] = []
    for pair in range(1, NETWORK_B_HIDDEN_PAIRS + 1):
        width = pair * NETWORK_B_PAIR_STEP
        sizes.extend([width, width])
    return sizes


def build_network_a(seed: int = 0) -> MultiLayerPerceptron:
    """Construct Network A (5-50-50-3, tanh everywhere)."""
    layers = [LayerSpec(size, Activation.TANH) for size in NETWORK_A_HIDDEN]
    layers.append(LayerSpec(NETWORK_A_OUTPUTS, Activation.TANH))
    return MultiLayerPerceptron(NETWORK_A_INPUTS, layers, seed=seed)


def build_network_b(seed: int = 0) -> MultiLayerPerceptron:
    """Construct Network B (100, 24 growing hidden layers, 8; tanh)."""
    layers = [LayerSpec(size, Activation.TANH) for size in network_b_hidden_sizes()]
    layers.append(LayerSpec(NETWORK_B_OUTPUTS, Activation.TANH))
    return MultiLayerPerceptron(NETWORK_B_INPUTS, layers, seed=seed)
