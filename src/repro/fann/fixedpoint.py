"""Fixed-point conversion and inference, mirroring FANN's flow.

FANN converts a trained float network to fixed point by picking one
network-wide binary-point position that the largest weight still fits,
then storing weights and propagating activations as 32-bit integers.
Activations are evaluated through piecewise-linear lookup tables.

:func:`convert_to_fixed` reproduces that scheme, with the headroom
heuristic made explicit: beyond fitting the largest weight we reserve
``accumulator_guard_bits`` so a neuron's weighted sum cannot overflow
32-bit storage after the shift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import QuantizationError
from repro.fann.activation import Activation
from repro.fann.network import MultiLayerPerceptron
from repro.quant.lut import ActivationTable, sigmoid_table, tanh_table
from repro.quant.qformat import QFormat

__all__ = ["FixedPointNetwork", "convert_to_fixed"]

STORAGE_BITS = 32


def _activation_table(activation: Activation, fmt: QFormat) -> ActivationTable | None:
    """Lookup table for an activation, or None when it is exact in fixed point."""
    if activation is Activation.TANH:
        return tanh_table(fmt)
    if activation is Activation.SIGMOID:
        return sigmoid_table(fmt)
    return None


@dataclass
class FixedPointNetwork:
    """A quantised MLP executing entirely in integer arithmetic.

    Attributes:
        fmt: the network-wide fixed-point format.
        weights: raw integer weight matrices, ``(n_out, n_in + 1)`` with
            the bias in the last column.
        activations: activation of each connection layer's destination.
        tables: per-layer activation lookup tables (None for
            activations that are exact in fixed point).
        num_inputs: input width of the network.
    """

    fmt: QFormat
    weights: list[np.ndarray]
    activations: list[Activation]
    tables: list[ActivationTable | None] = field(repr=False)
    num_inputs: int = 0

    @property
    def decimal_point(self) -> int:
        """FANN's name for the binary-point position."""
        return self.fmt.frac_bits

    @property
    def num_outputs(self) -> int:
        """Width of the output layer."""
        return int(self.weights[-1].shape[0])

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Fixed-point inference on real-valued inputs.

        Inputs are quantised to :attr:`fmt`, propagated with 64-bit
        accumulators shifted back to storage precision per neuron (as
        the C kernels do), and the output is dequantised to floats.
        """
        x = np.asarray(inputs, dtype=np.float64)
        single = x.ndim == 1
        if single:
            x = x[np.newaxis, :]
        if x.shape[1] != self.num_inputs:
            raise QuantizationError(
                f"expected {self.num_inputs} inputs, got {x.shape[1]}"
            )
        raw = np.asarray(self.fmt.to_fixed(x), dtype=np.int64)
        raw = self.forward_raw(raw)
        out = self.fmt.from_fixed(raw)
        return out[0] if single else out

    def forward_raw(self, raw_inputs: np.ndarray) -> np.ndarray:
        """Inference on already-quantised raw integers (batch form)."""
        raw = np.asarray(raw_inputs, dtype=np.int64)
        one = self.fmt.scale  # the bias neuron outputs fixed-point 1.0
        for w, activation, table in zip(self.weights, self.activations, self.tables):
            bias_col = np.full((raw.shape[0], 1), one, dtype=np.int64)
            with_bias = np.hstack([raw, bias_col])
            acc = with_bias @ w.T  # 64-bit accumulation
            pre = acc >> self.fmt.frac_bits
            pre = np.clip(pre, self.fmt.min_int, self.fmt.max_int)
            if table is None:
                if activation is Activation.RELU:
                    raw = np.maximum(pre, 0)
                else:  # LINEAR
                    raw = pre
            else:
                raw = table.lookup(pre)
        return raw

    def classify(self, inputs: np.ndarray) -> np.ndarray:
        """Argmax class index for one sample or a batch."""
        out = self.forward(inputs)
        return np.argmax(out, axis=-1)

    def to_float_network(self) -> MultiLayerPerceptron:
        """Reconstruct a float network carrying the quantised weights.

        Useful for measuring the quantisation error in isolation from
        the activation-table error.
        """
        from repro.fann.network import LayerSpec

        specs = [LayerSpec(w.shape[0], act)
                 for w, act in zip(self.weights, self.activations)]
        net = MultiLayerPerceptron(self.num_inputs, specs)
        net.set_weights([np.asarray(self.fmt.from_fixed(w)) for w in self.weights])
        return net


def required_decimal_point(network: MultiLayerPerceptron,
                           accumulator_guard_bits: int = 4) -> int:
    """Largest binary point that fits the weights with headroom.

    FANN picks the decimal point so the biggest weight magnitude is
    representable; we additionally reserve guard bits so the shifted
    accumulator of the widest layer has integer headroom.
    """
    max_weight = max(float(np.max(np.abs(w))) for w in network.weights)
    integer_bits_needed = max(0, int(np.ceil(np.log2(max(max_weight, 1e-12) + 1))))
    frac_bits = STORAGE_BITS - 1 - integer_bits_needed - accumulator_guard_bits
    # Keep the binary point in FANN's practical range.
    frac_bits = min(frac_bits, STORAGE_BITS - 2)
    if frac_bits < 1:
        raise QuantizationError(
            f"weights too large for {STORAGE_BITS}-bit fixed point "
            f"(max |w| = {max_weight})"
        )
    return frac_bits


def convert_to_fixed(network: MultiLayerPerceptron,
                     decimal_point: int | None = None,
                     accumulator_guard_bits: int = 4) -> FixedPointNetwork:
    """Quantise a trained float network to fixed point.

    Args:
        network: the trained float network.
        decimal_point: override the binary-point position; by default it
            is derived from the largest weight via
            :func:`required_decimal_point`.
        accumulator_guard_bits: integer headroom reserved when deriving
            the decimal point automatically.

    Returns:
        A :class:`FixedPointNetwork` executing in Q(31 - dp).dp format.
    """
    if decimal_point is None:
        decimal_point = required_decimal_point(network, accumulator_guard_bits)
    fmt = QFormat(STORAGE_BITS, decimal_point)
    weights = [np.asarray(fmt.to_fixed(w), dtype=np.int64) for w in network.weights]
    activations = [spec.activation for spec in network.layers]
    tables = [_activation_table(act, fmt) for act in activations]
    return FixedPointNetwork(
        fmt=fmt,
        weights=weights,
        activations=activations,
        tables=tables,
        num_inputs=network.num_inputs,
    )
