"""MLP structure with FANN-compatible bookkeeping.

FANN represents a fully-connected feed-forward network as a list of
layers in which every layer (except the output) carries an extra *bias
neuron* whose output is constant 1.  Connection counts therefore
include one bias weight per destination neuron:

    weights(layer i -> i+1) = (n_i + 1) * n_{i+1}

For the paper's Network A (5-50-50-3) this yields exactly the 3003
weights and 108 computational neurons the paper reports, and for
Network B exactly 81 032 weights and 1356 neurons.

The memory-footprint model follows the paper's statement: each neuron
costs 4 integers (16 B), each weight 4 B, and each layer 2 extra
integers (8 B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NetworkStructureError
from repro.fann.activation import Activation

__all__ = ["LayerSpec", "MultiLayerPerceptron"]

BYTES_PER_NEURON = 16
BYTES_PER_WEIGHT = 4
BYTES_PER_LAYER = 8


@dataclass(frozen=True)
class LayerSpec:
    """Size and activation of one connection layer's destination.

    Attributes:
        size: number of computational neurons in the destination layer.
        activation: activation applied at the destination layer.
    """

    size: int
    activation: Activation

    def __post_init__(self) -> None:
        if self.size < 1:
            raise NetworkStructureError(f"layer size must be >= 1, got {self.size}")


class MultiLayerPerceptron:
    """A fully-connected feed-forward network in FANN's representation.

    Weights for connection layer ``l`` are stored as an
    ``(n_out, n_in + 1)`` matrix whose last column is the bias weight,
    matching FANN's bias-neuron convention.

    Args:
        num_inputs: width of the input layer.
        layers: destination layer specs, one per connection layer
            (hidden layers first, output layer last).
        seed: seed for the deterministic initial weight draw.
        rng: explicit generator for the initial weight draw; wins over
            ``seed`` when given.  Initialization never touches global
            ``np.random`` state, so a seed (or generator) fully
            determines the network — two constructions from the same
            seed are bitwise identical.
    """

    def __init__(self, num_inputs: int, layers: list[LayerSpec], seed: int = 0,
                 rng: np.random.Generator | None = None) -> None:
        if num_inputs < 1:
            raise NetworkStructureError(f"num_inputs must be >= 1, got {num_inputs}")
        if not layers:
            raise NetworkStructureError("a network needs at least one layer")
        self.num_inputs = int(num_inputs)
        self.layers = list(layers)
        if rng is None:
            rng = np.random.default_rng(seed)
        self.weights: list[np.ndarray] = []
        fan_in = self.num_inputs
        for spec in self.layers:
            # FANN initialises weights uniformly in a small symmetric
            # range; a fan-in scaled draw keeps deep Network B stable.
            limit = 1.0 / np.sqrt(fan_in + 1)
            self.weights.append(
                rng.uniform(-limit, limit, size=(spec.size, fan_in + 1))
            )
            fan_in = spec.size

    # -- structural queries ---------------------------------------------------

    @property
    def num_outputs(self) -> int:
        """Width of the output layer."""
        return self.layers[-1].size

    @property
    def layer_sizes(self) -> list[int]:
        """All layer widths including the input layer."""
        return [self.num_inputs] + [spec.size for spec in self.layers]

    @property
    def num_connection_layers(self) -> int:
        """Number of weight matrices (layers of connections)."""
        return len(self.layers)

    @property
    def total_neurons(self) -> int:
        """Computational neurons across all layers, including inputs.

        This is the count the paper quotes (108 for Network A, 1356 for
        Network B); bias neurons are excluded.
        """
        return int(sum(self.layer_sizes))

    @property
    def total_weights(self) -> int:
        """Total connection count including bias weights.

        Matches FANN: ``sum((n_in + 1) * n_out)`` over connection
        layers — 3003 for Network A, 81 032 for Network B.
        """
        return int(sum(w.size for w in self.weights))

    def memory_footprint_bytes(self) -> int:
        """Estimated deployed size using the paper's cost model.

        16 B per neuron (4 integers), 4 B per weight, 8 B per layer
        (2 integers holding the layer's input/output counts).
        """
        return (
            self.total_neurons * BYTES_PER_NEURON
            + self.total_weights * BYTES_PER_WEIGHT
            + (self.num_connection_layers + 1) * BYTES_PER_LAYER
        )

    def connection_shapes(self) -> list[tuple[int, int]]:
        """(n_out, n_in + 1) for each connection layer."""
        return [tuple(w.shape) for w in self.weights]

    # -- inference --------------------------------------------------------------

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Run float inference on one sample or a batch.

        Args:
            inputs: shape ``(num_inputs,)`` or ``(batch, num_inputs)``.

        Returns:
            Output activations with matching leading shape.
        """
        x = np.asarray(inputs, dtype=np.float64)
        single = x.ndim == 1
        if single:
            x = x[np.newaxis, :]
        if x.shape[1] != self.num_inputs:
            raise NetworkStructureError(
                f"expected {self.num_inputs} inputs, got {x.shape[1]}"
            )
        for spec, w in zip(self.layers, self.weights):
            ones = np.ones((x.shape[0], 1), dtype=np.float64)
            x = spec.activation.apply(np.hstack([x, ones]) @ w.T)
        return x[0] if single else x

    def forward_all_layers(self, inputs: np.ndarray) -> list[np.ndarray]:
        """Like :meth:`forward` on a batch, but returns every layer's output.

        The returned list starts with the input batch itself, so entry
        ``i`` is the activation feeding connection layer ``i``.
        Training uses this to avoid a second forward pass.
        """
        x = np.asarray(inputs, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.num_inputs:
            raise NetworkStructureError(
                f"expected batch of shape (n, {self.num_inputs}), got {x.shape}"
            )
        outputs = [x]
        for spec, w in zip(self.layers, self.weights):
            ones = np.ones((x.shape[0], 1), dtype=np.float64)
            x = spec.activation.apply(np.hstack([x, ones]) @ w.T)
            outputs.append(x)
        return outputs

    def classify(self, inputs: np.ndarray) -> np.ndarray:
        """Argmax class index for one sample or a batch."""
        out = self.forward(inputs)
        return np.argmax(out, axis=-1)

    # -- mutation ---------------------------------------------------------------

    def set_weights(self, weights: list[np.ndarray]) -> None:
        """Replace all weight matrices, validating shapes."""
        if len(weights) != len(self.weights):
            raise NetworkStructureError(
                f"expected {len(self.weights)} weight matrices, got {len(weights)}"
            )
        for current, new in zip(self.weights, weights):
            if current.shape != np.asarray(new).shape:
                raise NetworkStructureError(
                    f"weight shape mismatch: {current.shape} vs {np.asarray(new).shape}"
                )
        self.weights = [np.asarray(w, dtype=np.float64).copy() for w in weights]

    def copy(self) -> "MultiLayerPerceptron":
        """Deep copy of the network (structure and weights)."""
        clone = MultiLayerPerceptron(self.num_inputs, self.layers)
        clone.set_weights(self.weights)
        return clone

    def __repr__(self) -> str:
        sizes = "-".join(str(s) for s in self.layer_sizes)
        return (
            f"MultiLayerPerceptron({sizes}, neurons={self.total_neurons}, "
            f"weights={self.total_weights})"
        )
