"""Trainers for :class:`~repro.fann.network.MultiLayerPerceptron`.

FANN trains with iRPROP- by default; the paper's stress classifier was
trained through FANN, so :class:`RpropTrainer` implements that
algorithm (resilient backpropagation with sign-based step adaptation
and weight-backtracking disabled, i.e. the "minus" variant).  A plain
batch :class:`GradientDescentTrainer` is provided as a baseline and for
tests that need predictable dynamics.

Both trainers share the vectorised backpropagation in
:func:`compute_gradients` and optimise mean squared error, FANN's
default loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.fann.network import MultiLayerPerceptron

__all__ = [
    "compute_gradients",
    "TrainingReport",
    "GradientDescentTrainer",
    "RpropTrainer",
]


def _validate_batch(network: MultiLayerPerceptron,
                    inputs: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Check shapes and coerce the training batch to float64."""
    x = np.asarray(inputs, dtype=np.float64)
    t = np.asarray(targets, dtype=np.float64)
    if x.ndim != 2 or t.ndim != 2:
        raise TrainingError("inputs and targets must be 2-D batches")
    if x.shape[0] != t.shape[0]:
        raise TrainingError(
            f"batch size mismatch: {x.shape[0]} inputs vs {t.shape[0]} targets"
        )
    if x.shape[1] != network.num_inputs:
        raise TrainingError(
            f"expected {network.num_inputs} input features, got {x.shape[1]}"
        )
    if t.shape[1] != network.num_outputs:
        raise TrainingError(
            f"expected {network.num_outputs} target values, got {t.shape[1]}"
        )
    if x.shape[0] == 0:
        raise TrainingError("cannot train on an empty batch")
    return x, t


def compute_gradients(network: MultiLayerPerceptron,
                      inputs: np.ndarray,
                      targets: np.ndarray) -> tuple[list[np.ndarray], float]:
    """Backpropagate MSE over a batch.

    Returns:
        A ``(gradients, mse)`` pair where ``gradients[i]`` matches the
        shape of ``network.weights[i]`` (bias column included) and
        ``mse`` is the mean squared error of the forward pass.
    """
    x, t = _validate_batch(network, inputs, targets)
    batch = x.shape[0]
    activations = network.forward_all_layers(x)
    output = activations[-1]
    error = output - t
    mse = float(np.mean(error * error))

    gradients: list[np.ndarray] = [np.empty(0)] * network.num_connection_layers
    # delta holds dLoss/dPreactivation for the current layer.
    delta = (2.0 / (batch * network.num_outputs)) * error
    delta = delta * network.layers[-1].activation.derivative_from_output(output)
    for layer_idx in range(network.num_connection_layers - 1, -1, -1):
        prev = activations[layer_idx]
        ones = np.ones((batch, 1), dtype=np.float64)
        prev_with_bias = np.hstack([prev, ones])
        gradients[layer_idx] = delta.T @ prev_with_bias
        if layer_idx > 0:
            w_no_bias = network.weights[layer_idx][:, :-1]
            upstream = delta @ w_no_bias
            act = network.layers[layer_idx - 1].activation
            delta = upstream * act.derivative_from_output(prev)
    return gradients, mse


@dataclass
class TrainingReport:
    """Outcome of a training run.

    Attributes:
        epochs_run: number of epochs actually executed.
        mse_history: mean squared error after each epoch.
        converged: whether the desired MSE was reached.
    """

    epochs_run: int
    mse_history: list[float] = field(default_factory=list)
    converged: bool = False

    @property
    def final_mse(self) -> float:
        """MSE after the last epoch."""
        if not self.mse_history:
            raise TrainingError("no epochs were run")
        return self.mse_history[-1]


class GradientDescentTrainer:
    """Plain full-batch gradient descent with a fixed learning rate.

    Args:
        learning_rate: step size applied to the raw gradient.
    """

    def __init__(self, learning_rate: float = 0.7) -> None:
        if learning_rate <= 0:
            raise TrainingError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)

    def train(self, network: MultiLayerPerceptron,
              inputs: np.ndarray, targets: np.ndarray,
              max_epochs: int = 500, desired_mse: float = 0.0) -> TrainingReport:
        """Train in place until ``desired_mse`` or ``max_epochs``."""
        report = TrainingReport(epochs_run=0)
        for epoch in range(max_epochs):
            gradients, mse = compute_gradients(network, inputs, targets)
            report.mse_history.append(mse)
            report.epochs_run = epoch + 1
            if mse <= desired_mse:
                report.converged = True
                break
            for w, g in zip(network.weights, gradients):
                w -= self.learning_rate * g
        return report


class RpropTrainer:
    """iRPROP- resilient backpropagation, FANN's default algorithm.

    Each weight carries its own step size, grown by ``eta_plus`` when
    the gradient keeps its sign and shrunk by ``eta_minus`` when it
    flips; on a sign flip the gradient is zeroed for one update (the
    "minus" variant's replacement for weight backtracking).

    Args:
        eta_plus: step growth factor (> 1).
        eta_minus: step shrink factor (in (0, 1)).
        delta_init: initial per-weight step.
        delta_min: lower clamp on the step size.
        delta_max: upper clamp on the step size.
    """

    def __init__(self, eta_plus: float = 1.2, eta_minus: float = 0.5,
                 delta_init: float = 0.0125, delta_min: float = 1e-9,
                 delta_max: float = 50.0) -> None:
        if not eta_plus > 1.0:
            raise TrainingError("eta_plus must be > 1")
        if not 0.0 < eta_minus < 1.0:
            raise TrainingError("eta_minus must lie in (0, 1)")
        if delta_min <= 0 or delta_max <= delta_min or delta_init <= 0:
            raise TrainingError("step sizes must satisfy 0 < min < max, init > 0")
        self.eta_plus = float(eta_plus)
        self.eta_minus = float(eta_minus)
        self.delta_init = float(delta_init)
        self.delta_min = float(delta_min)
        self.delta_max = float(delta_max)

    def train(self, network: MultiLayerPerceptron,
              inputs: np.ndarray, targets: np.ndarray,
              max_epochs: int = 500, desired_mse: float = 0.0) -> TrainingReport:
        """Train in place until ``desired_mse`` or ``max_epochs``."""
        steps = [np.full_like(w, self.delta_init) for w in network.weights]
        prev_grads = [np.zeros_like(w) for w in network.weights]
        report = TrainingReport(epochs_run=0)
        for epoch in range(max_epochs):
            gradients, mse = compute_gradients(network, inputs, targets)
            report.mse_history.append(mse)
            report.epochs_run = epoch + 1
            if mse <= desired_mse:
                report.converged = True
                break
            for w, g, step, prev in zip(network.weights, gradients, steps, prev_grads):
                sign_product = prev * g
                step *= np.where(sign_product > 0, self.eta_plus,
                                 np.where(sign_product < 0, self.eta_minus, 1.0))
                np.clip(step, self.delta_min, self.delta_max, out=step)
                # iRPROP-: on a sign flip, suppress this update entirely.
                g = np.where(sign_product < 0, 0.0, g)
                w -= np.sign(g) * step
                prev[...] = g
        return report
