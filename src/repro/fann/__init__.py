"""FANN-compatible multi-layer perceptron library.

The paper trains its stress-detection MLP with the FANN library and
deploys it on microcontrollers with the FannCortexM toolkit.  This
package reimplements the parts of that stack the paper depends on:

* :mod:`repro.fann.network` — network structure with FANN's
  bias-neuron/connection bookkeeping and the memory-footprint model the
  paper states (16 B per neuron, 4 B per weight, 8 B per layer).
* :mod:`repro.fann.training` — RPROP (FANN's default) and plain
  gradient-descent trainers.
* :mod:`repro.fann.fixedpoint` — conversion to a network-wide Q-format
  and fixed-point inference, mirroring FANN's ``save_to_fixed`` flow.
* :mod:`repro.fann.serialize` — a text serialisation format in the
  spirit of FANN ``.net`` files.
* :mod:`repro.fann.zoo` — builders for the paper's Network A
  (5-50-50-3) and Network B (100, 24 growing hidden layers, 8).
"""

from repro.fann.activation import Activation
from repro.fann.network import LayerSpec, MultiLayerPerceptron
from repro.fann.training import (
    GradientDescentTrainer,
    RpropTrainer,
    TrainingReport,
)
from repro.fann.fixedpoint import FixedPointNetwork, convert_to_fixed
from repro.fann.serialize import load_network, save_network
from repro.fann.zoo import build_network_a, build_network_b
from repro.fann.deploy import DeploymentSummary, deployment_summary, export_c_header

__all__ = [
    "Activation",
    "LayerSpec",
    "MultiLayerPerceptron",
    "GradientDescentTrainer",
    "RpropTrainer",
    "TrainingReport",
    "FixedPointNetwork",
    "convert_to_fixed",
    "load_network",
    "save_network",
    "build_network_a",
    "build_network_b",
    "DeploymentSummary",
    "deployment_summary",
    "export_c_header",
]
