"""Text serialisation of trained networks, in the spirit of FANN ``.net`` files.

The format is line-oriented and self-describing:

    repro_fann_format_version 1
    num_inputs 5
    num_layers 3
    layer 50 tanh
    layer 50 tanh
    layer 3 tanh
    weights 0 50 6
    <50 lines of 6 whitespace-separated floats>
    ...

Only float networks are serialised; fixed-point networks are derived
deterministically from a float network plus a decimal point, so the
pair (file, decimal_point) fully reproduces them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import NetworkStructureError, SerializationError
from repro.fann.activation import Activation
from repro.fann.network import LayerSpec, MultiLayerPerceptron

__all__ = ["save_network", "load_network", "dumps_network", "loads_network"]

FORMAT_HEADER = "repro_fann_format_version"
FORMAT_VERSION = 1


def dumps_network(network: MultiLayerPerceptron) -> str:
    """Serialise a network to a string."""
    lines = [f"{FORMAT_HEADER} {FORMAT_VERSION}"]
    lines.append(f"num_inputs {network.num_inputs}")
    lines.append(f"num_layers {network.num_connection_layers}")
    for spec in network.layers:
        lines.append(f"layer {spec.size} {spec.activation.value}")
    for idx, w in enumerate(network.weights):
        lines.append(f"weights {idx} {w.shape[0]} {w.shape[1]}")
        for row in w:
            lines.append(" ".join(repr(float(v)) for v in row))
    return "\n".join(lines) + "\n"


def save_network(network: MultiLayerPerceptron, path: str | Path) -> None:
    """Write a network to ``path``."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(dumps_network(network))


def _tokens(stream: Iterator[str]) -> Iterator[list[str]]:
    """Yield non-empty, non-comment lines split into tokens."""
    for line in stream:
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            yield stripped.split()


def _expect(parts: list[str], keyword: str, count: int) -> list[str]:
    """Validate a header line and return its arguments."""
    if parts[0] != keyword or len(parts) != count + 1:
        raise SerializationError(
            f"expected '{keyword}' with {count} arguments, got: {' '.join(parts)}"
        )
    return parts[1:]


def _load_from_lines(lines: Iterator[str]) -> MultiLayerPerceptron:
    """Parse the serialisation format from an iterator of lines."""
    tokens = _tokens(lines)
    try:
        version = _expect(next(tokens), FORMAT_HEADER, 1)[0]
        if int(version) != FORMAT_VERSION:
            raise SerializationError(f"unsupported format version {version}")
        num_inputs = int(_expect(next(tokens), "num_inputs", 1)[0])
        num_layers = int(_expect(next(tokens), "num_layers", 1)[0])
        specs = []
        for _ in range(num_layers):
            size, name = _expect(next(tokens), "layer", 2)
            specs.append(LayerSpec(int(size), Activation.from_name(name)))
        network = MultiLayerPerceptron(num_inputs, specs)
        weights = []
        for idx in range(num_layers):
            claimed_idx, rows, cols = (int(v) for v in
                                       _expect(next(tokens), "weights", 3))
            if claimed_idx != idx:
                raise SerializationError(
                    f"weight blocks out of order: expected {idx}, got {claimed_idx}"
                )
            matrix = np.empty((rows, cols), dtype=np.float64)
            for r in range(rows):
                row = next(tokens)
                if len(row) != cols:
                    raise SerializationError(
                        f"weight row {r} of layer {idx} has {len(row)} values, "
                        f"expected {cols}"
                    )
                matrix[r] = [float(v) for v in row]
            weights.append(matrix)
        network.set_weights(weights)
        return network
    except StopIteration as exc:
        raise SerializationError("file ended mid-structure") from exc
    except ValueError as exc:
        raise SerializationError(f"malformed numeric field: {exc}") from exc
    except NetworkStructureError as exc:
        raise SerializationError(f"invalid network structure: {exc}") from exc


def loads_network(text: str) -> MultiLayerPerceptron:
    """Parse a network from a serialised string."""
    return _load_from_lines(iter(text.splitlines()))


def load_network(path: str | Path) -> MultiLayerPerceptron:
    """Read a network from ``path``."""
    with open(path, "r", encoding="ascii") as handle:
        return _load_from_lines(iter(handle))
