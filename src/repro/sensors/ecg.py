"""Synthetic ECG: an HRV-grounded RR-interval model and a PQRST waveform.

Two layers:

1. :class:`RRIntervalGenerator` draws beat-to-beat (RR) interval series
   from an autoregressive model with physiological structure — a mean
   heart rate, slow (sympathetic/LF-like) wander and fast
   (parasympathetic/HF-like, respiration-coupled) variability.  Mental
   stress raises heart rate and suppresses the fast vagal component,
   which is precisely what depresses RMSSD / SDSD / NN50, the three
   ECG features the paper's classifier uses.

2. :func:`synthesize_ecg_waveform` renders an RR series into a sampled
   single-lead ECG as a sum of Gaussian bumps per beat (P, Q, R, S, T),
   the standard lightweight alternative to the McSharry dynamical
   model.  The R-peak detector in :mod:`repro.features.rpeaks` runs on
   this waveform, so the full acquisition path (waveform -> peaks ->
   RR -> features) is exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "HRVParameters",
    "hrv_parameters_for_stress",
    "RRIntervalGenerator",
    "synthesize_ecg_waveform",
]


@dataclass(frozen=True)
class HRVParameters:
    """Statistical parameters of an RR-interval series.

    Attributes:
        mean_rr_s: mean beat interval (60 / heart rate).
        fast_sd_s: standard deviation of the fast (beat-to-beat, vagal)
            component; the main driver of RMSSD/SDSD/NN50.
        slow_sd_s: standard deviation of the slow wander component.
        slow_pole: AR(1) pole of the slow component in (0, 1); closer
            to 1 means slower wander.
        respiration_cycle_beats: period (in beats) of the respiratory
            sinus arrhythmia modulation.
        rsa_amplitude_s: amplitude of the RSA oscillation.
    """

    mean_rr_s: float
    fast_sd_s: float
    slow_sd_s: float
    slow_pole: float = 0.95
    respiration_cycle_beats: float = 4.5
    rsa_amplitude_s: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_rr_s <= 0.2 or self.mean_rr_s > 3.0:
            raise ConfigurationError(
                f"mean RR {self.mean_rr_s}s is outside the physiological range"
            )
        if self.fast_sd_s < 0 or self.slow_sd_s < 0 or self.rsa_amplitude_s < 0:
            raise ConfigurationError("variability amplitudes cannot be negative")
        if not 0.0 < self.slow_pole < 1.0:
            raise ConfigurationError("slow_pole must lie in (0, 1)")
        if self.respiration_cycle_beats <= 1.0:
            raise ConfigurationError("respiration cycle must exceed one beat")


# Literature-shaped operating points: stress raises heart rate and
# suppresses vagal (fast) variability.  Keys are stress levels 0..2 as
# used by the drivedb-like dataset (rest / city / highway).
_STRESS_HRV = {
    0: HRVParameters(mean_rr_s=0.85, fast_sd_s=0.045, slow_sd_s=0.030,
                     rsa_amplitude_s=0.025),
    1: HRVParameters(mean_rr_s=0.75, fast_sd_s=0.028, slow_sd_s=0.025,
                     rsa_amplitude_s=0.015),
    2: HRVParameters(mean_rr_s=0.64, fast_sd_s=0.014, slow_sd_s=0.022,
                     rsa_amplitude_s=0.007),
}


def hrv_parameters_for_stress(stress_level: int) -> HRVParameters:
    """Canonical HRV parameters for a stress level in {0, 1, 2}."""
    if stress_level not in _STRESS_HRV:
        raise ConfigurationError(
            f"stress level must be 0 (none), 1 (medium) or 2 (high); got {stress_level}"
        )
    return _STRESS_HRV[stress_level]


class RRIntervalGenerator:
    """Draws RR-interval series from the HRV model.

    Args:
        params: statistical parameters of the series.
        seed: RNG seed (generators are deterministic given a seed).
    """

    _MIN_RR_S = 0.25  # absolute refractory floor

    def __init__(self, params: HRVParameters, seed: int = 0) -> None:
        self.params = params
        self._rng = np.random.default_rng(seed)
        self._slow_state = 0.0
        self._beat_index = 0

    def generate(self, num_beats: int) -> np.ndarray:
        """Generate the next ``num_beats`` RR intervals in seconds."""
        if num_beats < 1:
            raise ConfigurationError("num_beats must be >= 1")
        p = self.params
        innovation_sd = p.slow_sd_s * np.sqrt(1.0 - p.slow_pole ** 2)
        rr = np.empty(num_beats, dtype=np.float64)
        for i in range(num_beats):
            self._slow_state = (p.slow_pole * self._slow_state
                                + self._rng.normal(0.0, innovation_sd))
            rsa = p.rsa_amplitude_s * np.sin(
                2.0 * np.pi * self._beat_index / p.respiration_cycle_beats
            )
            fast = self._rng.normal(0.0, p.fast_sd_s)
            rr[i] = p.mean_rr_s + self._slow_state + rsa + fast
            self._beat_index += 1
        return np.maximum(rr, self._MIN_RR_S)

    def generate_for_duration(self, duration_s: float) -> np.ndarray:
        """Generate RR intervals covering at least ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        estimated = int(np.ceil(duration_s / self.params.mean_rr_s)) + 8
        rr = self.generate(estimated)
        cum = np.cumsum(rr)
        cutoff = int(np.searchsorted(cum, duration_s)) + 1
        return rr[:cutoff]


# Gaussian bump parameters per wave: (centre offset as a fraction of
# the RR interval relative to the R peak, amplitude in mV, width in s).
_PQRST_BUMPS = (
    ("P", -0.20, 0.12, 0.025),
    ("Q", -0.035, -0.14, 0.010),
    ("R", 0.0, 1.10, 0.011),
    ("S", 0.035, -0.22, 0.010),
    ("T", 0.28, 0.28, 0.045),
)


def synthesize_ecg_waveform(rr_intervals_s: np.ndarray,
                            sampling_rate_hz: float = 256.0,
                            noise_mv: float = 0.01,
                            baseline_wander_mv: float = 0.03,
                            seed: int = 0) -> np.ndarray:
    """Render an RR series into a sampled single-lead ECG (millivolts).

    Each beat contributes five Gaussian bumps (P, Q, R, S, T) placed
    relative to its R peak; measurement noise and low-frequency
    baseline wander are added on top.  The MAX30001 samples at
     128/256 sps, hence the default rate.

    Args:
        rr_intervals_s: beat intervals in seconds.
        sampling_rate_hz: output sampling rate.
        noise_mv: white measurement-noise standard deviation.
        baseline_wander_mv: amplitude of the ~0.25 Hz baseline wander.
        seed: RNG seed for the noise.

    Returns:
        The sampled waveform; its duration is the sum of the intervals.
    """
    rr = np.asarray(rr_intervals_s, dtype=np.float64)
    if rr.ndim != 1 or rr.size == 0:
        raise ConfigurationError("rr_intervals_s must be a non-empty 1-D array")
    if np.any(rr <= 0):
        raise ConfigurationError("RR intervals must be positive")
    if sampling_rate_hz <= 0:
        raise ConfigurationError("sampling rate must be positive")

    duration = float(np.sum(rr))
    num_samples = int(np.floor(duration * sampling_rate_hz))
    t = np.arange(num_samples) / sampling_rate_hz
    signal = np.zeros(num_samples, dtype=np.float64)

    r_peak_times = np.concatenate([[0.0], np.cumsum(rr)[:-1]]) + 0.5 * rr[0]
    for beat_idx, r_time in enumerate(r_peak_times):
        beat_rr = rr[beat_idx]
        for _, offset_frac, amplitude, width in _PQRST_BUMPS:
            centre = r_time + offset_frac * beat_rr
            # Only evaluate the bump where it is non-negligible.
            lo = np.searchsorted(t, centre - 5 * width)
            hi = np.searchsorted(t, centre + 5 * width)
            if lo >= hi:
                continue
            window = t[lo:hi] - centre
            signal[lo:hi] += amplitude * np.exp(-0.5 * (window / width) ** 2)

    rng = np.random.default_rng(seed)
    signal += rng.normal(0.0, noise_mv, size=num_samples)
    signal += baseline_wander_mv * np.sin(2.0 * np.pi * 0.25 * t
                                          + rng.uniform(0, 2 * np.pi))
    return signal
