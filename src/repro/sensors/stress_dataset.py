"""Labelled synthetic stress recordings (drivedb substitute).

The PhysioNet driver-stress protocol records subjects through rest,
city-driving and highway-driving segments, conventionally mapped to
no / medium / high stress.  :class:`StressDatasetGenerator` mimics that
structure: each synthetic subject produces a recording of labelled
segments; each segment carries an RR-interval series and a sampled GSR
trace drawn from the stress-level-specific generators, with per-subject
random offsets so subjects differ the way real people do.

The paper (following its reference [19]) splits recordings into
equal-stress subsets — transitions between stress levels are omitted —
and extracts features over overlapping windows; the segment structure
here supports exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from repro.errors import ConfigurationError
from repro.sensors.ecg import HRVParameters, RRIntervalGenerator, hrv_parameters_for_stress
from repro.sensors.gsr import GSRGenerator, GSRParameters, gsr_parameters_for_stress

__all__ = [
    "StressLevel",
    "LabelledSegment",
    "StressRecording",
    "StressDatasetGenerator",
]


class StressLevel(IntEnum):
    """The three classes of the paper's classifier (Fig. 3)."""

    NONE = 0
    MEDIUM = 1
    HIGH = 2


@dataclass(frozen=True)
class LabelledSegment:
    """One equal-stress segment of a recording.

    Attributes:
        level: ground-truth stress level.
        rr_intervals_s: RR-interval series covering the segment.
        gsr_trace_us: sampled skin conductance in microsiemens.
        gsr_sampling_rate_hz: sample rate of ``gsr_trace_us``.
        duration_s: nominal segment duration.
    """

    level: StressLevel
    rr_intervals_s: np.ndarray = field(repr=False)
    gsr_trace_us: np.ndarray = field(repr=False)
    gsr_sampling_rate_hz: float
    duration_s: float


@dataclass(frozen=True)
class StressRecording:
    """One synthetic subject's full protocol run.

    Attributes:
        subject_id: index of the subject within the dataset.
        segments: ordered labelled segments (rest / city / highway ...).
    """

    subject_id: int
    segments: tuple[LabelledSegment, ...]

    def segments_with_level(self, level: StressLevel) -> list[LabelledSegment]:
        """All segments carrying a given label."""
        return [seg for seg in self.segments if seg.level == level]


def _jitter_hrv(base: HRVParameters, rng: np.random.Generator) -> HRVParameters:
    """Per-subject variation of the HRV operating point."""
    return HRVParameters(
        mean_rr_s=base.mean_rr_s * rng.uniform(0.92, 1.08),
        fast_sd_s=base.fast_sd_s * rng.uniform(0.8, 1.2),
        slow_sd_s=base.slow_sd_s * rng.uniform(0.8, 1.2),
        slow_pole=base.slow_pole,
        respiration_cycle_beats=base.respiration_cycle_beats * rng.uniform(0.9, 1.1),
        rsa_amplitude_s=base.rsa_amplitude_s * rng.uniform(0.8, 1.2),
    )


def _jitter_gsr(base: GSRParameters, rng: np.random.Generator) -> GSRParameters:
    """Per-subject variation of the GSR operating point."""
    return GSRParameters(
        tonic_level_us=base.tonic_level_us * rng.uniform(0.7, 1.3),
        tonic_drift_us_per_min=base.tonic_drift_us_per_min,
        scr_rate_per_min=base.scr_rate_per_min * rng.uniform(0.85, 1.15),
        scr_amplitude_us=base.scr_amplitude_us * rng.uniform(0.85, 1.15),
        scr_amplitude_sd_us=base.scr_amplitude_sd_us,
        rise_time_s=base.rise_time_s,
        recovery_time_s=base.recovery_time_s,
    )


class StressDatasetGenerator:
    """Generates drivedb-like labelled recordings.

    Args:
        segment_duration_s: duration of each equal-stress segment.
        gsr_sampling_rate_hz: GSR front-end sample rate.
        protocol: ordered stress levels of the session's segments; the
            default mirrors drivedb's rest-city-highway-city-rest drive.
        seed: master seed; subject ``i`` derives its own stream from it.
    """

    DEFAULT_PROTOCOL = (
        StressLevel.NONE,
        StressLevel.MEDIUM,
        StressLevel.HIGH,
        StressLevel.MEDIUM,
        StressLevel.NONE,
    )

    def __init__(self, segment_duration_s: float = 300.0,
                 gsr_sampling_rate_hz: float = 32.0,
                 protocol: tuple[StressLevel, ...] | None = None,
                 seed: int = 0) -> None:
        if segment_duration_s < 30.0:
            raise ConfigurationError(
                "segments shorter than 30 s cannot carry meaningful HRV windows"
            )
        self.segment_duration_s = segment_duration_s
        self.gsr_sampling_rate_hz = gsr_sampling_rate_hz
        self.protocol = tuple(protocol) if protocol is not None else self.DEFAULT_PROTOCOL
        if not self.protocol:
            raise ConfigurationError("protocol must contain at least one segment")
        self.seed = seed

    def generate_recording(self, subject_id: int) -> StressRecording:
        """One subject's recording, deterministic in (seed, subject_id)."""
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, subject_id]))
        segments = []
        for seg_index, level in enumerate(self.protocol):
            hrv = _jitter_hrv(hrv_parameters_for_stress(int(level)), rng)
            gsr = _jitter_gsr(gsr_parameters_for_stress(int(level)), rng)
            rr_gen = RRIntervalGenerator(hrv, seed=int(rng.integers(2 ** 31)))
            gsr_gen = GSRGenerator(gsr, seed=int(rng.integers(2 ** 31)))
            segments.append(LabelledSegment(
                level=level,
                rr_intervals_s=rr_gen.generate_for_duration(self.segment_duration_s),
                gsr_trace_us=gsr_gen.generate(self.segment_duration_s,
                                              self.gsr_sampling_rate_hz),
                gsr_sampling_rate_hz=self.gsr_sampling_rate_hz,
                duration_s=self.segment_duration_s,
            ))
        return StressRecording(subject_id=subject_id, segments=tuple(segments))

    def generate_dataset(self, num_subjects: int) -> list[StressRecording]:
        """Recordings for ``num_subjects`` synthetic subjects."""
        if num_subjects < 1:
            raise ConfigurationError("num_subjects must be >= 1")
        return [self.generate_recording(i) for i in range(num_subjects)]
