"""Synthetic galvanic skin response (electrodermal activity).

Skin conductance decomposes into a slowly-drifting tonic level and
phasic skin-conductance responses (SCRs): event-related bumps with a
fast rise (~1-3 s) and a slow exponential recovery (~2-10 s).  Mental
stress raises the SCR rate and amplitude — the mechanism behind the
paper's two GSR features, the height (GSRH) and length (GSRL) of
detected rising edges (following Bakker et al., which the paper cites
as [18]).

:class:`GSRGenerator` draws SCR events from a Poisson process whose
rate depends on the stress level and renders the summed conductance
trace at the front end's sampling rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["GSRParameters", "gsr_parameters_for_stress", "GSRGenerator"]


@dataclass(frozen=True)
class GSRParameters:
    """Statistical parameters of a skin-conductance trace.

    Attributes:
        tonic_level_us: baseline skin conductance in microsiemens.
        tonic_drift_us_per_min: slow linear drift of the baseline.
        scr_rate_per_min: mean SCR (phasic event) rate.
        scr_amplitude_us: mean SCR peak amplitude.
        scr_amplitude_sd_us: standard deviation of SCR amplitudes.
        rise_time_s: SCR rise time constant.
        recovery_time_s: SCR exponential recovery time constant.
    """

    tonic_level_us: float
    tonic_drift_us_per_min: float
    scr_rate_per_min: float
    scr_amplitude_us: float
    scr_amplitude_sd_us: float
    rise_time_s: float = 1.4
    recovery_time_s: float = 4.5

    def __post_init__(self) -> None:
        if self.tonic_level_us <= 0:
            raise ConfigurationError("tonic level must be positive")
        if self.scr_rate_per_min < 0:
            raise ConfigurationError("SCR rate cannot be negative")
        if self.scr_amplitude_us < 0 or self.scr_amplitude_sd_us < 0:
            raise ConfigurationError("SCR amplitudes cannot be negative")
        if self.rise_time_s <= 0 or self.recovery_time_s <= 0:
            raise ConfigurationError("SCR time constants must be positive")


# Stress raises the tonic level, the SCR rate and the SCR amplitude.
_STRESS_GSR = {
    0: GSRParameters(tonic_level_us=2.0, tonic_drift_us_per_min=0.02,
                     scr_rate_per_min=2.0, scr_amplitude_us=0.15,
                     scr_amplitude_sd_us=0.05),
    1: GSRParameters(tonic_level_us=4.0, tonic_drift_us_per_min=0.05,
                     scr_rate_per_min=6.0, scr_amplitude_us=0.35,
                     scr_amplitude_sd_us=0.12),
    2: GSRParameters(tonic_level_us=7.0, tonic_drift_us_per_min=0.10,
                     scr_rate_per_min=12.0, scr_amplitude_us=0.70,
                     scr_amplitude_sd_us=0.25),
}


def gsr_parameters_for_stress(stress_level: int) -> GSRParameters:
    """Canonical GSR parameters for a stress level in {0, 1, 2}."""
    if stress_level not in _STRESS_GSR:
        raise ConfigurationError(
            f"stress level must be 0 (none), 1 (medium) or 2 (high); got {stress_level}"
        )
    return _STRESS_GSR[stress_level]


class GSRGenerator:
    """Draws sampled skin-conductance traces.

    Args:
        params: statistical parameters of the trace.
        seed: RNG seed.
    """

    def __init__(self, params: GSRParameters, seed: int = 0) -> None:
        self.params = params
        self._rng = np.random.default_rng(seed)

    def _scr_shape(self, t: np.ndarray) -> np.ndarray:
        """Canonical SCR kernel: smooth rise then exponential recovery.

        Implemented as a difference of exponentials (a bi-exponential
        "gamma-like" bump), normalised to unit peak.
        """
        p = self.params
        shape = np.exp(-t / p.recovery_time_s) - np.exp(-t / p.rise_time_s)
        shape[t < 0] = 0.0
        peak = np.max(shape) if np.max(shape) > 0 else 1.0
        return shape / peak

    def generate(self, duration_s: float, sampling_rate_hz: float = 32.0,
                 noise_us: float = 0.005) -> np.ndarray:
        """Render a skin-conductance trace in microsiemens.

        Args:
            duration_s: trace length in seconds.
            sampling_rate_hz: sample rate of the GSR front end.
            noise_us: white measurement-noise standard deviation.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if sampling_rate_hz <= 0:
            raise ConfigurationError("sampling rate must be positive")
        p = self.params
        num_samples = int(np.floor(duration_s * sampling_rate_hz))
        t = np.arange(num_samples) / sampling_rate_hz

        trace = np.full(num_samples, p.tonic_level_us, dtype=np.float64)
        trace += p.tonic_drift_us_per_min * (t / 60.0)

        # Poisson SCR event times over the trace.
        expected_events = p.scr_rate_per_min * duration_s / 60.0
        num_events = self._rng.poisson(expected_events)
        event_times = np.sort(self._rng.uniform(0.0, duration_s, size=num_events))
        for event_time in event_times:
            amplitude = max(0.0, self._rng.normal(p.scr_amplitude_us,
                                                  p.scr_amplitude_sd_us))
            trace += amplitude * self._scr_shape(t - event_time)

        trace += self._rng.normal(0.0, noise_us, size=num_samples)
        return np.maximum(trace, 0.05)
