"""Synthetic physiological signals and the drivedb-like stress dataset.

The paper trains its stress classifier on the PhysioNet driver-stress
dataset [15], which this offline reproduction cannot download.  This
package substitutes physiologically-grounded synthetic generators:

* :mod:`repro.sensors.ecg` — an RR-interval HRV model (stress lowers
  vagally-mediated beat-to-beat variability) plus a Gaussian-bump
  PQRST waveform synthesiser.
* :mod:`repro.sensors.gsr` — tonic skin conductance with phasic
  skin-conductance responses whose rate and amplitude rise with
  stress.
* :mod:`repro.sensors.stress_dataset` — labelled multi-segment
  recordings mimicking drivedb's rest / city / highway protocol.

The downstream pipeline only consumes the five features the paper
extracts (RMSSD, SDSD, NN50, GSRH, GSRL), so what matters is that the
generators produce raw signals whose feature distributions separate
the stress classes the way the literature describes — which the
dataset tests verify.
"""

from repro.sensors.ecg import (
    HRVParameters,
    RRIntervalGenerator,
    synthesize_ecg_waveform,
    hrv_parameters_for_stress,
)
from repro.sensors.gsr import (
    GSRParameters,
    GSRGenerator,
    gsr_parameters_for_stress,
)
from repro.sensors.stress_dataset import (
    StressLevel,
    LabelledSegment,
    StressRecording,
    StressDatasetGenerator,
)
from repro.sensors.auxiliary import (
    ImuModel,
    ImuSample,
    MicrophoneModel,
    PressureSensorModel,
)

__all__ = [
    "HRVParameters",
    "RRIntervalGenerator",
    "synthesize_ecg_waveform",
    "hrv_parameters_for_stress",
    "GSRParameters",
    "GSRGenerator",
    "gsr_parameters_for_stress",
    "StressLevel",
    "LabelledSegment",
    "StressRecording",
    "StressDatasetGenerator",
    "ImuModel",
    "ImuSample",
    "MicrophoneModel",
    "PressureSensorModel",
]
