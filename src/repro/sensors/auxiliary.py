"""Auxiliary sensor models: 9-axis IMU, pressure, microphone.

The stress-detection evaluation only consumes ECG and GSR, but the
board carries three more sensors (Fig. 1) whose power states matter
for system budgets and whose data the activity-aware extensions use:

* :class:`ImuModel` — wrist accelerometer/gyroscope traces for a named
  activity (rest / walk / cycle), plus a trivial activity detector the
  power manager could gate acquisition with (no HRV feature is valid
  during heavy motion artefacts);
* :class:`PressureSensorModel` — barometric altitude with sensor noise;
* :class:`MicrophoneModel` — ambient sound pressure level, usable as a
  crude context feature.

These are deliberately small models: enough to generate plausible
numbers, carry datasheet power states (in
:mod:`repro.power.loads`), and be tested — not research-grade signal
synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ImuSample", "ImuModel", "PressureSensorModel", "MicrophoneModel"]

GRAVITY_MS2 = 9.81

# (accel RMS around gravity in m/s^2, gyro RMS in deg/s) per activity.
_ACTIVITY_LEVELS = {
    "rest": (0.05, 1.0),
    "walk": (1.2, 25.0),
    "cycle": (2.5, 60.0),
}


@dataclass(frozen=True)
class ImuSample:
    """One 9-axis sample (magnetometer omitted from the dynamics).

    Attributes:
        accel_ms2: (x, y, z) acceleration including gravity.
        gyro_dps: (x, y, z) angular rate in degrees/second.
    """

    accel_ms2: tuple[float, float, float]
    gyro_dps: tuple[float, float, float]

    @property
    def accel_magnitude(self) -> float:
        """Norm of the acceleration vector."""
        return float(np.sqrt(sum(a * a for a in self.accel_ms2)))


class ImuModel:
    """Wrist IMU traces for a named activity level.

    Args:
        activity: one of ``rest``, ``walk``, ``cycle``.
        seed: RNG seed.
    """

    def __init__(self, activity: str = "rest", seed: int = 0) -> None:
        if activity not in _ACTIVITY_LEVELS:
            valid = ", ".join(sorted(_ACTIVITY_LEVELS))
            raise ConfigurationError(
                f"unknown activity {activity!r}; expected one of: {valid}"
            )
        self.activity = activity
        self._rng = np.random.default_rng(seed)

    def generate(self, duration_s: float,
                 sampling_rate_hz: float = 100.0) -> list[ImuSample]:
        """Sampled IMU trace for the configured activity."""
        if duration_s <= 0 or sampling_rate_hz <= 0:
            raise ConfigurationError("duration and rate must be positive")
        accel_rms, gyro_rms = _ACTIVITY_LEVELS[self.activity]
        count = int(duration_s * sampling_rate_hz)
        t = np.arange(count) / sampling_rate_hz
        # Arm-swing fundamental around 1 Hz for walking, 1.5 for cycling.
        swing_hz = {"rest": 0.0, "walk": 1.0, "cycle": 1.5}[self.activity]
        swing = accel_rms * np.sin(2 * np.pi * swing_hz * t) if swing_hz else 0.0
        samples = []
        for i in range(count):
            noise = self._rng.normal(0.0, accel_rms * 0.4, size=3)
            swing_i = swing[i] if swing_hz else 0.0
            accel = (noise[0] + swing_i, noise[1], GRAVITY_MS2 + noise[2])
            gyro = tuple(self._rng.normal(0.0, gyro_rms, size=3))
            samples.append(ImuSample(accel_ms2=accel, gyro_dps=gyro))
        return samples

    @staticmethod
    def motion_intensity(samples: list[ImuSample]) -> float:
        """RMS deviation of |accel| from gravity — a motion score."""
        if not samples:
            raise ConfigurationError("need at least one sample")
        deviations = [s.accel_magnitude - GRAVITY_MS2 for s in samples]
        return float(np.sqrt(np.mean(np.square(deviations))))

    @staticmethod
    def is_still(samples: list[ImuSample], threshold_ms2: float = 0.5) -> bool:
        """Whether the wrist is still enough for a clean ECG window."""
        return ImuModel.motion_intensity(samples) < threshold_ms2


class PressureSensorModel:
    """Barometric pressure with altitude dependence and sensor noise.

    Args:
        sea_level_hpa: reference pressure.
        noise_hpa: RMS measurement noise (BMP280-class: ~0.012 hPa).
        seed: RNG seed.
    """

    def __init__(self, sea_level_hpa: float = 1013.25,
                 noise_hpa: float = 0.012, seed: int = 0) -> None:
        if sea_level_hpa <= 0:
            raise ConfigurationError("sea-level pressure must be positive")
        self.sea_level_hpa = sea_level_hpa
        self.noise_hpa = noise_hpa
        self._rng = np.random.default_rng(seed)

    def pressure_at_altitude(self, altitude_m: float) -> float:
        """Barometric formula (ISA troposphere) plus noise, in hPa."""
        clean = self.sea_level_hpa * (1.0 - 2.25577e-5 * altitude_m) ** 5.25588
        return clean + float(self._rng.normal(0.0, self.noise_hpa))

    def altitude_from_pressure(self, pressure_hpa: float) -> float:
        """Inverse barometric formula, in metres."""
        if pressure_hpa <= 0:
            raise ConfigurationError("pressure must be positive")
        ratio = pressure_hpa / self.sea_level_hpa
        return (1.0 - ratio ** (1.0 / 5.25588)) / 2.25577e-5


class MicrophoneModel:
    """Ambient sound level samples around a configured environment.

    Args:
        ambient_db_spl: mean sound pressure level.
        variability_db: RMS fluctuation.
        seed: RNG seed.
    """

    def __init__(self, ambient_db_spl: float = 45.0,
                 variability_db: float = 4.0, seed: int = 0) -> None:
        if not 0.0 <= ambient_db_spl <= 140.0:
            raise ConfigurationError("ambient level outside the SPL range")
        self.ambient_db_spl = ambient_db_spl
        self.variability_db = variability_db
        self._rng = np.random.default_rng(seed)

    def sample_spl(self, count: int = 1) -> np.ndarray:
        """Draw SPL readings in dB."""
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        return self._rng.normal(self.ambient_db_spl, self.variability_db,
                                size=count)

    def is_noisy_environment(self, threshold_db: float = 70.0,
                             window: int = 16) -> bool:
        """Whether the mean SPL over a window exceeds a threshold."""
        return float(np.mean(self.sample_spl(window))) > threshold_db
