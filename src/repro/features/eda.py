"""GSR slope features: rising-edge height (GSRH) and length (GSRL).

Following the approach the paper adopts from Bakker et al. [18]: detect
the rising edges of the skin-conductance trace (the fronts of the
phasic SCRs) and characterise each by the conductance gained across the
edge (its *height*) and its duration (its *length*).  A window's GSRH /
GSRL features are the mean height and mean length of the edges that
start inside it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["GSREdge", "detect_rising_edges", "gsr_slope_features"]


@dataclass(frozen=True)
class GSREdge:
    """One detected rising edge of the skin-conductance trace.

    Attributes:
        start_index: sample index where the rise begins.
        end_index: sample index of the local maximum ending the rise.
        height_us: conductance gained across the edge, microsiemens.
        length_s: duration of the rise, seconds.
    """

    start_index: int
    end_index: int
    height_us: float
    length_s: float


def detect_rising_edges(gsr_us, sampling_rate_hz: float,
                        min_height_us: float = 0.02,
                        min_slope_us_per_s: float = 0.01,
                        smoothing_s: float = 0.25) -> list[GSREdge]:
    """Detect sustained rising edges in a skin-conductance trace.

    The trace is lightly smoothed, segmented into maximal runs of
    positive slope above ``min_slope_us_per_s``, and each run becomes an
    edge if it gains at least ``min_height_us``.

    Args:
        gsr_us: sampled conductance in microsiemens.
        sampling_rate_hz: sample rate of the trace.
        min_height_us: minimum conductance gain to count as an edge.
        min_slope_us_per_s: minimum sustained slope during the rise.
        smoothing_s: moving-average width applied before segmentation.

    Returns:
        Detected edges in temporal order.
    """
    gsr = np.asarray(gsr_us, dtype=np.float64)
    if gsr.ndim != 1:
        raise ConfigurationError("GSR trace must be 1-D")
    if sampling_rate_hz <= 0:
        raise ConfigurationError("sampling rate must be positive")
    if gsr.size < 4:
        return []

    window = max(1, int(round(smoothing_s * sampling_rate_hz)))
    if window > 1:
        # Edge-replicated padding keeps the boundary flat; zero padding
        # would fabricate a rising edge at the start of every trace.
        pad_left = window // 2
        padded = np.pad(gsr, (pad_left, window - 1 - pad_left), mode="edge")
        smooth = np.convolve(padded, np.ones(window) / window, mode="valid")
    else:
        smooth = gsr

    slope = np.gradient(smooth) * sampling_rate_hz
    rising = slope > min_slope_us_per_s

    edges: list[GSREdge] = []
    i = 0
    n = rising.size
    while i < n:
        if not rising[i]:
            i += 1
            continue
        start = i
        while i < n and rising[i]:
            i += 1
        end = i - 1
        height = float(smooth[end] - smooth[start])
        if height >= min_height_us and end > start:
            edges.append(GSREdge(
                start_index=start,
                end_index=end,
                height_us=height,
                length_s=(end - start) / sampling_rate_hz,
            ))
    return edges


def gsr_slope_features(gsr_us, sampling_rate_hz: float,
                       **edge_kwargs) -> tuple[float, float]:
    """The paper's (GSRH, GSRL) pair for one window.

    Mean edge height and mean edge length over the detected rising
    edges; windows with no detected edge return (0, 0), which is itself
    informative (calm skin).
    """
    edges = detect_rising_edges(gsr_us, sampling_rate_hz, **edge_kwargs)
    if not edges:
        return (0.0, 0.0)
    heights = [e.height_us for e in edges]
    lengths = [e.length_s for e in edges]
    return (float(np.mean(heights)), float(np.mean(lengths)))
