"""Feature extraction for stress detection (paper, Section III).

From the ECG the paper derives three heart-rate-variability features
over the RR-interval series — RMSSD, SDSD and NN50 — and from the GSR
two slope features following Bakker et al. [18]: the height (GSRH) and
length (GSRL) of detected rising edges.  These five numbers are the
classifier's input vector (Fig. 3).

The package covers the full acquisition path: R-peak detection on the
sampled ECG (:mod:`repro.features.rpeaks`), the HRV metrics
(:mod:`repro.features.hrv`), GSR edge features
(:mod:`repro.features.eda`), overlapping windowing over equal-stress
segments (:mod:`repro.features.windows`) and the end-to-end
five-feature pipeline (:mod:`repro.features.pipeline`).
"""

from repro.features.rpeaks import detect_r_peaks, rr_intervals_from_peaks
from repro.features.hrv import rmssd, sdsd, nn50, pnn50, successive_differences
from repro.features.eda import GSREdge, detect_rising_edges, gsr_slope_features
from repro.features.windows import overlapping_windows, window_rr_series
from repro.features.pipeline import (
    FEATURE_NAMES,
    FeatureVector,
    FeatureExtractor,
    build_feature_matrix,
)
from repro.features.spectral import (
    band_power,
    hf_power,
    lf_hf_ratio,
    lf_power,
    resample_rr,
)

__all__ = [
    "detect_r_peaks",
    "rr_intervals_from_peaks",
    "rmssd",
    "sdsd",
    "nn50",
    "pnn50",
    "successive_differences",
    "GSREdge",
    "detect_rising_edges",
    "gsr_slope_features",
    "overlapping_windows",
    "window_rr_series",
    "FEATURE_NAMES",
    "FeatureVector",
    "FeatureExtractor",
    "build_feature_matrix",
    "band_power",
    "hf_power",
    "lf_hf_ratio",
    "lf_power",
    "resample_rr",
]
