"""End-to-end five-feature extraction (the classifier's input vector).

The paper's input features, in the order Fig. 3 lists them:
RMSSD, SDSD, NN50 from the ECG RR intervals; GSRL and GSRH from the
GSR rising edges.  :class:`FeatureExtractor` turns labelled segments
(from :mod:`repro.sensors.stress_dataset`) into feature matrices ready
for training, applying the overlapping windowing within equal-stress
segments only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.features.eda import gsr_slope_features
from repro.features.hrv import nn50, rmssd, sdsd
from repro.features.windows import overlapping_windows, window_rr_series
from repro.sensors.stress_dataset import LabelledSegment, StressRecording

__all__ = ["FEATURE_NAMES", "FeatureVector", "FeatureExtractor", "build_feature_matrix"]

FEATURE_NAMES = ("rmssd", "sdsd", "nn50", "gsrl", "gsrh")


@dataclass(frozen=True)
class FeatureVector:
    """One windowed observation.

    Attributes:
        rmssd_s: RMSSD over the window's RR intervals, seconds.
        sdsd_s: SDSD over the window's RR intervals, seconds.
        nn50_count: NN50 count over the window.
        gsrl_s: mean GSR rising-edge length, seconds.
        gsrh_us: mean GSR rising-edge height, microsiemens.
        label: stress level of the parent segment (None when the
            extractor runs on unlabelled data).
    """

    rmssd_s: float
    sdsd_s: float
    nn50_count: float
    gsrl_s: float
    gsrh_us: float
    label: int | None = None

    def as_array(self) -> np.ndarray:
        """The vector in FEATURE_NAMES order."""
        return np.array([self.rmssd_s, self.sdsd_s, self.nn50_count,
                         self.gsrl_s, self.gsrh_us], dtype=np.float64)


class FeatureExtractor:
    """Windowed five-feature extraction over labelled segments.

    Args:
        window_duration_s: feature window span.  The deployed watch
            acquires 3 s per detection; training uses longer windows
            (default 60 s) where the HRV statistics are stable, exactly
            as the offline feature-design work the paper builds on did.
        step_duration_s: hop between window starts (overlap =
            window - step).
        min_beats: windows with fewer RR intervals are dropped (too
            little data for the successive-difference statistics).
    """

    def __init__(self, window_duration_s: float = 60.0,
                 step_duration_s: float = 30.0,
                 min_beats: int = 4) -> None:
        if window_duration_s <= 0 or step_duration_s <= 0:
            raise ConfigurationError("window and step durations must be positive")
        if min_beats < 2:
            raise ConfigurationError("min_beats must be >= 2")
        self.window_duration_s = window_duration_s
        self.step_duration_s = step_duration_s
        self.min_beats = min_beats

    def features_for_window(self, rr_window: np.ndarray,
                            gsr_window: np.ndarray,
                            gsr_sampling_rate_hz: float,
                            label: int | None = None) -> FeatureVector | None:
        """Features for one aligned (RR, GSR) window pair.

        Returns None when the window has too few beats.
        """
        if rr_window.size < self.min_beats:
            return None
        gsrh, gsrl = gsr_slope_features(gsr_window, gsr_sampling_rate_hz)
        return FeatureVector(
            rmssd_s=rmssd(rr_window),
            sdsd_s=sdsd(rr_window),
            nn50_count=float(nn50(rr_window)),
            gsrl_s=gsrl,
            gsrh_us=gsrh,
            label=label,
        )

    def extract_from_segment(self, segment: LabelledSegment) -> list[FeatureVector]:
        """All windowed feature vectors of one equal-stress segment."""
        rr_windows = window_rr_series(segment.rr_intervals_s,
                                      self.window_duration_s,
                                      self.step_duration_s)
        gsr_window_samples = int(round(self.window_duration_s
                                       * segment.gsr_sampling_rate_hz))
        gsr_step_samples = int(round(self.step_duration_s
                                     * segment.gsr_sampling_rate_hz))
        gsr_spans = overlapping_windows(segment.gsr_trace_us.size,
                                        gsr_window_samples, gsr_step_samples)
        vectors = []
        for rr_window, (lo, hi) in zip(rr_windows, gsr_spans):
            vector = self.features_for_window(
                rr_window, segment.gsr_trace_us[lo:hi],
                segment.gsr_sampling_rate_hz, label=int(segment.level),
            )
            if vector is not None:
                vectors.append(vector)
        return vectors

    def extract_from_recording(self, recording: StressRecording) -> list[FeatureVector]:
        """All feature vectors of a recording (segment transitions omitted)."""
        vectors = []
        for segment in recording.segments:
            vectors.extend(self.extract_from_segment(segment))
        return vectors


def build_feature_matrix(vectors: list[FeatureVector]) -> tuple[np.ndarray, np.ndarray]:
    """Stack feature vectors into (features, labels) training arrays.

    Raises if any vector is unlabelled, since the output feeds
    supervised training.
    """
    if not vectors:
        raise ConfigurationError("no feature vectors to stack")
    if any(v.label is None for v in vectors):
        raise ConfigurationError("all vectors must be labelled for training")
    features = np.stack([v.as_array() for v in vectors])
    labels = np.array([v.label for v in vectors], dtype=np.int64)
    return features, labels
