"""Frequency-domain HRV features (extension beyond the paper's five).

The stress literature the paper builds on also uses spectral HRV: the
low-frequency band (LF, 0.04-0.15 Hz, mixed sympathetic/vagal) and the
high-frequency band (HF, 0.15-0.4 Hz, respiratory/vagal), with the
LF/HF ratio rising under stress as vagal tone withdraws.

RR intervals are irregularly sampled by nature, so the series is
resampled onto a uniform grid by linear interpolation before a Welch
periodogram — the standard approach.  The ablation benchmark
``benchmarks/test_ablation_features.py`` measures what these two extra
features buy the classifier on the synthetic dataset.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import welch

from repro.errors import ConfigurationError

__all__ = ["resample_rr", "band_power", "lf_power", "hf_power", "lf_hf_ratio"]

LF_BAND_HZ = (0.04, 0.15)
HF_BAND_HZ = (0.15, 0.40)
DEFAULT_RESAMPLE_HZ = 4.0


def resample_rr(rr_intervals_s, sampling_rate_hz: float = DEFAULT_RESAMPLE_HZ
                ) -> np.ndarray:
    """Resample an RR series onto a uniform time grid.

    The tachogram value at beat ``i`` (the interval length) is placed
    at that beat's end time, then linearly interpolated.

    Args:
        rr_intervals_s: RR intervals in seconds (>= 4 beats).
        sampling_rate_hz: uniform output rate.

    Returns:
        The uniformly sampled tachogram in seconds.
    """
    rr = np.asarray(rr_intervals_s, dtype=np.float64)
    if rr.ndim != 1 or rr.size < 4:
        raise ConfigurationError("spectral HRV needs >= 4 RR intervals")
    if np.any(rr <= 0):
        raise ConfigurationError("RR intervals must be positive")
    if sampling_rate_hz <= 0:
        raise ConfigurationError("sampling rate must be positive")
    beat_times = np.cumsum(rr)
    grid = np.arange(beat_times[0], beat_times[-1], 1.0 / sampling_rate_hz)
    return np.interp(grid, beat_times, rr)


def band_power(rr_intervals_s, band_hz: tuple[float, float],
               sampling_rate_hz: float = DEFAULT_RESAMPLE_HZ) -> float:
    """Tachogram power inside a frequency band, in s^2.

    Uses a Welch periodogram over the resampled series with the mean
    removed (the DC component is heart rate, not variability).
    """
    lo, hi = band_hz
    if not 0.0 <= lo < hi:
        raise ConfigurationError(f"invalid band {band_hz}")
    tachogram = resample_rr(rr_intervals_s, sampling_rate_hz)
    tachogram = tachogram - np.mean(tachogram)
    nperseg = min(256, tachogram.size)
    freqs, psd = welch(tachogram, fs=sampling_rate_hz, nperseg=nperseg)
    mask = (freqs >= lo) & (freqs < hi)
    if not np.any(mask):
        return 0.0
    return float(np.trapezoid(psd[mask], freqs[mask]))


def lf_power(rr_intervals_s) -> float:
    """Low-frequency (0.04-0.15 Hz) HRV power."""
    return band_power(rr_intervals_s, LF_BAND_HZ)


def hf_power(rr_intervals_s) -> float:
    """High-frequency (0.15-0.40 Hz) HRV power."""
    return band_power(rr_intervals_s, HF_BAND_HZ)


def lf_hf_ratio(rr_intervals_s, floor: float = 1e-12) -> float:
    """LF/HF ratio; rises under mental stress as vagal tone withdraws."""
    return lf_power(rr_intervals_s) / max(hf_power(rr_intervals_s), floor)
