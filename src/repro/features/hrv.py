"""Time-domain heart-rate-variability metrics.

The three HRV features the paper feeds its classifier, all computed on
the differences of successive RR intervals:

* **RMSSD** — root mean square of successive differences.
* **SDSD** — standard deviation of successive differences.
* **NN50** — count of adjacent interval pairs differing by > 50 ms.

``pNN50`` (the NN50 count as a fraction of pairs) is included because
it is the scale-free companion used throughout the HRV literature and
by the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["successive_differences", "rmssd", "sdsd", "nn50", "pnn50"]

NN50_THRESHOLD_S = 0.050


def _validate_rr(rr_intervals_s) -> np.ndarray:
    """Coerce an RR series to a 1-D positive float array."""
    rr = np.asarray(rr_intervals_s, dtype=np.float64)
    if rr.ndim != 1:
        raise ConfigurationError("RR series must be 1-D")
    if rr.size < 2:
        raise ConfigurationError(
            f"HRV metrics need >= 2 RR intervals, got {rr.size}"
        )
    if np.any(rr <= 0):
        raise ConfigurationError("RR intervals must be positive")
    return rr


def successive_differences(rr_intervals_s) -> np.ndarray:
    """Differences between neighbouring RR intervals, in seconds."""
    return np.diff(_validate_rr(rr_intervals_s))


def rmssd(rr_intervals_s) -> float:
    """Root mean square of successive RR differences, in seconds."""
    diffs = successive_differences(rr_intervals_s)
    return float(np.sqrt(np.mean(diffs * diffs)))


def sdsd(rr_intervals_s) -> float:
    """Standard deviation of successive RR differences, in seconds.

    Uses the population convention (ddof=0), matching the classical
    HRV definition where SDSD^2 = RMSSD^2 - mean(diff)^2.
    """
    diffs = successive_differences(rr_intervals_s)
    return float(np.std(diffs))


def nn50(rr_intervals_s) -> int:
    """Number of successive-pair differences exceeding 50 ms."""
    diffs = successive_differences(rr_intervals_s)
    return int(np.sum(np.abs(diffs) > NN50_THRESHOLD_S))


def pnn50(rr_intervals_s) -> float:
    """NN50 as a fraction of the successive pairs."""
    diffs = successive_differences(rr_intervals_s)
    return float(np.sum(np.abs(diffs) > NN50_THRESHOLD_S) / diffs.size)
