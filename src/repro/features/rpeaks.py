"""R-peak detection on a sampled single-lead ECG.

A compact Pan-Tompkins-style detector: band-pass the signal to the QRS
band, square a derivative to emphasise steep slopes, integrate over a
moving window, and pick peaks with an adaptive threshold and a
refractory period.  It is intentionally the kind of detector that fits
a microcontroller — causal filters, one adaptive threshold — because
on the real watch this runs on Mr. Wolf.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import butter, sosfiltfilt

from repro.errors import ConfigurationError

__all__ = ["detect_r_peaks", "rr_intervals_from_peaks"]

REFRACTORY_S = 0.240  # physiological floor between QRS complexes


def detect_r_peaks(ecg_mv, sampling_rate_hz: float) -> np.ndarray:
    """Detect R peaks and return their sample indices.

    Args:
        ecg_mv: sampled single-lead ECG.
        sampling_rate_hz: sample rate of the recording.

    Returns:
        Sorted integer sample indices of detected R peaks.
    """
    ecg = np.asarray(ecg_mv, dtype=np.float64)
    if ecg.ndim != 1:
        raise ConfigurationError("ECG must be 1-D")
    if sampling_rate_hz <= 0:
        raise ConfigurationError("sampling rate must be positive")
    min_samples = int(round(0.5 * sampling_rate_hz))
    if ecg.size < max(min_samples, 32):
        raise ConfigurationError(
            f"ECG too short for peak detection: {ecg.size} samples"
        )

    # 1) Band-pass to the QRS band (5-18 Hz keeps R, rejects P/T and wander).
    nyquist = sampling_rate_hz / 2.0
    high = min(18.0, 0.9 * nyquist)
    sos = butter(2, [5.0 / nyquist, high / nyquist], btype="band", output="sos")
    filtered = sosfiltfilt(sos, ecg)

    # 2) Derivative, squaring, moving-window integration (120 ms window).
    derivative = np.gradient(filtered)
    squared = derivative * derivative
    window = max(1, int(round(0.120 * sampling_rate_hz)))
    energy = np.convolve(squared, np.ones(window) / window, mode="same")

    # 3) Adaptive threshold with a refractory period.
    refractory = int(round(REFRACTORY_S * sampling_rate_hz))
    threshold = 0.30 * float(np.max(energy[: int(2.0 * sampling_rate_hz)])
                             if energy.size > 2 * sampling_rate_hz
                             else np.max(energy))
    peaks: list[int] = []
    signal_level = threshold
    i = 1
    while i < energy.size - 1:
        is_local_max = energy[i] >= energy[i - 1] and energy[i] >= energy[i + 1]
        if is_local_max and energy[i] > threshold:
            if not peaks or i - peaks[-1] >= refractory:
                peaks.append(i)
                signal_level = 0.875 * signal_level + 0.125 * energy[i]
                threshold = 0.30 * signal_level
                i += refractory
                continue
        i += 1

    # 4) Snap each detection to the steepest R peak in the raw signal.
    half = int(round(0.06 * sampling_rate_hz))
    snapped = []
    for p in peaks:
        lo, hi = max(0, p - half), min(ecg.size, p + half + 1)
        snapped.append(lo + int(np.argmax(ecg[lo:hi])))
    return np.asarray(sorted(set(snapped)), dtype=np.int64)


def rr_intervals_from_peaks(peak_indices, sampling_rate_hz: float) -> np.ndarray:
    """Convert R-peak sample indices into RR intervals in seconds."""
    peaks = np.asarray(peak_indices, dtype=np.float64)
    if peaks.ndim != 1 or peaks.size < 2:
        raise ConfigurationError("need >= 2 peaks to form RR intervals")
    if sampling_rate_hz <= 0:
        raise ConfigurationError("sampling rate must be positive")
    return np.diff(peaks) / sampling_rate_hz
