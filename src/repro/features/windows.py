"""Overlapping-window segmentation of equal-stress recordings.

The paper splits each recording into equal-stress subsets (omitting the
transitions between stress levels) and extracts features over
overlapping windows.  These helpers implement that windowing for both
sample-based traces (GSR) and event-based series (RR intervals).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["overlapping_windows", "window_rr_series"]


def overlapping_windows(num_samples: int, window_samples: int,
                        step_samples: int) -> list[tuple[int, int]]:
    """Start/end index pairs of overlapping windows over a trace.

    Windows are half-open ``[start, end)`` and only full windows are
    returned (a trailing partial window is dropped, as the paper's
    fixed-size feature extraction requires).
    """
    if window_samples < 1 or step_samples < 1:
        raise ConfigurationError("window and step must be >= 1 sample")
    if num_samples < window_samples:
        return []
    starts = range(0, num_samples - window_samples + 1, step_samples)
    return [(s, s + window_samples) for s in starts]


def window_rr_series(rr_intervals_s, window_duration_s: float,
                     step_duration_s: float) -> list[np.ndarray]:
    """Slice an RR-interval series into overlapping time windows.

    An interval belongs to a window when the beat *ending* it falls
    inside the window's time span.  Only windows fully covered by the
    series are returned.

    Args:
        rr_intervals_s: RR intervals in seconds.
        window_duration_s: window span in seconds.
        step_duration_s: hop between window starts in seconds.

    Returns:
        One RR sub-series per window (possibly empty list when the
        recording is shorter than a window).
    """
    rr = np.asarray(rr_intervals_s, dtype=np.float64)
    if rr.ndim != 1:
        raise ConfigurationError("RR series must be 1-D")
    if window_duration_s <= 0 or step_duration_s <= 0:
        raise ConfigurationError("window and step durations must be positive")
    if rr.size == 0:
        return []

    beat_end_times = np.cumsum(rr)
    total = float(beat_end_times[-1])
    if total < window_duration_s:
        return []

    windows = []
    start = 0.0
    while start + window_duration_s <= total + 1e-12:
        end = start + window_duration_s
        mask = (beat_end_times > start) & (beat_end_times <= end)
        windows.append(rr[mask])
        start += step_duration_s
    return windows
