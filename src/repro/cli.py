"""Command-line interface: paper artefacts plus the scenario API.

Artefact commands regenerate the paper's evaluation tables::

    python -m repro table1          # solar harvesting (Table I)
    python -m repro table2          # TEG harvesting (Table II)
    python -m repro table3          # runtime cycles (Table III)
    python -m repro table4          # energy per classification (Table IV)
    python -m repro detection       # per-detection energy budget
    python -m repro sustainability  # Section IV-A analysis
    python -m repro modes           # operating-mode power table
    python -m repro all             # everything above

Scenario commands drive the declarative scenario API
(:mod:`repro.scenarios`)::

    python -m repro scenarios list                       # the built-in library
    python -m repro simulate paper_indoor_worst_case     # run one scenario
    python -m repro simulate paper_indoor_worst_case --json
    python -m repro sweep --all --workers 4              # parallel batch sweep
    python -m repro sweep --all --backend process        # process-pool sweep
    python -m repro sweep --from-json my_scenarios/      # scenario files on disk
    python -m repro sweep outdoor_hiker night_shift --json
    python -m repro search cloudy_week_multi_day         # rank every policy
    python -m repro search outdoor_hiker --policy static_duty_cycle \
        --policy ewma_forecast
    python -m repro search night_shift \
        --grid '{"static_duty_cycle": {"rate_per_min": [2, 8, 24]}}' --json

Fleet commands run population studies (:mod:`repro.fleet`) — *n*
seeded-stochastic wearers over week-to-month horizons, reduced to
population statistics::

    python -m repro fleet list                           # built-in fleets
    python -m repro fleet run office_cohort_week         # run a library fleet
    python -m repro fleet run my_fleet.json --backend process --json
    python -m repro fleet compare office_cohort_week \
        --policy energy_aware --policy ewma_forecast     # paired policy study
    python -m repro fleet search office_cohort_week \
        --grid '{"static_duty_cycle": {"rate_per_min": [2, 8, 24]}}'
    python -m repro fleet run office_cohort_week \
        --shard 0/4 --out part0.json                     # one shard of four
    python -m repro fleet merge part*.json               # exact reduction

Serving commands expose the whole stack as a long-lived HTTP service
with a content-addressed result cache (:mod:`repro.serve`), and close
the loop from device telemetry back into scenarios::

    python -m repro serve --store results/ --port 8751   # fleet-as-a-service
    python -m repro serve --smoke                        # end-to-end self-check
    python -m repro ingest trace.jsonl --name commute_day \
        --out my_scenarios/                              # telemetry -> scenario
    python -m repro simulate my_scenarios/commute_day.json

Machine-readable output (``--json`` and ``--out``) is always emitted
through the shared canonical encoder
(:func:`repro.scenarios.spec.canonical_json`): sorted keys, compact
separators, ASCII.  The bytes a command prints are exactly the bytes
the result store caches for the equivalent HTTP request.

``sweep --backend`` / ``search --backend`` pick the execution
backend: ``serial``, ``thread`` (default) or ``process``.  The
process backend spawns fresh workers, so scenarios must reference
components registered at import time (the whole built-in library and
every built-in policy qualify).

``search`` holds one scenario fixed and sweeps the power policy over
a grid: ``--policy NAME`` (repeatable) compares registered policies at
their default params, ``--grid`` takes a JSON mapping of policy name
to ``{param: [values, ...]}`` axes, and with neither the whole policy
registry competes at defaults.  Results are ranked best-first
(energy-neutral, then detections/day, then final state of charge).

``simulate --json``, ``sweep --json`` and ``search --json`` emit
machine-readable results for downstream tooling (simulate includes the
harvest-cache hit/miss stats; sweep records backend and wall time);
the scenario names are the library keys listed by ``scenarios list``
(lowercase snake_case phrases describing the wearer's day).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.units import kmh_to_ms

__all__ = ["build_parser", "main"]


def _print_table1() -> None:
    from repro.harvest import calibrated_solar_harvester
    from repro.lab import HarvestTestBench

    bench = HarvestTestBench()
    solar = calibrated_solar_harvester()
    print("Table I: solar power generation (battery intake)")
    for lux, paper in ((30_000.0, "24.711 mW"), (700.0, "0.9 mW")):
        intake = bench.measure_solar_intake_w(solar.panel, solar.converter, lux)
        print(f"  {lux:8,.0f} lx : {intake * 1e3:7.3f} mW   (paper {paper})")


def _print_table2() -> None:
    from repro.harvest import calibrated_teg_harvester
    from repro.lab import HarvestTestBench

    bench = HarvestTestBench()
    teg = calibrated_teg_harvester()
    print("Table II: human-wrist TEG power (battery intake)")
    cases = [(22.0, 32.0, 0.0, "24.0 uW"),
             (15.0, 30.0, 0.0, "55.5 uW"),
             (15.0, 30.0, kmh_to_ms(42.0), "155.4 uW")]
    for ambient, skin, wind, paper in cases:
        intake = bench.measure_teg_intake_w(teg.device, teg.converter,
                                            ambient, skin, wind)
        print(f"  room {ambient:4.1f} C / skin {skin:4.1f} C / "
              f"wind {wind * 3.6:4.1f} km/h : {intake * 1e6:7.1f} uW "
              f"(paper {paper})")


def _print_table3() -> None:
    from repro.fann import build_network_a, build_network_b
    from repro.timing import ALL_PROCESSORS, cycles_for_network

    print("Table III: runtime in cycles")
    print(f"  {'network':10s}" + "".join(f"{p.key:>14s}" for p in ALL_PROCESSORS))
    for name, net in (("Network A", build_network_a()),
                      ("Network B", build_network_b())):
        cells = "".join(f"{cycles_for_network(net, p).total_cycles:>14,d}"
                        for p in ALL_PROCESSORS)
        print(f"  {name:10s}{cells}")


def _print_table4() -> None:
    from repro.fann import build_network_a, build_network_b
    from repro.timing import ALL_PROCESSORS, energy_per_inference

    print("Table IV: energy per classification [uJ]")
    print(f"  {'network':10s}" + "".join(f"{p.key:>14s}" for p in ALL_PROCESSORS))
    for name, net in (("Network A", build_network_a()),
                      ("Network B", build_network_b())):
        cells = "".join(f"{energy_per_inference(net, p).energy_uj_rounded:>14.1f}"
                        for p in ALL_PROCESSORS)
        print(f"  {name:10s}{cells}")


def _print_detection() -> None:
    from repro.core import StressDetectionApp

    budget = StressDetectionApp().energy_budget()
    paper = StressDetectionApp().paper_energy_budget()
    print("Energy per stress detection")
    print(f"  acquisition        : {budget.acquisition_j * 1e6:8.1f} uJ")
    print(f"  feature extraction : {budget.feature_extraction_j * 1e6:8.2f} uJ")
    print(f"  classification     : {budget.classification_j * 1e6:8.2f} uJ")
    print(f"  total (exact)      : {budget.total_uj:8.1f} uJ")
    print(f"  total (paper mode) : {paper.total_uj:8.1f} uJ  (paper: 602.2 uJ)")


def _print_sustainability() -> None:
    from repro.core import analyze_self_sustainability

    report = analyze_self_sustainability()
    print("Self-sustainability (paper indoor worst case)")
    print(f"  solar intake : {report.solar_energy_j:6.2f} J/day")
    print(f"  TEG intake   : {report.teg_energy_j:6.2f} J/day")
    print(f"  total        : {report.daily_intake_j:6.2f} J/day (paper 21.44 J)")
    print(f"  detections   : up to {report.detections_per_minute_floor}/minute "
          f"(paper: 24/minute)")


def _print_modes() -> None:
    from repro.core import OperatingMode, battery_lifetime_s, mode_power_w
    from repro.units import SECONDS_PER_DAY

    print("Operating modes (Section II)")
    for mode in OperatingMode:
        power = mode_power_w(mode)
        days = battery_lifetime_s(mode) / SECONDS_PER_DAY
        print(f"  {mode.value:14s}: {power * 1e3:9.4f} mW   "
              f"full battery lasts {days:9.1f} days (no harvest)")


_ARTIFACTS = {
    "table1": _print_table1,
    "table2": _print_table2,
    "table3": _print_table3,
    "table4": _print_table4,
    "detection": _print_detection,
    "sustainability": _print_sustainability,
    "modes": _print_modes,
}


# --- scenario subcommands ----------------------------------------------------

def _print_json(payload: dict) -> None:
    """Emit one ``--json`` payload through the shared canonical encoder.

    Sorted keys, compact separators, ASCII — byte-identical to what
    the serve result store caches for the same request, so piping a
    CLI result into a file and diffing it against a served response is
    a meaningful check.
    """
    from repro.scenarios.spec import canonical_json

    print(canonical_json(payload))


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import all_scenarios

    specs = all_scenarios()
    # One line per scenario: name column sized to the longest name, so
    # third-party registrations with long names keep the descriptions
    # aligned.
    width = max(len(spec.name) for spec in specs)
    print("Built-in scenario library")
    for spec in specs:
        print(f"  {spec.name:{width}s}  {spec.description}")
    return 0


def _resolve_scenario(reference: str):
    """A :class:`ScenarioSpec` from a library name or a ``.json`` path.

    The same name-or-file convention as fleets: anything that looks
    like a file (ends in ``.json``, contains a path separator, or
    exists on disk) loads as a scenario file — what ``repro ingest
    --out DIR`` writes — and everything else is a library lookup.
    """
    import os

    from repro.scenarios import get_scenario, load_scenario_file

    if (reference.endswith(".json") or os.sep in reference
            or os.path.isfile(reference)):
        return load_scenario_file(reference)
    return get_scenario(reference)


def _cmd_simulate(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.scenarios import build_simulation
    from repro.scenarios.runner import ScenarioOutcome

    from repro.units import SECONDS_PER_DAY

    spec = _resolve_scenario(args.scenario)
    # Built by hand (rather than run_scenario) so the simulation object
    # stays inspectable: the harvest-cache stats live on its harvester.
    lean = (spec if spec.trace == "none"
            else dataclasses.replace(spec, trace="none"))
    sim = build_simulation(lean)
    outcome = ScenarioOutcome.from_result(spec.name, sim.run())
    stats = getattr(sim.harvester, "stats", None)
    cache = (None if stats is None else {
        "hits": stats.hits,
        "misses": stats.misses,
        "hit_rate": round(stats.hit_rate, 4),
    })
    if args.json:
        _print_json({"spec": spec.to_dict(),
                     "outcome": outcome.to_dict(),
                     "harvest_cache": cache})
        return 0
    days = outcome.duration_s / SECONDS_PER_DAY
    print(f"Scenario: {spec.name}")
    if spec.description:
        print(f"  {spec.description}")
    print(f"  horizon    : {days:.2f} day(s), step {spec.step_s:.0f} s")
    print(f"  harvested  : {outcome.total_harvest_j:8.2f} J")
    print(f"  consumed   : {outcome.total_consumed_j:8.2f} J")
    print(f"  detections : {outcome.total_detections:8.0f} "
          f"({outcome.detections_per_day:.0f}/day)")
    print(f"  SoC        : {100 * outcome.initial_soc:.1f} % -> "
          f"{100 * outcome.final_soc:.1f} % "
          f"({'energy-neutral or better' if outcome.energy_neutral else 'draining'})")
    if cache is not None:
        print(f"  harvest memo: {cache['misses']} model solve(s), "
              f"{cache['hits']} cache hit(s) "
              f"({100 * cache['hit_rate']:.0f}% hit rate)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        ScenarioRunner,
        all_scenarios,
        get_scenario,
        load_scenario_dir,
    )

    selections = [bool(args.all_scenarios), bool(args.scenario),
                  bool(args.from_json)]
    if sum(selections) > 1:
        print("sweep: pass exactly one of --all, scenario names or "
              "--from-json", file=sys.stderr)
        return 2
    if args.all_scenarios:
        specs = all_scenarios()
    elif args.from_json:
        specs = load_scenario_dir(args.from_json)
    elif args.scenario:
        specs = [get_scenario(name) for name in args.scenario]
    else:
        print("sweep: name scenarios, pass --all, or --from-json DIR",
              file=sys.stderr)
        return 2
    sweep = ScenarioRunner(workers=args.workers,
                           backend=args.backend).run_batch(specs)
    if args.json:
        _print_json(sweep.to_dict())
    else:
        print(f"Sweep: {len(specs)} scenario(s), {args.workers} worker(s), "
              f"{sweep.backend} backend, {sweep.wall_time_s:.2f} s")
        print(sweep.format_table())
        print(f"all energy-neutral: {'yes' if sweep.all_neutral else 'no'}")
    return 0


def _parse_policy_grids(grid_json: str | None,
                        policy_names: list[str] | None) -> list:
    """The :class:`PolicyGrid` list selected by ``--grid``/``--policy``.

    Shared by ``repro search`` (one scenario) and ``repro fleet
    search`` (one population), and the same deserializer the HTTP
    endpoints use (:func:`repro.policies.grid.grids_from_mapping`), so
    a ``--grid`` string and a ``/search`` request body fail with the
    same messages.  Unknown policy names raise
    :class:`~repro.errors.SpecError` listing the registered menu.
    Returns an empty list when nothing was selected (callers then
    default to the whole registry at default params).
    """
    from repro.errors import SpecError
    from repro.policies import grids_from_mapping

    parsed = None
    if grid_json:
        try:
            parsed = json.loads(grid_json)
        except json.JSONDecodeError as exc:
            raise SpecError(f"--grid is not valid JSON: {exc}") from None
    return grids_from_mapping(parsed, policy_names or (), what="--grid")


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.policies import PolicyGrid, default_policy_names
    from repro.scenarios import ScenarioRunner, get_scenario

    spec = get_scenario(args.scenario)
    grids = _parse_policy_grids(args.grid, args.policy)
    if not grids:
        # No selection: every default-buildable policy competes
        # (trained policies need weights, so they must be named).
        grids = [PolicyGrid(name) for name in default_policy_names()]

    runner = ScenarioRunner(workers=args.workers, backend=args.backend)
    result = runner.run_grid(spec, grids)
    if args.json:
        _print_json(result.to_dict())
        return 0
    print(f"Policy search: {spec.name} — {len(result.entries)} grid "
          f"point(s), {len(result.policy_names)} policy(ies), "
          f"{result.backend} backend, {result.wall_time_s:.2f} s")
    print(result.format_table())
    best = result.best
    print(f"best: {best.label} "
          f"({best.outcome.detections_per_day:.0f} detections/day, "
          f"{'energy-neutral' if best.outcome.energy_neutral else 'draining'})")
    return 0


def _write_text(text: str, out: str | None, what: str) -> None:
    """Write ``text`` to ``--out FILE`` (or stdout when omitted)."""
    from repro.errors import SpecError

    if out:
        try:
            with open(out, "w") as handle:
                handle.write(text)
        except OSError as exc:
            raise SpecError(f"cannot write --out file {out}: {exc}") from None
        print(f"wrote {out} ({what})")
    else:
        sys.stdout.write(text)


def _cmd_learn(args: argparse.Namespace) -> int:
    if args.learn_command == "dataset":
        from repro.learn import DatasetSpec, generate_dataset

        spec = DatasetSpec(fleet=args.fleet, wearers=args.wearers,
                           stride=args.stride, lookahead_s=args.lookahead)
        shard = _parse_shard(args.shard) if args.shard else None
        dataset = generate_dataset(spec, shard=shard)
        _write_text(dataset.to_jsonl(), args.out,
                    f"{len(dataset.samples)} samples from "
                    f"{len(dataset.wearers)} wearer(s)")
        return 0

    if args.learn_command == "merge":
        from repro.learn import Dataset, load_dataset_file

        merged = Dataset.merge([load_dataset_file(path)
                                for path in args.files])
        _write_text(merged.to_jsonl(), args.out,
                    f"{len(merged.samples)} samples from "
                    f"{len(merged.wearers)} wearer(s)")
        return 0

    if args.learn_command == "train":
        from repro.errors import SpecError
        from repro.learn import TrainSpec, load_dataset_file, train_policy

        try:
            hidden = tuple(int(width) for width in args.hidden.split(","))
        except ValueError:
            raise SpecError(
                f"--hidden must be comma-separated layer widths "
                f"(e.g. 8 or 8,4), got {args.hidden!r}") from None
        dataset = load_dataset_file(args.dataset)
        spec = TrainSpec(hidden=hidden, epochs=args.epochs, seed=args.seed,
                         desired_mse=args.desired_mse,
                         max_rate_per_min=args.max_rate)
        trained = train_policy(dataset, spec)
        _emit_payload(trained.to_dict(), args.out)
        if args.out:
            print(f"trained on {trained.samples} samples: "
                  f"{trained.epochs_run} epoch(s), final MSE "
                  f"{trained.final_mse:.5f}"
                  f"{' (converged)' if trained.converged else ''}")
        return 0

    # learn eval: the trained policy against every built-in on a fleet.
    from repro.learn import evaluate_trained, load_trained_file

    trained = load_trained_file(args.trained)
    fleet = _resolve_fleet(args.fleet) if args.fleet else None
    report = evaluate_trained(trained, fleet=fleet,
                              include_quantized=not args.no_quantized,
                              workers=args.workers, backend=args.backend)
    if args.json or args.out:
        _emit_payload(report.to_dict(), args.out)
        return 0
    comparison = report.comparison
    print(f"Learned-policy evaluation: {report.fleet} — "
          f"{len(comparison.entries)} policy(ies), {comparison.backend} "
          f"backend, {comparison.wall_time_s:.2f} s")
    print(comparison.format_table())
    gap = report.gap
    if gap["gap_closed"] is None:
        print(f"gap: {gap['oracle']} opens no {gap['metric']} gap over "
              f"{gap['baseline']} on this fleet")
    else:
        print(f"gap closed: {100 * gap['gap_closed']:.1f}% of "
              f"{gap['baseline']} -> {gap['oracle']} on {gap['metric']} "
              f"({gap['baseline_value']:.0f} -> {gap['candidate_value']:.0f} "
              f"vs oracle {gap['oracle_value']:.0f})")
        quantized = gap.get("quantized")
        if quantized and quantized["gap_closed"] is not None:
            print(f"quantized (learned_q): "
                  f"{100 * quantized['gap_closed']:.1f}% closed")
    deployment = report.deployment
    print(f"deployment: {deployment['total_flash_bytes']} B flash, "
          f"{deployment['buffer_bytes']} B activation buffers — "
          f"nRF52 RAM {'OK' if deployment['fits_nrf52_ram'] else 'EXCEEDED'}, "
          f"Mr. Wolf L1 {'OK' if deployment['fits_mrwolf_l1'] else 'EXCEEDED'}")
    return 0


def _resolve_fleet(reference: str):
    """A :class:`FleetSpec` from a library name or a ``.json`` path.

    Anything that looks like a file (ends in ``.json``, contains a
    path separator, or exists on disk) is loaded as a fleet file;
    everything else is looked up in the built-in fleet library.
    """
    import os

    from repro.fleet import get_fleet, load_fleet_file

    if (reference.endswith(".json") or os.sep in reference
            or os.path.isfile(reference)):
        return load_fleet_file(reference)
    return get_fleet(reference)


def _parse_shard(text: str) -> tuple[int, int]:
    """``(index, count)`` from the CLI's ``I/N`` spelling."""
    import re

    from repro.errors import SpecError

    match = re.fullmatch(r"(\d+)/(\d+)", text)
    if not match:
        raise SpecError(
            f"--shard must look like I/N (e.g. 0/4), got {text!r}")
    return int(match.group(1)), int(match.group(2))


def _emit_payload(payload: dict, out: str | None) -> None:
    """Print a JSON payload, or write it to ``--out FILE``.

    Write failures are user errors (bad path, permissions), reported
    as a clean ``error:`` exit — losing a finished shard computation
    to a traceback would be the worst possible ending.
    """
    from repro.errors import SpecError
    from repro.scenarios.spec import canonical_json

    text = canonical_json(payload)
    if out:
        try:
            with open(out, "w") as handle:
                handle.write(text + "\n")
        except OSError as exc:
            raise SpecError(f"cannot write --out file {out}: {exc}") from None
        print(f"wrote {out}")
    else:
        print(text)


def _cmd_fleet(args: argparse.Namespace) -> int:
    if args.fleet_command == "list":
        from repro.fleet import all_fleets

        fleets = all_fleets()
        width = max(len(spec.name) for spec in fleets)
        print("Built-in fleet library")
        for spec in fleets:
            shape = (f"{spec.n_wearers} x {spec.horizon_days}d "
                     f"on {spec.base_scenario}")
            print(f"  {spec.name:{width}s}  {shape:40s}  {spec.description}")
        return 0

    if args.fleet_command == "merge":
        from repro.fleet import FleetResult, load_partial_file

        parts = [load_partial_file(path) for path in args.files]
        result = FleetResult.merge(parts)
        if args.json or args.out:
            _emit_payload({"spec": parts[0].spec.to_dict(),
                           "result": result.to_dict()}, args.out)
            return 0
        print(result.format_summary())
        print(f"  merged     : {len(parts)} shard(s), "
              f"{result.wall_time_s:.2f} s total shard wall time")
        return 0

    if args.fleet_command == "orchestrate":
        from pathlib import Path

        from repro.errors import SpecError
        from repro.fleet import orchestrate, plan_manifest, write_manifest
        from repro.fleet.orchestrate import MANIFEST_NAME

        workspace = Path(args.dir)
        manifest_path = workspace / MANIFEST_NAME
        if args.resume:
            if not manifest_path.is_file():
                raise SpecError(
                    f"--resume: no manifest at {manifest_path}; start a "
                    "campaign first with --fleet or --chaos")
        else:
            if manifest_path.is_file():
                raise SpecError(
                    f"{manifest_path} already exists; pass --resume to "
                    "continue it (finished shards are reused), or pick "
                    "a fresh directory")
            if bool(args.fleet) == bool(args.chaos):
                raise SpecError(
                    "orchestrate needs exactly one of --fleet or "
                    "--chaos (or --resume on an existing directory)")
            if args.fleet:
                kind, spec = "fleet", _resolve_fleet(args.fleet)
            else:
                from repro.chaos import load_chaos_file

                kind, spec = "chaos", load_chaos_file(args.chaos)
            manifest = plan_manifest(
                kind, spec, shard_count=args.shards,
                timeout_s=args.timeout, max_attempts=args.retries + 1,
                backoff_s=args.backoff, workers=args.workers,
                backend=args.backend)
            write_manifest(workspace, manifest)
        summary = orchestrate(workspace,
                              echo=None if args.json else print)
        if args.json:
            _print_json(summary)
            return 0
        print(f"orchestrate: {summary['kind']} campaign complete — "
              f"{summary['reused']} shard(s) reused, "
              f"{summary['ran']} ran")
        print(f"  merged : {summary['merged_out']}")
        print(f"  sha256 : {summary['sha256']}")
        if "verdicts" in summary:
            verdicts = summary["verdicts"]
            print(f"  judged : pass {verdicts['pass']}, survival "
                  f"failures {verdicts['survival_failure']}, "
                  f"violations {verdicts['violation']}")
        return 0

    from repro.fleet import FleetRunner

    fleet = _resolve_fleet(args.fleet)
    runner = FleetRunner(workers=args.workers, backend=args.backend)

    if args.fleet_command == "run":
        if args.shard:
            # A shard is machine food for `fleet merge`, not a report:
            # it always emits the partial JSON payload.
            partial = runner.run(fleet, shard=_parse_shard(args.shard))
            _emit_payload(partial.to_dict(), args.out)
            return 0
        result = runner.run(fleet)
        if args.json or args.out:
            _emit_payload({"spec": fleet.to_dict(),
                           "result": result.to_dict()}, args.out)
            return 0
        print(result.format_summary())
        print(f"  backend    : {result.backend}, "
              f"{result.wall_time_s:.2f} s wall time")
        return 0

    if args.fleet_command == "search":
        # fleet search: every grid candidate against one sampled
        # population, ranked by the comparison ordering.
        from repro.policies import PolicyGrid, default_policy_names

        grids = _parse_policy_grids(args.grid, args.policy)
        if not grids:
            # No selection: every default-buildable policy competes.
            grids = [PolicyGrid(name) for name in default_policy_names()]
        result = runner.run_grid(fleet, grids)
        if args.json:
            _print_json({"spec": fleet.to_dict(),
                         "search": result.to_dict()})
            return 0
        print(f"Fleet policy search: {fleet.name} — {fleet.n_wearers} "
              f"wearer(s) x {fleet.horizon_days} day(s), "
              f"{len(result.entries)} candidate(s), "
              f"{len(result.policy_names)} policy(ies), {result.backend} "
              f"backend, {result.wall_time_s:.2f} s")
        print(result.format_table())
        best = result.best
        print(f"best: {best.label} "
              f"({100 * best.result.fraction_energy_neutral:.0f}% "
              f"energy-neutral, p5 final SoC "
              f"{100 * best.result.final_soc.p5:.1f}%, median "
              f"{best.result.detections_per_day.p50:.0f} detections/day)")
        return 0

    # fleet compare: the same sampled population under each policy.
    from repro.policies import default_policy_names
    from repro.scenarios.spec import PolicySpec

    names = list(args.policy or ())
    if not names:
        # No selection: every default-buildable policy competes.
        names = default_policy_names()
    comparison = runner.compare(fleet, [PolicySpec(name) for name in names])
    if args.json:
        _print_json({"spec": fleet.to_dict(),
                     "comparison": comparison.to_dict()})
        return 0
    print(f"Fleet policy comparison: {fleet.name} — {fleet.n_wearers} "
          f"wearer(s) x {fleet.horizon_days} day(s), "
          f"{len(comparison.entries)} policy(ies), {comparison.backend} "
          f"backend, {comparison.wall_time_s:.2f} s")
    print(comparison.format_table())
    best = comparison.best
    print(f"best: {best.label} "
          f"(p5 final SoC {100 * best.result.final_soc.p5:.1f}%, "
          f"median {best.result.detections_per_day.p50:.0f} detections/day)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import run_smoke, serve_forever

    if args.smoke:
        import tempfile

        if args.store:
            summary = run_smoke(args.store, workers=args.workers,
                                backend=args.backend)
        else:
            # The self-check must start cold — an ephemeral store
            # guarantees the first request is a genuine miss.
            with tempfile.TemporaryDirectory() as scratch:
                summary = run_smoke(scratch, workers=args.workers,
                                    backend=args.backend)
        _print_json(summary)
        return 0
    serve_forever(args.store or ".repro-store", host=args.host,
                  port=args.port, workers=args.workers,
                  backend=args.backend,
                  request_timeout_s=args.timeout)
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.serve import ResultStore

    store = ResultStore(args.store)
    summary = store.gc(max_bytes=args.max_bytes)
    if args.json:
        _print_json(summary)
        return 0
    print(f"store gc: {args.store}")
    print(f"  before : {summary['entries_before']} entry(ies), "
          f"{summary['bytes_before']} bytes")
    print(f"  evicted: {summary['evicted']} entry(ies), "
          f"{summary['evicted_bytes']} bytes (LRU, budget "
          f"{summary['max_bytes']} bytes)")
    print(f"  after  : {summary['entries_after']} entry(ies), "
          f"{summary['bytes_after']} bytes")
    return 0


def _parse_axis(text: str):
    """A ``--axis NAME`` or ``--axis NAME:{json params}`` argument."""
    import json as json_module

    from repro.chaos import ChaosAxisSpec
    from repro.errors import SpecError

    name, _, params_text = text.partition(":")
    params = {}
    if params_text:
        try:
            params = json_module.loads(params_text)
        except ValueError as exc:
            raise SpecError(
                f"--axis {name!r}: params must be a JSON object, "
                f"got {params_text!r} ({exc})") from None
        if not isinstance(params, dict):
            raise SpecError(
                f"--axis {name!r}: params must be a JSON object, "
                f"got {type(params).__name__}")
    return ChaosAxisSpec(name=name, params=params)


def _resolve_campaign(args: argparse.Namespace):
    """The campaign spec: a ChaosSpec JSON file, or built from flags."""
    from repro.chaos import ChaosSpec, load_chaos_file

    if args.spec:
        return load_chaos_file(args.spec)
    return ChaosSpec(
        name=args.name,
        base_scenario=args.base_scenario,
        n_cases=args.cases,
        horizon_days=args.days,
        seed=args.seed,
        axes=tuple(_parse_axis(text) for text in (args.axis or ())),
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.chaos_command == "axes":
        from repro.chaos import AXES, axis_names

        print("Registered chaos axes")
        for name in axis_names():
            doc = (AXES.get(name).__doc__ or "").strip().splitlines()
            print(f"  {name:22s}  {doc[0] if doc else ''}")
        return 0

    if args.chaos_command == "generate":
        from repro.chaos import generate_payload

        spec = _resolve_campaign(args)
        _emit_payload(generate_payload(spec), args.out)
        return 0

    if args.chaos_command == "run":
        from repro.chaos import ChaosRunner, format_report
        from repro.scenarios.spec import PolicySpec

        spec = _resolve_campaign(args)
        runner = ChaosRunner(workers=args.workers, backend=args.backend)
        policies = ([PolicySpec(name) for name in args.policy]
                    if args.policy else None)
        if args.shard:
            # A shard is machine food for merging, not a report.
            partial = runner.run(spec, policies=policies,
                                 shard=_parse_shard(args.shard))
            _emit_payload(partial.to_dict(), args.out)
            return 0
        result = runner.run(spec, policies=policies)
        if args.json or args.out:
            _emit_payload(result.to_dict(), args.out)
            return 0
        print(format_report(result))
        return 0

    # chaos report: digest result files, optionally promote failures.
    from repro.chaos import (CampaignResult, PartialCampaignResult,
                             format_report, load_campaign_result,
                             promote_failures)
    from repro.errors import SpecError

    loaded = [load_campaign_result(path) for path in args.files]
    full = [r for r in loaded if isinstance(r, CampaignResult)]
    partial = [r for r in loaded if isinstance(r, PartialCampaignResult)]
    if full and partial:
        raise SpecError("chaos report: mix of full and partial campaign "
                        "results; pass either one full result or a "
                        "complete set of shards")
    if len(full) > 1:
        raise SpecError("chaos report: pass exactly one full campaign "
                        f"result, got {len(full)}")
    result = full[0] if full else CampaignResult.merge(partial)
    if args.json:
        _print_json({"result": result.to_dict(),
                     "verdicts": result.counts()})
    else:
        print(format_report(result, limit=args.limit))
    if args.promote:
        paths = promote_failures(result, args.promote, limit=args.limit)
        for path in paths:
            print(f"promoted: {path}")
        if not paths:
            print("promoted: nothing (no failures to promote)")
    if args.fail_on_violation and result.violations:
        print(f"error: {len(result.violations)} invariant violation(s)",
              file=sys.stderr)
        return 3
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.serve import ingest_file

    options = {"harvester": args.harvester,
               "ambient_c": args.ambient,
               "skin_c": args.skin,
               "detection_tag": args.detection_tag,
               "step_s": args.step}
    spec, path = ingest_file(args.trace, args.name, out_dir=args.out,
                             **options)
    if args.json:
        _print_json({"spec": spec.to_dict(),
                     "path": None if path is None else str(path)})
        return 0
    segments = spec.timeline.segments
    total_s = sum(segment.duration_s for segment in segments)
    print(f"Ingested: {args.trace} -> scenario {spec.name!r}")
    print(f"  span       : {total_s / 3600.0:.2f} h across "
          f"{len(segments)} segment(s)")
    for segment in segments:
        label = segment.label or "(untagged)"
        print(f"    {label:20s} {segment.duration_s / 60.0:7.1f} min "
              f"at {segment.lux:10.1f} lx")
    rate = spec.system.policy.params.get("rate_per_min", 0.0)
    print(f"  load model : {spec.system.policy.name} "
          f"({rate:g} detections/min observed)")
    if path is not None:
        print(f"  wrote      : {path}")
        print(f"  run it     : python -m repro simulate {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The complete ``repro`` argument parser.

    Exposed separately from :func:`main` so tooling (the docs-check
    script, shell-completion generators) can enumerate every
    subcommand without executing one.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="InfiniWolf reproduction: regenerate the paper's "
                    "evaluation artefacts and run day-in-the-life scenarios.",
    )
    sub = parser.add_subparsers(dest="command", required=True,
                                metavar="command")

    for name in sorted(_ARTIFACTS) + ["all"]:
        sub.add_parser(name, help=f"regenerate the {name} artefact"
                       if name != "all" else "regenerate every artefact")

    p_scenarios = sub.add_parser(
        "scenarios", help="inspect the built-in scenario library")
    p_scenarios.add_argument("action", choices=["list"],
                             help="what to do with the library")

    p_simulate = sub.add_parser(
        "simulate", help="run one named scenario end to end")
    p_simulate.add_argument("scenario", help="library scenario name "
                            "(see `scenarios list`) or a ScenarioSpec "
                            "*.json file (e.g. written by `ingest --out`)")
    p_simulate.add_argument("--json", action="store_true",
                            help="emit the spec and outcome as JSON")

    p_sweep = sub.add_parser(
        "sweep", help="run a batch of scenarios in parallel")
    p_sweep.add_argument("scenario", nargs="*",
                         help="library scenario names to sweep")
    p_sweep.add_argument("--all", dest="all_scenarios", action="store_true",
                         help="sweep every library scenario")
    p_sweep.add_argument("--from-json", metavar="DIR",
                         help="sweep every *.json scenario file in DIR "
                              "(one ScenarioSpec payload per file)")
    p_sweep.add_argument("--workers", type=int, default=4,
                         help="parallel workers (default 4)")
    p_sweep.add_argument("--backend", choices=["serial", "thread", "process"],
                         default="thread",
                         help="execution backend (default thread; process "
                              "spawns workers and needs import-time "
                              "registered components)")
    p_sweep.add_argument("--json", action="store_true",
                         help="emit the sweep result as JSON")

    p_search = sub.add_parser(
        "search", help="grid-search power policies over one scenario")
    p_search.add_argument("scenario", help="library scenario name to hold "
                          "fixed while policies vary")
    p_search.add_argument("--policy", action="append", metavar="NAME",
                          help="registered policy to include at default "
                               "params (repeatable)")
    p_search.add_argument("--grid", metavar="JSON",
                          help="JSON object: policy name -> "
                               "{param: [values, ...]} axes to sweep")
    p_search.add_argument("--workers", type=int, default=4,
                          help="parallel workers (default 4)")
    p_search.add_argument("--backend", choices=["serial", "thread", "process"],
                          default="thread",
                          help="execution backend (default thread)")
    p_search.add_argument("--json", action="store_true",
                          help="emit the ranked grid result as JSON")

    p_fleet = sub.add_parser(
        "fleet", help="population studies: stochastic wearer fleets")
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True,
                                       metavar="action")
    fleet_sub.add_parser("list", help="inspect the built-in fleet library")

    def _fleet_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("fleet", help="library fleet name (see `fleet list`) "
                       "or a FleetSpec *.json file")
        p.add_argument("--workers", type=int, default=4,
                       help="parallel workers (default 4)")
        p.add_argument("--backend",
                       choices=["serial", "thread", "process", "vector"],
                       default="thread",
                       help="execution backend (default thread; wearer "
                            "scenarios are self-contained, so process "
                            "works for every fleet, and vector steps "
                            "the whole population as numpy arrays with "
                            "a bitwise-identical result)")
        p.add_argument("--json", action="store_true",
                       help="emit the fleet spec and result as JSON")

    p_fleet_run = fleet_sub.add_parser(
        "run", help="sample, sweep and summarise one fleet (or one "
                    "shard of it)")
    _fleet_common(p_fleet_run)
    p_fleet_run.add_argument(
        "--shard", metavar="I/N",
        help="run only shard I of an N-way partition (wearers with "
             "index %% N == I) and emit a partial result for "
             "`fleet merge`")
    p_fleet_run.add_argument(
        "--out", metavar="FILE",
        help="write the JSON payload to FILE instead of stdout")

    p_fleet_compare = fleet_sub.add_parser(
        "compare", help="rerun one sampled population under several "
                        "policies (ranked by fraction energy-neutral, "
                        "then p5 final SoC, then median detections/day)")
    _fleet_common(p_fleet_compare)
    p_fleet_compare.add_argument(
        "--policy", action="append", metavar="NAME",
        help="registered policy to include at default params "
             "(repeatable; default: every registered policy)")

    p_fleet_search = fleet_sub.add_parser(
        "search", help="grid-search power policies over one sampled "
                       "population (paired across candidates, same "
                       "ranking as compare)")
    _fleet_common(p_fleet_search)
    p_fleet_search.add_argument(
        "--policy", action="append", metavar="NAME",
        help="registered policy to include at default params "
             "(repeatable)")
    p_fleet_search.add_argument(
        "--grid", metavar="JSON",
        help="JSON object: policy name -> {param: [values, ...]} axes "
             "to sweep")

    p_fleet_merge = fleet_sub.add_parser(
        "merge", help="reduce partial shard results to the exact "
                      "unsharded fleet result")
    p_fleet_merge.add_argument(
        "files", nargs="+", metavar="PART.json",
        help="partial result files written by `fleet run --shard I/N "
             "--out PART.json`; together they must cover every wearer "
             "exactly once")
    p_fleet_merge.add_argument("--json", action="store_true",
                               help="emit the fleet spec and merged "
                                    "result as JSON")
    p_fleet_merge.add_argument(
        "--out", metavar="FILE",
        help="write the JSON payload to FILE instead of stdout")

    p_fleet_orch = fleet_sub.add_parser(
        "orchestrate", help="drive a sharded fleet or chaos campaign "
                            "to completion: manifest on disk, "
                            "per-shard timeout, bounded retry with "
                            "backoff, crash-safe resume, exact merge")
    p_fleet_orch.add_argument(
        "dir", help="campaign workspace directory (holds the manifest, "
                    "shard outputs and the merged result)")
    p_fleet_orch.add_argument(
        "--fleet", metavar="NAME|FILE",
        help="start a fleet campaign: library fleet name or FleetSpec "
             "*.json file")
    p_fleet_orch.add_argument(
        "--chaos", metavar="FILE",
        help="start a chaos campaign: ChaosSpec *.json file (or a "
             "`chaos generate --out` envelope)")
    p_fleet_orch.add_argument(
        "--resume", action="store_true",
        help="continue the campaign already in DIR: shards whose "
             "outputs are on disk and valid are never re-simulated")
    p_fleet_orch.add_argument("--shards", type=int, default=4,
                              help="how many shard tasks (default 4)")
    p_fleet_orch.add_argument(
        "--timeout", type=float, default=600.0,
        help="per-shard wall-clock ceiling in seconds (default 600)")
    p_fleet_orch.add_argument(
        "--retries", type=int, default=2,
        help="retries per shard after the first attempt (default 2)")
    p_fleet_orch.add_argument(
        "--backoff", type=float, default=1.0,
        help="base of the exponential retry backoff in seconds "
             "(default 1.0)")
    p_fleet_orch.add_argument("--workers", type=int, default=4,
                              help="workers per shard task (default 4)")
    p_fleet_orch.add_argument(
        "--backend", choices=["serial", "thread", "process"],
        default="thread", help="backend per shard task (default thread)")
    p_fleet_orch.add_argument("--json", action="store_true",
                              help="emit the final summary as JSON")

    p_chaos = sub.add_parser(
        "chaos", help="chaos engineering: fault-injected adversarial "
                      "campaigns with an invariant judge")
    chaos_sub = p_chaos.add_subparsers(dest="chaos_command", required=True,
                                       metavar="action")
    chaos_sub.add_parser("axes", help="list the registered fault axes")

    def _chaos_campaign_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("spec", nargs="?",
                       help="ChaosSpec *.json file (or a `chaos "
                            "generate --out` envelope); omit to build "
                            "a campaign from the flags below")
        p.add_argument("--name", default="chaos",
                       help="campaign name when no spec file is given "
                            "(default 'chaos')")
        p.add_argument("--base-scenario", default="paper_indoor_worst_case",
                       help="library scenario the strategist mutates "
                            "(default paper_indoor_worst_case)")
        p.add_argument("--cases", type=int, default=8,
                       help="adversarial cases to compose (default 8)")
        p.add_argument("--days", type=int, default=2,
                       help="per-case horizon in days (default 2)")
        p.add_argument("--seed", type=int, default=0,
                       help="campaign seed; case i draws from "
                            "Random(seed + i) (default 0)")
        p.add_argument("--axis", action="append", metavar="NAME[:JSON]",
                       help="fault axis to apply, optionally with "
                            "params, e.g. battery_aging:"
                            "{\"min_fade\": 0.4} (repeatable; default: "
                            "every registered axis)")

    p_chaos_gen = chaos_sub.add_parser(
        "generate", help="compose the campaign's adversarial scenarios "
                         "(seeded, bitwise-reproducible) without "
                         "running them")
    _chaos_campaign_args(p_chaos_gen)
    p_chaos_gen.add_argument("--out", metavar="FILE",
                             help="write the JSON payload to FILE "
                                  "instead of stdout")

    p_chaos_run = chaos_sub.add_parser(
        "run", help="run every policy over the campaign's cases under "
                    "the invariant judge (or one shard of it)")
    _chaos_campaign_args(p_chaos_run)
    p_chaos_run.add_argument(
        "--policy", action="append", metavar="NAME",
        help="registered policy to include at default params "
             "(repeatable; default: every registered policy)")
    p_chaos_run.add_argument("--workers", type=int, default=4,
                             help="parallel workers (default 4)")
    p_chaos_run.add_argument(
        "--backend", choices=["serial", "thread", "process"],
        default="thread",
        help="execution backend (default thread; cases are "
             "self-contained, so process works)")
    p_chaos_run.add_argument(
        "--shard", metavar="I/N",
        help="run only shard I of an N-way partition (cases with "
             "index %% N == I) and emit a partial result")
    p_chaos_run.add_argument("--out", metavar="FILE",
                             help="write the JSON payload to FILE "
                                  "instead of stdout")
    p_chaos_run.add_argument("--json", action="store_true",
                             help="emit the judged campaign result as "
                                  "JSON")

    p_chaos_report = chaos_sub.add_parser(
        "report", help="digest judged campaign results; optionally "
                       "promote the worst failures to regression "
                       "scenarios")
    p_chaos_report.add_argument(
        "files", nargs="+", metavar="RESULT.json",
        help="one full campaign result, or a complete set of `chaos "
             "run --shard` partials (merged exactly)")
    p_chaos_report.add_argument(
        "--promote", metavar="DIR",
        help="write the most severe failures as self-contained "
             "regression scenario files under DIR")
    p_chaos_report.add_argument(
        "--limit", type=int, default=10,
        help="failures to list (and, with --promote, the promotion "
             "cap; default 10)")
    p_chaos_report.add_argument(
        "--fail-on-violation", action="store_true",
        help="exit 3 when any run violated a simulator invariant")
    p_chaos_report.add_argument("--json", action="store_true",
                                help="emit the result and verdict "
                                     "totals as JSON")

    p_store = sub.add_parser(
        "store", help="maintain a result store directory")
    store_sub = p_store.add_subparsers(dest="store_command", required=True,
                                       metavar="action")
    p_store_gc = store_sub.add_parser(
        "gc", help="evict least-recently-used entries until the store "
                   "fits a byte budget")
    p_store_gc.add_argument("store", metavar="DIR",
                            help="result store directory")
    p_store_gc.add_argument(
        "--max-bytes", type=int, required=True,
        help="byte budget the surviving entries must fit in "
             "(0 empties the store)")
    p_store_gc.add_argument("--json", action="store_true",
                            help="emit the eviction summary as JSON")

    p_serve = sub.add_parser(
        "serve", help="run the fleet service: an HTTP API over the "
                      "scenario/fleet runners with a content-addressed "
                      "result cache")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8751,
                         help="listen port (default 8751; 0 picks a "
                              "free ephemeral port)")
    p_serve.add_argument("--store", metavar="DIR",
                         help="result store directory (default "
                              ".repro-store; created if missing)")
    p_serve.add_argument("--workers", type=int, default=4,
                         help="simulation workers per request (default 4)")
    p_serve.add_argument("--backend",
                         choices=["serial", "thread", "process"],
                         default="thread",
                         help="simulation backend (default thread)")
    p_serve.add_argument("--smoke", action="store_true",
                         help="start a throwaway server, submit one "
                              "fleet twice, assert the resubmission is "
                              "a bitwise-identical cache hit, and exit")
    p_serve.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-request wall-clock ceiling; a "
                              "request still running after this long "
                              "gets a 504 JSON error (default: none)")

    p_ingest = sub.add_parser(
        "ingest", help="fit a streamed power-telemetry trace (JSONL of "
                       "{t_s, power_w, event} records) into a runnable "
                       "scenario")
    p_ingest.add_argument("trace", metavar="TRACE.jsonl",
                          help="telemetry trace file, one JSON record "
                               "per line")
    p_ingest.add_argument("--name", required=True,
                          help="name for the fitted scenario (and its "
                               "--out file)")
    p_ingest.add_argument("--out", metavar="DIR",
                          help="register the scenario as DIR/NAME.json "
                               "(loadable by `simulate` and `sweep "
                               "--from-json`)")
    p_ingest.add_argument("--harvester", default="calibrated_dual",
                          help="registered harvester chain to invert "
                               "the power readings through (default "
                               "calibrated_dual)")
    p_ingest.add_argument("--ambient", type=float, default=22.0,
                          help="assumed air temperature during the "
                               "trace, Celsius (default 22.0)")
    p_ingest.add_argument("--skin", type=float, default=32.0,
                          help="assumed skin temperature during the "
                               "trace, Celsius (default 32.0)")
    p_ingest.add_argument("--detection-tag", default="detection",
                          help="event tag marking one detection "
                               "(default 'detection')")
    p_ingest.add_argument("--step", type=float, default=60.0,
                          help="simulation step for the fitted "
                               "scenario, seconds (default 60)")
    p_ingest.add_argument("--json", action="store_true",
                          help="emit the fitted spec (and output path) "
                               "as JSON")

    p_learn = sub.add_parser(
        "learn", help="oracle-supervised learned policy: dataset -> "
                      "train -> evaluate")
    learn_sub = p_learn.add_subparsers(dest="learn_command", required=True,
                                       metavar="action")
    p_learn_dataset = learn_sub.add_parser(
        "dataset", help="replay the oracle teacher over a fleet into "
                        "a canonical JSONL supervision dataset")
    p_learn_dataset.add_argument("fleet",
                                 help="library fleet name (see "
                                      "`repro fleet list`)")
    p_learn_dataset.add_argument("--wearers", type=int, default=0,
                                 help="cap the fleet at this many wearers "
                                      "(0 = the whole fleet)")
    p_learn_dataset.add_argument("--stride", type=int, default=1,
                                 help="record every Nth decision step "
                                      "(default 1 = all)")
    p_learn_dataset.add_argument("--lookahead", type=float, default=21600.0,
                                 help="oracle teacher lookahead window, "
                                      "seconds (default 21600 = 6 h)")
    p_learn_dataset.add_argument("--shard", metavar="I/N",
                                 help="generate only strided wearer "
                                      "partition I of N (merge parts "
                                      "with `repro learn merge`)")
    p_learn_dataset.add_argument("--out", metavar="FILE",
                                 help="write the JSONL dataset here "
                                      "instead of stdout")
    p_learn_merge = learn_sub.add_parser(
        "merge", help="reassemble a complete shard partition into the "
                      "exact unsharded dataset")
    p_learn_merge.add_argument("files", metavar="PART.jsonl", nargs="+",
                               help="the shard files, one per partition "
                                    "position")
    p_learn_merge.add_argument("--out", metavar="FILE",
                               help="write the merged JSONL dataset here "
                                    "instead of stdout")
    p_learn_train = learn_sub.add_parser(
        "train", help="fit the rate network to a dataset and package "
                      "it as deployable learned/learned_q policies")
    p_learn_train.add_argument("dataset", metavar="DATA.jsonl",
                               help="a `repro learn dataset` file")
    p_learn_train.add_argument("--hidden", default="8",
                               help="comma-separated hidden layer widths "
                                    "(default 8)")
    p_learn_train.add_argument("--epochs", type=int, default=200,
                               help="iRPROP- epochs (default 200)")
    p_learn_train.add_argument("--seed", type=int, default=0,
                               help="weight init seed (default 0)")
    p_learn_train.add_argument("--desired-mse", type=float, default=0.0,
                               help="stop early at this training MSE "
                                    "(default 0 = run all epochs)")
    p_learn_train.add_argument("--max-rate", type=float, default=24.0,
                               help="deployed policy rate ceiling, "
                                    "detections/min (default 24)")
    p_learn_train.add_argument("--out", metavar="FILE",
                               help="write the trained policy JSON here "
                                    "instead of stdout")
    p_learn_eval = learn_sub.add_parser(
        "eval", help="race the trained policy against every built-in "
                     "on a fleet and report the oracle gap closed")
    p_learn_eval.add_argument("trained", metavar="POLICY.json",
                              help="a `repro learn train` output file")
    p_learn_eval.add_argument("fleet", nargs="?",
                              help="fleet name or spec file (default: "
                                   "the full fleet the dataset came "
                                   "from)")
    p_learn_eval.add_argument("--workers", type=int, default=4,
                              help="parallel wearer simulations "
                                   "(default 4)")
    p_learn_eval.add_argument("--backend",
                              choices=["serial", "thread", "process"],
                              default="thread",
                              help="execution backend (default thread)")
    p_learn_eval.add_argument("--no-quantized", action="store_true",
                              help="skip the fixed-point learned_q "
                                   "variant")
    p_learn_eval.add_argument("--json", action="store_true",
                              help="emit the full evaluation report "
                                   "as JSON")
    p_learn_eval.add_argument("--out", metavar="FILE",
                              help="write the JSON report here")

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    args = build_parser().parse_args(argv)

    if args.command == "all":
        for name in ("table1", "table2", "table3", "table4",
                     "detection", "sustainability", "modes"):
            _ARTIFACTS[name]()
            print()
        return 0
    if args.command in _ARTIFACTS:
        _ARTIFACTS[args.command]()
        return 0

    from repro.errors import ReproError

    try:
        if args.command == "scenarios":
            return _cmd_scenarios(args)
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "search":
            return _cmd_search(args)
        if args.command == "fleet":
            return _cmd_fleet(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "store":
            return _cmd_store(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "ingest":
            return _cmd_ingest(args)
        if args.command == "learn":
            return _cmd_learn(args)
        return _cmd_sweep(args)
    except ReproError as exc:
        # Bad scenario names, worker counts etc. are user input errors:
        # report them like one instead of dumping a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
