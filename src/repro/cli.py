"""Command-line interface: regenerate any paper artefact from a shell.

Usage::

    python -m repro table1          # solar harvesting (Table I)
    python -m repro table2          # TEG harvesting (Table II)
    python -m repro table3          # runtime cycles (Table III)
    python -m repro table4          # energy per classification (Table IV)
    python -m repro detection       # per-detection energy budget
    python -m repro sustainability  # Section IV-A analysis
    python -m repro modes           # operating-mode power table
    python -m repro all             # everything above
"""

from __future__ import annotations

import argparse
import sys

from repro.units import kmh_to_ms

__all__ = ["main"]


def _print_table1() -> None:
    from repro.harvest import calibrated_solar_harvester
    from repro.lab import HarvestTestBench

    bench = HarvestTestBench()
    solar = calibrated_solar_harvester()
    print("Table I: solar power generation (battery intake)")
    for lux, paper in ((30_000.0, "24.711 mW"), (700.0, "0.9 mW")):
        intake = bench.measure_solar_intake_w(solar.panel, solar.converter, lux)
        print(f"  {lux:8,.0f} lx : {intake * 1e3:7.3f} mW   (paper {paper})")


def _print_table2() -> None:
    from repro.harvest import calibrated_teg_harvester
    from repro.lab import HarvestTestBench

    bench = HarvestTestBench()
    teg = calibrated_teg_harvester()
    print("Table II: human-wrist TEG power (battery intake)")
    cases = [(22.0, 32.0, 0.0, "24.0 uW"),
             (15.0, 30.0, 0.0, "55.5 uW"),
             (15.0, 30.0, kmh_to_ms(42.0), "155.4 uW")]
    for ambient, skin, wind, paper in cases:
        intake = bench.measure_teg_intake_w(teg.device, teg.converter,
                                            ambient, skin, wind)
        print(f"  room {ambient:4.1f} C / skin {skin:4.1f} C / "
              f"wind {wind * 3.6:4.1f} km/h : {intake * 1e6:7.1f} uW "
              f"(paper {paper})")


def _print_table3() -> None:
    from repro.fann import build_network_a, build_network_b
    from repro.timing import ALL_PROCESSORS, cycles_for_network

    print("Table III: runtime in cycles")
    print(f"  {'network':10s}" + "".join(f"{p.key:>14s}" for p in ALL_PROCESSORS))
    for name, net in (("Network A", build_network_a()),
                      ("Network B", build_network_b())):
        cells = "".join(f"{cycles_for_network(net, p).total_cycles:>14,d}"
                        for p in ALL_PROCESSORS)
        print(f"  {name:10s}{cells}")


def _print_table4() -> None:
    from repro.fann import build_network_a, build_network_b
    from repro.timing import ALL_PROCESSORS, energy_per_inference

    print("Table IV: energy per classification [uJ]")
    print(f"  {'network':10s}" + "".join(f"{p.key:>14s}" for p in ALL_PROCESSORS))
    for name, net in (("Network A", build_network_a()),
                      ("Network B", build_network_b())):
        cells = "".join(f"{energy_per_inference(net, p).energy_uj_rounded:>14.1f}"
                        for p in ALL_PROCESSORS)
        print(f"  {name:10s}{cells}")


def _print_detection() -> None:
    from repro.core import StressDetectionApp

    budget = StressDetectionApp().energy_budget()
    paper = StressDetectionApp().paper_energy_budget()
    print("Energy per stress detection")
    print(f"  acquisition        : {budget.acquisition_j * 1e6:8.1f} uJ")
    print(f"  feature extraction : {budget.feature_extraction_j * 1e6:8.2f} uJ")
    print(f"  classification     : {budget.classification_j * 1e6:8.2f} uJ")
    print(f"  total (exact)      : {budget.total_uj:8.1f} uJ")
    print(f"  total (paper mode) : {paper.total_uj:8.1f} uJ  (paper: 602.2 uJ)")


def _print_sustainability() -> None:
    from repro.core import analyze_self_sustainability

    report = analyze_self_sustainability()
    print("Self-sustainability (paper indoor worst case)")
    print(f"  solar intake : {report.solar_energy_j:6.2f} J/day")
    print(f"  TEG intake   : {report.teg_energy_j:6.2f} J/day")
    print(f"  total        : {report.daily_intake_j:6.2f} J/day (paper 21.44 J)")
    print(f"  detections   : up to {report.detections_per_minute_floor}/minute "
          f"(paper: 24/minute)")


def _print_modes() -> None:
    from repro.core import OperatingMode, battery_lifetime_s, mode_power_w
    from repro.units import SECONDS_PER_DAY

    print("Operating modes (Section II)")
    for mode in OperatingMode:
        power = mode_power_w(mode)
        days = battery_lifetime_s(mode) / SECONDS_PER_DAY
        print(f"  {mode.value:14s}: {power * 1e3:9.4f} mW   "
              f"full battery lasts {days:9.1f} days (no harvest)")


_COMMANDS = {
    "table1": _print_table1,
    "table2": _print_table2,
    "table3": _print_table3,
    "table4": _print_table4,
    "detection": _print_detection,
    "sustainability": _print_sustainability,
    "modes": _print_modes,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="InfiniWolf reproduction: regenerate the paper's "
                    "evaluation artefacts.",
    )
    parser.add_argument("artifact", choices=sorted(_COMMANDS) + ["all"],
                        help="which artefact to regenerate")
    args = parser.parse_args(argv)

    if args.artifact == "all":
        for name in ("table1", "table2", "table3", "table4",
                     "detection", "sustainability", "modes"):
            _COMMANDS[name]()
            print()
    else:
        _COMMANDS[args.artifact]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
