"""InfiniWolf reproduction library.

A production-quality Python reproduction of "InfiniWolf: Energy
Efficient Smart Bracelet for Edge Computing with Dual Source Energy
Harvesting" (Magno et al., DATE 2020): dual-source energy harvesting
models, processor timing/energy models for the nRF52832 and the
Mr. Wolf PULP SoC, a FANN-compatible MLP stack, the stress-detection
pipeline, and a whole-system self-sustainability simulation.

Subpackages
-----------
- :mod:`repro.quant` — fixed-point arithmetic substrate.
- :mod:`repro.fann` — FANN-compatible MLP library (Networks A/B).
- :mod:`repro.timing` — calibrated cycle/energy models (Tables III/IV).
- :mod:`repro.isa` — instruction-set simulators (RV32IM, XpulpV2,
  ARMv7E-M subset) for bottom-up validation.
- :mod:`repro.harvest` — solar/TEG harvesting models (Tables I/II).
- :mod:`repro.power` — battery, fuel gauge, regulators, load models.
- :mod:`repro.sensors` — synthetic ECG/GSR and the drivedb-like
  stress dataset generator.
- :mod:`repro.features` — HRV and GSR feature extraction.
- :mod:`repro.core` — the InfiniWolf device/application/sustainability
  models and the day-in-the-life simulator.
- :mod:`repro.policies` — pluggable power-manager policies behind a
  typed observation -> decision protocol, plus policy grid search.
- :mod:`repro.scenarios` — the declarative scenario API: serializable
  specs, component registries, the spec->system builder, the built-in
  scenario library and the parallel batch runner.
- :mod:`repro.fleet` — fleet-scale stochastic wearer studies: seeded
  timeline samplers, per-wearer scenario generation, and population
  statistics over any sweep backend.
- :mod:`repro.lab` — emulated measurement instruments (SMU, chamber).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
