"""Frozen, JSON-round-trippable chaos campaign specs.

A :class:`ChaosSpec` fully determines a chaos campaign: the base
scenario to mutate, how many adversarial cases to compose, the horizon,
the seed, which fault axes participate (:class:`ChaosAxisSpec`, by
registry name), and the survival thresholds the judge applies
(:class:`JudgeRulesSpec`).  Everything rides the canonical-JSON
contract from :mod:`repro.scenarios.spec`, so equal campaigns digest
identically and a seeded campaign is reproducible byte for byte.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.errors import SpecError
from repro.scenarios.spec import check_mapping_keys

__all__ = ["ChaosAxisSpec", "JudgeRulesSpec", "ChaosSpec",
           "load_chaos_file"]

_PARAM_SCALARS = (bool, int, float, str)


@dataclass(frozen=True)
class ChaosAxisSpec:
    """One fault axis by registry name, plus its keyword parameters.

    Mirrors :class:`~repro.scenarios.spec.PolicySpec`: ``name`` keys
    the ``AXES`` registry (:mod:`repro.chaos.axes`), ``params`` go to
    the axis factory as keyword arguments and must be JSON scalars so
    campaigns survive the process backend unchanged.
    """

    name: str
    params: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("chaos axis name cannot be empty")
        params = check_mapping_keys("ChaosAxisSpec params", self.params,
                                    known=self.params)
        for key, value in params.items():
            if not isinstance(key, str) or not key:
                raise SpecError(
                    f"axis param names must be non-empty strings, got {key!r}")
            if not isinstance(value, _PARAM_SCALARS):
                raise SpecError(
                    f"axis param {key!r} must be a JSON scalar "
                    f"(number, string or bool), got {type(value).__name__}")
        object.__setattr__(self, "params", dict(params))

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosAxisSpec":
        data = check_mapping_keys("ChaosAxisSpec", data,
                                  known=("name", "params"),
                                  required=("name",))
        return cls(name=data["name"], params=data.get("params", {}))


@dataclass(frozen=True)
class JudgeRulesSpec:
    """Survival thresholds the judge applies after the invariants pass.

    Attributes:
        max_downtime_fraction: a run whose ``downtime_s`` exceeds this
            fraction of the horizon is a survival failure — the watch
            spent too long browned out or degraded.
        min_final_soc: a run that ends below this state of charge is a
            survival failure (the battery is effectively dead).
        require_detections: when true, a run that executes zero
            detections over the whole horizon is a survival failure
            even if the battery stayed healthy — a watch that never
            detects is not surviving, it is decorative.
    """

    max_downtime_fraction: float = 0.1
    min_final_soc: float = 0.05
    require_detections: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_downtime_fraction <= 1.0:
            raise SpecError(
                f"max_downtime_fraction must lie in [0, 1], "
                f"got {self.max_downtime_fraction!r}")
        if not 0.0 <= self.min_final_soc <= 1.0:
            raise SpecError(
                f"min_final_soc must lie in [0, 1], "
                f"got {self.min_final_soc!r}")

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JudgeRulesSpec":
        data = check_mapping_keys(
            "JudgeRulesSpec", data,
            known=("max_downtime_fraction", "min_final_soc",
                   "require_detections"))
        return cls(**data)


@dataclass(frozen=True)
class ChaosSpec:
    """A named, fully-seeded chaos campaign.

    Attributes:
        name: campaign identifier (report label, generated-case prefix).
        base_scenario: library scenario the strategist mutates.
        n_cases: how many adversarial cases to compose.
        horizon_days: per-case simulated horizon.
        seed: campaign seed; case ``i`` draws from
            ``random.Random(seed + i)``, so any case regenerates alone.
        axes: participating fault axes.  Empty means *every* registered
            axis, resolved at generation time.
        judge: survival thresholds (invariant checks are always on).
        description: one-line human-readable summary.
    """

    name: str
    base_scenario: str = "paper_indoor_worst_case"
    n_cases: int = 8
    horizon_days: int = 2
    seed: int = 0
    axes: tuple[ChaosAxisSpec, ...] = ()
    judge: JudgeRulesSpec = JudgeRulesSpec()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("campaign name cannot be empty")
        if not self.base_scenario:
            raise SpecError("campaign base_scenario cannot be empty")
        for label, value in (("n_cases", self.n_cases),
                             ("horizon_days", self.horizon_days),
                             ("seed", self.seed)):
            if isinstance(value, bool) or not isinstance(value, int):
                raise SpecError(
                    f"campaign {label} must be an integer, got {value!r}")
        if self.n_cases < 1:
            raise SpecError(
                f"campaign n_cases must be at least 1, got {self.n_cases}")
        if self.horizon_days < 1:
            raise SpecError(
                f"campaign horizon_days must be at least 1, "
                f"got {self.horizon_days}")
        object.__setattr__(self, "axes", tuple(self.axes))
        for axis in self.axes:
            if not isinstance(axis, ChaosAxisSpec):
                raise SpecError(
                    f"campaign axes must be ChaosAxisSpec instances, "
                    f"got {type(axis).__name__}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "base_scenario": self.base_scenario,
            "n_cases": self.n_cases,
            "horizon_days": self.horizon_days,
            "seed": self.seed,
            "axes": [axis.to_dict() for axis in self.axes],
            "judge": self.judge.to_dict(),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosSpec":
        data = check_mapping_keys(
            "ChaosSpec", data,
            known=("name", "base_scenario", "n_cases", "horizon_days",
                   "seed", "axes", "judge", "description"),
            required=("name",))
        kwargs: dict[str, Any] = {"name": data["name"]}
        if "axes" in data:
            kwargs["axes"] = tuple(ChaosAxisSpec.from_dict(axis)
                                   for axis in data["axes"])
        if "judge" in data:
            kwargs["judge"] = JudgeRulesSpec.from_dict(data["judge"])
        for key in ("base_scenario", "n_cases", "horizon_days", "seed",
                    "description"):
            if key in data:
                kwargs[key] = data[key]
        return cls(**kwargs)


def load_chaos_file(path: str | Path) -> ChaosSpec:
    """A :class:`ChaosSpec` from a JSON file.

    Accepts either a bare campaign-spec object or the envelope
    ``repro chaos generate --out`` writes (``{"campaign": ...,
    "cases": [...]}``) — the materialized cases are regenerable from
    the spec, so only the spec is read back.
    """
    from repro.scenarios.files import load_json_payload

    payload = load_json_payload(path, "chaos campaign")
    if isinstance(payload, Mapping) and "campaign" in payload:
        payload = payload["campaign"]
    try:
        return ChaosSpec.from_dict(payload)
    except SpecError as exc:
        raise SpecError(f"{path}: {exc}") from None
