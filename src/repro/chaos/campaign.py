"""Run chaos campaigns: every policy x every case, judged, shardable.

A campaign run is the cross product of the strategist's composed cases
(:mod:`repro.chaos.strategist`) and a policy list (default: every
registered policy), each run executed under the
:class:`~repro.chaos.judge.LedgerBattery` and classified by the judge.
Execution mirrors the scenario runner's backends — serial / thread /
process (the persistent shared pool of :mod:`repro.pool`: the campaign
spec is broadcast once per chunk and workers regenerate their own
cases from ``(case_index, policy_index)`` pairs) — and the result model
mirrors the fleet's merge-exact sharding: shards own strided case
subsets, carry raw :class:`RunRecord` values, and
:meth:`CampaignResult.merge` re-assembles any complete partition into
a payload bitwise-identical to the unsharded run.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.chaos.judge import RunJudgement, judge_scenario
from repro.chaos.spec import ChaosSpec
from repro.chaos.strategist import case_indices, chaos_cases
from repro.errors import RegistryError, SpecError
from repro.scenarios.registry import POLICIES
from repro.scenarios.spec import (
    PolicySpec,
    canonical_json,
    check_mapping_keys,
)

__all__ = ["RunRecord", "PartialCampaignResult", "CampaignResult",
           "ChaosRunner", "run_campaign", "run_chaos_chunk",
           "default_policies", "load_campaign_result"]

BACKENDS = ("serial", "thread", "process")


def default_policies() -> list[PolicySpec]:
    """Every default-buildable policy at default parameters, sorted.

    Trained policies (``learned``/``learned_q``) are excluded — they
    cannot build without weight params; pass them explicitly to stress
    a trained policy under chaos.
    """
    from repro.policies.learned import default_policy_names

    return [PolicySpec(name) for name in default_policy_names()]


@dataclass(frozen=True)
class RunRecord:
    """One judged (case, policy) run.

    Attributes:
        case_index: the case's 0-based index in the campaign.
        scenario: the composed case's scenario name.
        policy: the policy that ran.
        judgement: the judge's verdict, reasons and outcome metrics.
    """

    case_index: int
    scenario: str
    policy: PolicySpec
    judgement: RunJudgement

    def __post_init__(self) -> None:
        if (isinstance(self.case_index, bool)
                or not isinstance(self.case_index, int)
                or self.case_index < 0):
            raise SpecError(
                f"case_index must be a non-negative integer, "
                f"got {self.case_index!r}")

    @property
    def verdict(self) -> str:
        return self.judgement.verdict

    def to_dict(self) -> dict[str, Any]:
        return {
            "case_index": self.case_index,
            "scenario": self.scenario,
            "policy": self.policy.to_dict(),
            "judgement": self.judgement.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        required = ("case_index", "scenario", "policy", "judgement")
        data = check_mapping_keys("RunRecord", data, known=required,
                                  required=required)
        return cls(
            case_index=data["case_index"],
            scenario=data["scenario"],
            policy=PolicySpec.from_dict(data["policy"]),
            judgement=RunJudgement.from_dict(data["judgement"]),
        )


def _policy_key(policy: PolicySpec) -> str:
    """A policy's identity for ordering/equality across shards."""
    return canonical_json(policy.to_dict())


def _sorted_records(records: Sequence[RunRecord],
                    policies: Sequence[PolicySpec]) -> tuple[RunRecord, ...]:
    order = {_policy_key(policy): i for i, policy in enumerate(policies)}
    return tuple(sorted(
        records,
        key=lambda r: (r.case_index, order.get(_policy_key(r.policy), -1))))


def _check_policies(policies: Sequence[PolicySpec]) -> tuple[PolicySpec, ...]:
    policies = tuple(policies)
    if not policies:
        raise SpecError("a campaign needs at least one policy")
    keys = [_policy_key(policy) for policy in policies]
    if len(set(keys)) != len(keys):
        raise SpecError("campaign policies must be unique")
    return policies


@dataclass(frozen=True)
class PartialCampaignResult:
    """One shard's judged records — strided case subset, raw records.

    Attributes:
        spec: the full campaign spec (every shard carries it so merge
            can verify the parts describe the same campaign).
        shard_index / shard_count: this shard's position.
        policies: the policy list the shard ran (merge requires all
            shards to agree).
        records: one record per (case, policy) of this shard.
        backend / wall_time_s: provenance; outside the canonical
            payload.
    """

    spec: ChaosSpec
    shard_index: int
    shard_count: int
    policies: tuple[PolicySpec, ...]
    records: tuple[RunRecord, ...]
    backend: str = ""
    wall_time_s: float = 0.0

    def __post_init__(self) -> None:
        for attr in ("shard_index", "shard_count"):
            value = getattr(self, attr)
            if isinstance(value, bool) or not isinstance(value, int):
                raise SpecError(f"{attr} must be an integer, got {value!r}")
        if self.shard_count < 1:
            raise SpecError(
                f"shard count must be at least 1, got {self.shard_count}")
        if not 0 <= self.shard_index < self.shard_count:
            raise SpecError(
                f"shard index {self.shard_index} outside partition of "
                f"{self.shard_count}")
        object.__setattr__(self, "policies",
                           _check_policies(self.policies))
        object.__setattr__(self, "records",
                           _sorted_records(self.records, self.policies))
        seen = set()
        for record in self.records:
            if record.case_index >= self.spec.n_cases:
                raise SpecError(
                    f"case index {record.case_index} outside campaign "
                    f"{self.spec.name!r} of {self.spec.n_cases}")
            if record.case_index % self.shard_count != self.shard_index:
                raise SpecError(
                    f"case {record.case_index} does not belong to shard "
                    f"{self.shard_index}/{self.shard_count}")
            key = (record.case_index, _policy_key(record.policy))
            if key in seen:
                raise SpecError(
                    f"duplicate record for case {record.case_index} in "
                    f"shard {self.shard_index}/{self.shard_count}")
            seen.add(key)

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "shard": [self.shard_index, self.shard_count],
            "policies": [policy.to_dict() for policy in self.policies],
            "records": [record.to_dict() for record in self.records],
            "backend": self.backend,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PartialCampaignResult":
        required = {"spec", "shard", "policies", "records"}
        check_mapping_keys("PartialCampaignResult", data,
                           required | {"backend", "wall_time_s"},
                           required=required)
        shard = data["shard"]
        if not isinstance(shard, (list, tuple)) or len(shard) != 2:
            raise SpecError(
                f"shard must be a [index, count] pair, got {shard!r}")
        return cls(
            spec=ChaosSpec.from_dict(data["spec"]),
            shard_index=shard[0],
            shard_count=shard[1],
            policies=tuple(PolicySpec.from_dict(p)
                           for p in data["policies"]),
            records=tuple(RunRecord.from_dict(r) for r in data["records"]),
            backend=data.get("backend", ""),
            wall_time_s=data.get("wall_time_s", 0.0),
        )


@dataclass(frozen=True)
class CampaignResult:
    """The judged outcome of a whole campaign.

    ``to_dict`` is the canonical payload — a pure function of the
    campaign spec and policy list, bitwise-identical across backends,
    shardings and runs (the chaos reproducibility contract).
    Provenance (``backend``, ``wall_time_s``) stays outside it.
    """

    spec: ChaosSpec
    policies: tuple[PolicySpec, ...]
    records: tuple[RunRecord, ...]
    backend: str = ""
    wall_time_s: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "policies",
                           _check_policies(self.policies))
        object.__setattr__(self, "records",
                           _sorted_records(self.records, self.policies))
        expected = {(case, _policy_key(policy))
                    for case in range(self.spec.n_cases)
                    for policy in self.policies}
        actual = [(record.case_index, _policy_key(record.policy))
                  for record in self.records]
        if len(actual) != len(set(actual)):
            raise SpecError("duplicate campaign records")
        if set(actual) != expected:
            missing = len(expected - set(actual))
            raise SpecError(
                f"campaign {self.spec.name!r} is incomplete: {missing} of "
                f"{len(expected)} (case, policy) runs missing")

    @classmethod
    def merge(cls, parts: Sequence[PartialCampaignResult],
              ) -> "CampaignResult":
        """Reduce a complete shard partition to the unsharded result."""
        parts = list(parts)
        if not parts:
            raise SpecError("cannot merge zero campaign shards")
        spec = parts[0].spec
        counts = {part.shard_count for part in parts}
        if len(counts) != 1:
            raise SpecError(
                f"campaign shards disagree on the partition size: "
                f"{sorted(counts)}")
        for part in parts:
            if part.spec != spec:
                raise SpecError(
                    f"campaign shards describe different campaigns: "
                    f"{spec.name!r} vs {part.spec.name!r}")
            if part.policies != parts[0].policies:
                raise SpecError(
                    "campaign shards disagree on the policy list")
        seen_shards = [part.shard_index for part in parts]
        if len(set(seen_shards)) != len(seen_shards):
            duplicated = sorted({index for index in seen_shards
                                 if seen_shards.count(index) > 1})
            raise SpecError(f"duplicate campaign shards: {duplicated} "
                            f"of {parts[0].shard_count}")
        records = [record for part in parts for record in part.records]
        return cls(spec=spec, policies=parts[0].policies,
                   records=tuple(records), backend="merged",
                   wall_time_s=sum(part.wall_time_s for part in parts))

    def counts(self) -> dict[str, int]:
        """Verdict totals over every record."""
        totals = {"pass": 0, "survival_failure": 0, "violation": 0}
        for record in self.records:
            totals[record.verdict] += 1
        return totals

    @property
    def violations(self) -> tuple[RunRecord, ...]:
        return tuple(r for r in self.records if r.verdict == "violation")

    @property
    def survival_failures(self) -> tuple[RunRecord, ...]:
        return tuple(r for r in self.records
                     if r.verdict == "survival_failure")

    def canonical_json(self) -> str:
        """The canonical payload through the one shared encoder."""
        return canonical_json(self.to_dict())

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "policies": [policy.to_dict() for policy in self.policies],
            "records": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignResult":
        required = ("spec", "policies", "records")
        data = check_mapping_keys("CampaignResult", data, known=required,
                                  required=required)
        return cls(
            spec=ChaosSpec.from_dict(data["spec"]),
            policies=tuple(PolicySpec.from_dict(p)
                           for p in data["policies"]),
            records=tuple(RunRecord.from_dict(r) for r in data["records"]),
        )


def run_chaos_chunk(context: Mapping[str, Any],
                    items: Sequence[Sequence[int]]) -> list[dict]:
    """Pool chunk handler: (case, policy) index pairs in, record dicts
    out.

    The chaos half of the chunked-dispatch protocol
    (:mod:`repro.pool`): the parent broadcasts the
    :class:`~repro.chaos.spec.ChaosSpec` dict and the policy list once
    per chunk, and each item is a ``[case_index, policy_index]`` pair.
    The worker regenerates its own cases (each case draws only from
    ``seed + index``, so any subset is independently generatable) and
    judges them under the spec's rules — bitwise-identical to
    parent-side composition.  Mirrors the scenario runner's
    registry-visibility contract; runs unchanged in-process for the
    identity tests.
    """
    from repro.chaos.strategist import chaos_cases

    spec = ChaosSpec.from_dict(context["spec"])
    policies = [PolicySpec.from_dict(p) for p in context["policies"]]
    crash = context.get("crash") or os.environ.get("REPRO_WORKER_CRASH")
    wanted = sorted({case_index for case_index, _ in items})
    try:
        cases = dict(zip(wanted, chaos_cases(spec, wanted)))
        results = []
        for case_index, policy_index in items:
            case = cases[case_index]
            policy = policies[policy_index]
            if crash and crash == case.name:
                # The scenario runner's testable-crash hook, forwarded
                # through the chunk context.
                os._exit(13)
            judgement = judge_scenario(
                dataclasses.replace(
                    case,
                    system=dataclasses.replace(case.system, policy=policy)),
                spec.judge)
            results.append(RunRecord(
                case_index=case_index, scenario=case.name,
                policy=policy, judgement=judgement).to_dict())
        return results
    except RegistryError as exc:
        raise SpecError(
            f"chaos campaign {spec.name!r} cannot run on the process "
            f"backend: {exc}. Worker processes import repro fresh, so "
            "only components registered at import time are visible; "
            "runtime @register_* registrations require the thread or "
            "serial backend.") from None


class ChaosRunner:
    """Executes chaos campaigns, optionally in parallel or sharded.

    Args:
        workers: default worker count.
        backend: ``"serial"``, ``"thread"`` (default) or ``"process"``.
    """

    def __init__(self, workers: int = 1, backend: str = "thread") -> None:
        if workers < 1:
            raise SpecError("worker count must be at least 1")
        if backend not in BACKENDS:
            raise SpecError(
                f"unknown backend {backend!r}; known: {list(BACKENDS)}")
        self.workers = workers
        self.backend = backend

    def run(self, spec: ChaosSpec,
            policies: Sequence[PolicySpec] | None = None,
            shard: tuple[int, int] | None = None,
            workers: int | None = None,
            backend: str | None = None,
            ) -> "CampaignResult | PartialCampaignResult":
        """Judge every (case, policy) run of the campaign.

        Args:
            spec: the campaign.
            policies: policies to sweep (default: every registered
                policy at default parameters).
            shard: ``(index, count)`` — generate and run only the
                strided case subset, returning a
                :class:`PartialCampaignResult`.
            workers / backend: override the runner defaults.
        """
        policies = _check_policies(default_policies()
                                   if policies is None else policies)
        for policy in policies:
            if policy.name not in POLICIES:
                from repro.policies.learned import unknown_policy_message

                raise SpecError(unknown_policy_message(policy.name))
        n = self.workers if workers is None else workers
        if n < 1:
            raise SpecError("worker count must be at least 1")
        chosen = self.backend if backend is None else backend
        if chosen not in BACKENDS:
            raise SpecError(
                f"unknown backend {chosen!r}; known: {list(BACKENDS)}")

        if shard is None:
            indices = range(spec.n_cases)
        else:
            indices = case_indices(spec, shard[0], shard[1])
        cases = chaos_cases(spec, indices)

        started = time.perf_counter()
        tasks = [(index, case, policy)
                 for index, case in zip(indices, cases)
                 for policy in policies]
        records, used = self._execute(spec, policies, tasks, n, chosen)
        wall = time.perf_counter() - started
        if shard is None:
            return CampaignResult(spec=spec, policies=policies,
                                  records=tuple(records), backend=used,
                                  wall_time_s=wall)
        return PartialCampaignResult(
            spec=spec, shard_index=shard[0], shard_count=shard[1],
            policies=policies, records=tuple(records), backend=used,
            wall_time_s=wall)

    def _execute(self, spec: ChaosSpec,
                 policies: Sequence[PolicySpec], tasks, workers: int,
                 backend: str) -> tuple[list[RunRecord], str]:
        """Run the (case, policy) tasks; returns (records, effective
        backend) — trivial campaigns route serially whatever was
        requested, and the result records what actually ran."""
        if not tasks:
            return [], "serial"
        rules = spec.judge

        def run_one(task) -> RunRecord:
            index, case, policy = task
            judged = judge_scenario(
                dataclasses.replace(
                    case,
                    system=dataclasses.replace(case.system, policy=policy)),
                rules)
            return RunRecord(case_index=index, scenario=case.name,
                             policy=policy, judgement=judged)

        if workers == 1 or len(tasks) <= 1 or backend == "serial":
            return [run_one(task) for task in tasks], "serial"
        if backend == "process":
            return (self._execute_pooled(spec, policies, tasks, workers),
                    "process")
        with ThreadPoolExecutor(
                max_workers=min(workers, len(tasks))) as pool:
            return list(pool.map(run_one, tasks)), "thread"

    @staticmethod
    def _execute_pooled(spec: ChaosSpec, policies: Sequence[PolicySpec],
                        tasks, workers: int) -> list[RunRecord]:
        """Dispatch a campaign through the shared persistent pool.

        The spec and policy list broadcast once per chunk; items are
        bare ``[case_index, policy_index]`` pairs and the workers
        regenerate their own cases.  A dead worker surfaces as a
        :class:`~repro.errors.SpecError` naming the crashed chunk's
        (case, policy) range; the pool self-heals on the next run.
        """
        from repro.pool import WorkerCrash, get_shared_pool

        order = {_policy_key(policy): i for i, policy in enumerate(policies)}
        context: dict[str, Any] = {
            "spec": spec.to_dict(),
            "policies": [policy.to_dict() for policy in policies],
        }
        crash = os.environ.get("REPRO_WORKER_CRASH")
        if crash:
            context["crash"] = crash
        items = [[index, order[_policy_key(policy)]]
                 for index, case, policy in tasks]
        pool = get_shared_pool()
        try:
            results = pool.run_chunked("chaos", context, items,
                                       chunks=min(workers, len(items)))
        except WorkerCrash as exc:
            names = [f"{tasks[i][1].name!r} x {tasks[i][2].name}"
                     for i in exc.indices]
            if len(names) <= 3:
                span = ", ".join(names)
            else:
                span = f"{names[0]} .. {names[-1]} ({len(names)} runs)"
            raise SpecError(
                f"process-backend worker died while running chunk "
                f"{exc.chunk_index + 1}/{exc.chunk_count} of campaign "
                f"{spec.name!r} — runs {span}; see the chained "
                "exception. The shared pool respawns on the next run; "
                "the thread backend avoids worker crashes taking down "
                "the whole pool.") from exc
        return [RunRecord.from_dict(payload) for payload in results]


def run_campaign(spec: ChaosSpec, workers: int = 1,
                 backend: str = "thread", **kwargs) -> CampaignResult:
    """One-call campaign run (what ``repro chaos run`` uses)."""
    return ChaosRunner(workers=workers, backend=backend).run(spec, **kwargs)


def load_campaign_result(
        path: str | Path,
        ) -> "CampaignResult | PartialCampaignResult":
    """A full or partial campaign result from a JSON file.

    Shard files carry a ``"shard"`` key; full results do not.
    Failures surface as :class:`~repro.errors.SpecError` naming the
    path.
    """
    from repro.scenarios.files import load_json_payload

    payload = load_json_payload(path, what="campaign result")
    try:
        if "shard" in payload:
            return PartialCampaignResult.from_dict(payload)
        return CampaignResult.from_dict(payload)
    except SpecError as exc:
        raise SpecError(f"campaign result file {path}: {exc}") from None
