"""Digest a judged campaign and promote failures to regressions.

Promotion is the chaos flywheel: a failure the strategist finds once
becomes a named, self-contained scenario file under
``scenarios/regressions/`` that ``repro simulate`` and the tier-1
suite then run forever.  The promoted file is the *composed* case
(inline segments, inline faults, the failing policy embedded), so it
replays without the chaos machinery at all.
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path

from repro.chaos.campaign import CampaignResult, RunRecord
from repro.chaos.strategist import chaos_case
from repro.errors import SpecError
from repro.scenarios.spec import canonical_json

__all__ = ["interesting_failures", "promotion_name", "promote_failures",
           "format_report"]


def _severity(record: RunRecord) -> tuple:
    """Sort key: violations first, then the deadest watches."""
    rank = 0 if record.verdict == "violation" else 1
    outcome = record.judgement.outcome
    if outcome is None:
        # Engine errors have no outcome; treat as maximally severe
        # within their rank.
        return (rank, -float("inf"), -float("inf"))
    downtime_frac = (outcome.downtime_s / outcome.duration_s
                     if outcome.duration_s > 0 else 0.0)
    return (rank, -downtime_frac, outcome.final_soc)


def interesting_failures(result: CampaignResult) -> list[RunRecord]:
    """Every non-pass record, most interesting first.

    Violations (simulator bugs) outrank survival failures; within each
    class, higher downtime then lower final SoC sorts first.  Ties
    resolve by (case, policy) record order, keeping the ranking
    deterministic.
    """
    failures = [record for record in result.records
                if record.verdict != "pass"]
    return sorted(failures, key=_severity)


def promotion_name(result: CampaignResult, record: RunRecord) -> str:
    """The promoted scenario's name: campaign, case and policy, made
    filesystem-safe (it doubles as the file stem)."""
    policy_slug = re.sub(r"[^A-Za-z0-9_]+", "_", record.policy.name)
    return (f"{result.spec.name}_case{record.case_index:04d}"
            f"_{policy_slug}")


def promote_failures(result: CampaignResult, out_dir: str | Path,
                     limit: int = 2) -> list[Path]:
    """Write the top failures as regression scenario files.

    Each promoted file is the failing case regenerated from the
    campaign seed with the failing policy embedded — fully
    self-contained canonical JSON.  At most one promotion per case
    (the most severe), so a single pathological case doesn't crowd out
    the rest.  Returns the written paths, most severe first.
    """
    if limit < 1:
        raise SpecError(f"promotion limit must be at least 1, got {limit}")
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    seen_cases: set[int] = set()
    for record in interesting_failures(result):
        if len(written) >= limit:
            break
        if record.case_index in seen_cases:
            continue
        seen_cases.add(record.case_index)
        case = chaos_case(result.spec, record.case_index)
        promoted = dataclasses.replace(
            case,
            name=promotion_name(result, record),
            system=dataclasses.replace(case.system, policy=record.policy),
            description=(f"promoted chaos regression: {record.verdict} — "
                         + "; ".join(record.judgement.reasons)),
        )
        path = out_dir / f"{promoted.name}.json"
        path.write_text(canonical_json(promoted.to_dict()) + "\n",
                        encoding="utf-8")
        written.append(path)
    return written


def format_report(result: CampaignResult, limit: int = 10) -> str:
    """A human-readable campaign digest (what ``repro chaos report``
    prints)."""
    counts = result.counts()
    total = len(result.records)
    lines = [
        f"campaign {result.spec.name!r}: {result.spec.n_cases} cases x "
        f"{len(result.policies)} policies = {total} runs "
        f"(seed {result.spec.seed}, {result.spec.horizon_days} d horizon)",
        f"  pass: {counts['pass']}  survival failures: "
        f"{counts['survival_failure']}  violations: {counts['violation']}",
    ]

    by_policy: dict[str, dict[str, int]] = {}
    for record in result.records:
        slot = by_policy.setdefault(
            record.policy.name,
            {"pass": 0, "survival_failure": 0, "violation": 0})
        slot[record.verdict] += 1
    lines.append("  per policy:")
    for name in sorted(by_policy):
        slot = by_policy[name]
        lines.append(
            f"    {name:<24} pass {slot['pass']:>3}  "
            f"fail {slot['survival_failure']:>3}  "
            f"violate {slot['violation']:>3}")

    failures = interesting_failures(result)
    if failures:
        lines.append(f"  top failures (of {len(failures)}):")
        for record in failures[:limit]:
            reason = (record.judgement.reasons[0]
                      if record.judgement.reasons else "(no reason)")
            lines.append(
                f"    [{record.verdict}] case {record.case_index:04d} "
                f"policy {record.policy.name}: {reason}")
    else:
        lines.append("  no failures: every run passed the judge.")
    return "\n".join(lines)
