"""The seeded strategist: compose fault axes into adversarial cases.

Case ``i`` of a campaign is generated *deterministically* from
``random.Random(spec.seed + i)``: the base scenario's timeline is
tiled to the horizon, then every participating axis mutates the draft
in registry order using only that generator.  The output is an
ordinary self-contained :class:`~repro.scenarios.spec.ScenarioSpec`
(inline segments, inline faults, ``trace="none"``) — JSON-shippable
across the process backend and regenerable one case at a time, which
is what makes campaigns shardable and bitwise-reproducible.
"""

from __future__ import annotations

import dataclasses
import random

from repro.chaos.axes import AXES, ScenarioDraft
from repro.chaos.spec import ChaosAxisSpec, ChaosSpec
from repro.errors import RegistryError, SpecError
from repro.fleet.population import template_segments
from repro.scenarios.library import get_scenario
from repro.scenarios.spec import ScenarioSpec, SegmentSpec, TimelineSpec
from repro.units import SECONDS_PER_DAY

__all__ = ["resolve_axes", "case_name", "chaos_case", "chaos_cases",
           "case_indices", "generate_payload"]


def resolve_axes(spec: ChaosSpec) -> list[tuple[str, object]]:
    """The campaign's ``(name, apply)`` pairs, factories already built.

    An empty ``spec.axes`` means every registered axis at default
    parameters, in sorted-name order (the registry is import-time
    stable, so this stays deterministic).
    """
    axis_specs = spec.axes or tuple(
        ChaosAxisSpec(name) for name in AXES.names())
    resolved = []
    for axis in axis_specs:
        try:
            factory = AXES.get(axis.name)
        except RegistryError:
            raise SpecError(
                f"unknown chaos axis {axis.name!r}; registered axes: "
                f"{AXES.names()}") from None
        resolved.append((axis.name, factory(axis.params)))
    return resolved


def case_name(spec: ChaosSpec, index: int) -> str:
    """The generated scenario name of case ``index``.

    >>> case_name(ChaosSpec(name="storm"), 7)
    'storm::case_0007'
    """
    return f"{spec.name}::case_{index:04d}"


def _tile_segments(template: tuple[SegmentSpec, ...],
                   horizon_s: float) -> list[SegmentSpec]:
    """Template repeated until it covers the horizon."""
    day_duration = sum(seg.duration_s for seg in template)
    if day_duration <= 0:
        raise SpecError("base scenario timeline has no duration")
    segments: list[SegmentSpec] = []
    covered = 0.0
    while covered < horizon_s:
        segments.extend(template)
        covered += day_duration
    return segments


def chaos_case(spec: ChaosSpec, index: int,
               base: ScenarioSpec | None = None,
               template: tuple[SegmentSpec, ...] | None = None,
               axes: list[tuple[str, object]] | None = None,
               ) -> ScenarioSpec:
    """The fully-composed adversarial scenario of one case.

    Args:
        spec: the campaign.
        index: 0-based case index; seeds ``random.Random(seed + index)``.
        base / template / axes: precomputed campaign-wide state
            (resolved from the spec when omitted — callers generating
            many cases pass them to avoid rebuilding per case).
    """
    if index < 0 or index >= spec.n_cases:
        raise SpecError(
            f"case index {index} outside campaign of {spec.n_cases}")
    if base is None:
        base = get_scenario(spec.base_scenario)
    if template is None:
        template = template_segments(base)
    if axes is None:
        axes = resolve_axes(spec)
    rng = random.Random(spec.seed + index)
    horizon_s = spec.horizon_days * SECONDS_PER_DAY
    draft = ScenarioDraft(
        segments=_tile_segments(template, horizon_s),
        faults=[],
        battery=base.system.battery,
        horizon_s=horizon_s,
        step_s=base.step_s,
    )
    for _, apply in axes:
        apply(draft, rng)
    axis_label = ",".join(name for name, _ in axes)
    return dataclasses.replace(
        base,
        name=case_name(spec, index),
        timeline=TimelineSpec(segments=tuple(draft.segments)),
        system=dataclasses.replace(base.system, battery=draft.battery),
        duration_s=horizon_s,
        description=(f"chaos case {index} of campaign {spec.name!r} "
                     f"(seed {spec.seed + index}; axes: {axis_label})"),
        trace="none",
        faults=tuple(draft.faults),
    )


def case_indices(spec: ChaosSpec, shard_index: int,
                 shard_count: int) -> range:
    """The case indices belonging to one shard — strided, like fleet
    wearer shards (``index % N == i``), so any subset of cases can be
    generated without drawing the rest."""
    for label, value in (("shard index", shard_index),
                         ("shard count", shard_count)):
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpecError(f"{label} must be an integer, got {value!r}")
    if shard_count < 1:
        raise SpecError(f"shard count must be at least 1, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise SpecError(
            f"shard index {shard_index} outside partition of {shard_count}")
    return range(shard_index, spec.n_cases, shard_count)


def chaos_cases(spec: ChaosSpec, indices=None) -> list[ScenarioSpec]:
    """The composed scenarios of ``indices`` (default: every case).

    The base scenario, template and axis factories are resolved once;
    each case then draws from its own ``seed + index`` generator, so a
    shard's cases are identical to the full campaign's entries.
    """
    base = get_scenario(spec.base_scenario)
    template = template_segments(base)
    axes = resolve_axes(spec)
    if indices is None:
        indices = range(spec.n_cases)
    return [chaos_case(spec, index, base=base, template=template, axes=axes)
            for index in indices]


def generate_payload(spec: ChaosSpec) -> dict:
    """What ``repro chaos generate`` emits: the campaign spec plus
    every composed case, canonical-JSON-ready."""
    return {
        "campaign": spec.to_dict(),
        "cases": [case.to_dict() for case in chaos_cases(spec)],
    }
