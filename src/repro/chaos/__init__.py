"""Chaos engineering for the simulator: fault axes, seeded adversarial
campaigns, an invariant judge, and failure-to-regression promotion.

The loop: :mod:`~repro.chaos.axes` defines hostile-world mutations,
the :mod:`~repro.chaos.strategist` composes them into seeded,
bitwise-reproducible scenario populations, the
:mod:`~repro.chaos.campaign` runner sweeps every registered policy
over them under the :mod:`~repro.chaos.judge`'s ledger, and
:mod:`~repro.chaos.report` promotes the most interesting failures to
permanent regression scenarios under ``scenarios/regressions/``.
"""

from repro.chaos.axes import AXES, ScenarioDraft, axis_names, register_axis
from repro.chaos.campaign import (
    CampaignResult,
    ChaosRunner,
    PartialCampaignResult,
    RunRecord,
    default_policies,
    load_campaign_result,
    run_campaign,
)
from repro.chaos.judge import (
    VERDICTS,
    LedgerBattery,
    RunJudgement,
    Violation,
    check_invariants,
    judge_scenario,
    judge_simulation,
)
from repro.chaos.report import (
    format_report,
    interesting_failures,
    promote_failures,
    promotion_name,
)
from repro.chaos.spec import (
    ChaosAxisSpec,
    ChaosSpec,
    JudgeRulesSpec,
    load_chaos_file,
)
from repro.chaos.strategist import (
    case_indices,
    case_name,
    chaos_case,
    chaos_cases,
    generate_payload,
)

__all__ = [
    "AXES",
    "ScenarioDraft",
    "axis_names",
    "register_axis",
    "CampaignResult",
    "ChaosRunner",
    "PartialCampaignResult",
    "RunRecord",
    "default_policies",
    "load_campaign_result",
    "run_campaign",
    "VERDICTS",
    "LedgerBattery",
    "RunJudgement",
    "Violation",
    "check_invariants",
    "judge_scenario",
    "judge_simulation",
    "format_report",
    "interesting_failures",
    "promote_failures",
    "promotion_name",
    "ChaosAxisSpec",
    "ChaosSpec",
    "JudgeRulesSpec",
    "load_chaos_file",
    "case_indices",
    "case_name",
    "chaos_case",
    "chaos_cases",
    "generate_payload",
]
