"""The chaos axis registry and the built-in fault axes.

An *axis* is one family of hostile-world mutations: polar-winter
light, sensor fault storms, harvester occlusion, brown-out load
cascades, battery aging.  Axis factories follow the policy-registry
contract — ``factory(params) -> apply`` where ``apply(draft, rng)``
mutates a :class:`ScenarioDraft` in place using only the supplied
``random.Random`` — so axes compose deterministically and third-party
code can register its own::

    from repro.chaos import register_axis

    @register_axis("solar_flare")
    def build_solar_flare(params):
        def apply(draft, rng):
            draft.faults.append(...)
        return apply

Every draw must come from ``rng`` (never the global ``random`` or the
clock): case ``i`` of a campaign is generated from
``random.Random(seed + i)``, which is what makes a seeded campaign
bitwise-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import SpecError
from repro.scenarios.registry import ComponentRegistry
from repro.scenarios.spec import BatterySpec, FaultSpec, SegmentSpec

__all__ = ["AXES", "ScenarioDraft", "register_axis", "axis_names"]

#: Registry of chaos axis factories: ``name -> factory(params) -> apply``.
AXES = ComponentRegistry("chaos axis")


def register_axis(name: str):
    """Decorator registering a chaos axis factory under ``name``."""
    return AXES.register(name)


def axis_names() -> list[str]:
    """All registered axis names, sorted."""
    return AXES.names()


@dataclass
class ScenarioDraft:
    """The mutable scenario under construction that axes operate on.

    Attributes:
        segments: the case's environment segments (already tiled to
            the horizon); axes may rewrite them.
        faults: fault windows accumulated so far; axes append.
        battery: the storage cell spec; axes may replace it (aging).
        horizon_s: the case's pinned duration.
        step_s: the simulation step (for sizing windows sensibly).
    """

    segments: list[SegmentSpec]
    faults: list[FaultSpec] = field(default_factory=list)
    battery: BatterySpec = BatterySpec()
    horizon_s: float = 0.0
    step_s: float = 60.0


ApplyFn = Callable[[ScenarioDraft, Any], None]


def _params(what: str, params: Mapping[str, Any],
            defaults: Mapping[str, float]) -> dict[str, float]:
    """Merge axis params over defaults, rejecting unknown keys."""
    unknown = set(params) - set(defaults)
    if unknown:
        raise SpecError(
            f"unknown {what} axis params: {sorted(unknown)} "
            f"(known: {sorted(defaults)})")
    merged = dict(defaults)
    merged.update(params)
    for key, value in merged.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(
                f"{what} axis param {key!r} must be a number, got {value!r}")
    return merged


def _check_range(what: str, low_key: str, high_key: str,
                 p: Mapping[str, float]) -> None:
    if p[low_key] > p[high_key]:
        raise SpecError(
            f"{what} axis: {low_key} ({p[low_key]!r}) exceeds "
            f"{high_key} ({p[high_key]!r})")


def _window(rng, horizon_s: float, min_s: float, max_s: float,
            ) -> tuple[float, float]:
    """One (start_s, duration_s) window drawn inside the horizon."""
    duration = rng.uniform(min_s, min(max_s, horizon_s))
    start = rng.uniform(0.0, max(0.0, horizon_s - duration))
    return start, duration


@register_axis("polar_winter")
def _build_polar_winter(params: Mapping[str, Any]) -> ApplyFn:
    """Scale every segment's illuminance down to arctic-winter levels.

    Params: ``min_scale``/``max_scale`` — the per-case lux multiplier
    is drawn uniformly from this range.
    """
    p = _params("polar_winter", params,
                {"min_scale": 0.02, "max_scale": 0.3})
    _check_range("polar_winter", "min_scale", "max_scale", p)
    if p["min_scale"] < 0:
        raise SpecError("polar_winter axis: min_scale cannot be negative")

    def apply(draft: ScenarioDraft, rng) -> None:
        scale = rng.uniform(p["min_scale"], p["max_scale"])
        draft.segments = [
            SegmentSpec(duration_s=seg.duration_s, lux=seg.lux * scale,
                        ambient_c=seg.ambient_c, skin_c=seg.skin_c,
                        wind_ms=seg.wind_ms, label=seg.label)
            for seg in draft.segments
        ]

    return apply


@register_axis("sensor_fault_storm")
def _build_sensor_fault_storm(params: Mapping[str, Any]) -> ApplyFn:
    """A burst of sensor dropout windows scattered over the horizon.

    Params: ``max_windows`` (1..n drawn per case), window length range
    ``min_minutes``/``max_minutes``.
    """
    p = _params("sensor_fault_storm", params,
                {"max_windows": 5, "min_minutes": 10.0,
                 "max_minutes": 120.0})
    _check_range("sensor_fault_storm", "min_minutes", "max_minutes", p)
    if p["max_windows"] < 1:
        raise SpecError(
            "sensor_fault_storm axis: max_windows must be at least 1")

    def apply(draft: ScenarioDraft, rng) -> None:
        for _ in range(rng.randint(1, int(p["max_windows"]))):
            start, duration = _window(rng, draft.horizon_s,
                                      p["min_minutes"] * 60.0,
                                      p["max_minutes"] * 60.0)
            draft.faults.append(FaultSpec(
                kind="sensor_dropout", start_s=start, duration_s=duration))

    return apply


@register_axis("harvester_occlusion")
def _build_harvester_occlusion(params: Mapping[str, Any]) -> ApplyFn:
    """Sleeves, pockets, grime: windows where intake is derated.

    Params: ``max_windows``, remaining-intake ``min_scale``/
    ``max_scale``, window length range ``min_hours``/``max_hours``.
    """
    p = _params("harvester_occlusion", params,
                {"max_windows": 3, "min_scale": 0.0, "max_scale": 0.5,
                 "min_hours": 0.5, "max_hours": 8.0})
    _check_range("harvester_occlusion", "min_scale", "max_scale", p)
    _check_range("harvester_occlusion", "min_hours", "max_hours", p)
    if not 0.0 <= p["min_scale"] <= 1.0 or not 0.0 <= p["max_scale"] <= 1.0:
        raise SpecError(
            "harvester_occlusion axis: scales must lie in [0, 1]")
    if p["max_windows"] < 1:
        raise SpecError(
            "harvester_occlusion axis: max_windows must be at least 1")

    def apply(draft: ScenarioDraft, rng) -> None:
        for _ in range(rng.randint(1, int(p["max_windows"]))):
            start, duration = _window(rng, draft.horizon_s,
                                      p["min_hours"] * 3600.0,
                                      p["max_hours"] * 3600.0)
            draft.faults.append(FaultSpec(
                kind="harvester_derate", start_s=start, duration_s=duration,
                magnitude=rng.uniform(p["min_scale"], p["max_scale"])))

    return apply


@register_axis("brownout_cascade")
def _build_brownout_cascade(params: Mapping[str, Any]) -> ApplyFn:
    """A ramping cluster of parasitic load spikes racing SoC to the
    UV floor — back-to-back windows whose extra draw escalates.

    Params: ``max_spikes``, extra draw range ``min_extra_w``/
    ``max_extra_w``, per-spike length range ``min_minutes``/
    ``max_minutes``.
    """
    p = _params("brownout_cascade", params,
                {"max_spikes": 4, "min_extra_w": 0.002,
                 "max_extra_w": 0.02, "min_minutes": 15.0,
                 "max_minutes": 180.0})
    _check_range("brownout_cascade", "min_extra_w", "max_extra_w", p)
    _check_range("brownout_cascade", "min_minutes", "max_minutes", p)
    if p["min_extra_w"] <= 0:
        raise SpecError(
            "brownout_cascade axis: min_extra_w must be positive")
    if p["max_spikes"] < 1:
        raise SpecError(
            "brownout_cascade axis: max_spikes must be at least 1")

    def apply(draft: ScenarioDraft, rng) -> None:
        spikes = rng.randint(1, int(p["max_spikes"]))
        anchor = rng.uniform(0.0, draft.horizon_s * 0.5)
        t = anchor
        for i in range(spikes):
            duration = rng.uniform(p["min_minutes"] * 60.0,
                                   p["max_minutes"] * 60.0)
            # The cascade escalates: spike i draws a fraction of the
            # range that grows with i, modelling a failure that feeds
            # on itself (retry storms, a stuck radio).
            low = p["min_extra_w"]
            high = low + (p["max_extra_w"] - low) * (i + 1) / spikes
            draft.faults.append(FaultSpec(
                kind="load_spike", start_s=t, duration_s=duration,
                magnitude=rng.uniform(low, high)))
            t += duration

    return apply


@register_axis("battery_aging")
def _build_battery_aging(params: Mapping[str, Any]) -> ApplyFn:
    """An aged cell: capacity fade drawn per case.

    Params: ``min_fade``/``max_fade`` — fraction of nameplate capacity
    lost, each in [0, 1).
    """
    p = _params("battery_aging", params,
                {"min_fade": 0.1, "max_fade": 0.6})
    _check_range("battery_aging", "min_fade", "max_fade", p)
    if not 0.0 <= p["min_fade"] < 1.0 or not 0.0 <= p["max_fade"] < 1.0:
        raise SpecError("battery_aging axis: fades must lie in [0, 1)")

    def apply(draft: ScenarioDraft, rng) -> None:
        import dataclasses

        draft.battery = dataclasses.replace(
            draft.battery,
            capacity_fade=rng.uniform(p["min_fade"], p["max_fade"]))

    return apply
