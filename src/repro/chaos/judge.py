"""The invariant judge: accounting cross-checks + survival rules.

This is the PR 5 invariant suite (``tests/integration/
test_invariants.py``) as library code.  A :class:`LedgerBattery`
wrapper keeps independent books on every battery event; after a run,
:func:`check_invariants` compares the engine's summary totals against
the ledger:

* engine ``total_harvest_j`` / ``total_consumed_j`` / ``final_soc``
  equal the ledger's numbers **float-exactly** (same additions in the
  same order — ``==``, not approx);
* coulomb conservation: ``ΔSoC x capacity_c`` equals charge in minus
  charge out within float tolerance;
* energy conservation: ``harvested x charge_efficiency - consumed``
  equals the stored-energy delta priced at event-time OCV;
* the ``energy_neutral`` flag is exactly the SoC comparison;
* delivery decomposition: with zero downtime, consumption equals
  detections x E_det + overhead x horizon (overhead includes injected
  fault load); with brown-outs it can only *under*-deliver, up to a
  principled slack of one partially-covered detection per degraded
  step.

:func:`judge_scenario` then classifies a (scenario, policy) run:

* ``"violation"`` — an invariant broke, or the engine raised: the
  *simulator* is wrong (or a policy returned garbage).  These are the
  bugs chaos exists to find.
* ``"survival_failure"`` — the books balance but the watch died:
  downtime above the rules' ceiling, battery at the floor, or zero
  detections.  These are *policy/hardware* failures worth promoting
  to regression scenarios.
* ``"pass"`` — books balance and the watch survived.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.chaos.spec import JudgeRulesSpec
from repro.errors import ReproError, SpecError
from repro.scenarios.builder import build_simulation
from repro.scenarios.runner import ScenarioOutcome
from repro.scenarios.spec import ScenarioSpec, check_mapping_keys

__all__ = ["VERDICTS", "LedgerBattery", "Violation", "RunJudgement",
           "check_invariants", "judge_simulation", "judge_scenario"]

#: The three judge outcomes, in severity order.
VERDICTS = ("violation", "survival_failure", "pass")


class LedgerBattery:
    """Wraps a battery and keeps independent books on every event.

    Coulombs are measured from ``charge_c`` deltas (not the return
    values) and energy is priced at the event's open-circuit voltage,
    so the ledger's ΔE is an independent restatement of the battery's
    own bookkeeping — agreement with the engine's totals is a real
    cross-check, not a tautology.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self.energy_in_j = 0.0    # what charge() reported accepting
        self.energy_out_j = 0.0   # what discharge() reported delivering
        self.coulombs_in = 0.0
        self.coulombs_out = 0.0
        self.banked_j = 0.0       # ΔE: stored energy at event-time OCV

    @property
    def capacity_c(self):
        return self._inner.capacity_c

    @property
    def charge_efficiency(self):
        return self._inner.charge_efficiency

    @property
    def state_of_charge(self):
        return self._inner.state_of_charge

    def charge(self, power_w, duration_s):
        voltage = self._inner.open_circuit_voltage()
        before_c = self._inner.charge_c
        stored_j = self._inner.charge(power_w, duration_s)
        accepted_c = self._inner.charge_c - before_c
        self.energy_in_j += stored_j
        self.coulombs_in += accepted_c
        self.banked_j += accepted_c * voltage
        return stored_j

    def discharge(self, power_w, duration_s):
        voltage = self._inner.open_circuit_voltage()
        before_c = self._inner.charge_c
        delivered_j = self._inner.discharge(power_w, duration_s)
        removed_c = before_c - self._inner.charge_c
        self.energy_out_j += delivered_j
        self.coulombs_out += removed_c
        self.banked_j -= removed_c * voltage
        return delivered_j


@dataclass(frozen=True)
class Violation:
    """One broken invariant: a stable name plus the numbers."""

    name: str
    detail: str

    def __str__(self) -> str:
        return f"{self.name}: {self.detail}"


def _close(a: float, b: float, rel: float, abs_tol: float) -> bool:
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)


def check_invariants(sim, ledger: LedgerBattery,
                     result) -> list[Violation]:
    """Every accounting invariant, checked; empty list means all hold.

    Args:
        sim: the :class:`~repro.core.simulation.DaySimulation` that ran
            (supplies ``detection_energy_j`` / ``sleep_power_w``).
        ledger: the :class:`LedgerBattery` that was the run's battery.
        result: the run's ``SimulationResult``.
    """
    violations: list[Violation] = []

    # Engine totals are exactly the sums of the battery's own return
    # values — same floats added in the same order, so ==, not approx.
    if result.total_harvest_j != ledger.energy_in_j:
        violations.append(Violation(
            "harvest_total",
            f"engine total_harvest_j {result.total_harvest_j!r} != "
            f"ledger energy_in_j {ledger.energy_in_j!r}"))
    if result.total_consumed_j != ledger.energy_out_j:
        violations.append(Violation(
            "consumed_total",
            f"engine total_consumed_j {result.total_consumed_j!r} != "
            f"ledger energy_out_j {ledger.energy_out_j!r}"))
    if result.final_soc != ledger.state_of_charge:
        violations.append(Violation(
            "final_soc",
            f"engine final_soc {result.final_soc!r} != battery "
            f"state_of_charge {ledger.state_of_charge!r}"))

    # Coulomb conservation: the SoC swing is exactly the net charge
    # through the terminals (different association order -> tolerance).
    delta_c = (result.final_soc - result.initial_soc) * ledger.capacity_c
    net_c = ledger.coulombs_in - ledger.coulombs_out
    if not _close(delta_c, net_c, rel=1e-9, abs_tol=1e-9):
        violations.append(Violation(
            "coulomb_conservation",
            f"ΔSoC x capacity = {delta_c!r} C but net terminal charge "
            f"= {net_c!r} C"))

    # Energy conservation: harvested minus consumed lands in the
    # battery as stored energy ΔE, less the coulombic charging loss.
    delta_e = (result.total_harvest_j * ledger.charge_efficiency
               - result.total_consumed_j)
    if not _close(delta_e, ledger.banked_j, rel=1e-9, abs_tol=1e-6):
        violations.append(Violation(
            "energy_conservation",
            f"harvest x eff - consumed = {delta_e!r} J but stored "
            f"ΔE = {ledger.banked_j!r} J"))

    # The neutrality flag is the SoC comparison, nothing else.
    if result.energy_neutral != (
            result.final_soc >= result.initial_soc - 1e-9):
        violations.append(Violation(
            "neutrality_flag",
            f"energy_neutral={result.energy_neutral!r} contradicts "
            f"final_soc {result.final_soc!r} vs initial "
            f"{result.initial_soc!r}"))

    # Delivery decomposition.  Demand includes injected fault load
    # (result.fault_demand_j is 0 on healthy runs, so this is the PR 5
    # check verbatim there).
    demand_j = (result.total_detections * sim.detection_energy_j
                + sim.sleep_power_w * result.duration_s
                + result.fault_demand_j)
    if result.downtime_s == 0.0:
        if not _close(result.total_consumed_j, demand_j,
                      rel=1e-9, abs_tol=1e-6):
            violations.append(Violation(
                "full_delivery",
                f"downtime is zero but consumed {result.total_consumed_j!r} "
                f"J != demanded {demand_j!r} J"))
    else:
        # Brown-outs only ever under-deliver whole detections, but a
        # degraded step may deliver a *fraction* of one detection the
        # accounting does not execute — so the bound carries one
        # detection's slack per degraded step.
        degraded_steps = result.downtime_s / sim.step_s
        slack = sim.detection_energy_j * (degraded_steps + 1.0) + 1e-6
        if result.total_consumed_j > demand_j + slack:
            violations.append(Violation(
                "overdelivery",
                f"consumed {result.total_consumed_j!r} J exceeds demanded "
                f"{demand_j!r} J by more than the brown-out slack "
                f"{slack!r} J"))
    return violations


@dataclass(frozen=True)
class RunJudgement:
    """The judge's verdict on one (scenario, policy) run.

    Attributes:
        verdict: one of :data:`VERDICTS`.
        reasons: why — broken invariant descriptions, survival-rule
            breaches, or an engine error message.  Empty on a pass.
        outcome: the run's summary metrics; ``None`` when the engine
            raised before producing a result.
    """

    verdict: str
    reasons: tuple[str, ...] = ()
    outcome: ScenarioOutcome | None = None

    def __post_init__(self) -> None:
        if self.verdict not in VERDICTS:
            raise SpecError(
                f"unknown verdict {self.verdict!r} (known: {list(VERDICTS)})")
        object.__setattr__(self, "reasons", tuple(self.reasons))

    def to_dict(self) -> dict[str, Any]:
        return {
            "verdict": self.verdict,
            "reasons": list(self.reasons),
            "outcome": (self.outcome.to_dict()
                        if self.outcome is not None else None),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunJudgement":
        data = check_mapping_keys("RunJudgement", data,
                                  known=("verdict", "reasons", "outcome"),
                                  required=("verdict",))
        outcome = data.get("outcome")
        return cls(
            verdict=data["verdict"],
            reasons=tuple(data.get("reasons", ())),
            outcome=(ScenarioOutcome.from_dict(outcome)
                     if outcome is not None else None))


def _survival_reasons(sim, result, rules: JudgeRulesSpec) -> list[str]:
    reasons: list[str] = []
    downtime_frac = (result.downtime_s / result.duration_s
                     if result.duration_s > 0 else 0.0)
    if downtime_frac > rules.max_downtime_fraction:
        reasons.append(
            f"downtime {result.downtime_s / 3600.0:.2f} h is "
            f"{downtime_frac:.1%} of the horizon "
            f"(ceiling {rules.max_downtime_fraction:.1%})")
    if result.final_soc < rules.min_final_soc:
        reasons.append(
            f"final SoC {result.final_soc:.3f} below the "
            f"{rules.min_final_soc:.3f} survival floor")
    if rules.require_detections and result.total_detections == 0.0:
        reasons.append("zero detections executed over the horizon")
    return reasons


def judge_simulation(sim, rules: JudgeRulesSpec | None = None,
                     name: str = "") -> RunJudgement:
    """Run a built simulation under the ledger and judge it.

    The simulation's battery is wrapped in a :class:`LedgerBattery`
    before the run, so this must be called on a freshly-built
    simulation.
    """
    rules = rules if rules is not None else JudgeRulesSpec()
    ledger = LedgerBattery(sim.battery)
    sim.battery = ledger
    try:
        result = sim.run()
    except ReproError as exc:
        return RunJudgement(
            verdict="violation",
            reasons=(f"engine error: {exc}",))
    violations = check_invariants(sim, ledger, result)
    outcome = ScenarioOutcome.from_result(name or "run", result)
    if violations:
        return RunJudgement(
            verdict="violation",
            reasons=tuple(str(v) for v in violations),
            outcome=outcome)
    survival = _survival_reasons(sim, result, rules)
    if survival:
        return RunJudgement(verdict="survival_failure",
                            reasons=tuple(survival), outcome=outcome)
    return RunJudgement(verdict="pass", outcome=outcome)


def judge_scenario(spec: ScenarioSpec,
                   rules: JudgeRulesSpec | None = None) -> RunJudgement:
    """Build ``spec`` (trace forced off), run it and judge the run."""
    if spec.trace != "none":
        spec = dataclasses.replace(spec, trace="none")
    sim = build_simulation(spec)
    return judge_simulation(sim, rules, name=spec.name)
