"""The observation -> decision protocol every power policy implements.

The paper's power manager "opportunistically take[s] advantage of
periods of overabundant energy and survive[s] intervals when the
system is starving".  This module defines the *shape* of any such
manager, so the day-in-the-life engine can step arbitrary policies
without knowing their internals:

* :class:`PowerObservation` — what the policy is allowed to see each
  step (battery state of charge, recent harvest power, time of day,
  step duration).  Frozen, so a decision can never mutate its inputs.
* :class:`PolicyDecision` — what the policy answers: the detection
  rate for the coming step, plus an optional operating-mode hint.
* :class:`Policy` — the structural protocol: ``decide(obs)`` plus a
  ``max_rate_per_min`` ceiling the engine uses to cap per-step
  execution (a brown-out backlog can never replay above it).
* :class:`PolicyContext` — build-time facts a policy factory may need
  (per-detection energy, the environment timeline for lookahead
  policies, the harvesting chain).

Policies that keep per-run state (forecasts, counters) should expose a
``reset()`` method; the engine calls it at the start of every run so a
reused simulation object stays deterministic.

This module deliberately imports nothing from :mod:`repro.core` or
:mod:`repro.scenarios` — it is the shared vocabulary both layers speak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import ConfigurationError
from repro.units import SECONDS_PER_DAY

__all__ = [
    "PowerObservation",
    "PolicyDecision",
    "Policy",
    "BatchPolicy",
    "PolicyContext",
]


@dataclass(frozen=True)
class PowerObservation:
    """Everything a policy may observe at one decision point.

    Attributes:
        time_s: simulation time at the start of the step.
        step_s: duration of the coming step.
        harvest_power_w: net battery intake during the step (the
            environment is piecewise-constant, so "recent" and
            "current" harvest coincide within a segment).
        state_of_charge: battery state of charge in [0, 1], read after
            the step's harvest was banked.
    """

    time_s: float
    step_s: float
    harvest_power_w: float
    state_of_charge: float

    @property
    def time_of_day_s(self) -> float:
        """Seconds since the most recent midnight of the simulation."""
        return self.time_s % SECONDS_PER_DAY


@dataclass(frozen=True)
class PolicyDecision:
    """A policy's answer for one step.

    Attributes:
        detection_rate_per_min: stress detections per minute to run
            during the step.  The engine clamps it to the policy's own
            ``max_rate_per_min`` and rejects negative/NaN rates.
        mode: optional free-form operating-mode hint ("starving",
            "abundant", ...) for reports and debugging; the engine
            never interprets it.
    """

    detection_rate_per_min: float
    mode: str = ""


@runtime_checkable
class Policy(Protocol):
    """Structural protocol for pluggable power-manager policies.

    Anything with a ``max_rate_per_min`` ceiling and a
    ``decide(obs) -> PolicyDecision`` method is a policy; no
    inheritance required.  Stateful policies may additionally expose
    ``reset()``, called by the engine at the start of each run, and
    batchable policies may expose ``decide_batch`` (see
    :class:`BatchPolicy`) so the vectorized fleet engine can decide
    for a whole population in one call.
    """

    max_rate_per_min: float

    def decide(self, obs: PowerObservation) -> PolicyDecision: ...


@runtime_checkable
class BatchPolicy(Policy, Protocol):
    """A policy that can also decide for N wearers at once.

    The optional hook the vectorized fleet engine
    (:mod:`repro.fleet.vector`) dispatches on: policies exposing
    ``decide_batch`` step through the array engine, everything else
    falls back to the per-wearer scalar loop.  The contract mirrors
    :meth:`Policy.decide` element-wise:

    * ``harvest_power_w`` and ``state_of_charge`` are parallel float64
      arrays, one entry per wearer — the same post-charge SoC and
      effective (fault-scaled) intake a :class:`PowerObservation`
      would carry; ``time_s``/``step_s`` are shared scalars (wearers
      step in lockstep).
    * The return value is the per-wearer detection rate (an array
      broadcastable to the wearer count), and entry ``i`` must be
      bit-for-bit the ``detection_rate_per_min`` that ``decide`` would
      return for wearer ``i``'s observation — the scalar engine is the
      oracle, and the differential harness asserts this equivalence.
    * A batch decision must be a pure function of its arguments: the
      engine offers no per-wearer ``reset`` hook, so stateful policies
      (forecasts, counters) should *not* implement ``decide_batch``
      and will be stepped by the scalar fallback instead.
    """

    def decide_batch(self, time_s: float, step_s: float,
                     harvest_power_w, state_of_charge): ...


@dataclass(frozen=True)
class PolicyContext:
    """Build-time facts handed to registered policy factories.

    Attributes:
        detection_energy_j: energy of one stress detection — what the
            energy-neutral rate is priced against.
        sleep_power_w: baseline draw on top of detections.
        step_s: the simulation step the policy will be driven at.
        timeline: the environment over the horizon, when the scenario
            has been built (lookahead/oracle policies need it).
        harvester: the harvesting chain, for policies that price the
            timeline themselves.
    """

    detection_energy_j: float
    sleep_power_w: float = 0.0
    step_s: float = 60.0
    timeline: object | None = None
    harvester: object | None = None

    def __post_init__(self) -> None:
        if self.detection_energy_j <= 0:
            raise ConfigurationError("detection energy must be positive")
        if self.sleep_power_w < 0:
            raise ConfigurationError("sleep power cannot be negative")
        if self.step_s <= 0:
            raise ConfigurationError("step size must be positive")
