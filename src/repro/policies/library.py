"""Built-in power policies, registered under their spec names.

Four decision-making strategies ship with the library, spanning the
space a policy study needs:

* ``energy_aware`` — :class:`EnergyAwarePolicy`, the paper-shaped
  manager (SoC hysteresis bands around the instantaneous
  energy-neutral rate).  The default, and bitwise-identical to the
  pre-protocol :class:`~repro.core.manager.EnergyAwareManager` path.
* ``static_duty_cycle`` — :class:`StaticDutyCyclePolicy`, a constant
  rate regardless of conditions; the baseline every adaptive policy
  must beat.
* ``ewma_forecast`` — :class:`EwmaForecastPolicy`, the neutral band
  priced against an exponentially-weighted harvest forecast instead of
  the instantaneous power, so short clouds/bursts stop whipsawing the
  rate.
* ``oracle_lookahead`` — :class:`OracleLookaheadPolicy`, which peeks
  at the environment timeline and spends against the *mean* harvest
  over a future window.  Not realizable on hardware; an upper bound
  for policy studies.

Factories registered here take ``(params, context)`` — the
:class:`~repro.scenarios.spec.PolicySpec` params mapping plus a
:class:`~repro.policies.base.PolicyContext` — and raise
:class:`~repro.errors.SpecError` on unknown params, inverted SoC
bands, negative rates and other invalid configurations, so a bad grid
point fails at build time with the registered knob names in the
message.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Mapping

import numpy as np

from repro.core.manager import EnergyAwareManager, ManagerPolicy
from repro.errors import ConfigurationError, SpecError
from repro.policies.base import PolicyContext, PolicyDecision, PowerObservation
from repro.scenarios.registry import POLICIES, register_policy

__all__ = [
    "EnergyAwarePolicy",
    "StaticDutyCyclePolicy",
    "EwmaForecastPolicy",
    "OracleLookaheadPolicy",
    "policy_names",
]


def policy_names() -> list[str]:
    """All registered policy names, sorted."""
    return POLICIES.names()


def _merge_params(name: str, params: Mapping[str, Any],
                  defaults: Mapping[str, Any]) -> dict[str, Any]:
    """Defaults overlaid with ``params``; unknown keys are a SpecError.

    Every built-in policy knob is numeric, so non-number values (the
    spec layer admits any JSON scalar) are rejected here with the knob
    name instead of surfacing as a ``TypeError`` inside a comparison.
    """
    unknown = set(params) - set(defaults)
    if unknown:
        raise SpecError(
            f"unknown {name!r} policy params: {sorted(unknown)} "
            f"(known: {sorted(defaults)})")
    for key, value in params.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(
                f"{name} policy param {key!r} must be a number, "
                f"got {value!r}")
    merged = dict(defaults)
    merged.update(params)
    return merged


def _check_band(name: str, min_rate: float, max_rate: float,
                low_soc: float, high_soc: float, margin: float) -> None:
    """Shared rate/band/margin validation, reported as SpecError."""
    if min_rate < 0 or max_rate <= 0:
        raise SpecError(
            f"{name} policy rates must be non-negative "
            f"(min {min_rate!r}) and positive (max {max_rate!r})")
    if min_rate > max_rate:
        raise SpecError(
            f"{name} policy min rate {min_rate!r} cannot exceed "
            f"max rate {max_rate!r}")
    if not 0.0 <= low_soc < high_soc <= 1.0:
        raise SpecError(
            f"{name} policy needs 0 <= low_soc < high_soc <= 1, "
            f"got [{low_soc!r}, {high_soc!r}]")
    if not 0.0 <= margin < 1.0:
        raise SpecError(
            f"{name} policy neutrality_margin must lie in [0, 1), "
            f"got {margin!r}")


class EnergyAwarePolicy:
    """The paper's energy-aware manager behind the Policy protocol.

    A thin adapter: :meth:`decide` calls the wrapped
    :class:`~repro.core.manager.EnergyAwareManager` verbatim, so the
    chosen rate is bit-for-bit the pre-protocol one (asserted by the
    throughput bench's legacy-equivalence check).

    Args:
        manager: the configured rate-choosing manager to wrap.
    """

    def __init__(self, manager: EnergyAwareManager) -> None:
        self.manager = manager

    @property
    def max_rate_per_min(self) -> float:
        return self.manager.policy.max_rate_per_min

    def decide(self, obs: PowerObservation) -> PolicyDecision:
        manager = self.manager
        rate = manager.detection_rate_per_min(obs.harvest_power_w,
                                              obs.state_of_charge)
        thresholds = manager.policy
        if obs.state_of_charge < thresholds.low_soc:
            mode = "starving"
        elif obs.state_of_charge > thresholds.high_soc:
            mode = "abundant"
        else:
            mode = "neutral"
        return PolicyDecision(rate, mode)

    def decide_batch(self, time_s: float, step_s: float,
                     harvest_power_w: np.ndarray,
                     state_of_charge: np.ndarray) -> np.ndarray:
        """Per-wearer rates, element-wise identical to :meth:`decide`.

        The :class:`~repro.policies.base.BatchPolicy` hook: the same
        starving / abundant / clamped-neutral regimes the wrapped
        manager implements, computed as masks with the manager's exact
        float operations (``harvest * (1 - margin)`` then
        ``usable * 60 / E``, then ``min(max, max(min, neutral))``), so
        every entry is bit-for-bit the scalar decision.
        """
        if np.any((state_of_charge < 0.0) | (state_of_charge > 1.0)):
            # Mirrors EnergyAwareManager.detection_rate_per_min.
            raise ConfigurationError("state of charge must lie in [0, 1]")
        manager = self.manager
        p = manager.policy
        usable = harvest_power_w * (1.0 - p.neutrality_margin)
        neutral = np.where(harvest_power_w > 0,
                           usable * 60.0 / manager.detection_energy_j, 0.0)
        banded = np.minimum(p.max_rate_per_min,
                            np.maximum(p.min_rate_per_min, neutral))
        return np.where(state_of_charge < p.low_soc, p.min_rate_per_min,
                        np.where(state_of_charge > p.high_soc,
                                 p.max_rate_per_min, banded))


class StaticDutyCyclePolicy:
    """A fixed detection rate, blind to harvest and battery state.

    The duty-cycling baseline: what a watch without a smart power unit
    would do.  Useful as the control arm of any policy grid search.

    Args:
        rate_per_min: the constant detection rate.
    """

    def __init__(self, rate_per_min: float = 6.0) -> None:
        if rate_per_min < 0:
            raise SpecError(
                f"static_duty_cycle rate cannot be negative: {rate_per_min!r}")
        self.rate_per_min = rate_per_min
        self.max_rate_per_min = max(rate_per_min, 1.0)

    def decide(self, obs: PowerObservation) -> PolicyDecision:
        return PolicyDecision(self.rate_per_min, "static")

    def decide_batch(self, time_s: float, step_s: float,
                     harvest_power_w: np.ndarray,
                     state_of_charge: np.ndarray) -> np.ndarray:
        """The constant rate for every wearer (trivially batchable)."""
        return np.full_like(state_of_charge, self.rate_per_min)


class _SocBandedPolicy:
    """Shared SoC-hysteresis plumbing for forecast-style policies.

    Same regime structure as ``energy_aware``: floor rate when
    starving, ceiling when abundant, and in between the energy-neutral
    rate of whatever power estimate the subclass supplies to
    :meth:`_banded_decision`.
    """

    def __init__(self, name: str, detection_energy_j: float,
                 min_rate_per_min: float, max_rate_per_min: float,
                 low_soc: float, high_soc: float,
                 neutrality_margin: float) -> None:
        if detection_energy_j <= 0:
            raise SpecError(f"{name} detection energy must be positive")
        _check_band(name, min_rate_per_min, max_rate_per_min,
                    low_soc, high_soc, neutrality_margin)
        self.detection_energy_j = detection_energy_j
        self.min_rate_per_min = min_rate_per_min
        self.max_rate_per_min = max_rate_per_min
        self.low_soc = low_soc
        self.high_soc = high_soc
        self.neutrality_margin = neutrality_margin

    def _banded_decision(self, state_of_charge: float,
                         power_estimate_w: float, mode: str) -> PolicyDecision:
        """Floor / ceiling / clamped-neutral dispatch on one estimate."""
        if state_of_charge < self.low_soc:
            return PolicyDecision(self.min_rate_per_min, "starving")
        if state_of_charge > self.high_soc:
            return PolicyDecision(self.max_rate_per_min, "abundant")
        usable = power_estimate_w * (1.0 - self.neutrality_margin)
        neutral = (usable * 60.0 / self.detection_energy_j
                   if usable > 0 else 0.0)
        rate = min(self.max_rate_per_min, max(self.min_rate_per_min, neutral))
        return PolicyDecision(rate, mode)


class EwmaForecastPolicy(_SocBandedPolicy):
    """Energy-neutral rate priced against an EWMA harvest forecast.

    Same SoC hysteresis bands as ``energy_aware``, but the neutral
    band spends against an exponentially-weighted moving average of
    the observed harvest power rather than the instantaneous value —
    a 30 s sun burst no longer slams the rate to the ceiling, and a
    passing cloud no longer drops it to the floor.

    Args:
        detection_energy_j: energy of one detection.
        alpha: EWMA smoothing factor in (0, 1]; 1 reduces to the
            instantaneous policy.
        min_rate_per_min / max_rate_per_min / low_soc / high_soc /
        neutrality_margin: as in
            :class:`~repro.core.manager.ManagerPolicy`.
    """

    def __init__(self, detection_energy_j: float, alpha: float = 0.25,
                 min_rate_per_min: float = 1.0,
                 max_rate_per_min: float = 24.0,
                 low_soc: float = 0.15, high_soc: float = 0.85,
                 neutrality_margin: float = 0.05) -> None:
        if not 0.0 < alpha <= 1.0:
            raise SpecError(
                f"ewma_forecast alpha must lie in (0, 1], got {alpha!r}")
        super().__init__("ewma_forecast", detection_energy_j,
                         min_rate_per_min, max_rate_per_min,
                         low_soc, high_soc, neutrality_margin)
        self.alpha = alpha
        self._forecast_w: float | None = None

    @property
    def forecast_w(self) -> float | None:
        """The current harvest forecast (None before any observation)."""
        return self._forecast_w

    def reset(self) -> None:
        """Forget the forecast (called by the engine at run start)."""
        self._forecast_w = None

    def decide(self, obs: PowerObservation) -> PolicyDecision:
        previous = self._forecast_w
        if previous is None:
            forecast = obs.harvest_power_w
        else:
            forecast = (self.alpha * obs.harvest_power_w
                        + (1.0 - self.alpha) * previous)
        self._forecast_w = forecast
        return self._banded_decision(obs.state_of_charge, forecast,
                                     "forecast")


class OracleLookaheadPolicy(_SocBandedPolicy):
    """Spends against the mean harvest of a future timeline window.

    A clairvoyant planner: at build time it prices every timeline
    segment through the harvesting chain and keeps prefix sums, so
    each decision reads the *average* intake over the coming
    ``lookahead_s`` in O(log segments).  Beyond the timeline's end the
    final segment's conditions persist, exactly as the engine's
    clamped stepping does.  Physically unrealizable (the wearer's
    future is unknown) — the upper bound adaptive policies are
    measured against.

    Args:
        detection_energy_j: energy of one detection.
        timeline: the environment the run will be driven with.
        harvester: the chain pricing each segment's battery intake.
        lookahead_s: how far ahead the oracle averages.
        min_rate_per_min / max_rate_per_min / low_soc / high_soc /
        neutrality_margin: as in
            :class:`~repro.core.manager.ManagerPolicy`.
    """

    def __init__(self, detection_energy_j: float, timeline, harvester,
                 lookahead_s: float = 6 * 3600.0,
                 min_rate_per_min: float = 1.0,
                 max_rate_per_min: float = 24.0,
                 low_soc: float = 0.15, high_soc: float = 0.85,
                 neutrality_margin: float = 0.05) -> None:
        if lookahead_s <= 0:
            raise SpecError(
                f"oracle_lookahead lookahead_s must be positive, "
                f"got {lookahead_s!r}")
        super().__init__("oracle_lookahead", detection_energy_j,
                         min_rate_per_min, max_rate_per_min,
                         low_soc, high_soc, neutrality_margin)
        self.lookahead_s = lookahead_s
        # Price every segment once; prefix sums make any window mean
        # two lookups.
        powers = [harvester.battery_intake_w(seg.lighting, seg.thermal)
                  for seg in timeline.segments]
        self._powers = tuple(powers)
        self._boundaries = tuple(timeline.boundaries_s)
        cumulative = []
        total = 0.0
        start = 0.0
        for power, end in zip(powers, self._boundaries):
            total += power * (end - start)
            cumulative.append(total)
            start = end
        self._cum_energy = tuple(cumulative)

    def _energy_up_to(self, t_s: float) -> float:
        """Harvested joules over [0, t_s] (last segment extends forever)."""
        boundaries = self._boundaries
        if t_s <= 0:
            return 0.0
        if t_s >= boundaries[-1]:
            return (self._cum_energy[-1]
                    + self._powers[-1] * (t_s - boundaries[-1]))
        idx = bisect_right(boundaries, t_s)
        seg_start = boundaries[idx - 1] if idx else 0.0
        base = self._cum_energy[idx - 1] if idx else 0.0
        return base + self._powers[idx] * (t_s - seg_start)

    def mean_harvest_w(self, start_s: float) -> float:
        """Mean battery intake over [start_s, start_s + lookahead_s]."""
        window_j = (self._energy_up_to(start_s + self.lookahead_s)
                    - self._energy_up_to(start_s))
        return window_j / self.lookahead_s

    def decide(self, obs: PowerObservation) -> PolicyDecision:
        return self._banded_decision(obs.state_of_charge,
                                     self.mean_harvest_w(obs.time_s),
                                     "oracle")


# --- registered factories ----------------------------------------------------
#
# Signature contract (see repro.scenarios.registry):
#   POLICIES: (params: Mapping, context: PolicyContext) -> Policy

_BAND_DEFAULTS: dict[str, Any] = {
    "min_rate_per_min": 1.0,
    "max_rate_per_min": 24.0,
    "low_soc": 0.15,
    "high_soc": 0.85,
    "neutrality_margin": 0.05,
}


@register_policy("energy_aware")
def _build_energy_aware(params: Mapping[str, Any],
                        context: PolicyContext) -> EnergyAwarePolicy:
    merged = _merge_params("energy_aware", params, _BAND_DEFAULTS)
    try:
        thresholds = ManagerPolicy(**merged)
    except ConfigurationError as exc:
        raise SpecError(f"bad energy_aware policy params: {exc}") from None
    return EnergyAwarePolicy(
        EnergyAwareManager(context.detection_energy_j, thresholds))


@register_policy("static_duty_cycle")
def _build_static_duty_cycle(params: Mapping[str, Any],
                             context: PolicyContext) -> StaticDutyCyclePolicy:
    merged = _merge_params("static_duty_cycle", params,
                           {"rate_per_min": 6.0})
    return StaticDutyCyclePolicy(**merged)


@register_policy("ewma_forecast")
def _build_ewma_forecast(params: Mapping[str, Any],
                         context: PolicyContext) -> EwmaForecastPolicy:
    merged = _merge_params("ewma_forecast", params,
                           {"alpha": 0.25, **_BAND_DEFAULTS})
    return EwmaForecastPolicy(context.detection_energy_j, **merged)


@register_policy("oracle_lookahead")
def _build_oracle_lookahead(params: Mapping[str, Any],
                            context: PolicyContext) -> OracleLookaheadPolicy:
    merged = _merge_params("oracle_lookahead", params,
                           {"lookahead_s": 6 * 3600.0, **_BAND_DEFAULTS})
    if context.timeline is None or context.harvester is None:
        raise SpecError(
            "oracle_lookahead needs the built timeline and harvester in its "
            "PolicyContext — build it through build_simulation(spec), or "
            "pass PolicyContext(timeline=..., harvester=...) to build_policy")
    return OracleLookaheadPolicy(context.detection_energy_j,
                                 context.timeline, context.harvester, **merged)
