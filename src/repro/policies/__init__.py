"""Pluggable power-manager policies and policy grid search.

The decision-making layer of the day-in-the-life simulation, split out
of the engine behind a typed observation -> decision protocol:

* :mod:`repro.policies.base` — :class:`PowerObservation`,
  :class:`PolicyDecision`, the :class:`Policy` protocol and the
  build-time :class:`PolicyContext`;
* :mod:`repro.policies.library` — the built-in policies
  (``energy_aware``, ``static_duty_cycle``, ``ewma_forecast``,
  ``oracle_lookahead``), registered in the shared ``POLICIES``
  registry so any :class:`~repro.scenarios.spec.PolicySpec` can name
  them and round-trip through JSON and the process backend;
* :mod:`repro.policies.learned` — the oracle-supervised ``learned`` /
  ``learned_q`` trained policies (weights ride inside
  ``PolicySpec.params``; training lives in :mod:`repro.learn`);
* :mod:`repro.policies.grid` — :class:`PolicyGrid` cartesian parameter
  grids and the ranked :class:`GridResult`, driven by
  :meth:`repro.scenarios.runner.ScenarioRunner.run_grid` and the
  ``repro search`` CLI subcommand.

Third-party policies plug in exactly like other components::

    from repro.scenarios import register_policy

    @register_policy("solar_greedy")
    def build_solar_greedy(params, context):
        return MyPolicy(context.detection_energy_j, **params)
"""

from repro.policies.base import (
    Policy,
    PolicyContext,
    PolicyDecision,
    PowerObservation,
)
from repro.policies.library import (
    EnergyAwarePolicy,
    EwmaForecastPolicy,
    OracleLookaheadPolicy,
    StaticDutyCyclePolicy,
    policy_names,
)
from repro.policies.learned import (
    LearnedPolicy,
    LearnedQPolicy,
    default_policy_names,
    extract_features,
    network_from_params,
    network_to_params,
    unknown_policy_message,
)
from repro.policies.grid import (
    GridEntry,
    GridResult,
    PolicyGrid,
    grids_from_mapping,
    policy_label,
)

__all__ = [
    "Policy",
    "PolicyContext",
    "PolicyDecision",
    "PowerObservation",
    "EnergyAwarePolicy",
    "EwmaForecastPolicy",
    "OracleLookaheadPolicy",
    "StaticDutyCyclePolicy",
    "LearnedPolicy",
    "LearnedQPolicy",
    "policy_names",
    "default_policy_names",
    "extract_features",
    "network_from_params",
    "network_to_params",
    "unknown_policy_message",
    "GridEntry",
    "GridResult",
    "PolicyGrid",
    "grids_from_mapping",
    "policy_label",
]
