"""Policy grid search: cartesian parameter grids and ranked results.

A :class:`PolicyGrid` names one registered policy and the parameter
axes to sweep; its cartesian product yields one
:class:`~repro.scenarios.spec.PolicySpec` per grid point.
:meth:`repro.scenarios.runner.ScenarioRunner.run_grid` runs one
scenario under every point (reusing the serial/thread/process sweep
backends) and returns a :class:`GridResult` that ranks the policies by
how well they kept the watch alive and working: energy-neutral
outcomes first, then detections delivered per day, then the battery
margin they finished with.

Scenario-layer imports are deferred inside methods so this module can
be imported from anywhere in the package without ordering constraints.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import product
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping

from repro.errors import SpecError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.runner import ScenarioOutcome
    from repro.scenarios.spec import PolicySpec

__all__ = ["PolicyGrid", "GridEntry", "GridResult", "expand_grids",
           "grids_from_mapping", "policy_label"]


def policy_label(spec: "PolicySpec") -> str:
    """A compact, stable label for one grid point.

    ``energy_aware`` for a default point,
    ``static_duty_cycle(rate_per_min=12)`` for a parameterized one.

    >>> from repro.scenarios.spec import PolicySpec
    >>> policy_label(PolicySpec("energy_aware"))
    'energy_aware'
    >>> policy_label(PolicySpec("static_duty_cycle",
    ...                         {"rate_per_min": 12.0}))
    'static_duty_cycle(rate_per_min=12)'

    Nested-array params (trained-policy weight blobs) are summarized
    by their scalar count instead of rendered verbatim:

    >>> policy_label(PolicySpec("energy_aware",
    ...                         {"low_soc": 0.1, "table": [[1, 2], [3, 4]]}))
    'energy_aware(low_soc=0.1,table=<4 values>)'
    """
    if not spec.params:
        return spec.name

    def _leaves(value: Any) -> int:
        if isinstance(value, list):
            return sum(_leaves(item) for item in value)
        return 1

    def _text(value: Any) -> str:
        if isinstance(value, list):
            return f"<{_leaves(value)} values>"
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return f"{value:g}"
        return str(value)

    inner = ",".join(f"{key}={_text(spec.params[key])}"
                     for key in sorted(spec.params))
    return f"{spec.name}({inner})"


@dataclass(frozen=True)
class PolicyGrid:
    """The cartesian product of parameter values for one policy.

    Attributes:
        name: registered policy name (see ``POLICIES.names()``).
        base: params fixed across every point.
        axes: param name -> sequence of values to sweep.  Empty axes
            mean a single point with just the ``base`` params.
    """

    name: str
    base: Mapping[str, Any] = field(default_factory=dict)
    axes: Mapping[str, tuple] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("a PolicyGrid needs a policy name")
        if not isinstance(self.base, Mapping):
            raise SpecError("PolicyGrid base must be a mapping of params")
        if not isinstance(self.axes, Mapping):
            raise SpecError("PolicyGrid axes must map param name -> values")
        axes: dict[str, tuple] = {}
        for key, values in self.axes.items():
            if isinstance(values, (str, bytes)) or not hasattr(values,
                                                               "__iter__"):
                raise SpecError(
                    f"PolicyGrid axis {key!r} needs a sequence of values, "
                    f"got {values!r}")
            values = tuple(values)
            if not values:
                raise SpecError(f"PolicyGrid axis {key!r} has no values")
            axes[key] = values
        overlap = set(axes) & set(self.base)
        if overlap:
            raise SpecError(
                f"PolicyGrid params cannot be both fixed and swept: "
                f"{sorted(overlap)}")
        object.__setattr__(self, "base", dict(self.base))
        object.__setattr__(self, "axes", axes)

    def specs(self) -> list["PolicySpec"]:
        """One :class:`PolicySpec` per grid point, axes in given order."""
        from repro.scenarios.spec import PolicySpec

        if not self.axes:
            return [PolicySpec(name=self.name, params=dict(self.base))]
        keys = list(self.axes)
        points = []
        for combo in product(*(self.axes[key] for key in keys)):
            params = dict(self.base)
            params.update(zip(keys, combo))
            points.append(PolicySpec(name=self.name, params=params))
        return points

    def __len__(self) -> int:
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    def __iter__(self) -> Iterator["PolicySpec"]:
        return iter(self.specs())


def expand_grids(
        grids: PolicyGrid | Iterable[PolicyGrid],
) -> list[tuple[str, "PolicySpec"]]:
    """Flatten one or more grids into unique ``(label, spec)`` pairs.

    The shared candidate-enumeration step of every grid search
    (:meth:`repro.scenarios.runner.ScenarioRunner.run_grid` over one
    scenario, :meth:`repro.fleet.runner.FleetRunner.run_grid` over a
    population): grid points are concatenated in grid order, true
    duplicates — identical ``(name, params)`` across all grids — are
    rejected, and distinct points whose compact ``%g`` labels round
    together get a ``#n`` suffix so downstream batch names stay unique.

    >>> [label for label, _ in expand_grids(
    ...     PolicyGrid("static_duty_cycle",
    ...                axes={"rate_per_min": (2.0, 24.0)}))]
    ['static_duty_cycle(rate_per_min=2)', 'static_duty_cycle(rate_per_min=24)']
    """
    from repro.scenarios.spec import canonical_json

    grids = [grids] if isinstance(grids, PolicyGrid) else list(grids)
    if not grids:
        raise SpecError("a policy grid search needs at least one grid")
    points = [point for grid in grids for point in grid.specs()]
    # True duplicates are identical (name, params) points — judged on
    # the canonical JSON of the specs themselves, since the compact %g
    # labels can collide for values that differ past six significant
    # digits (and params may hold unhashable weight arrays).
    keys = [canonical_json(point.to_dict()) for point in points]
    key_counts = Counter(keys)
    duplicates = sorted({policy_label(point)
                         for point, key in zip(points, keys)
                         if key_counts[key] > 1})
    if duplicates:
        raise SpecError(f"duplicate policy grid points: {duplicates}")
    labels = [policy_label(point) for point in points]
    label_counts = Counter(labels)
    if len(label_counts) != len(labels):
        # Distinct points whose display labels rounded together:
        # suffix a position so downstream names stay unique.
        seen: Counter = Counter()
        for index, label in enumerate(labels):
            if label_counts[label] > 1:
                seen[label] += 1
                labels[index] = f"{label}#{seen[label]}"
    return list(zip(labels, points))


def grids_from_mapping(mapping: Any,
                       policy_names: Iterable[str] = (),
                       what: str = "grid mapping") -> list[PolicyGrid]:
    """:class:`PolicyGrid` list from a JSON-shaped grid request.

    The shared deserialization step behind ``repro search --grid``,
    ``repro fleet search --grid`` and the ``/search``/``/fleet/search``
    HTTP endpoints: ``mapping`` maps a registered policy name to its
    ``{param: [values, ...]}`` axes (scalar values are promoted to
    one-point axes), and ``policy_names`` appends default-parameter
    grids.  Unknown policy names raise
    :class:`~repro.errors.SpecError` listing the registered menu;
    malformed shapes raise naming ``what`` so CLI and HTTP callers both
    fail with a pointed message.
    """
    # Deferred: the registry lives above this module in import order.
    from repro.policies.learned import unknown_policy_message
    from repro.scenarios.registry import POLICIES

    def _check_policy(name: str) -> str:
        if name not in POLICIES:
            raise SpecError(unknown_policy_message(name))
        return name

    grids: list[PolicyGrid] = []
    if mapping is not None:
        if not isinstance(mapping, Mapping):
            raise SpecError(f"{what} must be a JSON object mapping policy "
                            "name to {param: [values, ...]} axes")
        for name, axes in mapping.items():
            if not isinstance(axes, Mapping):
                raise SpecError(
                    f"{what} entry for {name!r} must map params to value "
                    f"lists, got {axes!r}")
            grids.append(PolicyGrid(_check_policy(name), axes={
                key: tuple(values) if isinstance(values, list) else (values,)
                for key, values in axes.items()
            }))
    for name in policy_names or ():
        grids.append(PolicyGrid(_check_policy(name)))
    return grids


@dataclass(frozen=True)
class GridEntry:
    """One evaluated grid point: the policy and its scenario outcome."""

    label: str
    policy: "PolicySpec"
    outcome: "ScenarioOutcome"

    @property
    def rank_key(self) -> tuple:
        """Sort key: neutral first, most detections, best final SoC."""
        return (not self.outcome.energy_neutral,
                -self.outcome.detections_per_day,
                -self.outcome.final_soc)

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "policy": self.policy.to_dict(),
            "outcome": self.outcome.to_dict(),
        }


@dataclass(frozen=True)
class GridResult:
    """Outcome of a policy grid search over one scenario.

    Attributes:
        scenario: the swept scenario's name.
        entries: one entry per grid point, in grid order.
        backend: the runner backend that executed the sweep
            (provenance; not part of the canonical dict).
        wall_time_s: wall-clock spent executing the sweep (ditto).
    """

    scenario: str
    entries: tuple[GridEntry, ...]
    backend: str = ""
    wall_time_s: float = 0.0

    def ranked(self) -> list[GridEntry]:
        """Entries best-first: energy-neutral, then detections/day,
        then final state of charge (stable for exact ties)."""
        return sorted(self.entries, key=lambda entry: entry.rank_key)

    @property
    def best(self) -> GridEntry:
        """The top-ranked grid point."""
        if not self.entries:
            raise SpecError("empty grid result has no best entry")
        return self.ranked()[0]

    @property
    def policy_names(self) -> list[str]:
        """Distinct policy names evaluated, sorted."""
        return sorted({entry.policy.name for entry in self.entries})

    def to_dict(self) -> dict[str, Any]:
        """Canonical payload: ranking only, no timing provenance.

        A pure function of (scenario, grids) — identical on every
        backend and run — so ``repro search --json`` output and the
        result store's cached ``/search`` payloads are byte-identical
        under the shared canonical encoder.  ``backend`` and
        ``wall_time_s`` stay on the object.
        """
        return {
            "scenario": self.scenario,
            "ranking": [entry.to_dict() for entry in self.ranked()],
        }

    def format_table(self) -> str:
        """A fixed-width best-first ranking report."""
        header = (f"{'rank':>4s} {'policy':42s} {'neutral':>7s} "
                  f"{'det/day':>9s} {'SoC end':>8s}")
        lines = [header, "-" * len(header)]
        for position, entry in enumerate(self.ranked(), start=1):
            o = entry.outcome
            lines.append(
                f"{position:4d} {entry.label:42s} "
                f"{'yes' if o.energy_neutral else 'NO':>7s} "
                f"{o.detections_per_day:9.0f} {100 * o.final_soc:7.1f}%")
        return "\n".join(lines)
