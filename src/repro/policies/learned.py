"""The oracle-supervised learned policy: a tiny MLP behind the protocol.

The paper's InfiniWolf runs FANN-trained networks on-MCU; tinyMAN
(PAPERS.md) shows a *learned* energy manager beating hand-tuned
heuristics on harvesting wearables.  This module is the inference half
of that idea — :mod:`repro.learn` is the training half:

* :func:`extract_features` — the observation encoding both halves
  share: time-of-day on the unit circle, state of charge, and harvest
  power scaled to O(1).  Versioned, so a trained blob can never be
  silently fed a different encoding.
* :class:`LearnedPolicy` / :class:`LearnedQPolicy` — float and
  fixed-point (``repro.quant`` path) inference: the network's single
  sigmoid output is the fraction of ``max_rate_per_min`` to run.
* ``learned`` / ``learned_q`` registered factories — weights travel
  *inside* ``PolicySpec.params`` as nested JSON arrays, so a trained
  policy rides the JSON/process-backend/serve/chaos machinery
  unchanged.

Unlike every other built-in, these policies cannot build from empty
params — the weights ARE the policy.  :func:`default_policy_names`
gives callers that enumerate "every policy at defaults" (``repro
search``, chaos campaigns) the buildable subset, and
:func:`unknown_policy_message` is the shared unknown-name error text
with the trained-policy hint.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

import numpy as np

from repro.errors import SpecError
from repro.fann.activation import Activation
from repro.fann.fixedpoint import FixedPointNetwork, convert_to_fixed
from repro.fann.network import LayerSpec, MultiLayerPerceptron
from repro.policies.base import PolicyContext, PolicyDecision, PowerObservation
from repro.scenarios.registry import POLICIES, register_policy
from repro.units import SECONDS_PER_DAY

__all__ = [
    "FEATURE_NAMES",
    "FEATURES_VERSION",
    "HARVEST_SCALE_W",
    "TRAINED_POLICY_NAMES",
    "extract_features",
    "network_to_params",
    "network_from_params",
    "LearnedPolicy",
    "LearnedQPolicy",
    "default_policy_names",
    "unknown_policy_message",
]

#: Feature-schema version stamped into trained params; bumped whenever
#: :func:`extract_features` changes shape or meaning.
FEATURES_VERSION = 1

#: What the network sees, in order.  ``tod_sin``/``tod_cos`` put the
#: time of day on the unit circle (23:59 is near 00:01), ``soc`` is the
#: battery state of charge in [0, 1], and ``harvest`` is the observed
#: battery intake scaled by :data:`HARVEST_SCALE_W`.
FEATURE_NAMES = ("tod_sin", "tod_cos", "soc", "harvest")

#: Full-scale harvest power for feature normalization: ~25 mW is the
#: top of the paper's dual-source range, so the feature lands in O(1)
#: like its siblings.
HARVEST_SCALE_W = 0.025

#: Registered policies whose params must carry trained weights — they
#: cannot build at defaults, so "run every policy" enumerations use
#: :func:`default_policy_names` instead of the raw registry.
TRAINED_POLICY_NAMES = frozenset({"learned", "learned_q"})


def extract_features(obs: PowerObservation) -> tuple[float, ...]:
    """The feature vector of one observation, in ``FEATURE_NAMES`` order."""
    angle = 2.0 * math.pi * obs.time_of_day_s / SECONDS_PER_DAY
    return (math.sin(angle), math.cos(angle),
            obs.state_of_charge,
            obs.harvest_power_w / HARVEST_SCALE_W)


def default_policy_names() -> list[str]:
    """Registered policies that build at default (empty) params."""
    return [name for name in POLICIES.names()
            if name not in TRAINED_POLICY_NAMES]


def unknown_policy_message(name: str) -> str:
    """The shared unknown-policy error text, with the trained-policy hint."""
    trained = [n for n in POLICIES.names() if n in TRAINED_POLICY_NAMES]
    message = (f"unknown policy {name!r}; registered policies: "
               f"{POLICIES.names()}")
    if trained:
        message += (f" (note: {', '.join(repr(n) for n in trained)} need "
                    f"trained params — see `repro learn train`)")
    return message


# --- params <-> network codec ------------------------------------------------

_LEARNED_PARAM_KEYS = frozenset(
    {"features", "activations", "weights", "max_rate_per_min"})


def network_to_params(network: MultiLayerPerceptron,
                      max_rate_per_min: float = 24.0) -> dict[str, Any]:
    """Serialize a trained network into ``learned`` policy params.

    The inverse of :func:`network_from_params`: weights become nested
    JSON arrays (``float(w)`` keeps the exact IEEE value through
    ``json`` round-trips, so a retrained-then-serialized policy is
    bitwise identical), activations travel by enum value.
    """
    return {
        "features": FEATURES_VERSION,
        "activations": [spec.activation.value for spec in network.layers],
        "weights": [[[float(w) for w in row] for row in matrix]
                    for matrix in network.weights],
        "max_rate_per_min": float(max_rate_per_min),
    }


def network_from_params(params: Mapping[str, Any],
                        policy: str = "learned",
                        extra_keys: frozenset = frozenset(),
                        ) -> tuple[MultiLayerPerceptron, float]:
    """Rebuild ``(network, max_rate_per_min)`` from trained params.

    Raises :class:`~repro.errors.SpecError` on anything malformed —
    missing weights, a feature-schema mismatch, ragged matrices,
    non-finite values, or a weight chain that does not wire up —
    so a corrupted spec fails at build time with the defect named.
    """
    if not params or "weights" not in params:
        raise SpecError(
            f"{policy!r} is a trained policy: its params must carry the "
            f"'weights'/'activations' blob written by `repro learn train` "
            f"(got params {sorted(params)})")
    unknown = set(params) - _LEARNED_PARAM_KEYS - extra_keys
    if unknown:
        raise SpecError(
            f"unknown {policy!r} policy params: {sorted(unknown)} "
            f"(known: {sorted(_LEARNED_PARAM_KEYS | extra_keys)})")
    version = params.get("features", FEATURES_VERSION)
    if version != FEATURES_VERSION:
        raise SpecError(
            f"{policy} params use feature schema {version!r}, but this "
            f"build implements version {FEATURES_VERSION} "
            f"({', '.join(FEATURE_NAMES)}) — retrain with `repro learn`")
    raw_weights = params.get("weights")
    raw_activations = params.get("activations")
    if (not isinstance(raw_weights, list) or not raw_weights
            or not isinstance(raw_activations, list)
            or len(raw_activations) != len(raw_weights)):
        raise SpecError(
            f"{policy} params need parallel 'weights' and 'activations' "
            f"lists, one entry per connection layer")
    activations = []
    for value in raw_activations:
        try:
            activations.append(Activation(value))
        except ValueError:
            raise SpecError(
                f"{policy} params name unknown activation {value!r} "
                f"(known: {[a.value for a in Activation]})") from None
    matrices = []
    for layer_idx, matrix in enumerate(raw_weights):
        try:
            array = np.asarray(matrix, dtype=np.float64)
        except (TypeError, ValueError):
            raise SpecError(
                f"{policy} weight matrix {layer_idx} is not a rectangular "
                f"array of numbers") from None
        if array.ndim != 2 or array.size == 0:
            raise SpecError(
                f"{policy} weight matrix {layer_idx} must be 2-D and "
                f"non-empty, got shape {array.shape}")
        if not np.all(np.isfinite(array)):
            raise SpecError(
                f"{policy} weight matrix {layer_idx} contains non-finite "
                f"values")
        matrices.append(array)
    num_inputs = matrices[0].shape[1] - 1
    if num_inputs != len(FEATURE_NAMES):
        raise SpecError(
            f"{policy} input layer expects {num_inputs} features, but "
            f"feature schema {FEATURES_VERSION} has {len(FEATURE_NAMES)} "
            f"({', '.join(FEATURE_NAMES)})")
    fan_in = num_inputs
    for layer_idx, matrix in enumerate(matrices):
        if matrix.shape[1] != fan_in + 1:
            raise SpecError(
                f"{policy} weight matrix {layer_idx} has {matrix.shape[1]} "
                f"columns but the previous layer feeds {fan_in} (+1 bias)")
        fan_in = matrix.shape[0]
    if matrices[-1].shape[0] != 1:
        raise SpecError(
            f"{policy} output layer must have exactly 1 neuron (the rate "
            f"fraction), got {matrices[-1].shape[0]}")
    layers = [LayerSpec(matrix.shape[0], activation)
              for matrix, activation in zip(matrices, activations)]
    network = MultiLayerPerceptron(num_inputs, layers)
    network.set_weights(matrices)
    max_rate = params.get("max_rate_per_min", 24.0)
    if (isinstance(max_rate, bool) or not isinstance(max_rate, (int, float))
            or not math.isfinite(max_rate) or max_rate <= 0):
        raise SpecError(
            f"{policy} max_rate_per_min must be a positive finite number, "
            f"got {max_rate!r}")
    return network, float(max_rate)


# --- inference ---------------------------------------------------------------


class LearnedPolicy:
    """Float inference over a trained rate network.

    The network maps :func:`extract_features` to one sigmoid output —
    the fraction of ``max_rate_per_min`` to run this step.  The output
    is clamped to [0, 1] before scaling so an unconverged or LINEAR
    output layer can never demand a negative or runaway rate.

    Args:
        network: trained network (``len(FEATURE_NAMES)`` inputs, one
            output).
        max_rate_per_min: the rate the output fraction scales to.
    """

    mode = "learned"

    def __init__(self, network: MultiLayerPerceptron,
                 max_rate_per_min: float) -> None:
        self.network = network
        self.max_rate_per_min = float(max_rate_per_min)

    def rate_fraction(self, obs: PowerObservation) -> float:
        """The clamped network output in [0, 1] for one observation."""
        out = self.network.forward(np.asarray(extract_features(obs)))
        return min(max(float(out[0]), 0.0), 1.0)

    def decide(self, obs: PowerObservation) -> PolicyDecision:
        return PolicyDecision(self.rate_fraction(obs) * self.max_rate_per_min,
                              self.mode)


class LearnedQPolicy(LearnedPolicy):
    """Fixed-point inference — the MCU-shaped deployment of ``learned``.

    Runs the same weights through the ``repro.quant``/``repro.fann``
    fixed-point path (:class:`~repro.fann.fixedpoint.FixedPointNetwork`):
    integer accumulation, table-lookup activations — exactly what the
    nRF52/Mr. Wolf firmware would execute.

    Args:
        fixed: the quantized network.
        max_rate_per_min: the rate the output fraction scales to.
    """

    mode = "learned_q"

    def __init__(self, fixed: FixedPointNetwork,
                 max_rate_per_min: float) -> None:
        self.network = fixed
        self.max_rate_per_min = float(max_rate_per_min)


# --- registered factories ----------------------------------------------------


@register_policy("learned")
def _build_learned(params: Mapping[str, Any],
                   context: PolicyContext) -> LearnedPolicy:
    network, max_rate = network_from_params(params, "learned")
    return LearnedPolicy(network, max_rate)


@register_policy("learned_q")
def _build_learned_q(params: Mapping[str, Any],
                     context: PolicyContext) -> LearnedQPolicy:
    network, max_rate = network_from_params(
        params, "learned_q", extra_keys=frozenset({"decimal_point"}))
    decimal_point = params.get("decimal_point")
    if decimal_point is not None and (
            isinstance(decimal_point, bool)
            or not isinstance(decimal_point, int)):
        raise SpecError(
            f"learned_q decimal_point must be an integer binary-point "
            f"position, got {decimal_point!r}")
    return LearnedQPolicy(convert_to_fixed(network, decimal_point=decimal_point),
                          max_rate)
