"""Fig. 3 — the stress-classifier architecture (Network A).

The figure shows 5 input features feeding two hidden layers of 50
nodes each and 3 output classes; the accompanying text fixes the tanh
activation, 108 neurons, 3003 weights and the ~14 kB footprint.
"""

import numpy as np

from repro.fann import Activation, build_network_a, convert_to_fixed
from repro.features.pipeline import FEATURE_NAMES


def test_fig3_reproduction(benchmark, print_rows):
    network = benchmark(build_network_a)
    rows = [
        ("input features", 5, network.num_inputs),
        ("hidden layers", 2, network.num_connection_layers - 1),
        ("hidden width", 50, network.layers[0].size),
        ("output classes", 3, network.num_outputs),
        ("total neurons", 108, network.total_neurons),
        ("total weights", 3003, network.total_weights),
        ("memory bytes", 13772, network.memory_footprint_bytes()),
    ]
    for label, expected, actual in rows:
        assert actual == expected, label
    print_rows("Fig. 3: Network A structure",
               ("element", "expected", "measured"), rows)


def test_fig3_input_features_are_the_papers_five():
    """RMSSD, SDSD, NN50 from ECG; GSRL, GSRH from GSR."""
    assert FEATURE_NAMES == ("rmssd", "sdsd", "nn50", "gsrl", "gsrh")
    assert len(FEATURE_NAMES) == build_network_a().num_inputs


def test_fig3_activation_is_tanh():
    network = build_network_a()
    assert all(spec.activation is Activation.TANH for spec in network.layers)


def test_fig3_inference_latency_benchmark(benchmark):
    """Python-side inference speed of the Fig. 3 network (host-side
    sanity; the deployed latency comes from Table III)."""
    network = build_network_a()
    x = np.zeros(5)
    out = benchmark(network.forward, x)
    assert out.shape == (3,)


def test_fig3_quantises_cleanly():
    """Network A converts to fixed point without losing the argmax."""
    network = build_network_a(seed=11)
    fixed = convert_to_fixed(network)
    probe = np.random.default_rng(0).uniform(-1, 1, size=(64, 5))
    agreement = np.mean(network.classify(probe) == fixed.classify(probe))
    assert agreement > 0.95
