"""Ablation A1 — parallel scaling and memory residency.

The paper only reports 1-core and 8-core cluster numbers; this
ablation fills in the curve with the calibrated model and checks the
two microarchitectural effects the Table III fit exposed: padded-row
load imbalance (Network A's 50-wide layers on 8 cores) and the L2
residency penalty (Network B does not fit the 64 kB L1).
"""

import pytest

from repro.fann import build_network_a, build_network_b
from repro.timing import (
    MRWOLF_RI5CY_SINGLE,
    WeightResidency,
    cycles_for_network,
    mrwolf_cluster,
    weight_residency,
)


def scaling_curve(network):
    single = cycles_for_network(network, MRWOLF_RI5CY_SINGLE).total_cycles
    curve = {}
    for cores in range(1, 9):
        processor = mrwolf_cluster(cores)
        cycles = cycles_for_network(network, processor).total_cycles
        curve[cores] = (cycles, single / cycles)
    return curve


def test_parallel_scaling_curves(benchmark, print_rows):
    def compute():
        return {"Network A": scaling_curve(build_network_a()),
                "Network B": scaling_curve(build_network_b())}

    curves = benchmark(compute)
    rows = []
    for name, curve in curves.items():
        for cores, (cycles, speedup) in curve.items():
            rows.append((name, cores, cycles, f"{speedup:.2f}x"))
    print_rows("Ablation: cluster scaling 1..8 cores",
               ("network", "cores", "cycles", "speed-up vs 1 core"), rows)

    for name, curve in curves.items():
        speedups = [curve[c][1] for c in range(1, 9)]
        # Monotone improvement, but sublinear at 8 cores.
        assert all(b >= a for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] < 8.0

    # Anchor points must match Table III.
    assert curves["Network A"][8][0] == 6126
    assert curves["Network B"][8][0] == 108316


def test_network_a_scales_worse_than_b():
    """A's 50-wide layers pad to 56 rows on 8 cores (12 % waste) and
    its barriers amortise over less work, so its 8-core speed-up
    (3.7x) trails B's (4.8x) — visible in Table III."""
    a_speedup = 22772 / cycles_for_network(build_network_a(),
                                           mrwolf_cluster(8)).total_cycles
    b_speedup = 519354 / cycles_for_network(build_network_b(),
                                            mrwolf_cluster(8)).total_cycles
    assert a_speedup == pytest.approx(3.72, abs=0.05)
    assert b_speedup == pytest.approx(4.79, abs=0.05)
    assert b_speedup > a_speedup


def test_residency_split_is_the_story():
    """Network A runs from L1 on the cluster; Network B cannot."""
    assert weight_residency(build_network_a(), mrwolf_cluster(8)) \
        is WeightResidency.FAST
    assert weight_residency(build_network_b(), mrwolf_cluster(8)) \
        is WeightResidency.SLOW


def test_perfect_divisor_widths_scale_best(print_rows):
    """Widths divisible by 8 waste no rows: compare 48- and 50-wide
    hidden layers at 8 cores."""
    from repro.fann import Activation, LayerSpec, MultiLayerPerceptron

    def network_with_width(width):
        return MultiLayerPerceptron(
            5, [LayerSpec(width, Activation.TANH),
                LayerSpec(width, Activation.TANH),
                LayerSpec(3, Activation.TANH)])

    rows = []
    efficiencies = {}
    for width in (48, 50, 56, 64):
        net = network_with_width(width)
        single = cycles_for_network(net, MRWOLF_RI5CY_SINGLE).total_cycles
        multi = cycles_for_network(net, mrwolf_cluster(8)).total_cycles
        efficiencies[width] = single / multi / 8
        rows.append((width, single, multi, f"{100 * efficiencies[width]:.1f} %"))
    print_rows("Ablation: hidden width vs 8-core efficiency",
               ("hidden width", "1-core cycles", "8-core cycles",
                "parallel efficiency"), rows)
    # 48 divides evenly; 50 pads to 56 rows and wastes cycles.
    assert efficiencies[48] > efficiencies[50]
