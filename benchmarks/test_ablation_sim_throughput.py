"""Ablation A6 — simulation-core throughput (PR 2 fast-path baseline).

Measures the day-in-the-life engine before and after the fast-path
work (segment-walk stepping + per-segment harvest evaluation + harvest
memoization + lean traces) and the sweep backends, then writes
``BENCH_sim_throughput.json`` at the repo root so the numbers become
part of the perf trajectory.  The "legacy" side is a verbatim replica
of the pre-optimization loop (per-step linear segment scan, per-step
harvest solve, full trace), so the speedup is measured against real
history, not a strawman — and the results must be *bitwise identical*,
which this bench asserts before it asserts speed.  Since the policy
redesign (PR 3) the optimized side steps through the pluggable-policy
protocol while the legacy replica calls the pre-protocol manager
directly, so the same identity assertions also pin the default
``energy_aware`` policy to its pre-redesign numbers; a policy-grid
section benchmarks the ``repro search`` path, a fleet section
benchmarks (and pins the cross-backend determinism of) the
``repro fleet run`` population path, and a fleet-grid section
benchmarks the ``repro fleet search`` population grid search while
pinning both its cross-backend determinism and the sharded
``run --shard`` / ``FleetResult.merge`` merge-exactness contract.
A fleet-vector section (PR 9) pins the vectorized fleet engine to the
scalar oracle — ``backend="vector"`` must reproduce the serial
canonical payload bitwise — and records its wearers/s on a
batch-friendly cohort against the serial fleet baseline.
A serve section (PR 6) runs the real HTTP service against a fresh
content-addressed result store and records sustained requests/s on the
cache-miss and cache-hit paths, pinning the serving contract: an
identical resubmission is a cache hit with byte-identical result JSON.
A pool section (PR 10) warms the persistent shared worker pool once,
then runs a 500-wearer fleet on the serial and process backends —
pinning bitwise identity, pool reuse (no respawn), and the
process-vs-serial throughput gate that the per-call fresh-pool design
used to lose: on multi-core machines process must beat serial
outright; on single-core machines (where parallel speedup is
physically impossible) the chunked dispatch must keep the pool's
overhead within 25% of serial.

Run it::

    python -m pytest benchmarks/test_ablation_sim_throughput.py -s

``BENCH_QUICK=1`` shrinks the multi-day horizon (30 -> 3 days) for CI
smoke runs; the JSON records which mode produced it.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.scenarios import (
    ScenarioRunner,
    ScenarioSpec,
    SegmentSpec,
    TimelineSpec,
    all_scenarios,
    build_simulation,
    get_scenario,
)
from repro.scenarios.builder import build_timeline
from tests.helpers import legacy_reference_run as _legacy_run

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim_throughput.json"
QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")
MULTI_DAYS = 3 if QUICK else 30
STEP_S = 300.0
SPEEDUP_FLOOR = 10.0
VECTOR_SPEEDUP_FLOOR = 50.0
# Single-core machines cannot see a parallel speedup, so there the
# pool section gates overhead instead: process >= this fraction of
# serial throughput.  Multi-core machines gate process > serial.
POOL_OVERHEAD_FLOOR = 0.75


def _office_worker_spec(days: int) -> ScenarioSpec:
    """``sunny_office_worker`` stretched to a multi-day horizon by
    repeating its timeline's segments inline."""
    base = get_scenario("sunny_office_worker")
    timeline = build_timeline(base.timeline)
    segments = tuple(
        SegmentSpec(duration_s=seg.duration_s, lux=seg.lighting.lux,
                    ambient_c=seg.thermal.ambient_c,
                    skin_c=seg.thermal.skin_c, wind_ms=seg.thermal.wind_ms)
        for _ in range(days) for seg in timeline.segments
    )
    return ScenarioSpec(
        name=f"sunny_office_worker_{days}d",
        timeline=TimelineSpec(segments=segments),
        system=base.system,
        step_s=STEP_S,
        description=f"{days} repeated office-commute days",
    )


def _best_of(prepare, execute, repeats: int):
    """Best-of-N wall clock of ``execute(prepare())``, timing only the
    execute — construction stays outside the timed region on every
    side, so legacy and optimized are compared like for like."""
    best_s = float("inf")
    result = None
    for _ in range(repeats):
        sim = prepare()
        t0 = time.perf_counter()
        result = execute(sim)
        best_s = min(best_s, time.perf_counter() - t0)
    return best_s, result


def _measure_single_run(spec: ScenarioSpec) -> dict:
    import dataclasses

    repeats = 3
    lean_spec = dataclasses.replace(spec, trace="none")
    legacy_s, legacy = _best_of(
        lambda: build_simulation(spec, cache_harvest=False),
        _legacy_run, repeats)
    optimized_s, optimized = _best_of(
        lambda: build_simulation(spec), lambda sim: sim.run(), repeats)
    lean_s, lean = _best_of(
        lambda: build_simulation(lean_spec), lambda sim: sim.run(), repeats)

    steps = len(legacy.steps)
    identical = (
        optimized == legacy  # totals AND the full per-step trace
        and lean.total_detections == legacy.total_detections
        and lean.total_harvest_j == legacy.total_harvest_j
        and lean.total_consumed_j == legacy.total_consumed_j
        and lean.final_soc == legacy.final_soc
    )
    return {
        "steps": steps,
        "legacy_s": round(legacy_s, 6),
        "optimized_s": round(optimized_s, 6),
        "optimized_trace_none_s": round(lean_s, 6),
        "legacy_steps_per_s": round(steps / legacy_s, 1),
        "optimized_steps_per_s": round(steps / optimized_s, 1),
        "speedup": round(legacy_s / optimized_s, 2),
        "results_identical": identical,
    }


def _measure_policy_grid() -> dict:
    """Grid-search throughput on the PR 3 policy layer.

    Runs a mixed grid (all four built-in policy families) over the
    multi-day library scenario on the serial and thread backends; the
    outcomes must be identical, and the ranking must cover at least
    three distinct policies — the regression tripwire for the
    ``repro search`` path.
    """
    from repro.policies import PolicyGrid
    from repro.scenarios import ScenarioRunner

    scenario = get_scenario("cloudy_week_multi_day")
    grids = [
        PolicyGrid("energy_aware"),
        PolicyGrid("static_duty_cycle", axes={"rate_per_min": (2.0, 8.0, 24.0)}),
        PolicyGrid("ewma_forecast", axes={"alpha": (0.1, 0.5)}),
        PolicyGrid("oracle_lookahead"),
    ]
    timings = {}
    results = {}
    for backend, workers in (("serial", 1), ("thread", 4)):
        runner = ScenarioRunner(workers=workers, backend=backend)
        t0 = time.perf_counter()
        results[backend] = runner.run_grid(scenario, grids)
        timings[backend] = time.perf_counter() - t0
    serial, threaded = results["serial"], results["thread"]
    points = len(serial.entries)
    return {
        "scenario": scenario.name,
        "points": points,
        "distinct_policies": len(serial.policy_names),
        **{f"{b}_s": round(t, 6) for b, t in timings.items()},
        **{f"{b}_points_per_s": round(points / t, 2)
           for b, t in timings.items()},
        "backends_identical": ([e.outcome for e in serial.entries]
                               == [e.outcome for e in threaded.entries]),
        "best": serial.best.label,
    }


def _measure_fleet() -> tuple[dict, str]:
    """Fleet-scale stochastic throughput (PR 4 acceptance path).

    Runs a seeded 100-wearer, 7-day jittered fleet (16 x 2 in quick
    mode) on the serial and process backends.  The canonical
    ``FleetResult`` payloads must be byte-identical — sampling happens
    in the parent and the per-wearer specs ship as JSON, so any
    divergence is a determinism regression, not noise.

    Also returns the serial canonical payload, the oracle the vector
    section (:func:`_measure_fleet_vector`) compares against.
    """
    from repro.fleet import FleetRunner, FleetSpec, SamplerSpec

    wearers = 16 if QUICK else 100
    days = 2 if QUICK else 7
    fleet = FleetSpec(
        name="bench_office_fleet",
        base_scenario="sunny_office_worker",
        n_wearers=wearers,
        horizon_days=days,
        seed=2020,
        sampler=SamplerSpec("daily_jitter"),
        description="throughput-bench fleet",
    )
    timings = {}
    payloads = {}
    neutral = 0.0
    for backend, workers in (("serial", 1), ("process", 4)):
        runner = FleetRunner(workers=workers, backend=backend)
        t0 = time.perf_counter()
        result = runner.run(fleet)
        timings[backend] = time.perf_counter() - t0
        # Identity is judged on the shared canonical encoding — the
        # exact bytes the CLI emits and the serve store caches.
        payloads[backend] = result.canonical_json()
        neutral = result.fraction_energy_neutral
    section = {
        "wearers": wearers,
        "horizon_days": days,
        "sampler": fleet.sampler.label,
        **{f"{b}_s": round(t, 6) for b, t in timings.items()},
        **{f"{b}_wearers_per_s": round(wearers / t, 2)
           for b, t in timings.items()},
        "backends_identical": payloads["serial"] == payloads["process"],
        "fraction_energy_neutral": neutral,
    }
    return section, payloads["serial"]


def _measure_fleet_vector(serial_payload: str, serial_rate: float) -> dict:
    """Vectorized fleet engine (PR 9 acceptance path).

    Two gates, correctness first.  ``matches_scalar``: running the
    *same jittered bench fleet* on ``backend="vector"`` must reproduce
    the serial canonical payload byte for byte — the scalar engine is
    the oracle and the vector engine claims no tolerance.  Speed: a
    batch-friendly cohort (``identity`` sampler — every wearer shares
    the base timeline, so the per-segment Lambert-W harvest solves
    amortize across the whole fleet instead of repeating per wearer)
    is stepped as arrays and reported as wearers/s against the
    jittered serial baseline above.  The jittered fleet itself gains
    little from vectorization — its cost is the per-wearer harvest
    pricing, which no engine can batch away bitwise — so the speed
    figure deliberately measures the engine, not the pricing.
    """
    from repro.fleet import FleetRunner, FleetSpec, SamplerSpec

    jittered_wearers = 16 if QUICK else 100
    days = 2 if QUICK else 7
    jittered = FleetSpec(
        name="bench_office_fleet",
        base_scenario="sunny_office_worker",
        n_wearers=jittered_wearers,
        horizon_days=days,
        seed=2020,
        sampler=SamplerSpec("daily_jitter"),
        description="throughput-bench fleet",
    )
    runner = FleetRunner(backend="vector")
    t0 = time.perf_counter()
    matches_scalar = (runner.run(jittered).canonical_json()
                      == serial_payload)
    jittered_s = time.perf_counter() - t0

    def cohort(n: int) -> FleetSpec:
        return FleetSpec(
            name="bench_vector_cohort",
            base_scenario="sunny_office_worker",
            n_wearers=n,
            horizon_days=days,
            seed=2020,
            sampler=SamplerSpec("identity"),
            description="batch-friendly vector-bench cohort",
        )

    # Cohort equivalence at a size the scalar oracle can afford, then
    # vector throughput at fleet scale.
    small = cohort(8)
    cohort_identical = (
        FleetRunner(workers=1, backend="serial").run(small).canonical_json()
        == runner.run(small).canonical_json())
    wearers = 256 if QUICK else 2048
    t0 = time.perf_counter()
    result = runner.run(cohort(wearers))
    vector_s = time.perf_counter() - t0
    rate = wearers / vector_s
    return {
        "jittered_wearers": jittered_wearers,
        "jittered_vector_s": round(jittered_s, 6),
        "matches_scalar": matches_scalar,
        "cohort_wearers": wearers,
        "horizon_days": days,
        "sampler": "identity",
        "vector_s": round(vector_s, 6),
        "vector_wearers_per_s": round(rate, 2),
        "speedup_vs_serial": round(rate / serial_rate, 2),
        "cohort_identical": cohort_identical,
        "fraction_energy_neutral": result.fraction_energy_neutral,
    }


def _measure_fleet_grid() -> dict:
    """Fleet-level policy grid search + sharded merge (PR 5 paths).

    Runs an eight-candidate grid (three policy families) over a
    seeded jittered fleet on the serial and thread backends — the
    ``repro fleet search`` path.  The canonical ``FleetGridResult``
    payloads must be byte-identical across backends, and a 3-way
    sharded run of the same fleet must merge to the exact unsharded
    ``FleetResult`` payload (the ``run --shard`` / ``merge``
    contract), both asserted before any throughput is reported.
    """
    from repro.fleet import FleetResult, FleetRunner, FleetSpec, SamplerSpec
    from repro.policies import PolicyGrid

    wearers = 4 if QUICK else 12
    days = 1 if QUICK else 3
    fleet = FleetSpec(
        name="bench_grid_fleet",
        base_scenario="sunny_office_worker",
        n_wearers=wearers,
        horizon_days=days,
        seed=5,
        sampler=SamplerSpec("daily_jitter"),
        description="fleet-grid-bench population",
    )
    grids = [
        PolicyGrid("energy_aware"),
        PolicyGrid("static_duty_cycle",
                   axes={"rate_per_min": (2.0, 8.0, 16.0, 24.0)}),
        PolicyGrid("ewma_forecast", axes={"alpha": (0.1, 0.3, 0.5)}),
    ]
    timings = {}
    payloads = {}
    candidates = 0
    best = ""
    from repro.scenarios.spec import canonical_json

    for backend, workers in (("serial", 1), ("thread", 4)):
        runner = FleetRunner(workers=workers, backend=backend)
        t0 = time.perf_counter()
        result = runner.run_grid(fleet, grids)
        timings[backend] = time.perf_counter() - t0
        payloads[backend] = canonical_json(result.to_dict())
        candidates = len(result.entries)
        best = result.best.label
    # Merge-exactness: a 3-way strided partition reduces to the exact
    # unsharded canonical payload (JSON-round-tripped, as shard files
    # would travel between machines).
    from repro.fleet import PartialFleetResult

    runner = FleetRunner(workers=1, backend="serial")
    full = runner.run(fleet)
    parts = [PartialFleetResult.from_dict(json.loads(json.dumps(
        runner.run(fleet, shard=(index, 3)).to_dict())))
        for index in range(3)]
    merged = FleetResult.merge(parts)
    merge_exact = merged.canonical_json() == full.canonical_json()
    return {
        "wearers": wearers,
        "horizon_days": days,
        "candidates": candidates,
        **{f"{b}_s": round(t, 6) for b, t in timings.items()},
        **{f"{b}_candidates_per_s": round(candidates / t, 2)
           for b, t in timings.items()},
        "backends_identical": payloads["serial"] == payloads["thread"],
        "merge_exact": merge_exact,
        "best": best,
    }


def _measure_serve() -> dict:
    """Serve-layer throughput: cache-miss vs cache-hit request rates.

    Starts the real HTTP stack (PR 6) on an ephemeral port with a
    fresh store, POSTs a batch of distinct ``/simulate`` requests (all
    misses — each one simulates), then re-POSTs the identical batch
    (all hits — served from the content-addressed store).  Before any
    rate is reported, every repeat response must carry the ``hit``
    cache state and byte-for-byte identical bodies — the serving
    contract the section exists to pin.
    """
    import dataclasses
    import tempfile

    from repro.serve import (
        ResultStore,
        ServeService,
        ServerThread,
        http_request,
    )

    n = 4 if QUICK else 12
    base = get_scenario("sunny_office_worker")
    requests = [
        {"scenario": dataclasses.replace(
            base, name=f"bench_serve_{index}").to_dict()}
        for index in range(n)
    ]

    def _post_all(live):
        t0 = time.perf_counter()
        responses = [http_request(live.host, live.port, "POST",
                                  "/simulate", request)
                     for request in requests]
        return time.perf_counter() - t0, responses

    with tempfile.TemporaryDirectory() as root:
        service = ServeService(ResultStore(root), workers=2,
                               backend="thread")
        with ServerThread(service) as live:
            miss_s, first = _post_all(live)
            hit_s, repeat = _post_all(live)
    return {
        "requests": n,
        "miss_s": round(miss_s, 6),
        "hit_s": round(hit_s, 6),
        "miss_requests_per_s": round(n / miss_s, 2),
        "hit_requests_per_s": round(n / hit_s, 2),
        "first_pass_all_miss": all(
            headers.get("x-repro-cache") == "miss" and status == 200
            for status, headers, _ in first),
        "repeat_all_hit": all(
            headers.get("x-repro-cache") == "hit" and status == 200
            for status, headers, _ in repeat),
        "repeat_bitwise_identical": all(
            a[2] == b[2] for a, b in zip(first, repeat)),
    }


def _measure_learned_policy() -> dict:
    """Learned-policy pipeline: training cost and inference throughput.

    Times the PR 8 oracle-supervised path — dataset replay, iRPROP-
    training (twice, asserting the retrain is bitwise identical: the
    reproducibility contract the subsystem sells), then the engine
    stepping the deployed float and fixed-point policies on a one-day
    scenario.  The quantized deployment summary must fit the paper's
    MCU budgets before any rate is reported.
    """
    import dataclasses

    from repro.fann.deploy import deployment_summary
    from repro.learn import DatasetSpec, TrainSpec, generate_dataset, \
        train_policy
    from repro.policies.learned import network_from_params
    from repro.scenarios.spec import canonical_json

    dataset_spec = DatasetSpec(fleet="office_cohort_week",
                               wearers=2 if QUICK else 4,
                               stride=10 if QUICK else 5)
    train_spec = TrainSpec(hidden=(8,), epochs=20 if QUICK else 100, seed=0)
    t0 = time.perf_counter()
    dataset = generate_dataset(dataset_spec)
    dataset_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    trained = train_policy(dataset, train_spec)
    train_s = time.perf_counter() - t0
    retrained = train_policy(dataset, train_spec)
    retrain_identical = (canonical_json(retrained.to_dict())
                         == canonical_json(trained.to_dict()))

    base = _office_worker_spec(1)
    throughput = {}
    for spec in (trained.policy, trained.quantized):
        day = dataclasses.replace(
            base, name=f"{base.name}_{spec.name}", trace="none",
            system=dataclasses.replace(base.system, policy=spec))
        elapsed, result = _best_of(
            lambda day=day: build_simulation(day),
            lambda sim: sim.run(), 3)
        throughput[spec.name] = round(
            (result.duration_s / STEP_S) / elapsed, 1)
    network, _ = network_from_params(trained.policy.params)
    deployment = deployment_summary(network)
    return {
        "dataset_samples": len(dataset.samples),
        "dataset_s": round(dataset_s, 6),
        "train_epochs": train_spec.epochs,
        "train_s": round(train_s, 6),
        "final_mse": round(trained.final_mse, 6),
        "retrain_bitwise_identical": retrain_identical,
        "learned_steps_per_s": throughput["learned"],
        "learned_q_steps_per_s": throughput["learned_q"],
        "flash_bytes": deployment.total_flash_bytes,
        "fits_mcu_budget": (deployment.fits_nrf52_ram
                            and deployment.fits_mrwolf_l1),
    }


def _measure_pool() -> dict:
    """Persistent shared worker pool vs serial (PR 10 acceptance path).

    Runs first, deliberately: ``pool.warm()`` pays the one-time worker
    spawn here (recorded as ``spawn_s``), so every later process-backend
    section measures warm-pool throughput — exactly what a long-lived
    CLI or serve process sees.  A 500-wearer, 2-day jittered fleet
    (60 x 1 in quick mode) then runs on the serial and process
    backends.  Three contracts are pinned before any rate matters:
    the canonical payloads are bitwise identical, the process run
    reuses the already-warm workers (``spawns`` stays flat), and the
    throughput gate holds.  The gate is machine-aware and honest about
    it: with more than one CPU, process must beat serial outright;
    on a single CPU no backend can parallelize its way past serial,
    so the gate instead bounds the chunked dispatch's overhead at
    ``POOL_OVERHEAD_FLOOR`` of serial throughput — the per-call
    fresh-pool design this PR removes failed both forms.
    """
    from repro.fleet import FleetRunner, FleetSpec, SamplerSpec
    from repro.pool import get_shared_pool

    pool = get_shared_pool()
    spawn_s = pool.warm()
    wearers = 60 if QUICK else 500
    days = 1 if QUICK else 2
    fleet = FleetSpec(
        name="bench_pool_fleet",
        base_scenario="sunny_office_worker",
        n_wearers=wearers,
        horizon_days=days,
        seed=1414,
        sampler=SamplerSpec("daily_jitter"),
        description="pool-bench fleet",
    )
    spawns_before = pool.stats.spawns
    timings = {}
    payloads = {}
    for backend, workers in (("serial", 1), ("process", 4)):
        runner = FleetRunner(workers=workers, backend=backend)
        t0 = time.perf_counter()
        payloads[backend] = runner.run(fleet).canonical_json()
        timings[backend] = time.perf_counter() - t0
    serial_rate = wearers / timings["serial"]
    process_rate = wearers / timings["process"]
    cpu_count = os.cpu_count() or 1
    beats = process_rate > serial_rate
    gate_passed = (beats if cpu_count > 1
                   else process_rate >= POOL_OVERHEAD_FLOOR * serial_rate)
    return {
        "wearers": wearers,
        "horizon_days": days,
        "sampler": fleet.sampler.label,
        "cpu_count": cpu_count,
        "pool_workers": pool.workers,
        "start_method": pool.stats.start_method,
        "spawn_s": round(spawn_s, 6),
        **{f"{b}_s": round(t, 6) for b, t in timings.items()},
        "serial_wearers_per_s": round(serial_rate, 2),
        "process_wearers_per_s": round(process_rate, 2),
        "pool_reused": pool.stats.spawns == spawns_before,
        "backends_identical": payloads["serial"] == payloads["process"],
        "process_beats_serial": beats,
        "gate": ("process > serial" if cpu_count > 1
                 else f"process >= {POOL_OVERHEAD_FLOOR} x serial"),
        "gate_passed": gate_passed,
    }


def _measure_sweep() -> dict:
    # run_scenario forces trace="none" itself, so the stock library
    # specs already take the lean path in every backend.
    specs = all_scenarios()
    timings = {}
    outcomes = {}
    for backend, workers in (("serial", 1), ("thread", 4), ("process", 4)):
        runner = ScenarioRunner(workers=workers, backend=backend)
        t0 = time.perf_counter()
        sweep = runner.run_batch(specs)
        elapsed = time.perf_counter() - t0
        timings[backend] = elapsed
        outcomes[backend] = sweep.outcomes
    return {
        "scenarios": len(specs),
        **{f"{b}_s": round(t, 6) for b, t in timings.items()},
        **{f"{b}_scenarios_per_s": round(len(specs) / t, 2)
           for b, t in timings.items()},
        "backends_identical": (outcomes["serial"] == outcomes["thread"]
                               == outcomes["process"]),
    }


def test_sim_throughput_bench(print_rows):
    # The pool section runs first on purpose: it warms the shared
    # worker pool, so every later process-backend section measures
    # warm-pool throughput rather than paying the spawn again.
    pool = _measure_pool()
    one_day = _measure_single_run(_office_worker_spec(1))
    multi_day = _measure_single_run(_office_worker_spec(MULTI_DAYS))

    spec = _office_worker_spec(MULTI_DAYS)
    sim = build_simulation(spec)
    sim.run()
    cache = sim.harvester.stats

    sweep = _measure_sweep()
    grid = _measure_policy_grid()
    fleet, fleet_serial_payload = _measure_fleet()
    fleet_vector = _measure_fleet_vector(fleet_serial_payload,
                                         fleet["serial_wearers_per_s"])
    fleet_grid = _measure_fleet_grid()
    serve = _measure_serve()
    learned = _measure_learned_policy()

    # Evaluated before the JSON is written so a failing run stamps
    # itself as failing — a bad baseline can then never be mistaken
    # for (or committed as) a clean one.  The speedup floor only
    # gates full mode: quick mode's tiny horizon makes the ratio
    # noise-dominated on loaded CI runners, and the smoke value there
    # is the identity checks.  The single-run identity checks double
    # as the PR 3 acceptance gate: the legacy side calls the
    # pre-protocol manager directly, the optimized side goes through
    # the policy layer, and the results must stay bitwise equal.
    passed = (one_day["results_identical"]
              and multi_day["results_identical"]
              and pool["backends_identical"]
              and pool["pool_reused"]
              and sweep["backends_identical"]
              and grid["backends_identical"]
              and grid["distinct_policies"] >= 3
              and fleet["backends_identical"]
              and fleet_vector["matches_scalar"]
              and fleet_vector["cohort_identical"]
              and fleet_grid["backends_identical"]
              and fleet_grid["merge_exact"]
              and fleet_grid["candidates"] >= 8
              and serve["first_pass_all_miss"]
              and serve["repeat_all_hit"]
              and serve["repeat_bitwise_identical"]
              and learned["retrain_bitwise_identical"]
              and learned["fits_mcu_budget"]
              and (QUICK or multi_day["speedup"] >= SPEEDUP_FLOOR)
              and (QUICK or (fleet_vector["speedup_vs_serial"]
                             >= VECTOR_SPEEDUP_FLOOR))
              and (QUICK or pool["gate_passed"]))
    payload = {
        "bench": "sim_throughput",
        "quick_mode": QUICK,
        "assertions_passed": passed,
        "python": platform.python_version(),
        "step_s": STEP_S,
        "single_run": {
            "one_day": one_day,
            f"{MULTI_DAYS}_day": multi_day,
        },
        "pool": pool,
        "sweep": sweep,
        "policy_grid": grid,
        "fleet": fleet,
        "fleet_vector": fleet_vector,
        "fleet_grid": fleet_grid,
        "serve": serve,
        "learned_policy": learned,
        "harvest_cache": {
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": round(cache.hit_rate, 4),
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        ("1-day steps/s", f"{one_day['legacy_steps_per_s']:,.0f} (legacy)",
         f"{one_day['optimized_steps_per_s']:,.0f} "
         f"({one_day['speedup']:.1f}x)"),
        (f"{MULTI_DAYS}-day steps/s",
         f"{multi_day['legacy_steps_per_s']:,.0f} (legacy)",
         f"{multi_day['optimized_steps_per_s']:,.0f} "
         f"({multi_day['speedup']:.1f}x)"),
        ("pool wearers/s",
         f"{pool['serial_wearers_per_s']} (serial, "
         f"{pool['wearers']}x{pool['horizon_days']}d, "
         f"{pool['cpu_count']} cpu)",
         f"process {pool['process_wearers_per_s']} "
         f"(spawn {pool['spawn_s']:.2f}s, reused {pool['pool_reused']}, "
         f"gate {pool['gate_passed']})"),
        ("sweep scenarios/s", f"{sweep['serial_scenarios_per_s']} (serial)",
         f"thread {sweep['thread_scenarios_per_s']} / "
         f"process {sweep['process_scenarios_per_s']}"),
        ("policy grid points/s",
         f"{grid['serial_points_per_s']} (serial, {grid['points']} pts)",
         f"thread {grid['thread_points_per_s']} "
         f"(best {grid['best']})"),
        ("fleet wearers/s",
         f"{fleet['serial_wearers_per_s']} (serial, "
         f"{fleet['wearers']}x{fleet['horizon_days']}d)",
         f"process {fleet['process_wearers_per_s']}"),
        ("fleet vector wearers/s",
         f"{fleet['serial_wearers_per_s']} (serial baseline)",
         f"vector {fleet_vector['vector_wearers_per_s']:,} "
         f"({fleet_vector['speedup_vs_serial']:.0f}x, matches_scalar "
         f"{fleet_vector['matches_scalar']})"),
        ("fleet grid cand/s",
         f"{fleet_grid['serial_candidates_per_s']} (serial, "
         f"{fleet_grid['candidates']} cands x {fleet_grid['wearers']}w)",
         f"thread {fleet_grid['thread_candidates_per_s']} "
         f"(merge_exact {fleet_grid['merge_exact']})"),
        ("serve requests/s",
         f"{serve['miss_requests_per_s']} (miss, "
         f"{serve['requests']} reqs)",
         f"hit {serve['hit_requests_per_s']} "
         f"(bitwise {serve['repeat_bitwise_identical']})"),
        ("learned policy steps/s",
         f"{learned['learned_steps_per_s']:,.0f} (float, "
         f"{learned['train_s']:.2f}s train)",
         f"fixed-point {learned['learned_q_steps_per_s']:,.0f} "
         f"(retrain bitwise {learned['retrain_bitwise_identical']})"),
        ("harvest memo", f"{cache.misses} misses",
         f"{cache.hits} hits ({100 * cache.hit_rate:.0f}%)"),
    ]
    print_rows(f"Ablation: simulation throughput "
               f"({'quick' if QUICK else 'full'} mode, "
               f"JSON -> {BENCH_PATH.name})",
               ("quantity", "baseline", "optimized"), rows)

    # Correctness before speed: the fast path must be numerically
    # invisible, bit for bit — and since the redesign, "optimized"
    # means the pluggable-policy engine, so these identity checks pin
    # the default energy_aware policy to the pre-protocol manager.
    assert one_day["results_identical"]
    assert multi_day["results_identical"]
    # Pool acceptance (PR 10): the process backend rides one
    # persistent shared pool — the warm-up spawn is the last spawn the
    # section sees — and its chunked dispatch reproduces the serial
    # canonical payload bitwise.
    assert pool["backends_identical"]
    assert pool["pool_reused"]
    assert sweep["backends_identical"]
    assert grid["backends_identical"]
    assert grid["distinct_policies"] >= 3
    # Fleet acceptance: the stochastic population reduces to the same
    # canonical payload whether it ran serially or on spawned workers.
    assert fleet["backends_identical"]
    # Vector-engine acceptance (PR 9): backend="vector" reproduces the
    # scalar oracle's canonical payload bitwise, on the jittered bench
    # fleet and on the batch-friendly cohort alike.
    assert fleet_vector["matches_scalar"]
    assert fleet_vector["cohort_identical"]
    # Fleet-grid acceptance (PR 5): the population grid search is
    # backend-invariant, covers the >=8-candidate acceptance shape,
    # and a sharded partition merges to the exact unsharded payload.
    assert fleet_grid["backends_identical"]
    assert fleet_grid["candidates"] >= 8
    assert fleet_grid["merge_exact"]
    # Serve acceptance (PR 6): resubmitting an identical spec is a
    # cache hit returning bitwise-identical result JSON.
    assert serve["first_pass_all_miss"]
    assert serve["repeat_all_hit"]
    assert serve["repeat_bitwise_identical"]
    # Learned-policy acceptance (PR 8): retraining the same spec on the
    # same dataset is bitwise-identical, and the quantized network
    # fits the paper's MCU budget.
    assert learned["retrain_bitwise_identical"]
    assert learned["fits_mcu_budget"]
    # The acceptance bar: >=10x on the multi-day single run.  Not
    # asserted in quick mode, where the shrunken horizon makes the
    # ratio noise-dominated on shared CI runners.
    if not QUICK:
        assert multi_day["speedup"] >= SPEEDUP_FLOOR, multi_day
        # Vector-engine speed bar: >=50x the serial fleet baseline on
        # the batch-friendly cohort.  Quick mode skips the ratio (tiny
        # fleets are overhead-dominated) but keeps both identity gates.
        assert (fleet_vector["speedup_vs_serial"]
                >= VECTOR_SPEEDUP_FLOOR), fleet_vector
        # Pool speed bar: process beats serial outright on multi-core
        # machines; on a single core (no parallelism to be had) the
        # persistent pool's overhead must stay within the floor —
        # the old fresh-pool-per-call design failed both forms.
        assert pool["gate_passed"], pool
