"""In-text claim X1 — fixed point vs FPU on the Cortex-M4F.

Section IV: Network A takes 38478 cycles with the FPU and 30210 in
fixed point, making the fixed-point implementation 1.3x faster (and
more energy-efficient), which is why the evaluation focuses on fixed
point.
"""

import numpy as np
import pytest

from repro.fann import build_network_a, convert_to_fixed
from repro.timing import NORDIC_ARM_M4F, NumericMode, cycles_for_network
from repro.timing.powermodel import energy_per_inference


def test_fixed_vs_float_cycles(benchmark, print_rows):
    network = build_network_a()

    def compute():
        fixed = cycles_for_network(network, NORDIC_ARM_M4F,
                                   NumericMode.FIXED_POINT).total_cycles
        floating = cycles_for_network(network, NORDIC_ARM_M4F,
                                      NumericMode.FLOAT).total_cycles
        return fixed, floating

    fixed, floating = benchmark(compute)
    rows = [
        ("fixed point", 30210, fixed),
        ("FPU (float)", 38478, floating),
        ("float/fixed ratio", "1.3x", f"{floating / fixed:.2f}x"),
    ]
    assert fixed == 30210
    assert floating == 38478
    assert floating / fixed == pytest.approx(1.3, abs=0.05)
    print_rows("In-text: fixed point vs FPU on the Cortex-M4F",
               ("variant", "paper", "measured"), rows)


def test_fixed_point_also_wins_energy():
    """'it is also more energy-efficient' — same power, fewer cycles."""
    network = build_network_a()
    fixed = energy_per_inference(network, NORDIC_ARM_M4F,
                                 NumericMode.FIXED_POINT)
    floating = energy_per_inference(network, NORDIC_ARM_M4F, NumericMode.FLOAT)
    assert fixed.energy_j < floating.energy_j


def test_fixed_point_accuracy_cost_negligible():
    """The speed win does not cost classification accuracy: quantised
    and float networks agree on almost every argmax."""
    network = build_network_a(seed=3)
    fixed = convert_to_fixed(network)
    probe = np.random.default_rng(1).uniform(-1, 1, size=(200, 5))
    agreement = float(np.mean(network.classify(probe) == fixed.classify(probe)))
    assert agreement > 0.95
