"""Ablation A6 — packed-SIMD headroom beyond the FANN layout.

The paper's fixed-point kernels follow FANN's 32-bit data layout.
RI5CY's packed-SIMD extensions (``pv.sdotsp.h``) double the MAC
throughput on 16-bit data; this ablation measures how much of that
factor survives whole-network overheads, on the ISS, for single-core
and 8-core execution — the obvious next optimisation step the paper's
"custom DSP extensions" enable.
"""

import numpy as np
import pytest

from repro.fann import Activation, LayerSpec, MultiLayerPerceptron, convert_to_fixed
from repro.isa.kernels import (
    compile_mlp,
    compile_mlp_simd,
    run_mlp,
    run_mlp_simd,
    simd_reference_forward,
)


@pytest.fixture(scope="module")
def fixed_network():
    net = MultiLayerPerceptron(64, [LayerSpec(64, Activation.TANH),
                                    LayerSpec(8, Activation.TANH)], seed=6)
    rng = np.random.default_rng(6)
    net.set_weights([rng.uniform(-1.0, 1.0, size=w.shape) for w in net.weights])
    return convert_to_fixed(net, decimal_point=10)


def test_simd_ablation(benchmark, fixed_network, print_rows):
    x = np.zeros(64)

    def measure():
        results = {}
        _, scalar1 = run_mlp(compile_mlp(fixed_network, target="xpulp"), x)
        _, simd1 = run_mlp_simd(compile_mlp_simd(fixed_network), x)
        _, scalar8 = run_mlp(compile_mlp(fixed_network, target="xpulp",
                                         num_cores=8), x)
        _, simd8 = run_mlp_simd(compile_mlp_simd(fixed_network, num_cores=8), x)
        results["scalar x1"] = scalar1.cycles
        results["simd   x1"] = simd1.cycles
        results["scalar x8"] = scalar8.cycles
        results["simd   x8"] = simd8.cycles
        return results

    cycles = benchmark(measure)
    rows = [(name, count,
             f"{cycles['scalar x1'] / count:.2f}x vs scalar x1")
            for name, count in cycles.items()]
    print_rows("Ablation: packed-SIMD kernel headroom",
               ("kernel", "cycles", "speed-up"), rows)

    assert cycles["simd   x1"] < cycles["scalar x1"]
    assert cycles["simd   x8"] < cycles["scalar x8"]
    # Wide layers: the packed inner loop recovers most of its 2x bound.
    assert cycles["scalar x1"] / cycles["simd   x1"] > 1.6


def test_simd_remains_bit_exact(fixed_network):
    """Speed without silent numerical drift: the packed kernel matches
    its reference exactly (and the scalar kernel, since tanh outputs
    fit the 16-bit lanes losslessly)."""
    x = np.random.default_rng(2).uniform(-1, 1, size=64)
    out, _ = run_mlp_simd(compile_mlp_simd(fixed_network), x)
    np.testing.assert_array_equal(out, simd_reference_forward(fixed_network, x))


def test_simd_cluster_compound_speedup(fixed_network):
    """SIMD and the cluster compose: 8-core packed execution runs
    several times faster than single-core scalar."""
    x = np.zeros(64)
    _, scalar1 = run_mlp(compile_mlp(fixed_network, target="xpulp"), x)
    _, simd8 = run_mlp_simd(compile_mlp_simd(fixed_network, num_cores=8), x)
    assert scalar1.cycles / simd8.cycles > 5.0
