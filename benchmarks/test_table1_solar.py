"""Table I — solar power generation under different lighting conditions.

Paper values (battery intake including losses and quiescent draw):
30 klx outdoor sun -> 24.711 mW; 700 lx indoor -> 0.9 mW.  The bench
measures the calibrated panel through the emulated SMU / light-source
flow, exactly as the authors measured the hardware.
"""

import pytest

from repro.harvest import calibrated_solar_harvester
from repro.lab import HarvestTestBench

PAPER_TABLE1_MW = {30_000.0: 24.711, 700.0: 0.9}


@pytest.fixture(scope="module")
def solar():
    return calibrated_solar_harvester()


def measure_intake_mw(solar, lux: float) -> float:
    bench = HarvestTestBench()
    return bench.measure_solar_intake_w(solar.panel, solar.converter, lux) * 1e3


def test_table1_reproduction(benchmark, solar, print_rows):
    results = benchmark(
        lambda: {lux: measure_intake_mw(solar, lux) for lux in PAPER_TABLE1_MW})
    rows = []
    for lux, paper_mw in PAPER_TABLE1_MW.items():
        measured = results[lux]
        rows.append((f"{lux:.0f} lx", f"{paper_mw:.3f} mW",
                     f"{measured:.3f} mW",
                     f"{100 * (measured - paper_mw) / paper_mw:+.2f} %"))
        assert measured == pytest.approx(paper_mw, rel=1e-3)
    print_rows("Table I: solar power generation",
               ("condition", "paper", "measured", "delta"), rows)


def test_table1_low_light_collapse(solar):
    """The published pair implies sub-linear scaling: 42.9x the light
    yields only 27.5x the power.  The single-diode physics must show
    the same collapse."""
    bright = measure_intake_mw(solar, 30_000.0)
    dim = measure_intake_mw(solar, 700.0)
    assert bright / dim == pytest.approx(24.711 / 0.9, rel=1e-3)
    assert bright / dim < 30_000.0 / 700.0


def test_table1_sweep_monotonic(benchmark, solar):
    """Intake grows monotonically with illuminance across the range."""

    def sweep():
        return [measure_intake_mw(solar, lux)
                for lux in (200, 700, 2_000, 8_000, 30_000)]

    values = benchmark(sweep)
    assert all(b > a for a, b in zip(values, values[1:]))
