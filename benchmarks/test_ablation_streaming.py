"""Ablation A3 — local classification vs BLE raw-data streaming.

Section II argues the dual-processor architecture "allows local
end-to-end processing (i.e., on-board classification using ML) with
lower power and higher energy efficiency than streaming the data out
for remote analysis".  This ablation quantifies that claim with the
BLE radio model: streaming 3 s of raw ECG+GSR per detection versus
classifying locally and notifying only the label.
"""

import pytest

from repro.core import StressDetectionApp
from repro.power import BleRadioModel

# 3 s of raw data per detection: 256 sps x 3 B ECG + 32 sps x 2 B GSR.
ECG_BYTES_PER_S = 256 * 3
GSR_BYTES_PER_S = 32 * 2
RAW_BYTES_PER_DETECTION = 3 * (ECG_BYTES_PER_S + GSR_BYTES_PER_S)
LABEL_BYTES = 1


@pytest.fixture(scope="module")
def radio():
    return BleRadioModel()


def test_streaming_vs_local(benchmark, radio, print_rows):
    app = StressDetectionApp()

    def compute():
        local_j = (app.energy_budget().classification_j
                   + radio.transfer_energy_j(LABEL_BYTES))
        streaming_j = radio.transfer_energy_j(RAW_BYTES_PER_DETECTION)
        return local_j, streaming_j

    local_j, streaming_j = benchmark(compute)
    rows = [
        ("raw bytes per detection", "-", RAW_BYTES_PER_DETECTION),
        ("stream raw over BLE", "-", f"{streaming_j * 1e6:.1f} uJ"),
        ("classify + send label", "-", f"{local_j * 1e6:.1f} uJ"),
        ("streaming / local ratio", ">> 1",
         f"{streaming_j / local_j:.0f}x"),
    ]
    print_rows("Ablation: BLE streaming vs local classification",
               ("quantity", "paper", "measured"), rows)
    assert streaming_j > 10 * local_j


def test_streaming_breaks_self_sustainability(radio):
    """At the paper's indoor harvest (~249 uW average), streaming raw
    data continuously is not sustainable; local detection at 24/min
    is."""
    from repro.core import analyze_self_sustainability

    report = analyze_self_sustainability()
    average_harvest_w = report.daily_intake_j / 86400.0

    streaming_rate_w = radio.transfer_energy_j(RAW_BYTES_PER_DETECTION) / 3.0
    afe_w = 201e-6  # the front ends run either way while acquiring
    assert streaming_rate_w + afe_w > average_harvest_w
    # Local detections at the paper's sustained rate fit the budget.
    local_w = report.detection_energy_j * (report.detections_per_minute / 60.0)
    assert local_w <= average_harvest_w * 1.001


def test_latency_advantage_of_local_processing(radio):
    """Local classification on the cluster takes ~61 us; pushing the
    raw window over BLE takes tens of ms before the remote side even
    starts computing — the paper's latency/robustness argument."""
    app = StressDetectionApp()
    inference_s = app.energy_budget().latency_s - app.acquisition_window_s
    air_time_s = RAW_BYTES_PER_DETECTION * 8.0 / radio.goodput_bps
    assert air_time_s > 100 * inference_s
