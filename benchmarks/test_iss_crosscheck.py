"""Ablation A4 — instruction-set-simulator cross-check.

The Table III/IV reproduction rests on calibrated analytical constants.
This bench validates them bottom-up: generated MLP kernels run on the
RV32IM / XpulpV2 / ARMv7E-M simulators, and the measured cycles-per-MAC
are compared with the calibrated per-weight costs.  The ISS kernels are
leaner than the real FANN runtime (no per-neuron structs, no Q-format
renormalisation per MAC), so the calibrated constants sit above the ISS
floor — within a factor of two, with the same processor ordering.
"""

import numpy as np
import pytest

from repro.fann import Activation, LayerSpec, MultiLayerPerceptron, convert_to_fixed
from repro.isa.kernels import compile_mlp, run_mlp, with_power_of_two_tables
from repro.timing.calibration import CALIBRATED

TARGET_TO_KEY = {
    "xpulp": "ri5cy_single",
    "armv7m": "arm_m4f",
    "rv32im": "ibex",
}


@pytest.fixture(scope="module")
def fixed_network():
    net = MultiLayerPerceptron(64, [LayerSpec(32, Activation.TANH),
                                    LayerSpec(8, Activation.TANH)], seed=4)
    rng = np.random.default_rng(4)
    net.set_weights([rng.uniform(-1.0, 1.0, size=w.shape) for w in net.weights])
    return convert_to_fixed(net, decimal_point=10)


def iss_cycles_per_mac(fixed_network, target):
    compiled = compile_mlp(fixed_network, target=target)
    _, result = run_mlp(compiled, np.zeros(64))
    total_macs = sum(w.size for w in fixed_network.weights)
    return result.cycles / total_macs


def test_iss_crosscheck(benchmark, fixed_network, print_rows):
    def measure_all():
        return {t: iss_cycles_per_mac(fixed_network, t) for t in TARGET_TO_KEY}

    measured = benchmark(measure_all)
    rows = []
    for target, key in TARGET_TO_KEY.items():
        calibrated = CALIBRATED[key].c_weight_fast
        ratio = calibrated / measured[target]
        rows.append((target, key, f"{measured[target]:.2f}",
                     f"{calibrated:.2f}", f"{ratio:.2f}x"))
        assert 0.5 < ratio < 2.2
    print_rows("Ablation: ISS cycles/MAC vs calibrated constants",
               ("ISS target", "calibrated key", "ISS cyc/MAC",
                "calibrated cyc/weight", "calibrated/ISS"), rows)


def test_iss_preserves_processor_ordering(fixed_network):
    """RI5CY < M4 < IBEX in both worlds."""
    measured = {t: iss_cycles_per_mac(fixed_network, t) for t in TARGET_TO_KEY}
    assert measured["xpulp"] < measured["armv7m"] < measured["rv32im"]
    assert (CALIBRATED["ri5cy_single"].c_weight_fast
            < CALIBRATED["arm_m4f"].c_weight_fast
            < CALIBRATED["ibex"].c_weight_fast)


def test_iss_functional_equivalence(fixed_network):
    """The kernels that produce the cycle counts compute the right
    answer: bit-exact against the Python fixed-point reference."""
    reference = with_power_of_two_tables(fixed_network)
    x = np.random.default_rng(8).uniform(-1, 1, size=64)
    raw_in = np.asarray(reference.fmt.to_fixed(x), dtype=np.int64)[np.newaxis, :]
    expected = reference.forward_raw(raw_in)[0]
    for target in TARGET_TO_KEY:
        out, _ = run_mlp(compile_mlp(fixed_network, target=target), x)
        np.testing.assert_array_equal(out, expected)


def test_iss_cluster_speedup_shape(benchmark, fixed_network, print_rows):
    """8-core ISS speed-up lands in the window Table III spans (the
    paper's Net A gets 3.7x, Net B 4.8x; this kernel's layers are
    between those sizes)."""

    def measure():
        _, single = run_mlp(compile_mlp(fixed_network, target="xpulp"),
                            np.zeros(64))
        _, eight = run_mlp(compile_mlp(fixed_network, target="xpulp",
                                       num_cores=8), np.zeros(64))
        return single.cycles, eight.cycles

    single_cycles, eight_cycles = benchmark(measure)
    speedup = single_cycles / eight_cycles
    print_rows("Ablation: ISS 8-core speed-up",
               ("cores", "cycles", "speed-up"),
               [(1, single_cycles, "1.00x"),
                (8, eight_cycles, f"{speedup:.2f}x")])
    assert 3.0 < speedup < 8.0
