"""Ablation A8 — DMA double-buffering for L2-resident networks.

Network B cannot fit the cluster's 64 kB L1, so its weights must
stream from L2.  This ablation uses the DMA timing model to show the
asymmetry the calibrated Table III constants absorbed: a single core is
compute-bound on every layer (the DMA hides entirely), while eight
cores' aggregate demand pushes against the shared port and the big
layers flip to transfer-bound once the port is shared with core
traffic.
"""

import pytest

from repro.fann import build_network_b
from repro.isa import DmaEngine, double_buffered_layer_cycles
from repro.timing.calibration import CALIBRATED

SINGLE_CORE_CYCLES_PER_WEIGHT = CALIBRATED["ri5cy_single"].c_weight_fast


def layer_geometry():
    """(weights, bytes) per connection layer of Network B."""
    sizes = build_network_b().layer_sizes
    return [((n_in + 1) * n_out, 4 * (n_in + 1) * n_out)
            for n_in, n_out in zip(sizes[:-1], sizes[1:])]


def test_dma_ablation(benchmark, print_rows):
    nominal = DmaEngine()                      # dedicated 8 B/cycle port
    shared = DmaEngine(bytes_per_cycle=4.0)    # port shared with cores

    def analyse():
        single_exposed = 0.0
        eight_exposed_nominal = 0.0
        eight_exposed_shared = 0.0
        for weights, weight_bytes in layer_geometry():
            compute1 = weights * SINGLE_CORE_CYCLES_PER_WEIGHT
            compute8 = compute1 / 8.0
            single_exposed += (double_buffered_layer_cycles(
                compute1, weight_bytes, nominal) - compute1)
            eight_exposed_nominal += (double_buffered_layer_cycles(
                compute8, weight_bytes, nominal) - compute8)
            eight_exposed_shared += (double_buffered_layer_cycles(
                compute8, weight_bytes, shared) - compute8)
        return single_exposed, eight_exposed_nominal, eight_exposed_shared

    single, eight_nominal, eight_shared = benchmark(analyse)
    total_compute1 = sum(w for w, _ in layer_geometry()) \
        * SINGLE_CORE_CYCLES_PER_WEIGHT

    rows = [
        ("1 core, dedicated port", f"{single:.0f}",
         f"{100 * single / total_compute1:.2f} %"),
        ("8 cores, dedicated port", f"{eight_nominal:.0f}",
         f"{100 * eight_nominal / (total_compute1 / 8):.2f} %"),
        ("8 cores, shared port", f"{eight_shared:.0f}",
         f"{100 * eight_shared / (total_compute1 / 8):.2f} %"),
    ]
    print_rows("Ablation: DMA exposure on Network B (cycles beyond compute)",
               ("configuration", "exposed cycles", "of compute time"), rows)

    # Single core: only per-layer setup shows (25 layers x 24 cycles).
    assert single == pytest.approx(25 * nominal.setup_cycles)
    # Eight cores on a shared port: exposure becomes a real fraction.
    assert eight_shared > 5 * eight_nominal


def test_dma_exposure_scales_with_port_sharing():
    """Less DMA bandwidth -> more exposed transfer time, monotonically."""
    exposures = []
    for bandwidth in (8.0, 6.0, 4.0, 2.0):
        engine = DmaEngine(bytes_per_cycle=bandwidth)
        total = 0.0
        for weights, weight_bytes in layer_geometry():
            compute8 = weights * SINGLE_CORE_CYCLES_PER_WEIGHT / 8.0
            total += double_buffered_layer_cycles(compute8, weight_bytes, engine)
        exposures.append(total)
    assert all(b >= a for a, b in zip(exposures, exposures[1:]))


def test_dma_story_consistent_with_calibration():
    """In a transfer-bound regime the effective per-core cycles/weight
    equal ``8 cores x 4 bytes / port_bandwidth``.  Inverting the
    calibrated 8-core L2 constant (8.19 cycles/weight) yields an
    effective bandwidth of ~3.9 B/cycle — about half the dedicated
    8 B/cycle port, i.e. exactly the shared-port regime the DMA model
    brackets.  The fit and the microarchitectural model agree."""
    multi = CALIBRATED["ri5cy_multi"]
    effective_bandwidth = 8 * 4 / multi.c_weight_slow
    assert 2.0 < effective_bandwidth < 8.0
    assert effective_bandwidth == pytest.approx(3.9, abs=0.3)
    # And the L1 (fast) constant is compute-limited, not port-limited:
    # demand at 5.55 cycles/weight is 5.8 B/cycle < the 8 B/cycle port.
    demand = 8 * 4 / multi.c_weight_fast
    assert demand < 8.0
