"""Fig. 1 — block diagram of InfiniWolf and the smart power unit.

The reproducible artefact of a block diagram is its component/bus
graph: which blocks exist, which buses connect them, and how the dual
harvesting paths reach the battery.  The bench rebuilds the graph and
verifies every structural claim the figure makes.
"""

from repro.core import InfiniWolfDevice, build_device_graph


def test_fig1_reproduction(benchmark, print_rows):
    device = benchmark(InfiniWolfDevice)
    graph = device.graph

    rows = [
        ("processors", 2, len(device.components_of_kind("processor"))),
        ("sensors", 5, len(device.components_of_kind("sensor"))),
        ("harvest transducers", 2, len(device.components_of_kind("transducer"))),
        ("power blocks", 5, len(device.components_of_kind("power"))),
        ("bus/power edges", 20, graph.number_of_edges()),
    ]
    for label, expected, actual in rows:
        assert actual == expected, label
    print_rows("Fig. 1: block diagram structure",
               ("element", "paper", "measured"), rows)


def test_fig1_dual_harvest_paths():
    """Each transducer charges the battery through its own IC."""
    device = InfiniWolfDevice()
    graph = device.graph
    assert graph.has_edge("solar_panels", "bq25570")
    assert graph.has_edge("bq25570", "battery")
    assert graph.has_edge("teg_module", "bq25505")
    assert graph.has_edge("bq25505", "battery")
    assert device.power_path_exists("solar_panels")
    assert device.power_path_exists("teg_module")


def test_fig1_sensor_buses():
    """SPI for ECG and the inter-processor link, I2S for the mic,
    I2C for the IMU/pressure on the Nordic side."""
    device = InfiniWolfDevice()
    assert device.buses_between("max30001_ecg", "mrwolf") == ["spi"]
    assert device.buses_between("nrf52832", "mrwolf") == ["spi"]
    assert device.buses_between("ics43434_mic", "mrwolf") == ["i2s"]
    assert device.buses_between("icm20948_imu", "nrf52832") == ["i2c"]
    assert device.buses_between("bmp280_pressure", "nrf52832") == ["i2c"]


def test_fig1_gauge_reports_to_nordic():
    """The Nordic 'keeps track of the battery charging status'."""
    device = InfiniWolfDevice()
    assert device.buses_between("bq27441_gauge", "nrf52832") == ["i2c"]


def test_fig1_graph_builder_is_pure():
    a, b = build_device_graph(), build_device_graph()
    assert set(a.nodes) == set(b.nodes)
    assert set(a.edges) == set(b.edges)
