"""In-text claim X3 — the per-detection energy budget.

Section IV itemises one stress detection: 3 s of acquisition with the
ECG front end at 171 uW and the GSR front end at 30 uW (the paper
books this as 600 uJ), 50 us of feature extraction on the ~20 mW
cluster (1 uJ), and one Network-A classification (1.2 uJ on 8 cores),
giving the "best overall energy cost" of 602.2 uJ.

The exact products give 603 uJ for acquisition and 605.2 uJ total;
both our exact model and the paper's bookkeeping are reported.
"""

import pytest

from repro.core import StressDetectionApp
from repro.core.application import PAPER_TOTAL_DETECTION_ENERGY_UJ


def test_detection_budget_reproduction(benchmark, print_rows):
    app = StressDetectionApp()
    exact = benchmark(app.energy_budget)
    paper = app.paper_energy_budget()

    rows = [
        ("acquisition (3 s, ECG+GSR)", "600.0 uJ",
         f"{exact.acquisition_j * 1e6:.1f} uJ"),
        ("feature extraction (50 us)", "1.0 uJ",
         f"{exact.feature_extraction_j * 1e6:.2f} uJ"),
        ("classification (8x RI5CY)", "1.2 uJ",
         f"{exact.classification_j * 1e6:.2f} uJ"),
        ("total (paper bookkeeping)", "602.2 uJ",
         f"{paper.total_uj:.1f} uJ"),
        ("total (exact products)", "-", f"{exact.total_uj:.1f} uJ"),
    ]
    print_rows("In-text: energy per stress detection",
               ("phase", "paper", "measured"), rows)

    assert paper.total_uj == pytest.approx(PAPER_TOTAL_DETECTION_ENERGY_UJ)
    assert exact.acquisition_j == pytest.approx(603e-6)
    assert exact.total_uj == pytest.approx(605.2, abs=0.5)


def test_acquisition_dominates():
    """Classification is ~0.2% of a detection: the AFEs, not the
    processors, set the energy floor — which is exactly why the
    self-sustained rate barely depends on the processor choice."""
    budget = StressDetectionApp().energy_budget()
    assert budget.acquisition_j / budget.total_j > 0.99


def test_latency_is_the_acquisition_window():
    budget = StressDetectionApp().energy_budget()
    assert budget.latency_s == pytest.approx(3.0, abs=1e-3)
