"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper and
prints the rows it produced next to the published values, so running
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
section on the terminal.  Assertions keep the reproduction honest: a
code change that breaks a published number fails the bench.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def print_rows(capsys):
    """Print a small paper-vs-measured table, bypassing capture."""

    def _print(title: str, header: tuple, rows: list[tuple]) -> None:
        with capsys.disabled():
            widths = [max(len(str(header[i])),
                          max((len(str(r[i])) for r in rows), default=0))
                      for i in range(len(header))]
            line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
            print(f"\n=== {title} ===")
            print(line)
            print("-" * len(line))
            for row in rows:
                print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))

    return _print
