"""Table IV — energy consumption per classification in microjoules.

Paper values: Network A costs 5.1 / 1.3 / 2.9 / 1.2 uJ and Network B
153.8 / 31.5 / 65.6 / 21.6 uJ on the ARM M4, IBEX, single RI5CY and
8-core RI5CY respectively.
"""

import pytest

from repro.fann import build_network_a, build_network_b
from repro.timing import (
    ALL_PROCESSORS,
    MRWOLF_IBEX,
    MRWOLF_RI5CY_CLUSTER8,
    energy_per_inference,
)

PAPER_TABLE4_UJ = {
    "arm_m4f": (5.1, 153.8),
    "ibex": (1.3, 31.5),
    "ri5cy_single": (2.9, 65.6),
    "ri5cy_multi": (1.2, 21.6),
}


@pytest.fixture(scope="module")
def networks():
    return {"Network A": build_network_a(), "Network B": build_network_b()}


def test_table4_reproduction(benchmark, networks, print_rows):
    def compute():
        table = {}
        for name, net in networks.items():
            table[name] = {p.key: energy_per_inference(net, p).energy_uj_rounded
                           for p in ALL_PROCESSORS}
        return table

    table = benchmark(compute)
    rows = []
    for idx, (name, per_proc) in enumerate(table.items()):
        for proc in ALL_PROCESSORS:
            paper = PAPER_TABLE4_UJ[proc.key][idx]
            ours = per_proc[proc.key]
            rows.append((name, proc.display_name, f"{paper} uJ", f"{ours} uJ",
                         "exact" if paper == ours else "MISMATCH"))
            assert ours == paper
    print_rows("Table IV: energy per classification",
               ("network", "processor", "paper", "measured", "status"), rows)


def test_energy_winner_story(networks):
    """Who wins on energy: IBEX for Network A (barely over the
    cluster), the 8-core cluster for Network B."""
    a, b = networks["Network A"], networks["Network B"]
    a_energies = {p.key: energy_per_inference(a, p).energy_j for p in ALL_PROCESSORS}
    b_energies = {p.key: energy_per_inference(b, p).energy_j for p in ALL_PROCESSORS}
    assert min(a_energies, key=a_energies.get) in ("ri5cy_multi", "ibex")
    assert min(b_energies, key=b_energies.get) == "ri5cy_multi"


def test_cluster_energy_ratio_on_network_b(networks):
    """The cluster uses ~7x less energy than the ARM on Network B —
    the paper's headline efficiency claim."""
    b = networks["Network B"]
    arm = energy_per_inference(b, ALL_PROCESSORS[0]).energy_j
    multi = energy_per_inference(b, MRWOLF_RI5CY_CLUSTER8).energy_j
    assert arm / multi == pytest.approx(153.8 / 21.6, rel=0.02)


def test_ibex_vs_cluster_tradeoff(networks):
    """IBEX matches the cluster's energy on Network A but is an order
    of magnitude slower — latency is what the cluster buys."""
    a = networks["Network A"]
    ibex = energy_per_inference(a, MRWOLF_IBEX)
    multi = energy_per_inference(a, MRWOLF_RI5CY_CLUSTER8)
    assert ibex.energy_j == pytest.approx(multi.energy_j, rel=0.15)
    assert ibex.latency_s > 6 * multi.latency_s
