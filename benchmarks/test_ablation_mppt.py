"""Ablation A2 — MPPT fraction sweep for both harvester channels.

InfiniWolf programs the BQ25570 to 80 % of V_oc (solar) and the
BQ25505 to 50 % (TEG).  The ablation sweeps the fraction and finds:

* the TEG's optimum is *exactly* 0.5 V_oc (matched Thevenin load);
* the solar 80 % setting is exactly optimal in the indoor regime the
  self-sustainability analysis assumes — but the calibrated panel's
  high series resistance (the same parameter that reproduces Table I's
  sub-linear light scaling) drags the true MPP towards ~0.6 V_oc under
  strong sun, where a fixed 80 % setting captures only ~70 % of the
  available power.  A light-adaptive fraction is therefore a real
  optimisation opportunity for this class of thin-film panel.
"""

from repro.harvest import (
    BQ25505,
    BQ25570,
    INDOOR_OFFICE_700LX,
    OUTDOOR_SUN_30KLX,
    TEG_ROOM_15C_NO_WIND,
    SolarHarvester,
    TEGHarvester,
)
from repro.harvest.calibrated import solar_panel_params, teg_params
from repro.harvest.photovoltaic import PVPanel
from repro.harvest.teg import TEGDevice

FRACTIONS = [0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9]


def solar_intake_at_fraction(fraction, lighting):
    harvester = SolarHarvester(panel=PVPanel(solar_panel_params()),
                               converter=BQ25570(mppt_fraction=fraction))
    return harvester.battery_intake_w(lighting)


def teg_intake_at_fraction(fraction):
    harvester = TEGHarvester(device=TEGDevice(teg_params()),
                             converter=BQ25505(mppt_fraction=fraction))
    return harvester.battery_intake_w(TEG_ROOM_15C_NO_WIND)


def test_mppt_fraction_sweep(benchmark, print_rows):
    def sweep():
        return {
            "solar @ 30 klx": {f: solar_intake_at_fraction(f, OUTDOOR_SUN_30KLX)
                               for f in FRACTIONS},
            "solar @ 700 lx": {f: solar_intake_at_fraction(f, INDOOR_OFFICE_700LX)
                               for f in FRACTIONS},
            "TEG @ 15C still": {f: teg_intake_at_fraction(f) for f in FRACTIONS},
        }

    sweeps = benchmark(sweep)
    rows = []
    for channel, values in sweeps.items():
        best = max(values, key=values.get)
        for fraction, watts in values.items():
            marker = " <- best" if fraction == best else ""
            rows.append((channel, f"{fraction:.2f}",
                         f"{watts * 1e6:.1f} uW{marker}"))
    print_rows("Ablation: MPPT fraction sweep",
               ("channel", "fraction of Voc", "battery intake"), rows)

    # The TEG optimum is the matched load at exactly 0.5.
    teg = sweeps["TEG @ 15C still"]
    assert max(teg, key=teg.get) == 0.5


def test_teg_half_voc_is_optimal():
    matched = teg_intake_at_fraction(0.5)
    for fraction in (0.3, 0.4, 0.6, 0.7):
        assert teg_intake_at_fraction(fraction) < matched


def test_solar_80pct_optimal_indoors():
    """In the 700 lx regime the sustainability analysis rests on, the
    board's 80 % setting is the best fractional-V_oc choice."""
    values = {f: solar_intake_at_fraction(f, INDOOR_OFFICE_700LX)
              for f in FRACTIONS}
    assert max(values, key=values.get) == 0.8
    assert values[0.8] >= 0.999 * max(values.values())


def test_high_light_shifts_solar_mpp_to_lower_fractions():
    """Under strong sun the panel's I^2*Rs losses move the MPP well
    below 0.8 V_oc: a fixed 80 % setting leaves ~30 % of the available
    power unharvested — an adaptive-fraction opportunity the paper's
    fixed-resistor configuration cannot exploit."""
    values = {f: solar_intake_at_fraction(f, OUTDOOR_SUN_30KLX)
              for f in FRACTIONS}
    best_fraction = max(values, key=values.get)
    assert best_fraction < 0.8
    assert values[0.8] < 0.85 * values[best_fraction]
