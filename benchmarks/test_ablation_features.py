"""Ablation A7 — what do spectral HRV features add to the paper's five?

The paper's classifier uses RMSSD, SDSD, NN50, GSRL, GSRH.  The HRV
literature also uses spectral features (LF/HF); this ablation trains
the same network architecture with and without two spectral features
(ln LF power, LF/HF ratio) on the synthetic dataset and compares
held-out accuracy, plus the cost side: a wider input layer changes the
deployed cycle count only marginally (5 extra weights per first-layer
neuron).
"""

import numpy as np

from repro.fann import Activation, LayerSpec, MultiLayerPerceptron, RpropTrainer
from repro.features import FeatureExtractor, lf_hf_ratio, lf_power
from repro.features.windows import window_rr_series
from repro.sensors import StressDatasetGenerator
from repro.timing import MRWOLF_RI5CY_CLUSTER8, cycles_for_network

TRAIN_SUBJECTS, TEST_SUBJECTS = 5, 2
WINDOW_S, STEP_S = 60.0, 30.0


def one_hot_pm(labels, num_classes=3):
    targets = -np.ones((labels.size, num_classes))
    targets[np.arange(labels.size), labels] = 1.0
    return targets


def build_datasets():
    """(x5, x7, y) per split: base features and base + spectral."""
    generator = StressDatasetGenerator(segment_duration_s=180.0, seed=13)
    extractor = FeatureExtractor(window_duration_s=WINDOW_S, step_duration_s=STEP_S)
    splits = {"train": ([], [], []), "test": ([], [], [])}
    for subject in range(TRAIN_SUBJECTS + TEST_SUBJECTS):
        split = "train" if subject < TRAIN_SUBJECTS else "test"
        recording = generator.generate_recording(subject)
        for segment in recording.segments:
            vectors = extractor.extract_from_segment(segment)
            rr_windows = window_rr_series(segment.rr_intervals_s, WINDOW_S, STEP_S)
            for vector, rr in zip(vectors, rr_windows):
                base = vector.as_array()
                spectral = np.array([np.log1p(lf_power(rr) * 1e6),
                                     np.log1p(lf_hf_ratio(rr))])
                splits[split][0].append(base)
                splits[split][1].append(np.concatenate([base, spectral]))
                splits[split][2].append(vector.label)
    return {name: (np.stack(xs5), np.stack(xs7), np.array(ys))
            for name, (xs5, xs7, ys) in splits.items()}


def train_and_score(x_train, y_train, x_test, y_test, seed=7):
    mean, std = x_train.mean(axis=0), x_train.std(axis=0) + 1e-9
    x_train = (x_train - mean) / std
    x_test = (x_test - mean) / std
    network = MultiLayerPerceptron(
        x_train.shape[1],
        [LayerSpec(50, Activation.TANH), LayerSpec(50, Activation.TANH),
         LayerSpec(3, Activation.TANH)], seed=seed)
    RpropTrainer().train(network, x_train, one_hot_pm(y_train),
                         max_epochs=250, desired_mse=0.04)
    accuracy = float(np.mean(network.classify(x_test) == y_test))
    return network, accuracy


def test_feature_ablation(benchmark, print_rows):
    data = benchmark(build_datasets)
    x5_tr, x7_tr, y_tr = data["train"]
    x5_te, x7_te, y_te = data["test"]

    net5, acc5 = train_and_score(x5_tr, y_tr, x5_te, y_te)
    net7, acc7 = train_and_score(x7_tr, y_tr, x7_te, y_te)

    cycles5 = cycles_for_network(net5, MRWOLF_RI5CY_CLUSTER8).total_cycles
    cycles7 = cycles_for_network(net7, MRWOLF_RI5CY_CLUSTER8).total_cycles

    rows = [
        ("paper 5 features", f"{100 * acc5:.1f} %", cycles5),
        ("+ ln LF, ln LF/HF (7 features)", f"{100 * acc7:.1f} %", cycles7),
    ]
    print_rows("Ablation: feature-set extension",
               ("feature set", "held-out accuracy", "8-core cycles"), rows)

    # Both must be usable classifiers; the paper's five already carry
    # most of the signal on this dataset.
    assert acc5 > 0.70
    assert acc7 > 0.70
    # Cost of the wider input layer stays marginal (<5 %).
    assert cycles7 < 1.05 * cycles5


def test_spectral_features_separate_classes_alone():
    """Sanity: the two spectral features alone carry class signal
    (mean LF/HF rises monotonically with stress level)."""
    generator = StressDatasetGenerator(segment_duration_s=180.0, seed=3)
    by_level = {0: [], 1: [], 2: []}
    for subject in range(4):
        recording = generator.generate_recording(subject)
        for segment in recording.segments:
            for rr in window_rr_series(segment.rr_intervals_s, 60.0, 60.0):
                if rr.size >= 8:
                    by_level[int(segment.level)].append(lf_hf_ratio(rr))
    means = [np.mean(by_level[level]) for level in (0, 1, 2)]
    assert means[0] < means[2]
