"""Ablation A5 — 24 h day-in-the-life system simulation.

Runs the whole watch (calibrated harvesting, 120 mAh battery, the
energy-aware manager, per-detection energy) over realistic day
profiles — built through the declarative scenario API — and checks the
headline system property: the paper's indoor scenario is energy-neutral
at roughly the sustained rate the static analysis predicts.
"""

from dataclasses import replace

import pytest

from repro.core.sustainability import analyze_self_sustainability
from repro.scenarios import (
    BatterySpec,
    PolicySpec,
    ScenarioSpec,
    SegmentSpec,
    TimelineSpec,
    build_simulation,
    get_scenario,
)


def test_day_simulation_paper_scenario(benchmark, print_rows):
    spec = get_scenario("paper_indoor_worst_case")

    def simulate():
        return build_simulation(spec).run()

    result = benchmark(simulate)
    static = analyze_self_sustainability()

    # The default policy tracks the *instantaneous* harvest, capped at
    # the paper's 24/min: 6 h at the cap (indoor light over-provisions
    # the cap) plus 18 h at the TEG-only neutral rate.
    detection_j = static.detection_energy_j
    dark_rate = 24e-6 * 0.95 * 60.0 / detection_j          # per minute
    expected = 6 * 60 * 24.0 + 18 * 60 * dark_rate

    rows = [
        ("harvested energy", f"{static.daily_intake_j:.2f} J (static)",
         f"{result.total_harvest_j:.2f} J"),
        ("detections", f"{expected:.0f} (policy expectation)",
         f"{result.total_detections:.0f}"),
        ("static max (rate cap removed)", f"{static.detections_per_day:.0f}",
         "-"),
        ("battery SoC start -> end", "neutral or charging",
         f"{result.initial_soc:.3f} -> {result.final_soc:.3f}"),
    ]
    print_rows("Ablation: 24 h simulation, paper indoor scenario",
               ("quantity", "reference", "simulated"), rows)

    # Energy-neutral-or-better, and the policy expectation holds.
    assert result.final_soc >= result.initial_soc - 0.005
    assert result.total_detections == pytest.approx(expected, rel=0.05)
    assert result.total_detections < static.detections_per_day


def test_uncapped_policy_approaches_static_maximum(benchmark):
    """Raising the rate cap lets the manager spend the lit-hour
    surplus; the day's detections then approach the static analysis
    (which assumes the daily energy is spendable at any rate)."""
    base = get_scenario("paper_indoor_worst_case")
    spec = replace(base, system=replace(
        base.system, policy=PolicySpec(params={"max_rate_per_min": 120.0})))

    def simulate():
        return build_simulation(spec).run()

    result = benchmark(simulate)
    static = analyze_self_sustainability()
    assert result.total_detections > 0.85 * static.detections_per_day
    assert result.final_soc >= result.initial_soc - 0.01


def test_day_simulation_active_day_charges_battery(benchmark):
    spec = get_scenario("sunny_office_worker")

    def simulate():
        return build_simulation(spec).run()

    result = benchmark(simulate)
    # An hour of sun + wind outweighs the whole indoor day.
    assert result.final_soc > result.initial_soc
    assert result.total_detections > 0


def test_week_of_darkness_survives_on_floor_rate():
    """Seven lightless days: the manager throttles to the floor rate
    and the 120 mAh buffer carries the watch through.  Built from an
    inline segment spec — no registry entry needed."""
    spec = ScenarioSpec(
        name="dark_week",
        timeline=TimelineSpec(segments=(
            SegmentSpec(duration_s=7 * 86400.0, lux=0.0,
                        ambient_c=22.0, skin_c=32.0, label="lightless week"),
        )),
        step_s=1800.0,
    )
    result = build_simulation(spec).run()
    assert result.final_soc > 0.2
    assert result.total_detections > 0


def test_simulation_consistent_with_static_analysis():
    """Harvested joules in the dynamic run match the static product
    within charge-efficiency losses."""
    base = get_scenario("paper_indoor_worst_case")
    spec = replace(base, step_s=600.0, system=replace(
        base.system, battery=BatterySpec(charge_efficiency=1.0)))
    result = build_simulation(spec).run()
    static = analyze_self_sustainability()
    assert result.total_harvest_j == pytest.approx(static.daily_intake_j,
                                                   rel=0.02)
